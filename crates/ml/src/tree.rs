//! CART decision trees with Gini impurity.

use serde::{Deserialize, Serialize};

use crate::binning::{BinnedDataset, HistScratch};
use crate::pinned::PinnedRng;
use crate::Dataset;

/// Training parameters for a [`DecisionTree`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each child of an accepted split.
    pub min_samples_leaf: usize,
    /// Number of random candidate features per split (`None` = all).
    pub n_candidate_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 24,
            min_samples_split: 2,
            min_samples_leaf: 1,
            n_candidate_features: None,
        }
    }
}

/// Marks a leaf in the per-node `features` array.
pub(crate) const LEAF: u32 = u32::MAX;

/// A trained CART decision tree.
///
/// Samples with `feature <= threshold` go left. Leaves store training
/// class counts so the tree can emit probabilities.
///
/// Nodes live in parallel arrays (structure-of-arrays) rather than an
/// enum arena: the predict loop only touches `features`, `thresholds`
/// and the child ids, so a traversal step reads three small contiguous
/// arrays instead of one ~56-byte enum, and each leaf carries its
/// precomputed majority class — the per-visit `argmax` of the old
/// layout disappears. Forest prediction is the hot path of the
/// 27-classifier identification stage, which is why the layout is
/// tuned this aggressively.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    /// Per-node split feature; [`LEAF`] (`u32::MAX`) marks a leaf.
    features: Vec<u32>,
    /// Per-node split threshold (`0.0` at leaves).
    thresholds: Vec<f64>,
    /// Left child id at splits; at leaves, the index into `leaf_counts`.
    lefts: Vec<u32>,
    /// Right child id at splits; at leaves, the precomputed majority
    /// class (first class on ties, matching [`argmax`]).
    rights: Vec<u32>,
    /// Samples that reached each node (importance weighting).
    n_samples: Vec<usize>,
    /// Gini impurity decrease per node (`0.0` at leaves).
    impurity_decreases: Vec<f64>,
    /// Training class counts of every leaf, flattened with stride
    /// `n_classes` (leaf `l` owns
    /// `leaf_counts[l * n_classes..][..n_classes]`) — one arena instead
    /// of one heap box per leaf.
    leaf_counts: Vec<usize>,
    n_classes: usize,
}

/// The raw structure-of-arrays content of a [`DecisionTree`], exposed
/// for binary model persistence. Field meanings mirror the tree's
/// private arrays one to one (see the [`DecisionTree`] docs);
/// [`DecisionTree::from_parts`] validates every structural invariant
/// before accepting them back, so arbitrary (e.g. corrupted-on-disk)
/// parts can never produce a tree whose traversal panics or loops.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TreeParts {
    /// Per-node split feature; `u32::MAX` marks a leaf.
    pub features: Vec<u32>,
    /// Per-node split threshold (`0.0` at leaves).
    pub thresholds: Vec<f64>,
    /// Left child id at splits; at leaves, the `leaf_counts` block index.
    pub lefts: Vec<u32>,
    /// Right child id at splits; at leaves, the majority class.
    pub rights: Vec<u32>,
    /// Samples that reached each node.
    pub n_samples: Vec<usize>,
    /// Gini impurity decrease per node (`0.0` at leaves).
    pub impurity_decreases: Vec<f64>,
    /// Per-leaf training class counts, flattened with stride `n_classes`.
    pub leaf_counts: Vec<usize>,
    /// The number of classes the tree distinguishes.
    pub n_classes: usize,
}

/// Reusable scratch for tree fitting.
///
/// Every buffer the build recursion needs per node — the partitioned
/// row-index working set, the candidate-feature list, the class-count
/// vectors of the node and of the split sweep, the exact scan's sorted
/// column and the histogram sweep's bin counts — is borrowed from here
/// instead of freshly allocated, so a warm arena makes
/// `DecisionTree::build` perform **zero heap allocations per node**
/// (pinned by `tests/alloc_arena.rs`). The arena also remembers the
/// largest tree it has produced and pre-reserves the next tree's
/// node arrays accordingly: steady-state, a whole tree fit costs one
/// exact-sized allocation per output array and nothing else.
///
/// Forest fitting hands each worker thread its own arena
/// (`parallel::map_indexed_init`), reused across all trees that worker
/// claims. The arena is pure scratch — it never influences the fitted
/// tree, so determinism across thread counts is unaffected.
#[derive(Debug, Default)]
pub struct FitArena {
    /// The in-place row-index buffer the recursion partitions.
    work: Vec<usize>,
    /// Bootstrap-sample staging for view-mapped forest fits.
    pub(crate) sample: Vec<usize>,
    /// Per-tree in-bag flags for out-of-bag accounting.
    pub(crate) in_bag: Vec<bool>,
    /// Candidate-feature list, refilled per node and partially
    /// Fisher–Yates-stepped in place as slots are inspected.
    candidates: Vec<usize>,
    /// Class counts of the node under construction (the split search
    /// reads them as the parent counts; it must not write them).
    node_counts: Vec<usize>,
    /// The node's labels, gathered once per node (position-aligned with
    /// its index slice) so the per-candidate histogram fills read one
    /// sequential stream instead of re-gathering `labels[i]` per row
    /// per feature.
    node_labels: Vec<u32>,
    /// Left/right class counts swept by the split search.
    left_counts: Vec<usize>,
    right_counts: Vec<usize>,
    /// `(value, label)` pairs for the exact sorted-scan search.
    column: Vec<(f64, usize)>,
    /// Histogram scratch for the binned search.
    hist: HistScratch,
    /// Per-depth bitmask stack of features known constant within the
    /// node (one `(n_features + 63) / 64`-word frame per depth). A
    /// feature constant in a node is constant in both children, so each
    /// frame starts as a copy of its parent's and grows as the split
    /// search discovers new constants — descendants then skip those
    /// features without touching their codes at all. Pure scratch: the
    /// skip decision is exactly the one the scan would make.
    constant_masks: Vec<u64>,
    /// High-water marks: node and flattened-leaf-count lengths of the
    /// largest tree fitted so far, used to size the next tree's arrays.
    max_nodes: usize,
    max_leaf_slots: usize,
}

impl FitArena {
    /// Creates an empty arena; buffers grow on first use and are reused
    /// afterwards.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Per-fit split-search inputs threaded through the build recursion:
/// the training rows, the optional pre-binned columns, the optional
/// per-corpus-row label overrides, and the scratch arena.
struct FitContext<'a> {
    data: &'a Dataset,
    bins: Option<&'a BinnedDataset>,
    /// Shared-corpus one-vs-rest views override the dataset's labels:
    /// `relabel[i]` is the class of corpus row `i` (`None` = use
    /// `data.label(i)`).
    relabel: Option<&'a [usize]>,
    arena: &'a mut FitArena,
}

/// The label of corpus row `i` under an optional view relabeling.
#[inline]
fn label_of(data: &Dataset, relabel: Option<&[usize]>, i: usize) -> usize {
    match relabel {
        Some(labels) => labels[i],
        None => data.label(i),
    }
}

impl DecisionTree {
    /// Fits a tree on `data` using all rows.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(data: &Dataset, config: &TreeConfig, rng: &mut PinnedRng) -> Self {
        let indices: Vec<usize> = (0..data.len()).collect();
        Self::fit_on(data, &indices, config, rng)
    }

    /// Fits a tree on the rows selected by `indices` (used for bootstrap
    /// bagging; indices may repeat) with the exact sorted-scan split
    /// search.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty.
    pub fn fit_on(
        data: &Dataset,
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut PinnedRng,
    ) -> Self {
        Self::fit_in(data, indices, config, rng, &mut FitArena::new())
    }

    /// [`DecisionTree::fit_on`] with a caller-provided scratch arena, so
    /// repeated fits reuse every working buffer.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty.
    pub fn fit_in(
        data: &Dataset,
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut PinnedRng,
        arena: &mut FitArena,
    ) -> Self {
        Self::fit_inner(data, None, None, indices, config, rng, arena)
    }

    /// Fits a tree like [`DecisionTree::fit_on`], but finds splits with
    /// cumulative histogram sweeps over the pre-binned columns in `bins`
    /// (which must have been built from this `data`). The binning is
    /// lossless — bins are the feature's actual distinct values — so the
    /// fitted tree is **bit-identical** to [`DecisionTree::fit_on`] with
    /// the same RNG state; only the per-node cost changes, from
    /// `O(n log n)` sorting to `O(n + bins)` counting per candidate
    /// feature.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty.
    pub fn fit_binned(
        data: &Dataset,
        bins: &BinnedDataset,
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut PinnedRng,
    ) -> Self {
        Self::fit_binned_in(data, bins, indices, config, rng, &mut FitArena::new())
    }

    /// [`DecisionTree::fit_binned`] with a caller-provided scratch
    /// arena, so repeated fits reuse every working buffer.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty.
    pub fn fit_binned_in(
        data: &Dataset,
        bins: &BinnedDataset,
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut PinnedRng,
        arena: &mut FitArena,
    ) -> Self {
        Self::fit_inner(data, Some(bins), None, indices, config, rng, arena)
    }

    /// Fits a tree over a *view* of a shared corpus: `indices` selects
    /// (possibly repeated, bootstrap-style) rows of `data`, but the
    /// class of row `i` is `labels[i]` — a per-corpus-row relabeling
    /// with `n_classes` classes — and split search runs over `bins`
    /// built **once** from the full corpus.
    ///
    /// Lossless versus copying the view's rows into their own `Dataset`
    /// and calling [`DecisionTree::fit_binned`]: corpus bins absent
    /// from a node are empty in its histogram, and the sweep already
    /// skips empty bins, so the probed thresholds, their order, the
    /// left/right counts, the candidate budget and the RNG stream are
    /// all identical (pinned by `tests/prop_histogram.rs`).
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or `labels` is shorter than the
    /// corpus.
    #[allow(clippy::too_many_arguments)]
    pub fn fit_view_in(
        data: &Dataset,
        bins: &BinnedDataset,
        indices: &[usize],
        labels: &[usize],
        n_classes: usize,
        config: &TreeConfig,
        rng: &mut PinnedRng,
        arena: &mut FitArena,
    ) -> Self {
        assert!(
            labels.len() >= data.len(),
            "every corpus row needs a view label"
        );
        Self::fit_inner(
            data,
            Some(bins),
            Some((labels, n_classes)),
            indices,
            config,
            rng,
            arena,
        )
    }

    fn fit_inner(
        data: &Dataset,
        bins: Option<&BinnedDataset>,
        relabel: Option<(&[usize], usize)>,
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut PinnedRng,
        arena: &mut FitArena,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree on zero samples");
        let n_classes = relabel.map_or_else(|| data.n_classes(), |(_, c)| c).max(2);
        // Exact-size the output arrays from the arena's high-water
        // marks: after the first (warm-up) fit, a tree fit allocates
        // only these seven arrays.
        let mut tree = DecisionTree {
            features: Vec::with_capacity(arena.max_nodes),
            thresholds: Vec::with_capacity(arena.max_nodes),
            lefts: Vec::with_capacity(arena.max_nodes),
            rights: Vec::with_capacity(arena.max_nodes),
            n_samples: Vec::with_capacity(arena.max_nodes),
            impurity_decreases: Vec::with_capacity(arena.max_nodes),
            leaf_counts: Vec::with_capacity(arena.max_leaf_slots),
            n_classes,
        };
        let mut work = std::mem::take(&mut arena.work);
        work.clear();
        work.extend_from_slice(indices);
        {
            let mut ctx = FitContext {
                data,
                bins,
                relabel: relabel.map(|(labels, _)| labels),
                arena: &mut *arena,
            };
            tree.build(&mut ctx, &mut work, 0, config, rng);
        }
        arena.work = work;
        arena.max_nodes = arena.max_nodes.max(tree.features.len());
        arena.max_leaf_slots = arena.max_leaf_slots.max(tree.leaf_counts.len());
        tree
    }

    /// The number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.features.len()
    }

    /// The maximum depth of the tree (root = 0, single leaf = 0).
    ///
    /// Walks iteratively with an explicit stack: a degenerate chain of
    /// splits as deep as the configured `max_depth` must not be able to
    /// overflow the call stack.
    pub fn depth(&self) -> usize {
        let mut deepest = 0usize;
        let mut stack = vec![(0u32, 0usize)];
        while let Some((at, depth)) = stack.pop() {
            let at = at as usize;
            if self.features[at] == LEAF {
                deepest = deepest.max(depth);
            } else {
                stack.push((self.lefts[at], depth + 1));
                stack.push((self.rights[at], depth + 1));
            }
        }
        deepest
    }

    /// The number of classes the tree distinguishes (the width
    /// [`DecisionTree::predict_proba_into`] expects).
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The tree's raw structure-of-arrays content, for binary model
    /// persistence. Round-trips exactly through
    /// [`DecisionTree::from_parts`].
    pub fn to_parts(&self) -> TreeParts {
        TreeParts {
            features: self.features.clone(),
            thresholds: self.thresholds.clone(),
            lefts: self.lefts.clone(),
            rights: self.rights.clone(),
            n_samples: self.n_samples.clone(),
            impurity_decreases: self.impurity_decreases.clone(),
            leaf_counts: self.leaf_counts.clone(),
            n_classes: self.n_classes,
        }
    }

    /// Rebuilds a tree from raw arrays, validating every structural
    /// invariant the predict/walk paths rely on so that *no* input —
    /// however corrupt — can make a later traversal panic or loop:
    /// equal array lengths, split children strictly greater than their
    /// parent index (the preorder layout `fit` emits, which guarantees
    /// acyclicity) and in bounds, split features below `n_features`,
    /// leaf majority classes below `n_classes`, and exactly one
    /// `n_classes`-wide `leaf_counts` block per leaf with every leaf
    /// slot in range.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn from_parts(parts: TreeParts, n_features: usize) -> Result<Self, String> {
        let TreeParts {
            features,
            thresholds,
            lefts,
            rights,
            n_samples,
            impurity_decreases,
            leaf_counts,
            n_classes,
        } = parts;
        let n = features.len();
        if n == 0 {
            return Err("tree has no nodes".into());
        }
        if n_classes == 0 {
            return Err("tree distinguishes zero classes".into());
        }
        if thresholds.len() != n
            || lefts.len() != n
            || rights.len() != n
            || n_samples.len() != n
            || impurity_decreases.len() != n
        {
            return Err(format!("node arrays disagree on length (expected {n})"));
        }
        let n_leaves = features.iter().filter(|&&f| f == LEAF).count();
        if leaf_counts.len() != n_leaves * n_classes {
            return Err(format!(
                "leaf counts hold {} slots for {n_leaves} leaves of {n_classes} classes",
                leaf_counts.len()
            ));
        }
        for (i, &feature) in features.iter().enumerate() {
            if feature == LEAF {
                let slot = lefts[i] as usize;
                if slot >= n_leaves {
                    return Err(format!(
                        "leaf {i} points at count block {slot} of {n_leaves}"
                    ));
                }
                if rights[i] as usize >= n_classes {
                    return Err(format!(
                        "leaf {i} claims majority class {} of {n_classes}",
                        rights[i]
                    ));
                }
            } else {
                if feature as usize >= n_features {
                    return Err(format!("split {i} tests feature {feature} of {n_features}"));
                }
                let (left, right) = (lefts[i] as usize, rights[i] as usize);
                if left <= i || left >= n || right <= i || right >= n {
                    return Err(format!(
                        "split {i} has out-of-preorder children {left}/{right} (n = {n})"
                    ));
                }
            }
        }
        Ok(DecisionTree {
            features,
            thresholds,
            lefts,
            rights,
            n_samples,
            impurity_decreases,
            leaf_counts,
            n_classes,
        })
    }

    /// Predicts the class of a feature row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is shorter than the features the tree was trained
    /// on.
    #[inline]
    pub fn predict(&self, row: &[f64]) -> usize {
        let mut at = 0usize;
        loop {
            let feature = self.features[at];
            if feature == LEAF {
                return self.rights[at] as usize;
            }
            at = if row[feature as usize] <= self.thresholds[at] {
                self.lefts[at]
            } else {
                self.rights[at]
            } as usize;
        }
    }

    /// Per-class probability estimate for a feature row (leaf class
    /// frequencies).
    pub fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n_classes];
        self.predict_proba_into(row, &mut out);
        out
    }

    /// Writes the per-class probability estimate for a feature row into
    /// `out` — the allocation-free twin of
    /// [`DecisionTree::predict_proba`] for per-row queries in hot loops.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.n_classes()`.
    pub fn predict_proba_into(&self, row: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), self.n_classes, "probability buffer width");
        let counts = self.leaf_counts_for(row);
        let total: usize = counts.iter().sum();
        for (slot, &count) in out.iter_mut().zip(counts) {
            *slot = if total == 0 {
                0.0
            } else {
                count as f64 / total as f64
            };
        }
    }

    /// Appends this tree's nodes to a [`crate::packed`] arena, offsetting
    /// child ids by the arena's current length, and returns the root's
    /// arena index.
    pub(crate) fn pack_into(&self, nodes: &mut Vec<crate::packed::PackedNode>) -> u32 {
        let base = nodes.len() as u32;
        if self.features.is_empty() {
            // Defensive: an empty tree cannot predict; pack it as a
            // class-0 leaf so the arena walk stays in bounds.
            nodes.push(crate::packed::PackedNode::leaf(0));
            return base;
        }
        for i in 0..self.features.len() {
            let feature = self.features[i];
            nodes.push(if feature == LEAF {
                crate::packed::PackedNode::leaf(self.rights[i])
            } else {
                crate::packed::PackedNode::split(
                    feature,
                    self.thresholds[i],
                    base + self.lefts[i],
                    base + self.rights[i],
                )
            });
        }
        base
    }

    fn leaf_counts_for(&self, row: &[f64]) -> &[usize] {
        let mut at = 0usize;
        while self.features[at] != LEAF {
            at = if row[self.features[at] as usize] <= self.thresholds[at] {
                self.lefts[at]
            } else {
                self.rights[at]
            } as usize;
        }
        let start = self.lefts[at] as usize * self.n_classes;
        &self.leaf_counts[start..start + self.n_classes]
    }

    /// Builds the subtree over `indices`, returning its root node id.
    ///
    /// All per-node scratch is borrowed from `ctx.arena`; nothing from
    /// the split search outlives the recursion into the children, so
    /// single (not per-depth) buffers suffice and no heap allocation
    /// happens per node.
    fn build(
        &mut self,
        ctx: &mut FitContext<'_>,
        indices: &mut [usize],
        depth: usize,
        config: &TreeConfig,
        rng: &mut PinnedRng,
    ) -> usize {
        let data = ctx.data;
        let relabel = ctx.relabel;
        let n = indices.len();
        {
            let FitArena {
                node_counts: counts,
                node_labels: labels,
                ..
            } = &mut *ctx.arena;
            counts.clear();
            counts.resize(self.n_classes, 0);
            labels.clear();
            labels.extend(indices.iter().map(|&i| {
                let label = label_of(data, relabel, i);
                counts[label] += 1;
                u32::try_from(label).expect("class id fits u32")
            }));
        }
        let pure = ctx.arena.node_counts.iter().filter(|&&c| c > 0).count() <= 1;
        if pure || depth >= config.max_depth || n < config.min_samples_split {
            return self.push_leaf(&ctx.arena.node_counts);
        }
        // Computed before the split search so `node_counts` only needs
        // to survive it, not the recursion.
        let parent_gini = gini(&ctx.arena.node_counts, n);
        // Prepare this depth's constant-feature mask frame: inherit the
        // parent's discoveries (the root starts empty). The second
        // child re-copies the parent frame, so a sibling subtree's
        // discoveries never leak across.
        if ctx.bins.is_some() {
            let words = data.n_features().div_ceil(64);
            let masks = &mut ctx.arena.constant_masks;
            let end = (depth + 1) * words;
            if masks.len() < end {
                masks.resize(end, 0);
            }
            if depth == 0 {
                masks[..words].fill(0);
            } else {
                masks.copy_within((depth - 1) * words..depth * words, depth * words);
            }
        }
        let split = match ctx.bins {
            Some(_) => self.best_split_hist(ctx, indices, depth, config, rng),
            None => self.best_split(ctx, indices, config, rng),
        };
        match split {
            Some((feature, threshold, weighted_child_gini)) => {
                let split_at = partition(data, indices, feature, threshold);
                if split_at < config.min_samples_leaf
                    || n - split_at < config.min_samples_leaf
                    || split_at == 0
                    || split_at == n
                {
                    // The split search reads `node_counts` but never
                    // writes them, so they still describe this node.
                    return self.push_leaf(&ctx.arena.node_counts);
                }
                // Reserve the node id before children so the root is node 0.
                let id = self.push_placeholder();
                let (left_idx, right_idx) = indices.split_at_mut(split_at);
                let left = self.build(ctx, left_idx, depth + 1, config, rng);
                let right = self.build(ctx, right_idx, depth + 1, config, rng);
                self.features[id] = u32::try_from(feature).expect("feature id fits u32");
                self.thresholds[id] = threshold;
                self.lefts[id] = u32::try_from(left).expect("node id fits u32");
                self.rights[id] = u32::try_from(right).expect("node id fits u32");
                self.n_samples[id] = n;
                self.impurity_decreases[id] = (parent_gini - weighted_child_gini).max(0.0);
                id
            }
            None => self.push_leaf(&ctx.arena.node_counts),
        }
    }

    fn push_placeholder(&mut self) -> usize {
        let id = self.features.len();
        self.features.push(LEAF);
        self.thresholds.push(0.0);
        self.lefts.push(0);
        self.rights.push(0);
        self.n_samples.push(0);
        self.impurity_decreases.push(0.0);
        id
    }

    fn push_leaf(&mut self, counts: &[usize]) -> usize {
        let id = self.push_placeholder();
        self.n_samples[id] = counts.iter().sum();
        let leaf_id = self.leaf_counts.len() / self.n_classes;
        self.lefts[id] = u32::try_from(leaf_id).expect("leaf id fits u32");
        self.rights[id] = u32::try_from(argmax(counts)).expect("class id fits u32");
        self.leaf_counts.extend_from_slice(counts);
        id
    }

    /// Finds the `(feature, threshold)` minimizing weighted Gini impurity
    /// over the candidate features, or `None` if no split improves.
    fn best_split(
        &self,
        ctx: &mut FitContext<'_>,
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut PinnedRng,
    ) -> Option<(usize, f64, f64)> {
        let data = ctx.data;
        let FitArena {
            candidates,
            node_counts,
            node_labels,
            left_counts,
            right_counts,
            column,
            ..
        } = &mut *ctx.arena;
        let n_features = data.n_features();
        candidates.clear();
        candidates.extend(0..n_features);
        let subsample = config.n_candidate_features.is_some();
        let limit = match config.n_candidate_features {
            Some(k) => k.max(1).min(n_features),
            None => n_features,
        };
        // Take the best split even at zero Gini gain (as CART splitters
        // do): greedy strict-improvement search cannot learn XOR-shaped
        // concepts whose first split is gain-free. Purity, depth and
        // min-samples rules bound the recursion instead.
        let mut best: Option<(f64, usize, f64)> = None;
        // Constant features do not count against the candidate budget —
        // like scikit-learn, keep drawing until `limit` splittable
        // features were examined or the feature set is exhausted.
        let mut examined = 0usize;
        // `node_counts` already holds this node's class counts (read-only
        // here: `build` reuses them after the search).
        let parent_counts: &[usize] = node_counts;
        left_counts.clear();
        left_counts.resize(self.n_classes, 0);
        right_counts.clear();
        right_counts.resize(self.n_classes, 0);
        for slot in 0..n_features {
            if examined >= limit {
                break;
            }
            // The v2 candidate draw: one `sample_step` per *inspected*
            // slot — the lazy form of `PinnedRng::sample_k`, consuming
            // exactly one pinned draw per slot actually looked at (the
            // v1 contract shuffled the whole pool up front). Constant
            // features still `continue` without touching `examined`, so
            // they cost a draw but never a budget slot — and because
            // every fit path makes identical constant-skip decisions,
            // the draw streams stay bit-identical across paths.
            let feature = if subsample {
                rng.sample_step(candidates, slot)
            } else {
                candidates[slot]
            };
            column.clear();
            column.extend(
                indices
                    .iter()
                    .zip(node_labels.iter())
                    .map(|(&i, &label)| (data.row(i)[feature], label as usize)),
            );
            column.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite features"));
            let total = column.len();
            if column[0].0 == column[total - 1].0 {
                continue; // constant feature: no threshold exists
            }
            examined += 1;
            left_counts.fill(0);
            right_counts.copy_from_slice(parent_counts);
            for pos in 0..total - 1 {
                let (value, label) = column[pos];
                left_counts[label] += 1;
                right_counts[label] -= 1;
                let next_value = column[pos + 1].0;
                if value == next_value {
                    continue; // cannot split between equal values
                }
                let n_left = pos + 1;
                let n_right = total - n_left;
                let weighted = (n_left as f64 * gini(left_counts, n_left)
                    + n_right as f64 * gini(right_counts, n_right))
                    / total as f64;
                if best.is_none_or(|(g, _, _)| weighted + 1e-12 < g) {
                    best = Some((weighted, feature, (value + next_value) / 2.0));
                }
            }
        }
        best.map(|(weighted, feature, threshold)| (feature, threshold, weighted))
    }

    /// The histogram twin of [`DecisionTree::best_split`]: instead of
    /// sorting the node's column per candidate feature, count the node's
    /// rows into per-bin class histograms (bins = the feature's distinct
    /// values, pre-computed in `bins`) and sweep the bins cumulatively.
    ///
    /// The sweep probes exactly the thresholds the sorted scan would —
    /// midpoints between adjacent distinct values *present in the node*
    /// (empty bins between them are skipped, so the midpoint spans them
    /// just as the sort would) — with identical left/right class counts,
    /// in the same ascending order, under the same strict-improvement
    /// tolerance. Constant-in-node features are skipped without counting
    /// against the candidate budget, exactly like the exact scan, so the
    /// RNG stream and the returned split are bit-identical.
    fn best_split_hist(
        &self,
        ctx: &mut FitContext<'_>,
        indices: &[usize],
        depth: usize,
        config: &TreeConfig,
        rng: &mut PinnedRng,
    ) -> Option<(usize, f64, f64)> {
        // Binary problems (every one-vs-rest bank classifier) take the
        // packed-counter fill — same counts, same splits, fewer ops.
        if self.n_classes == 2 && indices.len() < (1 << 16) {
            return self.best_split_hist_binary(ctx, indices, depth, config, rng);
        }
        let data = ctx.data;
        let bins = ctx.bins.expect("histogram split search needs bins");
        let FitArena {
            candidates,
            node_counts,
            node_labels,
            left_counts,
            right_counts,
            hist: scratch,
            constant_masks,
            ..
        } = &mut *ctx.arena;
        let n_features = data.n_features();
        candidates.clear();
        candidates.extend(0..n_features);
        let subsample = config.n_candidate_features.is_some();
        let limit = match config.n_candidate_features {
            Some(k) => k.max(1).min(n_features),
            None => n_features,
        };
        let words = n_features.div_ceil(64);
        let mask = &mut constant_masks[depth * words..(depth + 1) * words];
        let total = indices.len();
        let n_classes = self.n_classes;
        // `node_counts` already holds this node's class counts (read-only
        // here: `build` reuses them after the search).
        let parent_counts: &[usize] = node_counts;
        let mut best: Option<(f64, usize, f64)> = None;
        let mut examined = 0usize;
        left_counts.clear();
        left_counts.resize(n_classes, 0);
        right_counts.clear();
        right_counts.resize(n_classes, 0);
        for slot in 0..n_features {
            if examined >= limit {
                break;
            }
            // One pinned `sample_step` draw per inspected slot; see
            // `best_split` — the skip decisions below match the exact
            // scan's, so the draw stream is identical across paths.
            let feature = if subsample {
                rng.sample_step(candidates, slot)
            } else {
                candidates[slot]
            };
            let n_bins = bins.n_bins(feature);
            if n_bins <= 1 {
                continue; // globally constant feature: no threshold exists
            }
            // A feature constant *within the node* does not count
            // against the candidate budget — the exact scan's
            // `column[0] == column[total - 1]` check. Ancestor-constant
            // features skip via the mask; otherwise an early-exit scan
            // for a second distinct code decides (and records) it,
            // without paying for a histogram fill.
            let bit = 1u64 << (feature % 64);
            if mask[feature / 64] & bit != 0 {
                continue;
            }
            let codes = bins.column(feature);
            let first = codes[indices[0]];
            if indices[1..].iter().all(|&i| codes[i] == first) {
                mask[feature / 64] |= bit;
                continue;
            }
            examined += 1;
            let hist = scratch.zeroed(n_bins, n_classes);
            for (&i, &label) in indices.iter().zip(node_labels.iter()) {
                hist[codes[i] as usize * n_classes + label as usize] += 1;
            }
            let hist: &[u32] = hist;
            let values = bins.bin_values(feature);
            left_counts.fill(0);
            right_counts.copy_from_slice(parent_counts);
            let mut n_left = 0usize;
            let mut prev_value = 0.0f64;
            let mut started = false;
            for b in 0..n_bins {
                let bin = &hist[b * n_classes..(b + 1) * n_classes];
                let bin_total: usize = bin.iter().map(|&c| c as usize).sum();
                if bin_total == 0 {
                    continue;
                }
                let value = values[b];
                if started {
                    // Left holds every present value below `value`; the
                    // candidate threshold is the same midpoint the sorted
                    // scan evaluates between adjacent present values.
                    let n_right = total - n_left;
                    let weighted = (n_left as f64 * gini(left_counts, n_left)
                        + n_right as f64 * gini(right_counts, n_right))
                        / total as f64;
                    if best.is_none_or(|(g, _, _)| weighted + 1e-12 < g) {
                        best = Some((weighted, feature, (prev_value + value) / 2.0));
                    }
                }
                for (class, &count) in bin.iter().enumerate() {
                    left_counts[class] += count as usize;
                    right_counts[class] -= count as usize;
                }
                n_left += bin_total;
                prev_value = value;
                started = true;
            }
        }
        best.map(|(weighted, feature, threshold)| (feature, threshold, weighted))
    }

    /// [`DecisionTree::best_split_hist`] specialized to two classes —
    /// the shape of every one-vs-rest bank classifier, and the hottest
    /// loop of bank training.
    ///
    /// Each bin's two class counts are packed into one `u32` (total in
    /// the low half, class-1 count in the high half; sound because the
    /// caller guarantees `indices.len() < 2^16`), so the per-row fill is
    /// a single gather + increment over a half-sized histogram. The
    /// counts unpacked in the sweep are the same integers the generic
    /// fill produces, the sweep feeds them through the same [`gini`]
    /// arithmetic via the same `left/right_counts` buffers, and the RNG
    /// consumption is identical — so the chosen split is bit-identical
    /// (covered by the same differential proptests).
    fn best_split_hist_binary(
        &self,
        ctx: &mut FitContext<'_>,
        indices: &[usize],
        depth: usize,
        config: &TreeConfig,
        rng: &mut PinnedRng,
    ) -> Option<(usize, f64, f64)> {
        let data = ctx.data;
        let bins = ctx.bins.expect("histogram split search needs bins");
        let FitArena {
            candidates,
            node_counts,
            node_labels,
            left_counts,
            right_counts,
            hist: scratch,
            constant_masks,
            ..
        } = &mut *ctx.arena;
        let n_features = data.n_features();
        candidates.clear();
        candidates.extend(0..n_features);
        let subsample = config.n_candidate_features.is_some();
        let limit = match config.n_candidate_features {
            Some(k) => k.max(1).min(n_features),
            None => n_features,
        };
        let words = n_features.div_ceil(64);
        let mask = &mut constant_masks[depth * words..(depth + 1) * words];
        let total = indices.len();
        let parent_counts: &[usize] = node_counts;
        let mut best: Option<(f64, usize, f64)> = None;
        let mut examined = 0usize;
        left_counts.clear();
        left_counts.resize(2, 0);
        right_counts.clear();
        right_counts.resize(2, 0);
        for slot in 0..n_features {
            if examined >= limit {
                break;
            }
            // One pinned `sample_step` draw per inspected slot; see
            // `best_split`.
            let feature = if subsample {
                rng.sample_step(candidates, slot)
            } else {
                candidates[slot]
            };
            let n_bins = bins.n_bins(feature);
            if n_bins <= 1 {
                continue; // globally constant feature: no threshold exists
            }
            // Constant-in-node features do not count against the
            // candidate budget, like the exact scan; see
            // `best_split_hist` for the mask + early-exit scheme.
            let bit = 1u64 << (feature % 64);
            if mask[feature / 64] & bit != 0 {
                continue;
            }
            let codes = bins.column(feature);
            let first = codes[indices[0]];
            if indices[1..].iter().all(|&i| codes[i] == first) {
                mask[feature / 64] |= bit;
                continue;
            }
            examined += 1;
            let hist = scratch.zeroed(n_bins, 1);
            for (&i, &label) in indices.iter().zip(node_labels.iter()) {
                hist[codes[i] as usize] += 1 + (label << 16);
            }
            let hist: &[u32] = hist;
            let values = bins.bin_values(feature);
            left_counts.fill(0);
            right_counts.copy_from_slice(parent_counts);
            let mut n_left = 0usize;
            let mut prev_value = 0.0f64;
            let mut started = false;
            for (b, &packed) in hist.iter().enumerate() {
                if packed == 0 {
                    continue;
                }
                let bin_total = (packed & 0xFFFF) as usize;
                let ones = (packed >> 16) as usize;
                let value = values[b];
                if started {
                    let n_right = total - n_left;
                    let weighted = (n_left as f64 * gini(left_counts, n_left)
                        + n_right as f64 * gini(right_counts, n_right))
                        / total as f64;
                    if best.is_none_or(|(g, _, _)| weighted + 1e-12 < g) {
                        best = Some((weighted, feature, (prev_value + value) / 2.0));
                    }
                }
                left_counts[0] += bin_total - ones;
                left_counts[1] += ones;
                right_counts[0] -= bin_total - ones;
                right_counts[1] -= ones;
                n_left += bin_total;
                prev_value = value;
                started = true;
            }
        }
        best.map(|(weighted, feature, threshold)| (feature, threshold, weighted))
    }

    /// Gini (mean-decrease-in-impurity) feature importances, normalized
    /// to sum to 1 over `n_features` (all zeros for a single-leaf tree).
    pub fn feature_importances(&self, n_features: usize) -> Vec<f64> {
        let mut importances = vec![0.0; n_features];
        if self.features.first().is_none_or(|&f| f == LEAF) {
            return importances; // single-leaf tree: no split anywhere
        }
        let root_samples = self.n_samples[0] as f64;
        for at in 0..self.features.len() {
            if self.features[at] != LEAF {
                importances[self.features[at] as usize] +=
                    self.n_samples[at] as f64 / root_samples * self.impurity_decreases[at];
            }
        }
        let total: f64 = importances.iter().sum();
        if total > 0.0 {
            for value in &mut importances {
                *value /= total;
            }
        }
        importances
    }
}

/// Gini impurity of a class-count vector over `total` samples.
fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let sum_sq: f64 = counts
        .iter()
        .map(|&c| {
            let p = c as f64 / total as f64;
            p * p
        })
        .sum();
    1.0 - sum_sq
}

/// Partitions `indices` in place so rows with `feature <= threshold` come
/// first; returns the boundary position.
fn partition(data: &Dataset, indices: &mut [usize], feature: usize, threshold: f64) -> usize {
    let mut boundary = 0;
    for i in 0..indices.len() {
        if data.row(indices[i])[feature] <= threshold {
            indices.swap(boundary, i);
            boundary += 1;
        }
    }
    boundary
}

/// Index of the maximum element (first on ties).
pub(crate) fn argmax(values: &[usize]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> PinnedRng {
        PinnedRng::from_key(42, 0, 0)
    }

    fn xor_dataset() -> Dataset {
        let mut data = Dataset::new(2);
        for _ in 0..10 {
            data.push(&[0.0, 0.0], 0);
            data.push(&[1.0, 1.0], 0);
            data.push(&[0.0, 1.0], 1);
            data.push(&[1.0, 0.0], 1);
        }
        data
    }

    #[test]
    fn learns_xor() {
        let tree = DecisionTree::fit(&xor_dataset(), &TreeConfig::default(), &mut rng());
        assert_eq!(tree.predict(&[0.0, 0.0]), 0);
        assert_eq!(tree.predict(&[1.0, 1.0]), 0);
        assert_eq!(tree.predict(&[0.0, 1.0]), 1);
        assert_eq!(tree.predict(&[1.0, 0.0]), 1);
        assert!(tree.depth() >= 2, "xor needs at least two levels");
    }

    #[test]
    fn pure_node_is_single_leaf() {
        let mut data = Dataset::new(1);
        for i in 0..5 {
            data.push(&[i as f64], 1);
        }
        let tree = DecisionTree::fit(&data, &TreeConfig::default(), &mut rng());
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.predict(&[99.0]), 1);
    }

    #[test]
    fn max_depth_zero_gives_majority_vote() {
        let mut data = Dataset::new(1);
        data.push(&[0.0], 0);
        data.push(&[1.0], 1);
        data.push(&[2.0], 1);
        let config = TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&data, &config, &mut rng());
        assert_eq!(tree.predict(&[0.0]), 1, "majority class");
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let tree = DecisionTree::fit(&xor_dataset(), &TreeConfig::default(), &mut rng());
        let proba = tree.predict_proba(&[0.0, 1.0]);
        let sum: f64 = proba.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(proba[1] > proba[0]);
    }

    #[test]
    fn predict_agrees_with_proba_argmax() {
        let tree = DecisionTree::fit(&xor_dataset(), &TreeConfig::default(), &mut rng());
        for row in [[0.0, 0.0], [1.0, 1.0], [0.0, 1.0], [1.0, 0.0]] {
            let proba = tree.predict_proba(&row);
            let by_proba = proba
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(&a.0)))
                .map(|(i, _)| i)
                .unwrap();
            assert_eq!(
                tree.predict(&row),
                by_proba,
                "cached majority class matches"
            );
        }
    }

    #[test]
    fn min_samples_leaf_respected() {
        let mut data = Dataset::new(1);
        data.push(&[0.0], 0);
        data.push(&[1.0], 1);
        let config = TreeConfig {
            min_samples_leaf: 2,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&data, &config, &mut rng());
        assert_eq!(tree.node_count(), 1, "split would create 1-sample leaves");
    }

    #[test]
    fn identical_features_cannot_split() {
        let mut data = Dataset::new(2);
        data.push(&[1.0, 1.0], 0);
        data.push(&[1.0, 1.0], 1);
        let tree = DecisionTree::fit(&data, &TreeConfig::default(), &mut rng());
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn feature_subsampling_still_learns_separable_data() {
        let mut data = Dataset::new(4);
        for i in 0..50 {
            let x = i as f64;
            data.push(&[0.0, 0.0, x, 0.0], usize::from(x > 25.0));
        }
        let config = TreeConfig {
            n_candidate_features: Some(2),
            ..TreeConfig::default()
        };
        // With 2-of-4 candidates per split the informative feature is
        // found after at most a few levels.
        let tree = DecisionTree::fit(&data, &config, &mut rng());
        assert_eq!(tree.predict(&[0.0, 0.0, 40.0, 0.0]), 1);
        assert_eq!(tree.predict(&[0.0, 0.0, 10.0, 0.0]), 0);
    }

    #[test]
    fn importances_identify_the_informative_feature() {
        let mut data = Dataset::new(3);
        for i in 0..60 {
            let x = i as f64;
            // Only feature 1 is informative.
            data.push(&[(i % 7) as f64, x, 3.0], usize::from(x > 30.0));
        }
        let tree = DecisionTree::fit(&data, &TreeConfig::default(), &mut rng());
        let importances = tree.feature_importances(3);
        assert!((importances.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(
            importances[1] > 0.9,
            "feature 1 should dominate: {importances:?}"
        );
    }

    #[test]
    fn single_leaf_tree_has_zero_importances() {
        let mut data = Dataset::new(2);
        data.push(&[1.0, 2.0], 1);
        data.push(&[3.0, 4.0], 1);
        let tree = DecisionTree::fit(&data, &TreeConfig::default(), &mut rng());
        assert_eq!(tree.feature_importances(2), vec![0.0, 0.0]);
    }

    #[test]
    fn argmax_prefers_first_on_tie() {
        assert_eq!(argmax(&[3, 3, 1]), 0);
        assert_eq!(argmax(&[1, 5, 5]), 1);
        assert_eq!(argmax(&[]), 0);
    }
}
