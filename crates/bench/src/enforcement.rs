//! The enforcement-overhead experiments (Tables V–VI, Fig. 6): latency
//! per device pair, CPU versus concurrent flows, memory versus cached
//! rules.

use std::time::Duration;

use sentinel_netproto::MacAddr;
use sentinel_sdn::netem::GatewayEmulator;
use sentinel_sdn::stats::Summary;
use sentinel_sdn::topology::Topology;
use sentinel_sdn::{EnforcementModule, EnforcementRule};

/// One Table V row: a source/destination pair measured with and without
/// filtering.
#[derive(Debug, Clone)]
pub struct LatencyRow {
    /// Source host name.
    pub source: String,
    /// Destination host name.
    pub destination: String,
    /// Latency with filtering (ms).
    pub filtering: Summary,
    /// Latency without filtering (ms).
    pub no_filtering: Summary,
}

impl LatencyRow {
    /// Filtering overhead in percent (Table VI presentation).
    pub fn overhead_percent(&self) -> f64 {
        self.filtering.percent_over(&self.no_filtering)
    }
}

/// Measures the Table V latency matrix on the Fig. 4 lab topology:
/// each wireless device to `D4`, `Slocal` and `Sremote`, `iterations`
/// pings per pair (paper: 15).
pub fn latency_table(iterations: usize, concurrent_flows: usize, seed: u64) -> Vec<LatencyRow> {
    let lab = Topology::lab();
    let mut emulator = GatewayEmulator::new(seed);
    let sources = ["D1", "D2", "D3"];
    let destinations = ["D4", "Slocal", "Sremote"];
    let mut rows = Vec::new();
    for source in sources {
        for destination in destinations {
            let src = lab.host(source).expect("lab host");
            let dst = lab.host(destination).expect("lab host");
            let path = lab.path_kind(src, dst);
            let measure = |emulator: &mut GatewayEmulator, filtering: bool| {
                let samples: Vec<Duration> = (0..iterations)
                    .map(|_| emulator.measure_latency(src, dst, path, filtering, concurrent_flows))
                    .collect();
                Summary::of_durations_ms(&samples)
            };
            let filtering = measure(&mut emulator, true);
            let no_filtering = measure(&mut emulator, false);
            rows.push(LatencyRow {
                source: source.to_owned(),
                destination: destination.to_owned(),
                filtering,
                no_filtering,
            });
        }
    }
    rows
}

/// One point of the Fig. 6a/6b sweeps.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Concurrent flows at this point.
    pub flows: usize,
    /// Measurement with filtering.
    pub filtering: Summary,
    /// Measurement without filtering.
    pub no_filtering: Summary,
}

/// Fig. 6a: device-to-device latency versus concurrent flows.
pub fn latency_vs_flows(flow_points: &[usize], iterations: usize, seed: u64) -> Vec<LoadPoint> {
    let lab = Topology::lab();
    let mut emulator = GatewayEmulator::new(seed);
    let src = lab.host("D1").expect("lab host");
    let dst = lab.host("D2").expect("lab host");
    let path = lab.path_kind(src, dst);
    flow_points
        .iter()
        .map(|&flows| {
            let mut sample = |filtering: bool| {
                let samples: Vec<Duration> = (0..iterations)
                    .map(|_| emulator.measure_latency(src, dst, path, filtering, flows))
                    .collect();
                Summary::of_durations_ms(&samples)
            };
            LoadPoint {
                flows,
                filtering: sample(true),
                no_filtering: sample(false),
            }
        })
        .collect()
}

/// Fig. 6b: gateway CPU utilization versus concurrent flows.
pub fn cpu_vs_flows(flow_points: &[usize], iterations: usize, seed: u64) -> Vec<LoadPoint> {
    let mut emulator = GatewayEmulator::new(seed);
    flow_points
        .iter()
        .map(|&flows| {
            let mut sample = |filtering: bool| {
                let samples: Vec<f64> = (0..iterations)
                    .map(|_| emulator.measure_cpu(flows, filtering))
                    .collect();
                Summary::of(&samples)
            };
            LoadPoint {
                flows,
                filtering: sample(true),
                no_filtering: sample(false),
            }
        })
        .collect()
}

/// One point of the Fig. 6c memory sweep.
#[derive(Debug, Clone)]
pub struct MemoryPoint {
    /// Enforcement rules cached.
    pub rules: usize,
    /// Gateway memory with filtering (MB).
    pub filtering_mb: f64,
    /// Gateway memory without filtering (MB).
    pub no_filtering_mb: f64,
    /// Actual bytes of the populated in-process rule cache (ground
    /// truth for the model's linearity).
    pub cache_bytes: usize,
}

/// Fig. 6c: memory consumption versus enforcement-rule count. Each point
/// actually populates the rule cache so the in-process footprint is
/// measured alongside the calibrated process-level model.
pub fn memory_vs_rules(rule_points: &[usize], seed: u64) -> Vec<MemoryPoint> {
    let mut emulator = GatewayEmulator::new(seed);
    rule_points
        .iter()
        .map(|&rules| {
            let mut module = EnforcementModule::new();
            for i in 0..rules {
                let mac = MacAddr::new([
                    0x02,
                    0xff,
                    (i >> 24) as u8,
                    (i >> 16) as u8,
                    (i >> 8) as u8,
                    i as u8,
                ]);
                module.install_rule(EnforcementRule::strict(mac));
            }
            MemoryPoint {
                rules,
                filtering_mb: emulator.measure_memory_mb(rules, true),
                no_filtering_mb: emulator.measure_memory_mb(rules, false),
                cache_bytes: module.cache().memory_bytes(),
            }
        })
        .collect()
}

/// Aggregate overheads for Table VI.
#[derive(Debug, Clone)]
pub struct OverheadReport {
    /// D1–D2 latency overhead (%).
    pub d1d2_latency: f64,
    /// D1–D3 latency overhead (%).
    pub d1d3_latency: f64,
    /// CPU utilization overhead (percentage points→relative %).
    pub cpu: f64,
    /// Memory overhead (%).
    pub memory: f64,
}

/// Computes the Table VI overhead summary.
pub fn overhead(iterations: usize, seed: u64) -> OverheadReport {
    let lab = Topology::lab();
    let mut emulator = GatewayEmulator::new(seed);
    let pair = |emulator: &mut GatewayEmulator, a: &str, b: &str| {
        let src = lab.host(a).expect("host");
        let dst = lab.host(b).expect("host");
        let path = lab.path_kind(src, dst);
        let run = |emulator: &mut GatewayEmulator, filtering: bool| {
            let samples: Vec<Duration> = (0..iterations)
                .map(|_| emulator.measure_latency(src, dst, path, filtering, 20))
                .collect();
            Summary::of_durations_ms(&samples)
        };
        let with = run(emulator, true);
        let without = run(emulator, false);
        with.percent_over(&without)
    };
    let d1d2_latency = pair(&mut emulator, "D1", "D2");
    let d1d3_latency = pair(&mut emulator, "D1", "D3");
    let cpu_with = Summary::of(
        &(0..iterations)
            .map(|_| emulator.measure_cpu(50, true))
            .collect::<Vec<_>>(),
    );
    let cpu_without = Summary::of(
        &(0..iterations)
            .map(|_| emulator.measure_cpu(50, false))
            .collect::<Vec<_>>(),
    );
    // Memory overhead for a realistically sized home deployment
    // (~100 devices ⇒ ~100 rules).
    let mem_with = emulator.measure_memory_mb(100, true);
    let mem_without = emulator.measure_memory_mb(100, false);
    OverheadReport {
        d1d2_latency,
        d1d3_latency,
        cpu: cpu_with.percent_over(&cpu_without),
        memory: (mem_with - mem_without) / mem_without * 100.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_table_has_nine_rows_with_small_overhead() {
        let rows = latency_table(15, 20, 7);
        assert_eq!(rows.len(), 9);
        for row in &rows {
            assert!(
                row.overhead_percent() < 15.0,
                "{}-{} overhead {}%",
                row.source,
                row.destination,
                row.overhead_percent()
            );
            assert!(row.filtering.mean > 5.0, "latency magnitudes in ms");
        }
    }

    #[test]
    fn latency_flat_in_flows() {
        let points = latency_vs_flows(&[20, 150], 40, 8);
        let low = points[0].filtering.mean;
        let high = points[1].filtering.mean;
        assert!(
            (high - low).abs() < 2.0,
            "latency increase {low} -> {high} must be insignificant"
        );
    }

    #[test]
    fn memory_sweep_is_linear() {
        let points = memory_vs_rules(&[0, 10_000, 20_000], 9);
        assert!(points[2].filtering_mb > 80.0);
        assert!(points[2].no_filtering_mb < 10.0);
        assert!(points[2].cache_bytes > points[1].cache_bytes);
    }

    #[test]
    fn overhead_within_table_vi_regime() {
        let report = overhead(60, 10);
        assert!(report.d1d2_latency.abs() < 10.0);
        assert!(report.cpu.abs() < 5.0);
        assert!(report.memory > 0.0);
    }
}
