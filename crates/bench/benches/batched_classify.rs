//! Batched vs per-item stage-1 classification.
//!
//! The streaming runtime classifies every completion of an ingest tick
//! as one batch: forests outermost, fingerprints innermost, so each
//! packed arena stays cache-resident while the whole batch walks it
//! (`Identifier::classify_batch`). Per-item classification cycles all
//! 27 arenas per fingerprint instead. Results are bit-identical
//! (asserted in sentinel-core's tests); this measures only the
//! memory-access effect, per batch size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sentinel_core::{FingerprintDataset, Identifier, IdentifierConfig};
use sentinel_devicesim::{catalog, Testbed};
use sentinel_fingerprint::{extract, Fingerprint, FixedFingerprint};

fn holdout_fingerprints(n: usize) -> Vec<(Fingerprint, FixedFingerprint)> {
    let devices = catalog();
    let testbed = Testbed::new(77);
    (0..n)
        .map(|i| {
            let device = &devices[i % devices.len()];
            let trace = testbed.setup_run(&device.profile, (i / devices.len()) as u64);
            let full = extract(&trace.packets);
            let fixed = FixedFingerprint::from_fingerprint(&full);
            (full, fixed)
        })
        .collect()
}

fn batched_classify(c: &mut Criterion) {
    let devices = catalog();
    let dataset = FingerprintDataset::collect(&devices, 10, 42);
    let identifier = Identifier::train(&dataset, &IdentifierConfig::default());
    let probes = holdout_fingerprints(256);

    let mut group = c.benchmark_group("batched_classify");
    for batch in [8usize, 64, 256] {
        let fixed: Vec<&FixedFingerprint> = probes[..batch].iter().map(|(_, f)| f).collect();
        // The two paths must agree before we time them.
        let per_item: Vec<Vec<usize>> = fixed.iter().map(|f| identifier.classify(f)).collect();
        assert_eq!(per_item, identifier.classify_batch(&fixed));
        group.bench_with_input(BenchmarkId::new("sequential", batch), &fixed, |b, fixed| {
            b.iter(|| -> Vec<Vec<usize>> { fixed.iter().map(|f| identifier.classify(f)).collect() })
        });
        group.bench_with_input(BenchmarkId::new("batched", batch), &fixed, |b, fixed| {
            b.iter(|| identifier.classify_batch(fixed))
        });
    }
    group.finish();
}

fn batched_identify(c: &mut Criterion) {
    // End-to-end identification of one ingest tick's completions:
    // batched stage 1 + sequential stage 2 against the fully per-item
    // path (stage 2 dominates only for discriminated fingerprints).
    let devices = catalog();
    let dataset = FingerprintDataset::collect(&devices, 10, 42);
    let identifier = Identifier::train(&dataset, &IdentifierConfig::default());
    let probes = holdout_fingerprints(64);
    let items: Vec<(&Fingerprint, &FixedFingerprint)> =
        probes.iter().map(|(full, fixed)| (full, fixed)).collect();

    let mut group = c.benchmark_group("batched_identify");
    group.bench_function("sequential_64", |b| {
        b.iter(|| -> Vec<_> {
            items
                .iter()
                .map(|&(full, fixed)| identifier.identify(full, fixed))
                .collect()
        })
    });
    group.bench_function("batched_64", |b| {
        b.iter(|| identifier.identify_batch(&items))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = batched_classify, batched_identify
}
criterion_main!(benches);
