//! Counting-allocator audit of the pooled fleet tick path: once a
//! worker's [`StreamRuntime`] is warm — buckets, shard-id scratch and
//! the deferred completion buffer sized by a first pass — steady-state
//! [`StreamRuntime::ingest_frames_deferred`] ticks over already-
//! onboarded devices (the ignored-frame path) and empty ticks must
//! perform **zero** heap allocations. This pins the per-worker pooling
//! contract of the fleet's lockstep tick: a gateway that has settled
//! its homes' devices streams tick after tick without touching the
//! allocator.
//!
//! Lives in its own integration-test binary because a
//! `#[global_allocator]` is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use sentinel_core::{FingerprintDataset, IoTSecurityService, ServiceConfig};
use sentinel_devicesim::{catalog, Testbed};
use sentinel_stream::{StreamConfig, StreamRuntime};

/// Passes everything through to [`System`], counting every allocation
/// and reallocation (deallocations are free and uncounted).
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_deferred_ticks_do_not_allocate() {
    let devices: Vec<_> = catalog().into_iter().take(3).collect();
    let dataset = FingerprintDataset::collect(&devices, 8, 5);
    let service = IoTSecurityService::train(&dataset, &ServiceConfig::default());
    let mut runtime = StreamRuntime::with_config(
        &service,
        StreamConfig {
            max_sessions: 8,
            shards: 2,
            threads: 1,
            ..StreamConfig::default()
        },
    );

    let testbed = Testbed::new(42);
    let trace = testbed.setup_run(&devices[0].profile, 0);
    let frames = trace.frames();
    let mut completions = Vec::new();

    // Warm-up: complete the device's setup (sizing buckets, shard-id
    // scratch and the completion buffer), then flush so no session is
    // left in flight and the MAC is recorded as onboarded.
    runtime.ingest_frames_deferred(&frames, &mut completions);
    runtime.flush_deferred(&mut completions);
    assert_eq!(completions.len(), 1, "setup trace must complete once");
    assert_eq!(completions[0].mac, trace.mac);
    completions.clear();

    // Steady state: replaying the onboarded device's frames (the
    // ignored path) and empty ticks must not touch the heap.
    let before = allocations();
    for _ in 0..8 {
        let appended = runtime.ingest_frames_deferred(&frames, &mut completions);
        assert_eq!(appended, 0, "onboarded device must not re-complete");
        let empty = runtime.ingest_frames_deferred(&[], &mut completions);
        assert_eq!(empty, 0);
    }
    let spent = allocations() - before;
    assert_eq!(
        spent, 0,
        "deferred ingest allocated {spent} times over 16 steady-state ticks"
    );

    // The ignored path still counts: every replayed frame is observed.
    assert_eq!(
        runtime.stats().packets_in,
        (frames.len() * 9) as u64,
        "replayed frames must be counted as ingested"
    );
}
