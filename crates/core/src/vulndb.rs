//! Vulnerability assessment (Sect. III-B).
//!
//! The paper consults repositories like the CVE database for reports
//! about an identified device-type: types with known vulnerabilities get
//! isolation level *restricted*, clean types get *trusted*, unknown
//! types get *strict*. The data source is pluggable behind
//! [`VulnerabilityDatabase`]; [`StaticVulnDb`] is an offline store
//! seeded with synthetic records standing in for the live CVE feed.

use std::collections::{HashMap, HashSet};
use std::net::IpAddr;

use serde::{Deserialize, Serialize};

use sentinel_sdn::IsolationLevel;

/// A vulnerability record (a CVE entry, a pentest finding, or a
/// crowdsourced incident report).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CveRecord {
    /// Identifier, e.g. `CVE-2016-10401`.
    pub id: String,
    /// One-line summary.
    pub summary: String,
    /// CVSS-style severity in `[0, 10]`.
    pub severity: f64,
}

/// A queryable source of per-device-type vulnerability intelligence.
pub trait VulnerabilityDatabase {
    /// Vulnerability records known for `device_type`.
    fn lookup(&self, device_type: &str) -> &[CveRecord];

    /// Remote endpoints the vendor's cloud service uses, offered as the
    /// whitelist when the type must be restricted.
    fn vendor_endpoints(&self, device_type: &str) -> &[IpAddr];

    /// Whether the device-type has an external communication channel the
    /// Security Gateway cannot control (Bluetooth, LTE, proprietary
    /// sub-GHz radio). For such devices network isolation is
    /// insufficient — the paper's Sect. III-C.3 mandates notifying the
    /// user to physically remove a vulnerable unit.
    fn has_uncontrollable_channel(&self, device_type: &str) -> bool {
        let _ = device_type;
        false
    }

    /// The user-notification text for a vulnerable device that cannot be
    /// contained by isolation alone, or `None` when isolation suffices.
    fn removal_notice(&self, device_type: Option<&str>) -> Option<String> {
        let name = device_type?;
        if !self.lookup(name).is_empty() && self.has_uncontrollable_channel(name) {
            Some(format!(
                "device-type {name} has known vulnerabilities and an external \
                 communication channel the gateway cannot control; remove the \
                 device from the network"
            ))
        } else {
            None
        }
    }

    /// Maps an identification result to an isolation level (Fig. 3):
    /// unknown type ⇒ strict; known vulnerabilities ⇒ restricted; clean
    /// ⇒ trusted.
    fn assess(&self, device_type: Option<&str>) -> IsolationLevel {
        match device_type {
            None => IsolationLevel::Strict,
            Some(name) => {
                if self.lookup(name).is_empty() {
                    IsolationLevel::Trusted
                } else {
                    IsolationLevel::Restricted
                }
            }
        }
    }
}

/// An offline vulnerability store.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StaticVulnDb {
    records: HashMap<String, Vec<CveRecord>>,
    endpoints: HashMap<String, Vec<IpAddr>>,
    uncontrollable: HashSet<String>,
}

impl StaticVulnDb {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// A store pre-seeded with synthetic advisories for the device-types
    /// the 2016-era press reported as vulnerable, mirroring the kind of
    /// assessment the paper's IoTSSP would produce over its Table II
    /// fleet.
    pub fn with_known_iot_advisories() -> Self {
        let mut db = StaticVulnDb::new();
        db.add_record(
            "EdimaxCam",
            CveRecord {
                id: "SENTINEL-2016-0001".into(),
                summary: "unauthenticated remote configuration disclosure".into(),
                severity: 7.5,
            },
        );
        db.add_record(
            "EdnetCam",
            CveRecord {
                id: "SENTINEL-2016-0002".into(),
                summary: "hard-coded credentials in web interface".into(),
                severity: 9.8,
            },
        );
        db.add_record(
            "iKettle2",
            CveRecord {
                id: "SENTINEL-2016-0003".into(),
                summary: "plaintext WiFi PSK disclosure over local socket".into(),
                severity: 8.1,
            },
        );
        db.add_record(
            "SmarterCoffee",
            CveRecord {
                id: "SENTINEL-2016-0004".into(),
                summary: "unauthenticated firmware update channel".into(),
                severity: 8.8,
            },
        );
        db.add_record(
            "D-LinkCam",
            CveRecord {
                id: "SENTINEL-2016-0005".into(),
                summary: "command injection in cloud registration".into(),
                severity: 9.1,
            },
        );
        // Types with radios the gateway cannot see (Table II "Other"
        // column: proprietary sub-GHz links).
        db.mark_uncontrollable("HomeMaticPlug");
        db.mark_uncontrollable("MAXGateway");
        db.mark_uncontrollable("EdnetGateway");
        // EdnetGateway both has an advisory and an uncontrolled radio:
        // the Sect. III-C.3 "notify the user" case.
        db.add_record(
            "EdnetGateway",
            CveRecord {
                id: "SENTINEL-2016-0006".into(),
                summary: "pairing protocol accepts unauthenticated sub-GHz commands".into(),
                severity: 8.3,
            },
        );
        db.add_endpoint(
            "EdnetGateway",
            IpAddr::V4(sentinel_devicesim::Endpoint::new("cloud.ednet-living.com").ip),
        );
        // Vendor cloud endpoints offered as restricted whitelists.
        for (device, domain) in [
            ("EdimaxCam", "www.myedimax.com"),
            ("EdnetCam", "ipcam.ednet-living.com"),
            ("iKettle2", "pool.ntp.org"),
            ("SmarterCoffee", "pool.ntp.org"),
            ("D-LinkCam", "mp-eu-dcdda.dcdsvc.com"),
        ] {
            let ip = sentinel_devicesim::Endpoint::new(domain).ip;
            db.add_endpoint(device, IpAddr::V4(ip));
        }
        db
    }

    /// Adds a vulnerability record for a device-type.
    pub fn add_record(&mut self, device_type: impl Into<String>, record: CveRecord) {
        self.records
            .entry(device_type.into())
            .or_default()
            .push(record);
    }

    /// Registers a vendor-cloud endpoint for a device-type.
    pub fn add_endpoint(&mut self, device_type: impl Into<String>, endpoint: IpAddr) {
        self.endpoints
            .entry(device_type.into())
            .or_default()
            .push(endpoint);
    }

    /// Marks a device-type as having an external channel the gateway
    /// cannot control.
    pub fn mark_uncontrollable(&mut self, device_type: impl Into<String>) {
        self.uncontrollable.insert(device_type.into());
    }

    /// All `(device-type, advisories)` entries, in unspecified order
    /// (binary model persistence sorts them itself).
    pub fn records(&self) -> impl Iterator<Item = (&str, &[CveRecord])> {
        self.records
            .iter()
            .map(|(name, records)| (name.as_str(), records.as_slice()))
    }

    /// All `(device-type, vendor endpoints)` entries, in unspecified
    /// order.
    pub fn endpoints(&self) -> impl Iterator<Item = (&str, &[IpAddr])> {
        self.endpoints
            .iter()
            .map(|(name, endpoints)| (name.as_str(), endpoints.as_slice()))
    }

    /// All device-types marked as having uncontrollable channels, in
    /// unspecified order.
    pub fn uncontrollable(&self) -> impl Iterator<Item = &str> {
        self.uncontrollable.iter().map(String::as_str)
    }
}

impl VulnerabilityDatabase for StaticVulnDb {
    fn lookup(&self, device_type: &str) -> &[CveRecord] {
        self.records.get(device_type).map_or(&[], Vec::as_slice)
    }

    fn vendor_endpoints(&self, device_type: &str) -> &[IpAddr] {
        self.endpoints.get(device_type).map_or(&[], Vec::as_slice)
    }

    fn has_uncontrollable_channel(&self, device_type: &str) -> bool {
        self.uncontrollable.contains(device_type)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assessment_follows_fig3() {
        let db = StaticVulnDb::with_known_iot_advisories();
        assert_eq!(db.assess(None), IsolationLevel::Strict);
        assert_eq!(db.assess(Some("EdimaxCam")), IsolationLevel::Restricted);
        assert_eq!(db.assess(Some("HueBridge")), IsolationLevel::Trusted);
    }

    #[test]
    fn vulnerable_types_have_whitelists() {
        let db = StaticVulnDb::with_known_iot_advisories();
        assert!(!db.vendor_endpoints("EdimaxCam").is_empty());
        assert!(db.vendor_endpoints("HueBridge").is_empty());
    }

    #[test]
    fn removal_notice_requires_vuln_and_uncontrolled_channel() {
        let db = StaticVulnDb::with_known_iot_advisories();
        // Vulnerable + sub-GHz radio: notify.
        let notice = db.removal_notice(Some("EdnetGateway"));
        assert!(notice.is_some());
        assert!(notice.unwrap().contains("remove the device"));
        // Vulnerable but fully WiFi (controllable): isolation suffices.
        assert_eq!(db.removal_notice(Some("EdimaxCam")), None);
        // Uncontrolled radio but no vulnerabilities: no notice.
        assert_eq!(db.removal_notice(Some("HomeMaticPlug")), None);
        // Unknown type: strict isolation, no notice.
        assert_eq!(db.removal_notice(None), None);
    }

    #[test]
    fn records_accumulate() {
        let mut db = StaticVulnDb::new();
        assert!(db.lookup("X").is_empty());
        db.add_record(
            "X",
            CveRecord {
                id: "CVE-1".into(),
                summary: "a".into(),
                severity: 5.0,
            },
        );
        db.add_record(
            "X",
            CveRecord {
                id: "CVE-2".into(),
                summary: "b".into(),
                severity: 6.0,
            },
        );
        assert_eq!(db.lookup("X").len(), 2);
        assert_eq!(db.assess(Some("X")), IsolationLevel::Restricted);
    }
}
