//! The tick-driven multi-gateway fleet simulation.
//!
//! # The lockstep fleet tick
//!
//! [`run_fleet`] is structured as three passes over the fleet, all
//! justified by one invariant: keyed assessment is a pure function of
//! `(trained model, fingerprints, AssessKey)` (the v2 pinned RNG
//! contract), so *when* and *where* a completion is assessed can never
//! change its answer.
//!
//! 1. **Ingest (parallel, pooled).** Homes advance through their tick
//!    loops on a pool of per-worker gateways: each worker owns one
//!    [`StreamRuntime`] (reset between homes, allocations kept warm)
//!    and one reusable [`HomeWorkload`] buffer. Completed setups are
//!    *deferred* — collected as [`Completion`]s per ingest group (one
//!    group per tick plus a final flush group) instead of being
//!    assessed home by home.
//! 2. **Assess (parallel, fleet-wide batches).** All homes' deferred
//!    completions are concatenated and pushed through
//!    [`SecurityService::assess_keyed_batch_into`] in large chunks
//!    ([`FleetConfig::assess_batch_rows`]), where the batched stage-1
//!    kernels (and the stage-1 verdict cache, when enabled) amortize
//!    across gateways — hundreds of rows per service call instead of a
//!    handful per home tick.
//! 3. **Settle (parallel over homes).** Each home replays its serial
//!    enforcement tail — rule installs in `(seq, mac)` order, leaves on
//!    tick boundaries, data-plane probes — against its own enforcement
//!    module, consuming the responses pass 2 produced. The op sequence
//!    is exactly the one the inline per-home loop ran, so every counter
//!    (rule cache hits, probes, removals) is byte-identical.

use std::net::IpAddr;

use serde::Serialize;

use sentinel_core::{AssessScratch, OnboardingReport, SecurityService, ServiceResponse};
use sentinel_devicesim::{catalog, DeviceModel};
use sentinel_ml::parallel::{effective_threads, map_indexed, map_indexed_init};
use sentinel_netproto::{MacAddr, Timestamp};
use sentinel_sdn::topology::Topology;
use sentinel_sdn::{Destination, EnforcementModule};
use sentinel_stream::{apply_onboarding, Completion, StreamRuntime, StreamStats};

use crate::stats::FleetMetrics;
use crate::workload::{is_roam_origin, roam_destination, HomeWorkload};
use crate::{FleetConfig, FleetStats};

/// Everything one home gateway produced: its streaming counters, the
/// onboarding reports in deterministic `(seq, mac)` emission order, and
/// its enforcement-side accounting.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HomeOutcome {
    /// Home index in `0..config.homes`.
    pub home: usize,
    /// The gateway's streaming counters.
    pub stats: StreamStats,
    /// Onboarding reports, in emission order.
    pub reports: Vec<OnboardingReport>,
    /// MAC that roamed away mid-setup, if any.
    pub roam_out: Option<MacAddr>,
    /// MAC that roamed in from the neighbouring home, if any.
    pub roam_in: Option<MacAddr>,
    /// Enforcement rules installed by this gateway.
    pub rules_installed: u64,
    /// Rules removed because the device left.
    pub rules_removed: u64,
    /// Rules still cached when the run ended.
    pub rules_resident: u64,
    /// Rule-cache hits at this gateway.
    pub cache_hits: u64,
    /// Rule-cache lookups at this gateway.
    pub cache_lookups: u64,
    /// Data-plane probe flows allowed.
    pub probes_allowed: u64,
    /// Data-plane probe flows denied.
    pub probes_denied: u64,
}

/// The result of a whole fleet run: summed stats plus every home's
/// outcome, in home order — `PartialEq`/`Serialize` so thread-count
/// sweeps can assert bit-for-bit equality.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetReport {
    /// Aggregated fleet counters (see [`FleetStats`] for the rules).
    pub stats: FleetStats,
    /// Per-home outcomes, indexed by home.
    pub homes: Vec<HomeOutcome>,
}

impl FleetReport {
    /// The outcome of one home.
    pub fn home(&self, home: usize) -> &HomeOutcome {
        &self.homes[home]
    }
}

/// One home's ingest-pass output: everything pass 3 needs to replay the
/// serial enforcement tail once pass 2 has assessed the completions.
struct IngestedHome {
    home: usize,
    /// Ingest-side streaming counters (onboarding counters are added
    /// during settle, through the same [`apply_onboarding`] path the
    /// inline runtime uses).
    stats: StreamStats,
    /// Deferred completions, concatenated in group order; each group is
    /// internally `(seq, mac)`-sorted — exactly the order the inline
    /// loop onboarded them in.
    completions: Vec<Completion>,
    /// Completions per ingest group: one entry per tick, then one final
    /// flush group (always present, possibly zero).
    groups: Vec<u32>,
    roam_out: Option<MacAddr>,
    roam_in: Option<MacAddr>,
    /// Sorted by MAC (see [`HomeWorkload::leavers`]).
    leavers: Vec<MacAddr>,
}

/// One fleet worker's pooled gateway: a stream runtime whose tables and
/// scratch stay warm across every home the worker claims, plus a
/// reusable workload buffer. Pure scratch under the fork/join contract:
/// [`StreamRuntime::reset`] restores freshly-constructed behavior, so
/// which worker simulates which home cannot influence any result.
struct GatewayPool<'a, S> {
    runtime: StreamRuntime<&'a S>,
    workload: HomeWorkload,
}

impl<'a, S: SecurityService + Sync> GatewayPool<'a, S> {
    fn new(service: &'a S, config: &FleetConfig) -> Self {
        GatewayPool {
            runtime: StreamRuntime::with_config(service, config.stream_config()),
            workload: HomeWorkload::default(),
        }
    }

    /// Pass 1 for one home: rebuild its workload, drive the tick loop
    /// through the deferred ingest path, and hand back the grouped
    /// completions with the ingest-side stats.
    fn ingest_home(
        &mut self,
        config: &FleetConfig,
        devices: &[DeviceModel],
        home: usize,
    ) -> IngestedHome {
        self.runtime.reset();
        self.workload.rebuild(config, devices, home);
        let frames = self.workload.frames();
        let mut completions = Vec::new();
        let mut groups = Vec::new();
        let mut cursor = 0usize;
        let mut tick_end = config.tick;
        while cursor < frames.len() {
            let limit = Timestamp::ZERO + tick_end;
            let mut end = cursor;
            while end < frames.len() && frames[end].0 < limit {
                end += 1;
            }
            let appended = self
                .runtime
                .ingest_frames_deferred(&frames[cursor..end], &mut completions);
            groups.push(appended as u32);
            cursor = end;
            tick_end += config.tick;
        }
        let appended = self.runtime.flush_deferred(&mut completions);
        groups.push(appended as u32);
        IngestedHome {
            home,
            stats: self.runtime.stats().clone(),
            completions,
            groups,
            roam_out: self.workload.roam_out,
            roam_in: self.workload.roam_in,
            leavers: self.workload.leavers.clone(),
        }
    }
}

/// The lab topology's remote-server IP, the probe destination every
/// gateway uses. Hoisted out of the per-home loops: the topology is
/// identical for every home, so one construction serves the fleet.
fn remote_probe_ip() -> IpAddr {
    IpAddr::V4(
        Topology::lab()
            .host("Sremote")
            .expect("lab topology has a remote server")
            .ip,
    )
}

/// Runs the whole fleet: `config.homes` independent home networks
/// against one shared trained service, through the three-pass lockstep
/// tick (see the module docs).
///
/// Each home's result is a pure function of `(service, config, home
/// index)` — the v2 keyed RNG contract makes assessment independent of
/// batching and order, and no state flows between homes — so the report
/// is bit-identical at any thread count, any assessment batch size, and
/// for any home-evaluation order.
pub fn run_fleet<S: SecurityService + Sync>(service: &S, config: &FleetConfig) -> FleetReport {
    run_fleet_with_metrics(service, config).0
}

/// [`run_fleet`] plus run-shape metrics (assessment rows and batches).
/// The metrics describe scheduling, not results: they are reported
/// separately precisely because the [`FleetReport`] must stay
/// byte-identical across every execution shape.
pub fn run_fleet_with_metrics<S: SecurityService + Sync>(
    service: &S,
    config: &FleetConfig,
) -> (FleetReport, FleetMetrics) {
    let devices = catalog();
    let threads = effective_threads(config.threads);

    // Pass 1: parallel pooled ingest, one warm gateway per worker.
    let ingested = map_indexed_init(
        config.homes,
        threads,
        || GatewayPool::new(service, config),
        |pool, home| pool.ingest_home(config, &devices, home),
    );

    // Pass 2: assess every deferred completion in fleet-wide keyed
    // batches. Chunk boundaries are a pure throughput knob (keyed
    // purity), sized so the batched stage-1 kernels see hundreds of
    // rows per call.
    let items: Vec<_> = ingested
        .iter()
        .flat_map(|home| {
            home.completions
                .iter()
                .map(|c| (&c.full, &c.fixed, c.assess_key()))
        })
        .collect();
    let rows = items.len();
    let batch_rows = config.assess_batch_rows.max(1);
    let batches = rows.div_ceil(batch_rows);
    let chunked = {
        let items = &items;
        map_indexed_init(
            batches,
            threads,
            AssessScratch::default,
            move |scratch, chunk| {
                let start = chunk * batch_rows;
                let end = (start + batch_rows).min(rows);
                let mut responses = Vec::with_capacity(end - start);
                service.assess_keyed_batch_into(&items[start..end], scratch, &mut responses);
                responses
            },
        )
    };
    let responses: Vec<ServiceResponse> = chunked.into_iter().flatten().collect();

    // Pass 3: parallel settle — each home replays its serial
    // enforcement tail against its own slice of the responses.
    let mut offsets = Vec::with_capacity(config.homes + 1);
    offsets.push(0usize);
    for home in &ingested {
        offsets.push(offsets.last().unwrap() + home.completions.len());
    }
    let remote_ip = remote_probe_ip();
    let outcomes = {
        let ingested = &ingested;
        let responses = &responses;
        let offsets = &offsets;
        map_indexed(config.homes, threads, move |home| {
            settle_home(
                &ingested[home],
                &responses[offsets[home]..offsets[home + 1]],
                remote_ip,
            )
        })
    };

    let mut stats = FleetStats {
        homes: config.homes,
        ..FleetStats::default()
    };
    for outcome in &outcomes {
        stats.absorb(outcome);
    }
    let report = FleetReport {
        stats,
        homes: outcomes,
    };
    let metrics = FleetMetrics {
        assess_rows: rows as u64,
        assess_batches: batches as u64,
    };
    (report, metrics)
}

/// Simulates one home network end to end — the single-home composition
/// of exactly the three passes [`run_fleet`] runs fleet-wide (ingest,
/// keyed assessment, settle), so its outcome is byte-identical to the
/// home's entry in a fleet report, for any construction order.
pub fn run_home<S: SecurityService + Sync>(
    service: &S,
    config: &FleetConfig,
    devices: &[DeviceModel],
    home: usize,
) -> HomeOutcome {
    let mut pool = GatewayPool::new(service, config);
    let ingested = pool.ingest_home(config, devices, home);
    let items: Vec<_> = ingested
        .completions
        .iter()
        .map(|c| (&c.full, &c.fixed, c.assess_key()))
        .collect();
    let mut scratch = AssessScratch::default();
    let mut responses = Vec::with_capacity(items.len());
    service.assess_keyed_batch_into(&items, &mut scratch, &mut responses);
    settle_home(&ingested, &responses, remote_probe_ip())
}

/// Pass 3 for one home: replays the serial enforcement tail the inline
/// per-home loop would have run, in the identical operation order —
/// per tick group: pending leaves first, then every onboarding's rule
/// install in `(seq, mac)` order, then per report one own-MAC probe and
/// one stranger probe; the flush group settles without a preceding
/// leave drain; one final drain ends the run. Identical op order on a
/// fresh [`EnforcementModule`] reproduces every rule-cache counter
/// byte for byte.
fn settle_home(
    ingested: &IngestedHome,
    responses: &[ServiceResponse],
    remote_ip: IpAddr,
) -> HomeOutcome {
    // A MAC no simulated device uses: probing it is a guaranteed cache
    // miss, decided by the gateway's default (strict) level.
    let stranger = MacAddr::new([0x02, 0xff, 0xff, 0xff, 0xff, 0xfe]);
    let mut module = EnforcementModule::new();
    let mut outcome = HomeOutcome {
        home: ingested.home,
        stats: ingested.stats.clone(),
        reports: Vec::with_capacity(ingested.completions.len()),
        roam_out: ingested.roam_out,
        roam_in: ingested.roam_in,
        rules_installed: 0,
        rules_removed: 0,
        rules_resident: 0,
        cache_hits: 0,
        cache_lookups: 0,
        probes_allowed: 0,
        probes_denied: 0,
    };
    let mut pending_leaves: Vec<MacAddr> = Vec::new();
    let flush_group = ingested.groups.len() - 1;
    let mut offset = 0usize;
    for (group, &count) in ingested.groups.iter().enumerate() {
        // Leaves land on tick boundaries, one tick after onboarding;
        // the end-of-stream flush is not a tick boundary.
        if group != flush_group {
            for mac in pending_leaves.drain(..) {
                if module.remove_rule(mac).is_some() {
                    outcome.rules_removed += 1;
                }
            }
        }
        let end = offset + count as usize;
        let first_report = outcome.reports.len();
        for (completion, response) in ingested.completions[offset..end]
            .iter()
            .zip(&responses[offset..end])
        {
            outcome.reports.push(apply_onboarding(
                &mut outcome.stats,
                &mut module,
                completion,
                response.clone(),
            ));
        }
        offset = end;
        for report in first_report..outcome.reports.len() {
            let mac = outcome.reports[report].mac;
            outcome.rules_installed += 1;
            let probe = module.decide(mac, Destination::Internet(remote_ip));
            if probe.is_allow() {
                outcome.probes_allowed += 1;
            } else {
                outcome.probes_denied += 1;
            }
            let miss = module.decide(stranger, Destination::Internet(remote_ip));
            if miss.is_allow() {
                outcome.probes_allowed += 1;
            } else {
                outcome.probes_denied += 1;
            }
            if ingested.leavers.binary_search(&mac).is_ok() {
                pending_leaves.push(mac);
            }
        }
    }
    for mac in pending_leaves.drain(..) {
        if module.remove_rule(mac).is_some() {
            outcome.rules_removed += 1;
        }
    }
    let cache = module.cache();
    outcome.rules_resident = cache.len() as u64;
    outcome.cache_hits = cache.hits();
    outcome.cache_lookups = cache.lookups();
    outcome
}

/// Re-export for determinism tests: which home a roamer from `home`
/// lands in.
pub fn roamer_route(config: &FleetConfig, home: usize) -> Option<(usize, usize)> {
    is_roam_origin(config, home).then(|| (home, roam_destination(config, home)))
}
