//! Minimal TLS record framing.
//!
//! The gateway never decrypts traffic — the paper's fingerprint explicitly
//! avoids payload features so it works on encrypted flows. TLS records are
//! modeled only to the extent needed to synthesize realistically-sized
//! HTTPS setup traffic (ClientHello etc.) and classify it.

use bytes::{BufMut, Bytes};
use serde::{Deserialize, Serialize};

use crate::ParseError;

/// Length of the TLS record header.
pub const HEADER_LEN: usize = 5;

/// TLS record content type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContentType {
    /// ChangeCipherSpec (20).
    ChangeCipherSpec,
    /// Alert (21).
    Alert,
    /// Handshake (22).
    Handshake,
    /// ApplicationData (23).
    ApplicationData,
    /// Any other content type.
    Other(u8),
}

impl ContentType {
    /// The raw content-type byte.
    pub fn to_u8(self) -> u8 {
        match self {
            ContentType::ChangeCipherSpec => 20,
            ContentType::Alert => 21,
            ContentType::Handshake => 22,
            ContentType::ApplicationData => 23,
            ContentType::Other(v) => v,
        }
    }

    /// Classifies a raw content-type byte.
    pub fn from_u8(v: u8) -> Self {
        match v {
            20 => ContentType::ChangeCipherSpec,
            21 => ContentType::Alert,
            22 => ContentType::Handshake,
            23 => ContentType::ApplicationData,
            v => ContentType::Other(v),
        }
    }
}

/// A single TLS record with opaque payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TlsRecord {
    /// Record content type.
    pub content_type: ContentType,
    /// Protocol version bytes (0x0303 for TLS 1.2).
    pub version: u16,
    /// Opaque record payload.
    pub payload: Bytes,
}

impl TlsRecord {
    /// Creates a record.
    pub fn new(content_type: ContentType, payload: impl Into<Bytes>) -> Self {
        TlsRecord {
            content_type,
            version: 0x0303,
            payload: payload.into(),
        }
    }

    /// A handshake record sized like a typical ClientHello.
    pub fn client_hello(payload_len: usize) -> Self {
        let mut payload = vec![0u8; payload_len.max(4)];
        payload[0] = 1; // handshake type: client_hello
        TlsRecord::new(ContentType::Handshake, payload)
    }

    /// An application-data record of the given length.
    pub fn application_data(payload_len: usize) -> Self {
        TlsRecord::new(ContentType::ApplicationData, vec![0u8; payload_len])
    }

    /// Wire length of the encoded record.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// Appends the record bytes to `buf`.
    pub fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u8(self.content_type.to_u8());
        buf.put_u16(self.version);
        buf.put_u16(self.payload.len() as u16);
        buf.put_slice(&self.payload);
    }

    /// Parses a TLS record.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Truncated`] if the header or declared payload
    /// length exceed the input.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        if bytes.len() < HEADER_LEN {
            return Err(ParseError::truncated("tls", HEADER_LEN, bytes.len()));
        }
        let length = u16::from_be_bytes([bytes[3], bytes[4]]) as usize;
        let total = HEADER_LEN + length;
        if bytes.len() < total {
            return Err(ParseError::truncated("tls", total, bytes.len()));
        }
        Ok(TlsRecord {
            content_type: ContentType::from_u8(bytes[0]),
            version: u16::from_be_bytes([bytes[1], bytes[2]]),
            payload: Bytes::copy_from_slice(&bytes[HEADER_LEN..total]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let record = TlsRecord::client_hello(180);
        let mut buf = Vec::new();
        record.encode(&mut buf);
        assert_eq!(TlsRecord::parse(&buf).unwrap(), record);
        assert_eq!(buf.len(), record.wire_len());
    }

    #[test]
    fn declared_length_enforced() {
        let bytes = [22, 3, 3, 0, 10, 1, 2];
        assert!(TlsRecord::parse(&bytes).is_err());
    }

    #[test]
    fn content_type_roundtrip() {
        for raw in [20u8, 21, 22, 23, 99] {
            assert_eq!(ContentType::from_u8(raw).to_u8(), raw);
        }
    }
}
