//! IoT Sentinel device fingerprints (Sect. IV-A of the paper).
//!
//! A device fingerprint is built from the packets a new device sends
//! during its setup phase:
//!
//! 1. Each packet is mapped to a 23-dimensional [`FeatureVector`]
//!    (Table I): 16 binary protocol indicators, 2 IP-option indicators,
//!    packet size, raw-data presence, a destination-IP counter and the
//!    source/destination port classes.
//! 2. The sequence of vectors, with *consecutive duplicates removed*, is
//!    the variable-length fingerprint [`Fingerprint`] (the paper's
//!    `23 × n` matrix `F`).
//! 3. The first 12 *unique* vectors, concatenated and zero-padded, form
//!    the fixed 276-dimensional [`FixedFingerprint`] (`F'`) consumed by
//!    the per-device-type classifiers.
//!
//! Fingerprints never look at payload contents, so they work on encrypted
//! traffic.
//!
//! # Example
//!
//! ```
//! use sentinel_fingerprint::{extract, FixedFingerprint};
//! use sentinel_netproto::{MacAddr, Packet};
//!
//! let mac = MacAddr::new([2, 0, 0, 0, 0, 1]);
//! let packets = vec![
//!     Packet::eapol_key(sentinel_netproto::Timestamp::ZERO, mac, MacAddr::ZERO, 2),
//!     Packet::dhcp_discover(mac, 1, 50_000),
//! ];
//! let fingerprint = extract(&packets);
//! assert_eq!(fingerprint.len(), 2);
//! let fixed = FixedFingerprint::from_fingerprint(&fingerprint);
//! assert_eq!(fixed.as_slice().len(), 276);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod editdist;
mod extract;
mod features;
mod fixed;
mod intern;
mod matrix;
pub mod setup;

pub use extract::{extract, extract_frames, FeatureExtractor};
pub use features::{FeatureVector, PortClass, FEATURE_COUNT, FEATURE_NAMES};
pub use fixed::{FixedFingerprint, FIXED_DIMENSIONS, FIXED_PACKETS};
pub use intern::{InternedFingerprint, SymbolTable};
pub use matrix::Fingerprint;
