//! Network Time Protocol (RFC 5905) packets.
//!
//! Most IoT devices synchronize their clock immediately after joining a
//! network (TLS certificate validation needs correct time), making NTP a
//! reliable setup-phase marker — it is one of the eight application-layer
//! features in the paper's Table I.

use bytes::BufMut;
use serde::{Deserialize, Serialize};

use crate::ParseError;

/// Length of a basic NTP packet (no extensions).
pub const PACKET_LEN: usize = 48;

/// NTP association mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NtpMode {
    /// Symmetric active (1).
    SymmetricActive,
    /// Client (3).
    Client,
    /// Server (4).
    Server,
    /// Broadcast (5).
    Broadcast,
    /// Any other mode.
    Other(u8),
}

impl NtpMode {
    fn to_u8(self) -> u8 {
        match self {
            NtpMode::SymmetricActive => 1,
            NtpMode::Client => 3,
            NtpMode::Server => 4,
            NtpMode::Broadcast => 5,
            NtpMode::Other(v) => v & 0x07,
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            1 => NtpMode::SymmetricActive,
            3 => NtpMode::Client,
            4 => NtpMode::Server,
            5 => NtpMode::Broadcast,
            v => NtpMode::Other(v),
        }
    }
}

/// An NTP packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NtpPacket {
    /// Protocol version (3 or 4).
    pub version: u8,
    /// Association mode.
    pub mode: NtpMode,
    /// Stratum (0 = unspecified for client requests).
    pub stratum: u8,
    /// Poll interval exponent.
    pub poll: i8,
    /// Precision exponent.
    pub precision: i8,
    /// Transmit timestamp (NTP 64-bit format).
    pub transmit_timestamp: u64,
}

impl NtpPacket {
    /// A typical SNTP client request.
    pub fn client_request(transmit_timestamp: u64) -> Self {
        NtpPacket {
            version: 4,
            mode: NtpMode::Client,
            stratum: 0,
            poll: 0,
            precision: 0,
            transmit_timestamp,
        }
    }

    /// Appends the 48 packet bytes to `buf`.
    pub fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u8((self.version << 3) | self.mode.to_u8());
        buf.put_u8(self.stratum);
        buf.put_i8(self.poll);
        buf.put_i8(self.precision);
        buf.put_slice(&[0u8; 36]); // root delay/dispersion, ref id, ref/orig/recv timestamps
        buf.put_u64(self.transmit_timestamp);
    }

    /// Parses an NTP packet.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Truncated`] on short input and
    /// [`ParseError::Invalid`] on an unknown protocol version.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        if bytes.len() < PACKET_LEN {
            return Err(ParseError::truncated("ntp", PACKET_LEN, bytes.len()));
        }
        let version = (bytes[0] >> 3) & 0x07;
        if !(1..=4).contains(&version) {
            return Err(ParseError::invalid("ntp", format!("version {version}")));
        }
        Ok(NtpPacket {
            version,
            mode: NtpMode::from_u8(bytes[0] & 0x07),
            stratum: bytes[1],
            poll: bytes[2] as i8,
            precision: bytes[3] as i8,
            transmit_timestamp: u64::from_be_bytes(bytes[40..48].try_into().expect("slice of 8")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let pkt = NtpPacket::client_request(0x1234_5678_9abc_def0);
        let mut buf = Vec::new();
        pkt.encode(&mut buf);
        assert_eq!(buf.len(), PACKET_LEN);
        assert_eq!(NtpPacket::parse(&buf).unwrap(), pkt);
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        NtpPacket::client_request(0).encode(&mut buf);
        buf[0] = 0x3b; // version 7
        assert!(NtpPacket::parse(&buf).is_err());
    }

    #[test]
    fn truncated_rejected() {
        assert!(NtpPacket::parse(&[0u8; 47]).is_err());
    }
}
