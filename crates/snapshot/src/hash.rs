//! XXH64 (Collet's xxHash, 64-bit variant), implemented in-tree.
//!
//! Snapshot sections are integrity-checked with a fast non-cryptographic
//! hash: the threat model is bit rot and truncated writes, not an
//! adversary forging models, so a checksum that costs ~1 cycle/byte at
//! load time beats a MAC that would dominate the instant-boot budget.
//! The algorithm is frozen — the golden fixture pins every checksum
//! byte — so this implementation must never change. Reference test
//! vectors are pinned in the tests below.

const P1: u64 = 0x9E37_79B1_85EB_CA87;
const P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const P3: u64 = 0x1656_67B1_9E37_79F9;
const P4: u64 = 0x85EB_CA77_C2B2_AE63;
const P5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn round(acc: u64, lane: u64) -> u64 {
    acc.wrapping_add(lane.wrapping_mul(P2))
        .rotate_left(31)
        .wrapping_mul(P1)
}

#[inline]
fn merge(acc: u64, lane: u64) -> u64 {
    (acc ^ round(0, lane)).wrapping_mul(P1).wrapping_add(P4)
}

#[inline]
fn read_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes[..8].try_into().unwrap())
}

#[inline]
fn read_u32(bytes: &[u8]) -> u64 {
    u64::from(u32::from_le_bytes(bytes[..4].try_into().unwrap()))
}

/// The XXH64 digest of `bytes` under `seed`.
pub fn xxh64(bytes: &[u8], seed: u64) -> u64 {
    let len = bytes.len();
    let mut rest = bytes;
    let mut acc = if len >= 32 {
        let mut v1 = seed.wrapping_add(P1).wrapping_add(P2);
        let mut v2 = seed.wrapping_add(P2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(P1);
        while rest.len() >= 32 {
            v1 = round(v1, read_u64(rest));
            v2 = round(v2, read_u64(&rest[8..]));
            v3 = round(v3, read_u64(&rest[16..]));
            v4 = round(v4, read_u64(&rest[24..]));
            rest = &rest[32..];
        }
        let mut acc = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        acc = merge(acc, v1);
        acc = merge(acc, v2);
        acc = merge(acc, v3);
        merge(acc, v4)
    } else {
        seed.wrapping_add(P5)
    };
    acc = acc.wrapping_add(len as u64);
    while rest.len() >= 8 {
        acc = (acc ^ round(0, read_u64(rest)))
            .rotate_left(27)
            .wrapping_mul(P1)
            .wrapping_add(P4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        acc = (acc ^ read_u32(rest).wrapping_mul(P1))
            .rotate_left(23)
            .wrapping_mul(P2)
            .wrapping_add(P3);
        rest = &rest[4..];
    }
    for &byte in rest {
        acc = (acc ^ u64::from(byte).wrapping_mul(P5))
            .rotate_left(11)
            .wrapping_mul(P1);
    }
    acc ^= acc >> 33;
    acc = acc.wrapping_mul(P2);
    acc ^= acc >> 29;
    acc = acc.wrapping_mul(P3);
    acc ^ (acc >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors from the canonical xxHash distribution.
    #[test]
    fn matches_the_reference_vectors() {
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"a", 0), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(xxh64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
        // 43 bytes: exercises the 32-byte stripe loop plus tails.
        assert_eq!(
            xxh64(b"The quick brown fox jumps over the lazy dog", 0),
            0x0B24_2D36_1FDA_71BC
        );
    }

    /// Exercises every tail path: the 32-byte stripe loop, the 8-byte,
    /// 4-byte and single-byte tails, under both zero and nonzero seeds.
    #[test]
    fn all_length_classes_are_stable() {
        let data: Vec<u8> = (0u16..96).map(|i| (i * 31 % 251) as u8).collect();
        let lengths = [0usize, 1, 3, 4, 7, 8, 15, 31, 32, 33, 63, 64, 95];
        let digests: Vec<u64> = lengths
            .iter()
            .map(|&n| xxh64(&data[..n], 0x9E37_79B9))
            .collect();
        // Distinct inputs must not collide in this tiny sample.
        let unique: std::collections::HashSet<_> = digests.iter().collect();
        assert_eq!(unique.len(), digests.len());
        // And every digest is a pure function of its input.
        for (&n, &digest) in lengths.iter().zip(&digests) {
            assert_eq!(xxh64(&data[..n], 0x9E37_79B9), digest);
        }
    }
}
