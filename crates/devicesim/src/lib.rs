//! Behaviour-model simulator for the 27 IoT device-types evaluated in
//! the paper (Table II).
//!
//! The paper's measurement lab connected real off-the-shelf devices to a
//! hostapd access point and recorded their setup-phase traffic with
//! tcpdump, 20 runs per device with a factory reset in between. This
//! crate substitutes that lab: each device-type is a [`DeviceProfile`] —
//! an ordered list of [`Phase`]s (EAPoL handshake, DHCP, ARP probing,
//! DNS lookups, NTP, cloud TLS sessions, SSDP/mDNS chatter, proprietary
//! bursts) with stochastic per-run variation — and the [`Testbed`]
//! replays the setup procedure, producing the packet sequence the
//! Security Gateway would capture.
//!
//! The catalog preserves the similarity structure the paper reports:
//! the D-Link sensor family, the two TP-Link plugs, the two Edimax plugs
//! and the two Smarter appliances share (near-)identical firmware
//! behaviour, which is what produces the ≈50 % confusion block of
//! Table III. Everything else is behaviourally distinct.
//!
//! # Example
//!
//! ```
//! use sentinel_devicesim::{catalog, Testbed};
//!
//! let devices = catalog();
//! assert_eq!(devices.len(), 27);
//! let testbed = Testbed::new(42);
//! let trace = testbed.setup_run(&devices[0].profile, 0);
//! assert!(trace.packets.len() >= 8, "a setup run produces a packet burst");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod generator;
mod interleave;
mod phases;
mod profile;
mod testbed;

pub use catalog::{catalog, confusable_groups, Connectivity, DeviceInfo, DeviceModel};
pub use generator::{SetupTrace, TraceGenerator};
pub use interleave::{interleave, interleave_at};
pub use phases::{Phase, RawDest};
pub use profile::{DeviceProfile, Endpoint};
pub use testbed::Testbed;
