//! Soak test of the streaming onboarding runtime: many interleaved
//! device setups pushed through `sentinel-stream` as fast as the
//! hardware allows, swept over a list of worker-thread counts to show
//! multi-core scaling of the shard-end-to-end pipeline. Reports
//! packets/sec and speedup vs the single-threaded run as BENCH JSON.
//!
//! ```text
//! cargo run --release -p sentinel-bench --bin stream_soak
//! cargo run --release -p sentinel-bench --bin stream_soak -- --smoke --threads 1,4
//! cargo run --release -p sentinel-bench --bin stream_soak -- \
//!     --sessions 4000 --capacity 256 --threads 1,2,4,8 --json results/bench_stream.json
//! ```
//!
//! The workload is deliberately oversubscribed by default: more devices
//! are mid-setup than the bounded session table admits, so the LRU
//! overflow policy is exercised and the reported peak stays pinned at
//! the configured capacity. One service is trained once and shared by
//! reference across every configuration; the bench asserts that reports
//! and stats are identical at every thread count (the runtime's
//! determinism contract) before reporting throughput.

use std::time::{Duration, Instant};

use sentinel_bench::cli::Args;
use sentinel_bench::tables;
use sentinel_core::{
    BankConfig, FingerprintDataset, IdentifierConfig, IoTSecurityService, ServiceConfig,
};
use sentinel_devicesim::{catalog, interleave, Testbed};
use sentinel_ml::ForestConfig;
use sentinel_netproto::stream::MemoryFrameSource;
use sentinel_netproto::Timestamp;
use sentinel_stream::{StreamConfig, StreamRuntime};

fn main() {
    let args = Args::from_env();
    let smoke = args.switch("smoke");
    let sessions: usize = args.get("sessions", if smoke { 150 } else { 2000 });
    let train_runs: u64 = args.get("train-runs", if smoke { 5 } else { 10 });
    let trees: usize = args.get("trees", 25);
    let seed: u64 = args.get("seed", 42);
    let capacity: usize = args.get("capacity", 512);
    let stagger_us: u64 = args.get("stagger-us", 1500);
    let threads: Vec<usize> = args
        .get_str("threads")
        .unwrap_or(if smoke { "1,4" } else { "1,2,4,8" })
        .split(',')
        .map(|t| {
            t.trim()
                .parse()
                .unwrap_or_else(|_| panic!("invalid thread count in --threads: {t:?}"))
        })
        .collect();
    assert!(!threads.is_empty(), "--threads needs at least one count");

    print!(
        "{}",
        tables::banner("Streaming onboarding soak — interleaved multi-device workload")
    );
    println!(
        "{sessions} concurrent setups (stagger {stagger_us} µs), table capacity {capacity}, \
         thread sweep {threads:?}\n"
    );

    // --- Train the IoTSSP once (outside the measured window); every
    // --- configuration shares it by reference.
    let devices = catalog();
    let dataset = FingerprintDataset::collect(&devices, train_runs, seed);
    let service_config = ServiceConfig {
        identifier: IdentifierConfig {
            bank: BankConfig {
                forest: ForestConfig::default().with_trees(trees),
                ..BankConfig::default()
            },
            ..IdentifierConfig::default()
        },
    };
    let service = IoTSecurityService::train(&dataset, &service_config);

    // --- Generate the interleaved workload (outside the window). ---
    let testbed = Testbed::new(seed ^ 0x5041);
    let traces: Vec<_> = (0..sessions)
        .map(|i| {
            let device = &devices[i % devices.len()];
            testbed.setup_run(&device.profile, 10_000 + (i / devices.len()) as u64)
        })
        .collect();
    let packets = interleave(&traces, Duration::from_micros(stagger_us));
    let total_packets = packets.len();
    // Pre-encode to raw wire frames outside the window: what a live tap
    // delivers is bytes, and the measured path is the runtime's
    // zero-copy wire-scan ingest (`run_frames`), which never builds a
    // `Packet` for a frame the scanner certifies.
    let frames: Vec<(Timestamp, Vec<u8>)> =
        packets.iter().map(|p| (p.timestamp, p.encode())).collect();
    drop(packets);

    // --- The measured streaming windows, one per thread count. ---
    let mut records = Vec::new();
    let mut baseline: Option<(sentinel_stream::StreamStats, Vec<_>, f64)> = None;
    for &t in &threads {
        let config = StreamConfig {
            max_sessions: capacity,
            threads: t,
            ..StreamConfig::default()
        };
        let effective_capacity = config.effective_capacity();
        let mut runtime = StreamRuntime::with_config(&service, config);
        let source = MemoryFrameSource::new(frames.clone());
        let start = Instant::now();
        let reports = runtime
            .run_frames(source)
            .expect("in-memory source cannot fail");
        let elapsed = start.elapsed();

        let stats = runtime.stats().clone();
        let pps = total_packets as f64 / elapsed.as_secs_f64();
        assert!(
            stats.peak_resident_sessions <= effective_capacity,
            "peak {} exceeded the capacity bound {}",
            stats.peak_resident_sessions,
            effective_capacity
        );
        // The determinism contract: every configuration must produce
        // bit-identical reports and stats before throughput means
        // anything.
        let speedup = match &baseline {
            None => {
                baseline = Some((stats.clone(), reports, pps));
                1.0
            }
            Some((base_stats, base_reports, base_pps)) => {
                assert_eq!(&stats, base_stats, "stats diverged at {t} threads");
                assert_eq!(&reports, base_reports, "reports diverged at {t} threads");
                pps / base_pps
            }
        };

        println!(
            "threads {t:>2}: {total_packets} packets in {:7.1} ms  \
             {pps:>10.0} pps  speedup {speedup:.2}x",
            elapsed.as_secs_f64() * 1e3
        );
        records.push(format!(
            "    {{\"threads\": {t}, \"elapsed_ms\": {:.3}, \"packets_per_sec\": {:.0}, \
             \"speedup\": {:.3}}}",
            elapsed.as_secs_f64() * 1e3,
            pps,
            speedup
        ));
    }

    let (stats, reports, _) = baseline.expect("at least one configuration ran");
    println!(
        "\nsessions            {} opened, {} completed, {} shed",
        stats.sessions_opened,
        stats.sessions_completed(),
        stats.sessions_evicted
    );
    println!("peak resident       {}", stats.peak_resident_sessions);
    println!("onboardings         {} reports ({})", reports.len(), stats);

    if let Some(path) = args.get_str("json") {
        let stats_json = serde_json::to_string(&stats).expect("stats serialize");
        let json = format!(
            "{{\n  \"bench\": \"stream_soak\",\n  \"sessions\": {sessions},\n  \
             \"train_runs\": {train_runs},\n  \"seed\": {seed},\n  \
             \"capacity\": {capacity},\n  \"stagger_us\": {stagger_us},\n  \
             \"packets\": {total_packets},\n  \"runs\": [\n{}\n  ],\n  \
             \"peak_resident_sessions\": {},\n  \"sessions_evicted\": {},\n  \
             \"stats\": {stats_json}\n}}\n",
            records.join(",\n"),
            stats.peak_resident_sessions,
            stats.sessions_evicted,
        );
        sentinel_bench::results::write_json(path, &json);
    }
}
