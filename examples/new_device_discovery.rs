//! Incremental learning: a brand-new device-type appears on the market.
//! The classifier bank first rejects it (every classifier says "not my
//! type" ⇒ unknown ⇒ strict isolation), then the IoTSSP trains one
//! additional classifier from lab fingerprints — without touching the
//! existing 26 — and the device identifies cleanly (Sect. IV-B.1).
//!
//! ```text
//! cargo run --release --example new_device_discovery
//! ```

use iot_sentinel::devicesim::{catalog, Testbed};
use iot_sentinel::fingerprint::{extract, FixedFingerprint};
use iot_sentinel::prelude::*;

fn main() {
    let devices = catalog();

    // Train on 26 types; pretend the iKettle 2.0 has not launched yet.
    let known: Vec<_> = devices[..26].to_vec();
    let dataset26 = FingerprintDataset::collect(&known, 20, 42);
    let mut bank = ClassifierBank::train(&dataset26, &BankConfig::default());
    println!(
        "classifier bank trained for {} device-types",
        bank.n_types()
    );

    // The kettle ships. A gateway sees its setup traffic.
    let kettle = &devices[26];
    let trace = Testbed::new(99).setup_run(&kettle.profile, 0);
    let full = extract(&trace.packets);
    let fixed = FixedFingerprint::from_fingerprint(&full);
    let matches = bank.matches(&fixed);
    println!(
        "before learning: {} classifier(s) accept the kettle's fingerprint -> {}",
        matches.len(),
        if matches.is_empty() {
            "unknown device-type, strict isolation".to_string()
        } else {
            format!("candidates {matches:?}")
        }
    );

    // The IoTSSP's lab collects fingerprints of the new type and adds ONE
    // classifier. No existing model is retrained.
    let dataset27 = FingerprintDataset::collect(&devices, 20, 42);
    let label = bank.add_type(kettle.info.identifier, &dataset27);
    println!(
        "added classifier #{label} for {:?}; bank now covers {} types",
        kettle.info.identifier,
        bank.n_types()
    );

    // A fresh setup run of the kettle now matches.
    let trace = Testbed::new(100).setup_run(&kettle.profile, 1);
    let full = extract(&trace.packets);
    let fixed = FixedFingerprint::from_fingerprint(&full);
    let matches = bank.matches(&fixed);
    println!(
        "after learning: accepted by classifier(s) {:?}{}",
        matches,
        if matches.contains(&label) {
            " — including the new type's"
        } else {
            ""
        }
    );
    // Note: the kettle's firmware twin (SmarterCoffee) may accept too —
    // that is exactly the Table III confusion the edit-distance stage
    // arbitrates.
}
