//! Reproduces **Table IV**: time consumption of the device-type
//! identification stages.
//!
//! ```text
//! cargo run --release -p sentinel-bench --bin table4_timing
//! cargo run --release -p sentinel-bench --bin table4_timing -- --iterations 500
//! ```

use sentinel_bench::cli::Args;
use sentinel_bench::{tables, timing};

fn main() {
    let args = Args::from_env();
    let train_runs: u64 = args.get("runs", 20);
    let iterations: u64 = args.get("iterations", 270);
    let seed: u64 = args.get("seed", 42);

    print!("{}", tables::banner("Table IV — Time consumption for device-type identification"));
    println!("training: 27 types x {train_runs} runs; measuring {iterations} identifications\n");

    let report = timing::measure(train_runs, iterations, seed);
    let fmt = |s: &sentinel_sdn::stats::Summary| format!("{:.3} ms (±{:.3})", s.mean, s.stdev);
    let rows = vec![
        vec!["1 Classification (Random Forest)".to_string(), fmt(&report.one_classification), "0.014 ms".into()],
        vec!["1 Discrimination (edit distance)".to_string(), fmt(&report.one_discrimination), "23.36 ms".into()],
        vec!["Fingerprint extraction".to_string(), fmt(&report.fingerprint_extraction), "0.850 ms".into()],
        vec!["27 Classifications (Random Forest)".to_string(), fmt(&report.all_classifications), "0.385 ms".into()],
        vec!["Discrimination step (when triggered)".to_string(), fmt(&report.discrimination_step), "156.5 ms".into()],
        vec!["Type identification".to_string(), fmt(&report.type_identification), "157.7 ms".into()],
    ];
    print!("{}", tables::render(&["Step", "Measured", "Paper"], &rows));
    println!();
    println!(
        "discrimination triggered for {:.0}% of identifications (paper: 55%); \
         mean edit-distance computations {:.1} (paper: 7)",
        report.discrimination_rate * 100.0,
        report.mean_edit_distances
    );
    println!(
        "\nnote: absolute times differ by ~1000x (Rust vs the paper's Java/Weka stack, and\n\
         our simulated setup traces are shorter than real captures, which shrinks the\n\
         quadratic edit-distance cost). The reproduced pipeline-level properties are:\n\
         identification completes in well under a second; discrimination is needed only\n\
         for a minority of fingerprints and over few candidate types; and edit-distance\n\
         cost grows quadratically with fingerprint length while classification stays\n\
         near-constant (see `cargo bench -p sentinel-bench --bench editdist`), which is\n\
         the paper's argument for classifying first and discriminating second."
    );
}
