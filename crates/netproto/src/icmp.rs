//! ICMPv4 (RFC 792) messages.

use bytes::{BufMut, Bytes};
use serde::{Deserialize, Serialize};

use crate::ipv4::internet_checksum;
use crate::ParseError;

/// Length of the fixed ICMP header (type, code, checksum, rest-of-header).
pub const HEADER_LEN: usize = 8;

/// ICMP message type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IcmpType {
    /// Echo reply (0).
    EchoReply,
    /// Destination unreachable (3).
    DestinationUnreachable,
    /// Echo request (8).
    EchoRequest,
    /// Time exceeded (11).
    TimeExceeded,
    /// Any other type.
    Other(u8),
}

impl IcmpType {
    /// The raw type byte.
    pub fn to_u8(self) -> u8 {
        match self {
            IcmpType::EchoReply => 0,
            IcmpType::DestinationUnreachable => 3,
            IcmpType::EchoRequest => 8,
            IcmpType::TimeExceeded => 11,
            IcmpType::Other(v) => v,
        }
    }

    /// Classifies a raw type byte.
    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => IcmpType::EchoReply,
            3 => IcmpType::DestinationUnreachable,
            8 => IcmpType::EchoRequest,
            11 => IcmpType::TimeExceeded,
            v => IcmpType::Other(v),
        }
    }
}

/// An ICMPv4 message.
///
/// ```
/// use sentinel_netproto::icmp::{IcmpMessage, IcmpType};
///
/// let ping = IcmpMessage::echo_request(1, 0, b"connectivity-check".as_slice());
/// assert_eq!(ping.icmp_type, IcmpType::EchoRequest);
/// let mut buf = Vec::new();
/// ping.encode(&mut buf);
/// assert_eq!(IcmpMessage::parse(&buf).unwrap(), ping);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IcmpMessage {
    /// Message type.
    pub icmp_type: IcmpType,
    /// Message code.
    pub code: u8,
    /// The 4 "rest of header" bytes (identifier/sequence for echo).
    pub rest: [u8; 4],
    /// Message payload.
    pub payload: Bytes,
}

impl IcmpMessage {
    /// An echo request with the given identifier, sequence and payload.
    pub fn echo_request(identifier: u16, sequence: u16, payload: impl Into<Bytes>) -> Self {
        let mut rest = [0u8; 4];
        rest[..2].copy_from_slice(&identifier.to_be_bytes());
        rest[2..].copy_from_slice(&sequence.to_be_bytes());
        IcmpMessage {
            icmp_type: IcmpType::EchoRequest,
            code: 0,
            rest,
            payload: payload.into(),
        }
    }

    /// Wire length of the encoded message.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// Appends the message bytes (with computed checksum) to `buf`.
    pub fn encode(&self, buf: &mut impl BufMut) {
        let mut raw = Vec::with_capacity(self.wire_len());
        raw.put_u8(self.icmp_type.to_u8());
        raw.put_u8(self.code);
        raw.put_u16(0);
        raw.put_slice(&self.rest);
        raw.put_slice(&self.payload);
        let checksum = internet_checksum(&raw);
        raw[2..4].copy_from_slice(&checksum.to_be_bytes());
        buf.put_slice(&raw);
    }

    /// Parses an ICMPv4 message.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Truncated`] on short input and
    /// [`ParseError::Invalid`] on checksum mismatch.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        if bytes.len() < HEADER_LEN {
            return Err(ParseError::truncated("icmp", HEADER_LEN, bytes.len()));
        }
        if internet_checksum(bytes) != 0 {
            return Err(ParseError::invalid("icmp", "checksum mismatch"));
        }
        Ok(IcmpMessage {
            icmp_type: IcmpType::from_u8(bytes[0]),
            code: bytes[1],
            rest: bytes[4..8].try_into().expect("slice of 4"),
            payload: Bytes::copy_from_slice(&bytes[HEADER_LEN..]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let msg = IcmpMessage::echo_request(0x1234, 7, vec![1, 2, 3]);
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        assert_eq!(IcmpMessage::parse(&buf).unwrap(), msg);
    }

    #[test]
    fn checksum_detects_corruption() {
        let msg = IcmpMessage::echo_request(1, 1, Vec::new());
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        buf[1] ^= 1;
        assert!(IcmpMessage::parse(&buf).is_err());
    }

    #[test]
    fn truncated_rejected() {
        assert!(IcmpMessage::parse(&[8, 0, 0]).is_err());
    }

    #[test]
    fn echo_request_encodes_id_and_seq() {
        let msg = IcmpMessage::echo_request(0xbeef, 0x0102, Vec::new());
        assert_eq!(msg.rest, [0xbe, 0xef, 0x01, 0x02]);
    }
}
