//! Merging many setup traces into one interleaved capture stream.
//!
//! The lab of Fig. 4 onboards one device at a time, but a production
//! gateway sees the setup bursts of many devices interleaved on the same
//! interface. [`interleave`] builds that workload from simulated
//! [`SetupTrace`]s: each trace is shifted by a per-trace start offset and
//! the packets are merged into one globally timestamp-ordered stream,
//! preserving per-device packet order.

use std::time::Duration;

use sentinel_netproto::Packet;

use crate::SetupTrace;

/// Merges `traces` into one timestamp-ordered packet stream, starting
/// trace `i` at `i * stagger`.
///
/// Equal-timestamp packets from different traces keep trace order, and
/// packets within one trace always keep their original order, so each
/// device's sub-sequence of the merged stream is exactly its trace.
///
/// ```
/// use sentinel_devicesim::{catalog, interleave, Testbed};
/// use std::time::Duration;
///
/// let devices = catalog();
/// let testbed = Testbed::new(3);
/// let traces: Vec<_> = (0..4)
///     .map(|i| testbed.setup_run(&devices[i].profile, 0))
///     .collect();
/// let stream = interleave(&traces, Duration::from_millis(40));
/// assert_eq!(stream.len(), traces.iter().map(|t| t.packets.len()).sum::<usize>());
/// assert!(stream.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
/// ```
pub fn interleave(traces: &[SetupTrace], stagger: Duration) -> Vec<Packet> {
    interleave_at(traces, |index| stagger * index as u32)
}

/// Like [`interleave`], with an explicit start offset per trace index
/// (e.g. devices arriving in bursts, or a seeded arrival process).
pub fn interleave_at(traces: &[SetupTrace], start_of: impl Fn(usize) -> Duration) -> Vec<Packet> {
    let mut tagged: Vec<(usize, usize, Packet)> = Vec::new();
    for (trace_index, trace) in traces.iter().enumerate() {
        let offset = start_of(trace_index);
        for (packet_index, packet) in trace.packets.iter().enumerate() {
            let mut shifted = packet.clone();
            shifted.timestamp = packet.timestamp + offset;
            tagged.push((trace_index, packet_index, shifted));
        }
    }
    // Stable total order: capture time, then trace, then packet number —
    // reruns of the same traces always produce the same stream.
    tagged.sort_by_key(|(trace, index, packet)| (packet.timestamp, *trace, *index));
    tagged.into_iter().map(|(_, _, packet)| packet).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{catalog, Testbed};

    fn traces(n: usize) -> Vec<SetupTrace> {
        let devices = catalog();
        let testbed = Testbed::new(77);
        (0..n)
            .map(|i| testbed.setup_run(&devices[i % devices.len()].profile, i as u64))
            .collect()
    }

    #[test]
    fn merged_stream_is_timestamp_ordered_and_complete() {
        let traces = traces(6);
        let stream = interleave(&traces, Duration::from_millis(25));
        let total: usize = traces.iter().map(|t| t.packets.len()).sum();
        assert_eq!(stream.len(), total);
        assert!(stream.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    }

    #[test]
    fn per_device_subsequence_equals_original_trace() {
        let traces = traces(8);
        let stream = interleave(&traces, Duration::from_millis(10));
        for trace in &traces {
            let device_packets: Vec<_> = stream
                .iter()
                .filter(|p| p.src_mac() == trace.mac)
                .cloned()
                .map(|mut p| {
                    // Undo the uniform shift to compare against the raw trace.
                    p.timestamp = sentinel_netproto::Timestamp::from_micros(
                        p.timestamp.as_micros() - (stream_offset(&traces, trace)),
                    );
                    p
                })
                .collect();
            assert_eq!(device_packets, trace.packets, "trace {}", trace.mac);
        }
    }

    fn stream_offset(traces: &[SetupTrace], trace: &SetupTrace) -> u64 {
        let index = traces.iter().position(|t| t.mac == trace.mac).unwrap();
        Duration::from_millis(10 * index as u64).as_micros() as u64
    }

    #[test]
    fn zero_stagger_interleaves_concurrent_setups() {
        let traces = traces(4);
        let stream = interleave(&traces, Duration::ZERO);
        // With all devices starting at once, the head of the stream mixes
        // MACs rather than finishing one device first.
        let first_macs: Vec<_> = stream.iter().take(8).map(|p| p.src_mac()).collect();
        let distinct = first_macs
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert!(distinct >= 3, "expected interleaving, got {first_macs:?}");
    }
}
