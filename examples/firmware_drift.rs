//! Firmware updates change fingerprints (Sect. VIII-B): the paper
//! observed that devices updated during data collection produced
//! fingerprints distinguishable from their older firmware — which is a
//! feature, since patched firmware should be re-assessed.
//!
//! This example trains a classifier on (SmarterCoffee, firmware v1) vs
//! (SmarterCoffee, firmware v2) fingerprints and shows the two versions
//! separate cleanly, exactly as the paper's device-type definition
//! ("make + model + software version") requires.
//!
//! ```text
//! cargo run --release --example firmware_drift
//! ```

use iot_sentinel::devicesim::{catalog, Testbed};
use iot_sentinel::fingerprint::{extract, FixedFingerprint};
use iot_sentinel::ml::{crossval::stratified_k_fold, Dataset, ForestConfig, RandomForest};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let devices = catalog();
    let coffee = devices
        .iter()
        .find(|d| d.info.identifier == "SmarterCoffee")
        .expect("catalog");
    let testbed = Testbed::new(33);

    // Collect 20 runs of each firmware version.
    let v1 = coffee.profile.clone();
    let v2 = coffee.profile.clone().with_firmware(2);
    let mut data = Dataset::new(276);
    for run in 0..20 {
        for (version, profile) in [(0usize, &v1), (1usize, &v2)] {
            let trace = testbed.setup_run(profile, run + version as u64 * 1000);
            let full = extract(&trace.packets);
            let fixed = FixedFingerprint::from_fingerprint(&full);
            data.push(fixed.as_slice(), version);
        }
    }

    // 5-fold CV: can a classifier tell the versions apart?
    let mut rng = StdRng::seed_from_u64(9);
    let folds = stratified_k_fold(data.labels(), 5, &mut rng);
    let mut correct = 0;
    let mut total = 0;
    for fold in &folds {
        let train = data.subset(&fold.train);
        let forest = RandomForest::fit(&train, &ForestConfig::default().with_seed(3));
        for &i in &fold.test {
            total += 1;
            if forest.predict(data.row(i)) == data.label(i) {
                correct += 1;
            }
        }
    }
    let accuracy = correct as f64 / total as f64;
    println!("firmware v1 vs v2 classification accuracy: {accuracy:.3} ({correct}/{total})");
    println!(
        "=> a firmware update produces a distinguishable fingerprint, so the IoTSSP\n\
           treats it as a new device-type and re-runs the vulnerability assessment\n\
           (paper Sect. VIII-B: updated devices 'led to generate distinguishable\n\
           fingerprints between software versions')."
    );
}
