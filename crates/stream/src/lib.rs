//! `sentinel-stream`: bounded-memory streaming onboarding for
//! interleaved multi-device traffic.
//!
//! The paper's Security Gateway (Sect. III-A, V) onboards devices one at
//! a time from a buffered capture. A production gateway instead watches
//! one continuous, interleaved stream in which hundreds of devices may
//! be mid-setup simultaneously. This crate provides that runtime:
//!
//! * [`Session`] — per-device setup monitoring that feeds packets
//!   straight into the incremental feature extractor, so raw packets are
//!   never retained; per-session memory is bounded by the detector's
//!   packet cap (plus an optional byte cap).
//! * [`SessionTable`] — a capacity-bounded table with deterministic
//!   LRU shedding as the explicit overflow policy.
//! * [`StreamRuntime`] — demultiplexes a [`PacketSource`] by source MAC
//!   across fixed virtual shards, runs setup-end detection (idle gap,
//!   packet cap, byte cap), and drives each completed setup through the
//!   same assess → enforce path as the batch gateway. Decisions are
//!   bit-identical to onboarding each device alone, at any thread count
//!   and batch size. [`StreamRuntime::run_frames`] is the zero-copy hot
//!   path: it ingests a [`FrameSource`] of raw Ethernet frames through
//!   the single-pass wire scanner (`sentinel_netproto::scan`) and never
//!   constructs a packet for a frame the scanner can certify, with
//!   identical reports and stats.
//! * [`StreamStats`] — the counters an operator needs: throughput,
//!   session lifecycle, shedding, peak concurrency, outcome mix.
//!
//! # Example
//!
//! ```
//! use sentinel_core::{FingerprintDataset, IoTSecurityService, ServiceConfig};
//! use sentinel_devicesim::{catalog, interleave, Testbed};
//! use sentinel_netproto::stream::MemorySource;
//! use sentinel_stream::{StreamConfig, StreamRuntime};
//! use std::time::Duration;
//!
//! // Train the IoTSSP once.
//! let devices: Vec<_> = catalog().into_iter().take(3).collect();
//! let dataset = FingerprintDataset::collect(&devices, 8, 42);
//! let service = IoTSecurityService::train(&dataset, &ServiceConfig::default());
//!
//! // Five devices set up concurrently on one interface.
//! let testbed = Testbed::new(7);
//! let traces: Vec<_> = (0..5)
//!     .map(|i| testbed.setup_run(&devices[i % 3].profile, 90 + i as u64))
//!     .collect();
//! let stream = interleave(&traces, Duration::from_millis(25));
//!
//! let mut runtime = StreamRuntime::with_config(service, StreamConfig::default());
//! let reports = runtime.run(MemorySource::new(stream)).unwrap();
//! assert_eq!(reports.len(), 5);
//! assert_eq!(runtime.stats().sessions_completed(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod runtime;
mod session;
mod stats;
mod table;

pub use runtime::{apply_onboarding, Completion, StreamConfig, StreamRuntime};
pub use session::{CompletionReason, Session, SessionEvent};
pub use stats::StreamStats;
pub use table::{Admission, SessionTable};

pub use sentinel_netproto::stream::{FrameSource, MemoryFrameSource, MemorySource, PacketSource};
