//! The "one classifier per device-type" scalability story (Sect. IV-B.1):
//! new types are added without relearning, and unknown types are
//! surfaced rather than force-assigned.

use iot_sentinel::devicesim::{catalog, DeviceProfile, Phase, RawDest, Testbed};
use iot_sentinel::fingerprint::{extract, FixedFingerprint};
use iot_sentinel::ml::ForestConfig;
use iot_sentinel::prelude::*;

fn fast_bank_config() -> BankConfig {
    BankConfig {
        forest: ForestConfig::default().with_trees(40),
        ..BankConfig::default()
    }
}

#[test]
fn adding_a_type_never_changes_existing_classifiers() {
    let devices = catalog();
    let first10 = FingerprintDataset::collect(&devices[..10], 8, 5);
    let first11 = FingerprintDataset::collect(&devices[..11], 8, 5);
    let mut bank = ClassifierBank::train(&first10, &fast_bank_config());

    // Record every existing classifier's confidence on a probe set.
    let probes: Vec<usize> = (0..first11.len()).step_by(7).collect();
    let before: Vec<f64> = probes
        .iter()
        .flat_map(|&i| (0..10).map(move |l| (i, l)))
        .map(|(i, l)| bank.confidence(l, first11.fixed(i)))
        .collect();

    bank.add_type(devices[10].info.identifier, &first11);

    let after: Vec<f64> = probes
        .iter()
        .flat_map(|&i| (0..10).map(move |l| (i, l)))
        .map(|(i, l)| bank.confidence(l, first11.fixed(i)))
        .collect();
    assert_eq!(before, after, "existing classifiers must be untouched");
    assert_eq!(bank.n_types(), 11);
}

#[test]
fn grown_bank_identifies_the_new_type() {
    let devices = catalog();
    let without = FingerprintDataset::collect(&devices[..8], 10, 6);
    let with = FingerprintDataset::collect(&devices[..9], 10, 6);
    let mut bank = ClassifierBank::train(&without, &fast_bank_config());
    let label = bank.add_type(devices[8].info.identifier, &with);

    // Held-out runs of the new type (EdimaxCam) must be accepted by its
    // fresh classifier.
    let holdout = Testbed::new(1234);
    let mut accepted = 0;
    for run in 0..6 {
        let trace = holdout.setup_run(&devices[8].profile, run);
        let fixed = FixedFingerprint::from_fingerprint(&extract(&trace.packets));
        if bank.accepts(label, &fixed) {
            accepted += 1;
        }
    }
    assert!(accepted >= 5, "only {accepted}/6 held-out runs accepted");
}

#[test]
fn truly_novel_traffic_is_flagged_unknown() {
    let devices = catalog();
    let dataset = FingerprintDataset::collect(&devices, 8, 7);
    let identifier = Identifier::train(
        &dataset,
        &IdentifierConfig {
            bank: fast_bank_config(),
            ..IdentifierConfig::default()
        },
    );

    // Industrial-looking traffic unlike any consumer IoT profile.
    let mut plc = DeviceProfile::new("FactoryPLC", [0xac, 0xde, 0x48]);
    plc.extend_phases([
        Phase::Stp { count: 4 },
        Phase::UdpRaw {
            dest: RawDest::Gateway,
            port: 34964,
            sizes: vec![1400, 1400, 1400],
        },
        Phase::TcpRaw {
            dest: RawDest::Gateway,
            port: 102,
            sizes: vec![1200, 60, 1200],
        },
        Phase::Ping { count: 5 },
    ]);
    let testbed = Testbed::new(55);
    let mut unknown = 0;
    for run in 0..5 {
        let trace = testbed.setup_run(&plc, run);
        let full = extract(&trace.packets);
        let fixed = FixedFingerprint::from_fingerprint(&full);
        if identifier.identify(&full, &fixed).label().is_none() {
            unknown += 1;
        }
    }
    assert!(unknown >= 4, "only {unknown}/5 runs flagged unknown");
}
