//! Property tests for the enforcement substrate: the isolation
//! invariants of Fig. 3 hold for *arbitrary* rule sets and flows, and the
//! switch/rule-cache state machines stay coherent under random workloads.

use proptest::prelude::*;
use std::net::{IpAddr, Ipv4Addr};

use sentinel_netproto::{AppPayload, MacAddr, Packet, Timestamp};
use sentinel_sdn::overlay::Overlay;
use sentinel_sdn::{
    Destination, EnforcementModule, EnforcementRule, FlowAction, IsolationLevel, OvsSwitch,
    RuleCache, Verdict,
};

fn mac_strategy() -> impl Strategy<Value = MacAddr> {
    (0u8..8).prop_map(|last| MacAddr::new([2, 0, 0, 0, 0, last]))
}

fn level_strategy() -> impl Strategy<Value = IsolationLevel> {
    prop_oneof![
        Just(IsolationLevel::Strict),
        Just(IsolationLevel::Restricted),
        Just(IsolationLevel::Trusted),
    ]
}

fn public_ip_strategy() -> impl Strategy<Value = IpAddr> {
    (1u8..200, any::<u8>(), any::<u8>(), 1u8..255)
        .prop_map(|(a, b, c, d)| IpAddr::V4(Ipv4Addr::new(a.max(11), b, c, d)))
}

fn rule_for(mac: MacAddr, level: IsolationLevel, whitelist: &[IpAddr]) -> EnforcementRule {
    match level {
        IsolationLevel::Strict => EnforcementRule::strict(mac),
        IsolationLevel::Restricted => EnforcementRule::restricted(mac, whitelist.iter().copied()),
        IsolationLevel::Trusted => EnforcementRule::trusted(mac),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The central security invariant: traffic between two devices is
    /// allowed iff they share an overlay, for every combination of
    /// (installed or defaulted) isolation levels.
    #[test]
    fn device_to_device_respects_overlays(
        src_level in proptest::option::of(level_strategy()),
        dst_level in proptest::option::of(level_strategy()),
    ) {
        let src = MacAddr::new([2, 0, 0, 0, 0, 1]);
        let dst = MacAddr::new([2, 0, 0, 0, 0, 2]);
        let mut module = EnforcementModule::new();
        if let Some(level) = src_level {
            module.install_rule(rule_for(src, level, &[]));
        }
        if let Some(level) = dst_level {
            module.install_rule(rule_for(dst, level, &[]));
        }
        let effective = |level: Option<IsolationLevel>| level.unwrap_or(IsolationLevel::Strict);
        let expected = Overlay::for_level(effective(src_level))
            .reachable(Overlay::for_level(effective(dst_level)));
        let verdict = module.decide(src, Destination::Device(dst));
        prop_assert_eq!(verdict.is_allow(), expected);
    }

    /// Internet access: strict never, trusted always, restricted iff
    /// whitelisted — for arbitrary whitelists and destinations.
    #[test]
    fn internet_access_follows_fig3(
        level in level_strategy(),
        whitelist in proptest::collection::vec(public_ip_strategy(), 0..4),
        target in public_ip_strategy(),
    ) {
        let mac = MacAddr::new([2, 0, 0, 0, 0, 3]);
        let mut module = EnforcementModule::new();
        module.install_rule(rule_for(mac, level, &whitelist));
        let verdict = module.decide(mac, Destination::Internet(target));
        let expected = match level {
            IsolationLevel::Strict => false,
            IsolationLevel::Trusted => true,
            IsolationLevel::Restricted => whitelist.contains(&target),
        };
        prop_assert_eq!(verdict.is_allow(), expected, "level {}", level);
    }

    /// A strict device can never obtain internet access, no matter what
    /// sequence of other rules is installed around it.
    #[test]
    fn strict_device_never_escapes(
        other_rules in proptest::collection::vec((mac_strategy(), level_strategy()), 0..8),
        target in public_ip_strategy(),
    ) {
        let victim = MacAddr::new([2, 0, 0, 0, 1, 99]);
        let mut module = EnforcementModule::new();
        module.install_rule(EnforcementRule::strict(victim));
        for (mac, level) in other_rules {
            if mac != victim {
                module.install_rule(rule_for(mac, level, &[target]));
            }
        }
        prop_assert_eq!(
            module.decide(victim, Destination::Internet(target)).is_allow(),
            false
        );
    }

    /// The switch's cached decision always equals the controller's
    /// verdict, and re-processing never raises a second packet-in.
    #[test]
    fn switch_cache_is_coherent(
        level in level_strategy(),
        dst_last_octet in 1u8..255,
        port in 1024u16..60000,
    ) {
        let mac = MacAddr::new([2, 0, 0, 0, 0, 5]);
        let mut module = EnforcementModule::new();
        module.install_rule(rule_for(mac, level, &[]));
        let mut switch = OvsSwitch::lab();
        let packet = Packet::udp_ipv4(
            Timestamp::ZERO,
            mac,
            MacAddr::new([2, 9, 9, 9, 9, 9]),
            Ipv4Addr::new(192, 168, 0, 50),
            Ipv4Addr::new(52, 1, 1, dst_last_octet),
            port,
            443,
            AppPayload::Empty,
        );
        let verdict = module.decide_packet(&packet, Ipv4Addr::new(192, 168, 0, 0), 24);
        let first = switch.process(&packet, &mut module);
        let second = switch.process(&packet, &mut module);
        prop_assert!(first.packet_in);
        prop_assert!(!second.packet_in);
        prop_assert_eq!(first.action, second.action);
        let expected = match verdict {
            Verdict::Allow => FlowAction::Forward,
            Verdict::Deny(_) => FlowAction::Drop,
        };
        prop_assert_eq!(first.action, expected);
    }

    /// Rule-cache bookkeeping: size and memory track inserts/removes for
    /// arbitrary operation sequences.
    #[test]
    fn rule_cache_bookkeeping(ops in proptest::collection::vec((0u8..16, any::<bool>()), 1..64)) {
        let mut cache = RuleCache::new();
        let mut reference = std::collections::HashMap::new();
        for (id, insert) in ops {
            let mac = MacAddr::new([3, 0, 0, 0, 0, id]);
            if insert {
                cache.insert(EnforcementRule::strict(mac));
                reference.insert(mac, ());
            } else {
                let removed = cache.remove(mac);
                prop_assert_eq!(removed.is_some(), reference.remove(&mac).is_some());
            }
            prop_assert_eq!(cache.len(), reference.len());
        }
        // Memory estimate scales exactly with population for uniform rules.
        let per_rule = if cache.is_empty() {
            0
        } else {
            cache.memory_bytes() / cache.len()
        };
        prop_assert_eq!(cache.memory_bytes(), per_rule * cache.len());
        // LRU eviction respects the cap for any cap.
        let evicted = cache.evict_to(4);
        prop_assert!(cache.len() <= 4);
        prop_assert_eq!(evicted.len() + cache.len(), reference.len());
    }

    /// Broadcast/multicast destinations are classified as local and
    /// allowed (they cannot cross overlays by construction).
    #[test]
    fn broadcast_is_local(level in level_strategy()) {
        let mac = MacAddr::new([2, 0, 0, 0, 0, 6]);
        let mut module = EnforcementModule::new();
        module.install_rule(rule_for(mac, level, &[]));
        let packet = Packet::dhcp_discover(mac, 1, 0);
        let dst = Destination::of_packet(&packet, Ipv4Addr::new(192, 168, 0, 0), 24);
        prop_assert_eq!(dst, Destination::LocalBroadcast);
        prop_assert!(module.decide(mac, dst).is_allow());
    }
}
