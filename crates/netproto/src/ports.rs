//! Well-known transport port numbers used for application-protocol
//! classification (Table I of the paper).

/// HTTP.
pub const HTTP: u16 = 80;
/// Alternate HTTP port common on IoT device web UIs.
pub const HTTP_ALT: u16 = 8080;
/// HTTPS (TLS).
pub const HTTPS: u16 = 443;
/// DHCP/BOOTP server.
pub const DHCP_SERVER: u16 = 67;
/// DHCP/BOOTP client.
pub const DHCP_CLIENT: u16 = 68;
/// DNS.
pub const DNS: u16 = 53;
/// Multicast DNS.
pub const MDNS: u16 = 5353;
/// Simple Service Discovery Protocol (UPnP).
pub const SSDP: u16 = 1900;
/// Network Time Protocol.
pub const NTP: u16 = 123;

/// Returns `true` if `port` is in the IANA well-known range `0..=1023`.
pub fn is_well_known(port: u16) -> bool {
    port <= 1023
}

/// Returns `true` if `port` is in the IANA registered range `1024..=49151`.
pub fn is_registered(port: u16) -> bool {
    (1024..=49151).contains(&port)
}

/// Returns `true` if `port` is in the IANA dynamic/ephemeral range
/// `49152..=65535`.
pub fn is_dynamic(port: u16) -> bool {
    port >= 49152
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_port_space() {
        for port in [0u16, 80, 1023, 1024, 5353, 49151, 49152, 65535] {
            let classes = [is_well_known(port), is_registered(port), is_dynamic(port)];
            assert_eq!(
                classes.iter().filter(|&&c| c).count(),
                1,
                "port {port} must fall in exactly one class"
            );
        }
    }

    #[test]
    fn boundary_values() {
        assert!(is_well_known(1023));
        assert!(is_registered(1024));
        assert!(is_registered(49151));
        assert!(is_dynamic(49152));
    }
}
