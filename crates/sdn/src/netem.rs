//! The gateway cost model: latency, CPU and memory of the Raspberry Pi 2
//! Security Gateway deployment (Tables V–VI, Fig. 6).
//!
//! The paper measured a physical Raspberry Pi running OVS + the
//! controller. We substitute a calibrated analytical model with
//! stochastic noise: parameters are matched to the magnitudes the paper
//! reports, and the *experiments* then measure the same relationships
//! the paper's figures show (flat latency/CPU versus concurrent flows,
//! linear memory versus rule count, sub-10 % filtering overhead). The
//! enforcement code path itself (switch + rule cache) is real — the
//! model only prices it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

use crate::topology::{Host, PathKind};

/// Calibration constants for the gateway cost model.
///
/// Defaults reproduce the paper's reported magnitudes; the fields are
/// public so ablations can sweep them.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Fixed forwarding cost through the gateway data plane (ms).
    pub forwarding_ms: f64,
    /// Internet transit added on remote paths (ms).
    pub internet_ms: f64,
    /// Per-packet cost of the filtering lookup (hash-table rule cache +
    /// flow-table match), in ms. O(1): independent of rule count.
    pub filter_lookup_ms: f64,
    /// Additional per-concurrent-flow queueing cost (ms per flow).
    pub per_flow_ms: f64,
    /// Gaussian latency jitter (stdev, ms).
    pub jitter_ms: f64,
    /// Baseline CPU utilization of the gateway stack (%).
    pub cpu_base: f64,
    /// CPU cost per concurrent flow (%).
    pub cpu_per_flow: f64,
    /// Additional CPU cost of the filtering mechanism (%).
    pub cpu_filtering: f64,
    /// CPU noise (stdev, %).
    pub cpu_jitter: f64,
    /// Baseline process memory (MB).
    pub memory_base_mb: f64,
    /// Memory per cached enforcement rule (KB). The paper's Fig. 6c
    /// slope (~100 MB at 20 000 rules) includes JVM/controller object
    /// overhead, far above the raw rule struct size.
    pub memory_per_rule_kb: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            forwarding_ms: 0.4,
            internet_ms: 5.3,
            filter_lookup_ms: 0.22,
            per_flow_ms: 0.004,
            jitter_ms: 1.35,
            cpu_base: 36.8,
            cpu_per_flow: 0.078,
            cpu_filtering: 0.63,
            cpu_jitter: 0.9,
            memory_base_mb: 5.8,
            memory_per_rule_kb: 4.9,
        }
    }
}

/// The gateway emulator: applies the [`CostModel`] with seeded noise.
#[derive(Debug)]
pub struct GatewayEmulator {
    model: CostModel,
    rng: StdRng,
}

impl GatewayEmulator {
    /// Creates an emulator with the default calibration and a noise seed.
    pub fn new(seed: u64) -> Self {
        GatewayEmulator {
            model: CostModel::default(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Creates an emulator with an explicit cost model.
    pub fn with_model(model: CostModel, seed: u64) -> Self {
        GatewayEmulator {
            model,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The calibration in effect.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// One round-trip latency measurement between two hosts (the paper's
    /// Table V methodology: ping through the gateway).
    pub fn measure_latency(
        &mut self,
        src: &Host,
        dst: &Host,
        path: PathKind,
        filtering: bool,
        concurrent_flows: usize,
    ) -> Duration {
        let mut ms = self.model.forwarding_ms + src.link_latency_ms + dst.link_latency_ms;
        if path == PathKind::DeviceToRemote {
            ms += self.model.internet_ms;
        }
        if filtering {
            ms += self.model.filter_lookup_ms;
            ms += self.model.per_flow_ms * concurrent_flows as f64;
        }
        ms += self.gaussian(self.model.jitter_ms);
        Duration::from_secs_f64((ms.max(0.1)) / 1e3)
    }

    /// One CPU-utilization sample (%) for the given load (Fig. 6b).
    pub fn measure_cpu(&mut self, concurrent_flows: usize, filtering: bool) -> f64 {
        let mut cpu = self.model.cpu_base + self.model.cpu_per_flow * concurrent_flows as f64;
        if filtering {
            cpu += self.model.cpu_filtering;
        }
        cpu += self.gaussian(self.model.cpu_jitter);
        cpu.clamp(0.0, 100.0)
    }

    /// Gateway process memory (MB) with the given rule-cache population
    /// (Fig. 6c). Without filtering the rule cache is not allocated.
    pub fn measure_memory_mb(&mut self, rules: usize, filtering: bool) -> f64 {
        let mut mb = self.model.memory_base_mb;
        if filtering {
            mb += rules as f64 * self.model.memory_per_rule_kb / 1024.0;
        }
        mb + self.gaussian(0.15).abs()
    }

    /// Approximate standard normal sample scaled by `stdev` (Irwin–Hall
    /// sum of 12 uniforms).
    fn gaussian(&mut self, stdev: f64) -> f64 {
        let sum: f64 = (0..12).map(|_| self.rng.gen::<f64>()).sum();
        (sum - 6.0) * stdev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    fn summarize(samples: Vec<f64>) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, var.sqrt())
    }

    fn latency_mean(src: &str, dst: &str, filtering: bool) -> f64 {
        let lab = Topology::lab();
        let mut emulator = GatewayEmulator::new(1);
        let s = lab.host(src).unwrap();
        let d = lab.host(dst).unwrap();
        let path = lab.path_kind(s, d);
        let samples: Vec<f64> = (0..200)
            .map(|_| {
                emulator
                    .measure_latency(s, d, path, filtering, 10)
                    .as_secs_f64()
                    * 1e3
            })
            .collect();
        summarize(samples).0
    }

    #[test]
    fn latency_magnitudes_match_table_v() {
        // D->D 24-29 ms, D->Slocal 13-19 ms, D->Sremote 19-27 ms.
        let dd = latency_mean("D1", "D4", true);
        assert!((23.0..30.0).contains(&dd), "D1-D4 {dd}");
        let dl = latency_mean("D1", "Slocal", true);
        assert!((12.0..20.0).contains(&dl), "D1-Slocal {dl}");
        let dr = latency_mean("D1", "Sremote", true);
        assert!((18.0..32.0).contains(&dr), "D1-Sremote {dr}");
        assert!(dd > dl, "two radio hops beat one");
        assert!(dr > dl, "internet transit adds latency");
    }

    #[test]
    fn filtering_overhead_is_small() {
        let with = latency_mean("D1", "D2", true);
        let without = latency_mean("D1", "D2", false);
        let overhead = (with - without) / without * 100.0;
        assert!(
            (-2.0..10.0).contains(&overhead),
            "filtering overhead {overhead}% out of Table VI range"
        );
    }

    #[test]
    fn cpu_grows_mildly_with_flows() {
        let mut emulator = GatewayEmulator::new(2);
        let low: Vec<f64> = (0..50).map(|_| emulator.measure_cpu(0, true)).collect();
        let high: Vec<f64> = (0..50).map(|_| emulator.measure_cpu(150, true)).collect();
        let (low_mean, _) = summarize(low);
        let (high_mean, _) = summarize(high);
        assert!((35.0..40.0).contains(&low_mean), "{low_mean}");
        assert!((46.0..52.0).contains(&high_mean), "{high_mean}");
    }

    #[test]
    fn memory_linear_in_rules() {
        let mut emulator = GatewayEmulator::new(3);
        let at_0 = emulator.measure_memory_mb(0, true);
        let at_10k = emulator.measure_memory_mb(10_000, true);
        let at_20k = emulator.measure_memory_mb(20_000, true);
        assert!(at_0 < 8.0);
        assert!((85.0..110.0).contains(&at_20k), "{at_20k}");
        let slope1 = at_10k - at_0;
        let slope2 = at_20k - at_10k;
        assert!((slope1 - slope2).abs() < 3.0, "linear growth");
        // Without filtering memory stays flat.
        let no_filter = emulator.measure_memory_mb(20_000, false);
        assert!(no_filter < 8.0);
    }

    #[test]
    fn noise_is_reproducible_per_seed() {
        let lab = Topology::lab();
        let d1 = lab.host("D1").unwrap();
        let d2 = lab.host("D2").unwrap();
        let sample = |seed| {
            GatewayEmulator::new(seed).measure_latency(d1, d2, PathKind::DeviceToDevice, true, 5)
        };
        assert_eq!(sample(9), sample(9));
        assert_ne!(sample(9), sample(10));
    }
}
