//! Thread-count invariance: the parallel training and identification
//! paths must produce the same models, labels and evaluation outputs as
//! the exact sequential path, for every worker count.

use sentinel_bench::evaluation::{evaluate, EvalConfig};
use sentinel_core::{FingerprintDataset, Identifier, IdentifierConfig, Outcome};
use sentinel_devicesim::{catalog, Testbed};
use sentinel_fingerprint::{extract, FixedFingerprint};

fn identifier_config(threads: usize) -> IdentifierConfig {
    let mut config = IdentifierConfig {
        threads,
        ..IdentifierConfig::default()
    };
    config.bank.threads = threads;
    config.bank.forest.threads = threads;
    config
}

/// Same seed, thread counts 1 / 2 / 8: every holdout fingerprint gets
/// the identical outcome, candidate set and discrimination flag.
#[test]
fn identification_is_identical_for_every_thread_count() {
    let devices: Vec<_> = catalog().into_iter().take(8).collect();
    let dataset = FingerprintDataset::collect(&devices, 8, 11);
    let holdout = Testbed::new(11 ^ 0x5eed);
    let probes: Vec<_> = (0..16u64)
        .map(|run| {
            let device = &devices[(run as usize) % devices.len()];
            let trace = holdout.setup_run(&device.profile, run);
            let full = extract(&trace.packets);
            let fixed = FixedFingerprint::from_fingerprint(&full);
            (full, fixed)
        })
        .collect();

    let baseline: Vec<(Outcome, Vec<usize>, bool)> = {
        let identifier = Identifier::train(&dataset, &identifier_config(1));
        probes
            .iter()
            .map(|(full, fixed)| {
                let id = identifier.identify(full, fixed);
                (id.outcome, id.candidates.clone(), id.discriminated)
            })
            .collect()
    };

    for threads in [2, 8] {
        let identifier = Identifier::train(&dataset, &identifier_config(threads));
        for (i, (full, fixed)) in probes.iter().enumerate() {
            let id = identifier.identify(full, fixed);
            let (outcome, candidates, discriminated) = &baseline[i];
            assert_eq!(
                &id.outcome, outcome,
                "probe {i} diverged at {threads} threads"
            );
            assert_eq!(
                &id.candidates, candidates,
                "probe {i} diverged at {threads} threads"
            );
            assert_eq!(
                id.discriminated, *discriminated,
                "probe {i} diverged at {threads} threads"
            );
        }
    }
}

/// The full cross-validation evaluation merges fold results in fold
/// order, so accuracy and confusion are identical whether folds run on
/// one worker or many.
#[test]
fn evaluation_is_identical_for_every_worker_count() {
    let config = EvalConfig {
        runs: 6,
        folds: 3,
        repetitions: 1,
        trees: 25,
        workers: 1,
        seed: 7,
        ..EvalConfig::default()
    };
    let sequential = evaluate(&config);

    for workers in [2, 8] {
        let parallel = evaluate(&EvalConfig {
            workers,
            ..config.clone()
        });
        assert_eq!(
            parallel.confusion, sequential.confusion,
            "confusion diverged at {workers} workers"
        );
        assert_eq!(parallel.total, sequential.total);
        assert_eq!(parallel.discriminated, sequential.discriminated);
        assert_eq!(parallel.candidate_sum, sequential.candidate_sum);
        assert_eq!(parallel.global_accuracy(), sequential.global_accuracy());
    }
}
