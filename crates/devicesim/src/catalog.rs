//! The 27 device-types of the paper's Table II, as behaviour profiles.
//!
//! Profiles are synthetic but preserve the two properties the evaluation
//! depends on:
//!
//! 1. **Between-type diversity** — each type has a distinctive setup
//!    script (protocol mix, endpoint order, packet sizes), so the 17
//!    "easy" devices of Fig. 5 classify at ≥ 0.95.
//! 2. **Within-family similarity** — the D-Link sensor family
//!    (DSP-W215 / DCH-S160 / DCH-S220 / DCH-S150), the TP-Link plug pair,
//!    the Edimax plug pair and the two Smarter appliances run
//!    (near-)identical firmware and emit statistically identical setup
//!    traffic, reproducing the ≈0.5-accuracy block of Table III.

use serde::{Deserialize, Serialize};

use crate::{DeviceProfile, Phase, RawDest};

/// Connectivity technologies of a device (Table II columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Connectivity {
    /// WiFi.
    pub wifi: bool,
    /// ZigBee.
    pub zigbee: bool,
    /// Ethernet.
    pub ethernet: bool,
    /// Z-Wave.
    pub zwave: bool,
    /// Other (proprietary sub-GHz, etc.).
    pub other: bool,
}

impl Connectivity {
    const fn new(wifi: bool, zigbee: bool, ethernet: bool, zwave: bool, other: bool) -> Self {
        Connectivity {
            wifi,
            zigbee,
            ethernet,
            zwave,
            other,
        }
    }
}

/// Catalog metadata for one device-type (Table II row).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize)]
pub struct DeviceInfo {
    /// Short identifier (Fig. 5 axis label).
    pub identifier: &'static str,
    /// Full device model description.
    pub model: &'static str,
    /// Supported connectivity technologies.
    pub connectivity: Connectivity,
}

/// A catalog entry: Table II metadata plus the behaviour profile.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DeviceModel {
    /// Table II metadata.
    pub info: DeviceInfo,
    /// Setup behaviour profile.
    pub profile: DeviceProfile,
}

const OUI_FITBIT: [u8; 3] = [0x20, 0x4c, 0x03];
const OUI_EQ3: [u8; 3] = [0x00, 0x1a, 0x22];
const OUI_WITHINGS: [u8; 3] = [0x00, 0x24, 0xe4];
const OUI_PHILIPS: [u8; 3] = [0x00, 0x17, 0x88];
const OUI_EDNET: [u8; 3] = [0x84, 0xc9, 0xb2];
const OUI_EDIMAX: [u8; 3] = [0x74, 0xda, 0x38];
const OUI_OSRAM: [u8; 3] = [0x84, 0x18, 0x26];
const OUI_BELKIN: [u8; 3] = [0x94, 0x10, 0x3e];
const OUI_DLINK: [u8; 3] = [0xb0, 0xc5, 0x54];
const OUI_TPLINK: [u8; 3] = [0x50, 0xc7, 0xbf];
const OUI_SMARTER: [u8; 3] = [0x5c, 0xcf, 0x7f];

/// Builds the full 27-device catalog in Fig. 5 order.
pub fn catalog() -> Vec<DeviceModel> {
    vec![
        aria(),
        homematic_plug(),
        withings(),
        max_gateway(),
        hue_bridge(),
        hue_switch(),
        ednet_gateway(),
        ednet_cam(),
        edimax_cam(),
        lightify(),
        wemo_insight_switch(),
        wemo_link(),
        wemo_switch(),
        dlink_home_hub(),
        dlink_door_sensor(),
        dlink_day_cam(),
        dlink_cam(),
        dlink_family(
            "D-LinkSwitch",
            "D-Link Smart plug DSP-W215",
            "DSP-W215",
            true,
            0.30,
            0,
        ),
        dlink_family(
            "D-LinkWaterSensor",
            "D-Link Water sensor DCH-S160",
            "DCH-S160",
            false,
            0.80,
            3,
        ),
        dlink_family(
            "D-LinkSiren",
            "D-Link Siren DCH-S220",
            "DCH-S220",
            false,
            0.45,
            6,
        ),
        dlink_family(
            "D-LinkSensor",
            "D-Link WiFi Motion sensor DCH-S150",
            "DCH-S150",
            false,
            0.10,
            9,
        ),
        tplink_plug(
            "TP-LinkPlugHS110",
            "TP-Link WiFi Smart plug HS110",
            "HS110(EU)",
            4,
        ),
        tplink_plug(
            "TP-LinkPlugHS100",
            "TP-Link WiFi Smart plug HS100",
            "HS100(EU)",
            0,
        ),
        edimax_plug(
            "EdimaxPlug1101W",
            "Edimax SP-1101W Smart Plug Switch",
            "SP1101W",
        ),
        edimax_plug(
            "EdimaxPlug2101W",
            "Edimax SP-2101W Smart Plug Switch",
            "SP2101W",
        ),
        smarter_appliance(
            "SmarterCoffee",
            "Smarter SmarterCoffee coffee machine SMC10-EU",
            0,
        ),
        smarter_appliance("iKettle2", "Smarter iKettle 2.0 water kettle SMK20-EU", 3),
    ]
}

/// The vendor-family groups the paper's Table III shows as mutually
/// confusable, by Fig. 5 identifier. Index 0 of the first group
/// (`D-LinkSwitch`) is the partially-separable member (device 1 in
/// Table III).
pub fn confusable_groups() -> Vec<Vec<&'static str>> {
    vec![
        vec![
            "D-LinkSwitch",
            "D-LinkWaterSensor",
            "D-LinkSiren",
            "D-LinkSensor",
        ],
        vec!["TP-LinkPlugHS110", "TP-LinkPlugHS100"],
        vec!["EdimaxPlug1101W", "EdimaxPlug2101W"],
        vec!["SmarterCoffee", "iKettle2"],
    ]
}

fn model(
    identifier: &'static str,
    model: &'static str,
    connectivity: Connectivity,
    mut profile: DeviceProfile,
) -> DeviceModel {
    derive_standby(&mut profile);
    DeviceModel {
        info: DeviceInfo {
            identifier,
            model,
            connectivity,
        },
        profile,
    }
}

/// Derives a device's standby/operation cycle from its setup behaviour:
/// the heartbeat traffic mirrors the device's character (cloud pollers
/// poll, announcers re-announce, local-protocol devices chirp), which is
/// the paper's Sect. VIII-A working hypothesis — "message exchanges
/// during standby and operation cycles are likely to be characteristic
/// for particular device-types".
fn derive_standby(profile: &mut DeviceProfile) {
    let mut standby = vec![Phase::ArpProbe {
        count: 1,
        announce: true,
    }];
    for phase in &profile.phases {
        if standby.len() >= 5 {
            break;
        }
        match phase {
            Phase::Ntp { endpoint, .. } => {
                standby.push(Phase::Ntp {
                    endpoint: *endpoint,
                    count: 1,
                });
            }
            Phase::Tls {
                endpoint,
                port,
                hello_size,
                ..
            } => {
                // Periodic cloud check-in: reconnect + one status record.
                standby.push(Phase::Tls {
                    endpoint: *endpoint,
                    port: *port,
                    hello_size: *hello_size,
                    records: vec![64],
                });
            }
            Phase::HttpGet { endpoint, path } => {
                standby.push(Phase::HttpGet {
                    endpoint: *endpoint,
                    path: path.clone(),
                });
            }
            Phase::MdnsAnnounce { services } => {
                standby.push(Phase::MdnsAnnounce {
                    services: services.clone(),
                });
            }
            Phase::SsdpNotify { device_type, .. } => {
                standby.push(Phase::SsdpNotify {
                    device_type: device_type.clone(),
                    count: 1,
                });
            }
            Phase::UdpRaw { dest, port, sizes } => {
                standby.push(Phase::UdpRaw {
                    dest: *dest,
                    port: *port,
                    sizes: sizes[..1].to_vec(),
                });
            }
            _ => {}
        }
    }
    profile.standby_phases = standby;
}

fn aria() -> DeviceModel {
    let mut p = DeviceProfile::new("Aria", OUI_FITBIT);
    let cloud = p.endpoint("api.fitbit.com");
    let ntp = p.endpoint("fitbit.pool.ntp.org");
    p.extend_phases([
        Phase::Eapol,
        Phase::dhcp("Aria"),
        Phase::ArpProbe {
            count: 2,
            announce: true,
        },
        Phase::Dns {
            endpoint: cloud,
            aaaa: false,
        },
        Phase::Ntp {
            endpoint: ntp,
            count: 1,
        },
        Phase::Tls {
            endpoint: cloud,
            port: 443,
            hello_size: 198,
            records: vec![415, 167],
        },
        Phase::optional(
            0.3,
            Phase::Tls {
                endpoint: cloud,
                port: 443,
                hello_size: 198,
                records: vec![415],
            },
        ),
    ]);
    model(
        "Aria",
        "Fitbit Aria WiFi-enabled scale",
        Connectivity::new(true, false, false, false, false),
        p,
    )
}

fn homematic_plug() -> DeviceModel {
    let mut p = DeviceProfile::new("HomeMaticPlug", OUI_EQ3);
    let ccu = p.endpoint("lookup.homematic.com");
    p.extend_phases([
        Phase::Dhcp {
            hostname: Some("HM-CCU".into()),
            vendor_class: None,
            param_list: vec![1, 3, 6],
        },
        Phase::ArpProbe {
            count: 1,
            announce: false,
        },
        Phase::Dns {
            endpoint: ccu,
            aaaa: false,
        },
        Phase::UdpRaw {
            dest: RawDest::Endpoint(ccu),
            port: 43439,
            sizes: vec![45, 45, 77],
        },
        Phase::optional(
            0.4,
            Phase::UdpRaw {
                dest: RawDest::Endpoint(ccu),
                port: 43439,
                sizes: vec![45],
            },
        ),
    ]);
    model(
        "HomeMaticPlug",
        "Homematic pluggable switch HMIP-PS",
        Connectivity::new(false, false, false, false, true),
        p,
    )
}

fn withings() -> DeviceModel {
    let mut p = DeviceProfile::new("Withings", OUI_WITHINGS);
    let cloud = p.endpoint("scale.withings.com");
    let ntp = p.endpoint("time.withings.net");
    p.extend_phases([
        Phase::Eapol,
        Phase::dhcp("WS30"),
        Phase::ArpProbe {
            count: 3,
            announce: true,
        },
        Phase::Dns {
            endpoint: cloud,
            aaaa: true,
        },
        Phase::HttpGet {
            endpoint: cloud,
            path: "/cgi-bin/session".into(),
        },
        Phase::HttpPost {
            endpoint: cloud,
            path: "/cgi-bin/measure".into(),
            body_size: 240,
        },
        Phase::Ntp {
            endpoint: ntp,
            count: 1,
        },
    ]);
    model(
        "Withings",
        "Withings Wireless Scale WS-30",
        Connectivity::new(true, false, false, false, false),
        p,
    )
}

fn max_gateway() -> DeviceModel {
    let mut p = DeviceProfile::new("MAXGateway", OUI_EQ3);
    let cloud = p.endpoint("max.eq-3.de");
    let ntp = p.endpoint("ntp.homematic.com");
    p.extend_phases([
        Phase::Stp { count: 2 },
        Phase::Dhcp {
            hostname: Some("MAX!Cube".into()),
            vendor_class: Some("eQ-3 MAX!".into()),
            param_list: vec![1, 3, 6, 15],
        },
        Phase::ArpProbe {
            count: 1,
            announce: true,
        },
        Phase::Ipv6Bringup {
            mld_records: 1,
            router_solicit: false,
        },
        Phase::Dns {
            endpoint: cloud,
            aaaa: false,
        },
        Phase::TcpRaw {
            dest: RawDest::Endpoint(cloud),
            port: 62910,
            sizes: vec![26, 180, 64],
        },
        Phase::Ntp {
            endpoint: ntp,
            count: 2,
        },
    ]);
    model(
        "MAXGateway",
        "MAX! Cube LAN Gateway for MAX! Home automation sensors",
        Connectivity::new(false, false, true, false, true),
        p,
    )
}

fn hue_bridge() -> DeviceModel {
    let mut p = DeviceProfile::new("HueBridge", OUI_PHILIPS);
    let portal = p.endpoint("www.ecdinterface.philips.com");
    let cdn = p.endpoint("dcp.cpp.philips.com");
    let ntp = p.endpoint("ntp.philips.com");
    p.extend_phases([
        Phase::Stp { count: 1 },
        Phase::dhcp("Philips-hue"),
        Phase::ArpProbe {
            count: 2,
            announce: true,
        },
        Phase::Ipv6Bringup {
            mld_records: 2,
            router_solicit: true,
        },
        Phase::Dns {
            endpoint: portal,
            aaaa: false,
        },
        Phase::Dns {
            endpoint: cdn,
            aaaa: false,
        },
        Phase::Ntp {
            endpoint: ntp,
            count: 1,
        },
        Phase::Tls {
            endpoint: portal,
            port: 443,
            hello_size: 215,
            records: vec![600, 300, 150],
        },
        Phase::SsdpNotify {
            device_type: "urn:schemas-upnp-org:device:Basic:1".into(),
            count: 3,
        },
        Phase::MdnsAnnounce {
            services: vec!["_hue._tcp.local".into()],
        },
    ]);
    model(
        "HueBridge",
        "Philips Hue Bridge model 3241312018",
        Connectivity::new(false, true, true, false, false),
        p,
    )
}

fn hue_switch() -> DeviceModel {
    let mut p = DeviceProfile::new("HueSwitch", OUI_PHILIPS);
    p.extend_phases([
        Phase::ArpProbe {
            count: 1,
            announce: false,
        },
        Phase::UdpRaw {
            dest: RawDest::Gateway,
            port: 5607,
            sizes: vec![20, 20],
        },
        Phase::MdnsQuery {
            service: "_hue._tcp.local".into(),
        },
        Phase::optional(
            0.5,
            Phase::UdpRaw {
                dest: RawDest::Gateway,
                port: 5607,
                sizes: vec![20],
            },
        ),
    ]);
    model(
        "HueSwitch",
        "Philips Hue Light Switch PTM 215Z",
        Connectivity::new(false, true, false, false, false),
        p,
    )
}

fn ednet_gateway() -> DeviceModel {
    let mut p = DeviceProfile::new("EdnetGateway", OUI_EDNET);
    let cloud = p.endpoint("cloud.ednet-living.com");
    p.extend_phases([
        Phase::Eapol,
        Phase::Dhcp {
            hostname: None,
            vendor_class: None,
            param_list: vec![1, 3, 6, 15, 28, 42],
        },
        Phase::ArpProbe {
            count: 1,
            announce: false,
        },
        Phase::SsdpSearch {
            target: "upnp:rootdevice".into(),
            count: 3,
        },
        Phase::Dns {
            endpoint: cloud,
            aaaa: false,
        },
        Phase::UdpRaw {
            dest: RawDest::Endpoint(cloud),
            port: 10240,
            sizes: vec![32, 64],
        },
    ]);
    model(
        "EdnetGateway",
        "Ednet.living Starter kit power Gateway",
        Connectivity::new(true, false, false, false, true),
        p,
    )
}

fn ednet_cam() -> DeviceModel {
    let mut p = DeviceProfile::new("EdnetCam", OUI_EDNET);
    let cloud = p.endpoint("ipcam.ednet-living.com");
    let ntp = p.endpoint("pool.ntp.org");
    p.extend_phases([
        Phase::Eapol,
        Phase::dhcp("ednet-cam"),
        Phase::ArpProbe {
            count: 2,
            announce: false,
        },
        Phase::Dns {
            endpoint: cloud,
            aaaa: false,
        },
        Phase::HttpGet {
            endpoint: cloud,
            path: "/check_user.cgi".into(),
        },
        Phase::TcpRaw {
            dest: RawDest::Endpoint(cloud),
            port: 554,
            sizes: vec![460],
        },
        Phase::Ntp {
            endpoint: ntp,
            count: 1,
        },
    ]);
    model(
        "EdnetCam",
        "Ednet Wireless indoor IP camera Cube",
        Connectivity::new(true, false, true, false, false),
        p,
    )
}

fn edimax_cam() -> DeviceModel {
    let mut p = DeviceProfile::new("EdimaxCam", OUI_EDIMAX);
    let portal = p.endpoint("www.myedimax.com");
    let relay = p.endpoint("relay.myedimax.com");
    p.extend_phases([
        Phase::Eapol,
        Phase::dhcp("EDIMAX-IC3115"),
        Phase::ArpProbe {
            count: 2,
            announce: true,
        },
        Phase::Dns {
            endpoint: portal,
            aaaa: false,
        },
        Phase::HttpGet {
            endpoint: portal,
            path: "/camera-cgi/public/getSystemInfo.cgi".into(),
        },
        Phase::SsdpNotify {
            device_type: "urn:schemas-upnp-org:device:MediaServer:1".into(),
            count: 2,
        },
        Phase::UdpRaw {
            dest: RawDest::Endpoint(relay),
            port: 8765,
            sizes: vec![120],
        },
    ]);
    model(
        "EdimaxCam",
        "Edimax IC-3115W Smart HD WiFi Network Camera",
        Connectivity::new(true, false, true, false, false),
        p,
    )
}

fn lightify() -> DeviceModel {
    let mut p = DeviceProfile::new("Lightify", OUI_OSRAM);
    let cloud = p.endpoint("lightify-gw.osram.de");
    let ntp = p.endpoint("0.openwrt.pool.ntp.org");
    p.extend_phases([
        Phase::Eapol,
        Phase::dhcp("Lightify-Gateway"),
        Phase::ArpProbe {
            count: 1,
            announce: true,
        },
        Phase::Dns {
            endpoint: cloud,
            aaaa: false,
        },
        Phase::Tls {
            endpoint: cloud,
            port: 4000,
            hello_size: 160,
            records: vec![96, 96, 240],
        },
        Phase::Ntp {
            endpoint: ntp,
            count: 1,
        },
        Phase::Ping { count: 2 },
    ]);
    model(
        "Lightify",
        "Osram Lightify Gateway",
        Connectivity::new(true, true, false, false, false),
        p,
    )
}

fn wemo_insight_switch() -> DeviceModel {
    let mut p = DeviceProfile::new("WeMoInsightSwitch", OUI_BELKIN);
    let cloud = p.endpoint("api.xbcs.net");
    let ntp = p.endpoint("time.belkin.com");
    p.extend_phases([
        Phase::Eapol,
        Phase::dhcp("WeMo.Insight"),
        Phase::ArpProbe {
            count: 1,
            announce: true,
        },
        Phase::SsdpNotify {
            device_type: "urn:Belkin:device:insight:1".into(),
            count: 4,
        },
        Phase::MdnsAnnounce {
            services: vec!["_upnp._tcp.local".into()],
        },
        Phase::Dns {
            endpoint: cloud,
            aaaa: true,
        },
        Phase::Tls {
            endpoint: cloud,
            port: 8443,
            hello_size: 230,
            records: vec![512],
        },
        Phase::Ntp {
            endpoint: ntp,
            count: 1,
        },
    ]);
    model(
        "WeMoInsightSwitch",
        "WeMo Insight Switch model F7C029de",
        Connectivity::new(true, false, false, false, false),
        p,
    )
}

fn wemo_link() -> DeviceModel {
    let mut p = DeviceProfile::new("WeMoLink", OUI_BELKIN);
    let cloud = p.endpoint("api.xbcs.net");
    let ntp = p.endpoint("time.belkin.com");
    p.extend_phases([
        Phase::Eapol,
        Phase::dhcp("WeMo.Link"),
        Phase::ArpProbe {
            count: 1,
            announce: true,
        },
        Phase::SsdpNotify {
            device_type: "urn:Belkin:device:bridge:1".into(),
            count: 3,
        },
        Phase::Dns {
            endpoint: cloud,
            aaaa: true,
        },
        Phase::Tls {
            endpoint: cloud,
            port: 8443,
            hello_size: 230,
            records: vec![512, 256],
        },
        Phase::UdpRaw {
            dest: RawDest::Broadcast,
            port: 3475,
            sizes: vec![40, 40],
        },
        Phase::Ntp {
            endpoint: ntp,
            count: 1,
        },
    ]);
    model(
        "WeMoLink",
        "WeMo Link Lighting Bridge model F7C031vf",
        Connectivity::new(true, true, false, false, false),
        p,
    )
}

fn wemo_switch() -> DeviceModel {
    let mut p = DeviceProfile::new("WeMoSwitch", OUI_BELKIN);
    let cloud = p.endpoint("api.xbcs.net");
    let ntp = p.endpoint("time.belkin.com");
    p.extend_phases([
        Phase::Eapol,
        Phase::dhcp("WeMo.Switch"),
        Phase::ArpProbe {
            count: 1,
            announce: true,
        },
        Phase::SsdpNotify {
            device_type: "urn:Belkin:device:controllee:1".into(),
            count: 4,
        },
        Phase::Dns {
            endpoint: cloud,
            aaaa: false,
        },
        Phase::HttpGet {
            endpoint: cloud,
            path: "/setup.xml".into(),
        },
        Phase::Ntp {
            endpoint: ntp,
            count: 1,
        },
    ]);
    model(
        "WeMoSwitch",
        "WeMo Switch model F7C027de",
        Connectivity::new(true, false, false, false, false),
        p,
    )
}

fn dlink_home_hub() -> DeviceModel {
    let mut p = DeviceProfile::new("D-LinkHomeHub", OUI_DLINK);
    let dcd = p.endpoint("mp-eu-dcdda.dcdsvc.com");
    let time = p.endpoint("time.dlink.com.tw");
    p.extend_phases([
        Phase::Eapol,
        Phase::dhcp("DCH-G020"),
        Phase::ArpProbe {
            count: 2,
            announce: true,
        },
        Phase::Ipv6Bringup {
            mld_records: 2,
            router_solicit: true,
        },
        Phase::Dns {
            endpoint: dcd,
            aaaa: true,
        },
        Phase::Dns {
            endpoint: time,
            aaaa: false,
        },
        Phase::Ntp {
            endpoint: time,
            count: 2,
        },
        Phase::Tls {
            endpoint: dcd,
            port: 443,
            hello_size: 208,
            records: vec![350, 350, 120],
        },
        Phase::MdnsAnnounce {
            services: vec!["_dcp._tcp.local".into(), "_http._tcp.local".into()],
        },
        Phase::SsdpNotify {
            device_type: "urn:schemas-upnp-org:device:Basic:1".into(),
            count: 2,
        },
    ]);
    model(
        "D-LinkHomeHub",
        "D-Link Connected Home Hub DCH-G020",
        Connectivity::new(true, false, true, true, false),
        p,
    )
}

fn dlink_door_sensor() -> DeviceModel {
    let mut p = DeviceProfile::new("D-LinkDoorSensor", OUI_DLINK);
    p.extend_phases([
        Phase::ArpProbe {
            count: 1,
            announce: false,
        },
        Phase::UdpRaw {
            dest: RawDest::Gateway,
            port: 9123,
            sizes: vec![28, 28, 52],
        },
        Phase::MdnsQuery {
            service: "_dcp._tcp.local".into(),
        },
    ]);
    model(
        "D-LinkDoorSensor",
        "D-Link Door & Window sensor",
        Connectivity::new(false, false, false, true, false),
        p,
    )
}

fn dlink_day_cam() -> DeviceModel {
    let mut p = DeviceProfile::new("D-LinkDayCam", OUI_DLINK);
    let signal = p.endpoint("signal.mydlink.com");
    let ntp = p.endpoint("ntp1.dlink.com");
    p.extend_phases([
        Phase::Eapol,
        Phase::dhcp("DCS-930L"),
        Phase::ArpProbe {
            count: 2,
            announce: false,
        },
        Phase::Dns {
            endpoint: signal,
            aaaa: false,
        },
        Phase::HttpGet {
            endpoint: signal,
            path: "/common/info.cgi".into(),
        },
        Phase::TcpRaw {
            dest: RawDest::Endpoint(signal),
            port: 554,
            sizes: vec![380, 380],
        },
        Phase::Ntp {
            endpoint: ntp,
            count: 1,
        },
    ]);
    model(
        "D-LinkDayCam",
        "D-Link WiFi Day Camera DCS-930L",
        Connectivity::new(true, false, true, false, false),
        p,
    )
}

fn dlink_cam() -> DeviceModel {
    let mut p = DeviceProfile::new("D-LinkCam", OUI_DLINK);
    let dcd = p.endpoint("mp-eu-dcdda.dcdsvc.com");
    let relay = p.endpoint("relay-eu.dcdsvc.com");
    let ntp = p.endpoint("ntp1.dlink.com");
    p.extend_phases([
        Phase::Eapol,
        Phase::dhcp("DCH-935L"),
        Phase::ArpProbe {
            count: 2,
            announce: true,
        },
        Phase::Dns {
            endpoint: dcd,
            aaaa: true,
        },
        Phase::Tls {
            endpoint: dcd,
            port: 443,
            hello_size: 208,
            records: vec![350, 520],
        },
        Phase::MdnsAnnounce {
            services: vec!["_dcp._tcp.local".into()],
        },
        Phase::UdpRaw {
            dest: RawDest::Endpoint(relay),
            port: 5150,
            sizes: vec![620, 620],
        },
        Phase::Ntp {
            endpoint: ntp,
            count: 1,
        },
    ]);
    model(
        "D-LinkCam",
        "D-Link HD IP Camera DCH-935L",
        Connectivity::new(true, false, false, false, false),
        p,
    )
}

/// The mutually-confusable D-Link family (devices 1–4 of Table III).
///
/// All four run the same firmware stack and differ only in the plastic
/// around it; `separable` adds the DSP-W215's extra power-metering cloud
/// check-in, which fires often enough to make the switch *partially*
/// separable from the three sensors. `announce_retry_prob` is each
/// member's probability of re-announcing its mDNS service — a weak,
/// sensor-polling-rate-like signal that keeps the family's accuracies in
/// the paper's 0.4–0.6 band instead of collapsing to 3-way chance.
fn dlink_family(
    identifier: &'static str,
    description: &'static str,
    hostname: &str,
    separable: bool,
    announce_retry_prob: f64,
    hello_shift: u32,
) -> DeviceModel {
    let mut p = DeviceProfile::new(identifier, OUI_DLINK);
    let dcd = p.endpoint("mp-eu-dcdda.dcdsvc.com");
    let ntp = p.endpoint("ntp1.dlink.com");
    p.extend_phases([
        Phase::Eapol,
        Phase::dhcp(hostname),
        Phase::ArpProbe {
            count: 2,
            announce: true,
        },
        Phase::Ipv6Bringup {
            mld_records: 1,
            router_solicit: false,
        },
        Phase::Dns {
            endpoint: dcd,
            aaaa: true,
        },
        Phase::Tls {
            endpoint: dcd,
            port: 443,
            // Same firmware, but each unit's TLS stack pads its hello by a
            // few bytes (certificate serial length, etc.) — a weak signal
            // overlapping the ±6-byte jitter band.
            hello_size: 205 + hello_shift,
            records: vec![340, 180],
        },
        Phase::MdnsAnnounce {
            services: vec!["_dcp._tcp.local".into()],
        },
        Phase::Ntp {
            endpoint: ntp,
            count: 1,
        },
        Phase::optional(
            0.35,
            Phase::Ntp {
                endpoint: ntp,
                count: 1,
            },
        ),
        Phase::optional(
            announce_retry_prob,
            Phase::MdnsAnnounce {
                services: vec!["_dcp._tcp.local".into()],
            },
        ),
    ]);
    p.size_jitter = 14;
    if separable {
        // The smart plug reports an initial power-meter calibration blob.
        p.phases.push(Phase::optional(
            0.75,
            Phase::Tls {
                endpoint: dcd,
                port: 443,
                hello_size: 205,
                records: vec![96],
            },
        ));
    }
    model(
        identifier,
        description,
        Connectivity::new(true, false, false, false, false),
        p,
    )
}

/// The two TP-Link plugs (devices 5–6 of Table III): identical firmware,
/// identical traffic — only the model string (same length) differs.
fn tplink_plug(
    identifier: &'static str,
    description: &'static str,
    hostname: &str,
    hello_shift: u32,
) -> DeviceModel {
    let mut p = DeviceProfile::new(identifier, OUI_TPLINK);
    let cloud = p.endpoint("use.tplinkcloud.com");
    let ntp = p.endpoint("time.tp-link.com");
    p.extend_phases([
        Phase::Eapol,
        Phase::dhcp(hostname),
        Phase::ArpProbe {
            count: 1,
            announce: true,
        },
        Phase::Dns {
            endpoint: cloud,
            aaaa: false,
        },
        Phase::UdpRaw {
            dest: RawDest::Broadcast,
            port: 9999,
            sizes: vec![46],
        },
        Phase::Tls {
            endpoint: cloud,
            port: 50443,
            hello_size: 150 + hello_shift,
            records: vec![260],
        },
        Phase::Ntp {
            endpoint: ntp,
            count: 1,
        },
        Phase::optional(
            0.5,
            Phase::UdpRaw {
                dest: RawDest::Broadcast,
                port: 9999,
                sizes: vec![46],
            },
        ),
    ]);
    p.size_jitter = 12;
    model(
        identifier,
        description,
        Connectivity::new(true, false, false, false, false),
        p,
    )
}

/// The two Edimax plugs (devices 7–8 of Table III): identical firmware.
fn edimax_plug(identifier: &'static str, description: &'static str, hostname: &str) -> DeviceModel {
    let mut p = DeviceProfile::new(identifier, OUI_EDIMAX);
    let cloud = p.endpoint("cloudservice.myedimax.com");
    let ntp = p.endpoint("pool.ntp.org");
    p.extend_phases([
        Phase::Eapol,
        Phase::dhcp(hostname),
        Phase::ArpProbe {
            count: 1,
            announce: false,
        },
        Phase::UdpRaw {
            dest: RawDest::Broadcast,
            port: 20560,
            sizes: vec![38, 38],
        },
        Phase::Dns {
            endpoint: cloud,
            aaaa: false,
        },
        Phase::HttpPost {
            endpoint: cloud,
            path: "/registration".into(),
            body_size: 180,
        },
        Phase::Ntp {
            endpoint: ntp,
            count: 1,
        },
    ]);
    model(
        identifier,
        description,
        Connectivity::new(true, false, false, false, false),
        p,
    )
}

/// The two Smarter kitchen appliances (devices 9–10 of Table III):
/// identical WiFi module and local-only protocol.
fn smarter_appliance(
    identifier: &'static str,
    description: &'static str,
    probe_shift: u32,
) -> DeviceModel {
    let mut p = DeviceProfile::new(identifier, OUI_SMARTER);
    let ntp = p.endpoint("pool.ntp.org");
    p.extend_phases([
        Phase::Eapol,
        Phase::Dhcp {
            hostname: None,
            vendor_class: None,
            param_list: vec![1, 3, 6, 15],
        },
        Phase::ArpProbe {
            count: 1,
            announce: false,
        },
        Phase::UdpRaw {
            dest: RawDest::Broadcast,
            port: 2081,
            sizes: vec![20 + probe_shift, 20 + probe_shift],
        },
        Phase::Ping { count: 1 },
        Phase::Ntp {
            endpoint: ntp,
            count: 1,
        },
        Phase::optional(
            0.5,
            Phase::UdpRaw {
                dest: RawDest::Broadcast,
                port: 2081,
                sizes: vec![20 + probe_shift],
            },
        ),
    ]);
    p.size_jitter = 10;
    model(
        identifier,
        description,
        Connectivity::new(true, false, false, false, false),
        p,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_27_types_in_fig5_order() {
        let devices = catalog();
        assert_eq!(devices.len(), 27);
        assert_eq!(devices[0].info.identifier, "Aria");
        assert_eq!(devices[26].info.identifier, "iKettle2");
        // Fig. 5 numbers the last ten devices 1..10.
        assert_eq!(devices[17].info.identifier, "D-LinkSwitch");
        assert_eq!(devices[21].info.identifier, "TP-LinkPlugHS110");
    }

    #[test]
    fn identifiers_are_unique() {
        let devices = catalog();
        let names: std::collections::HashSet<_> =
            devices.iter().map(|d| d.info.identifier).collect();
        assert_eq!(names.len(), 27);
    }

    #[test]
    fn connectivity_matches_table_two_spot_checks() {
        let devices = catalog();
        let by_name = |name: &str| {
            devices
                .iter()
                .find(|d| d.info.identifier == name)
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        assert!(by_name("Aria").info.connectivity.wifi);
        assert!(!by_name("Aria").info.connectivity.ethernet);
        let hub = &by_name("D-LinkHomeHub").info.connectivity;
        assert!(hub.wifi && hub.ethernet && hub.zwave);
        let hue = &by_name("HueBridge").info.connectivity;
        assert!(hue.zigbee && hue.ethernet && !hue.wifi);
        assert!(by_name("HomeMaticPlug").info.connectivity.other);
        assert!(by_name("D-LinkDoorSensor").info.connectivity.zwave);
    }

    #[test]
    fn confusable_family_members_share_traffic_shape() {
        let devices = catalog();
        let profile = |name: &str| {
            &devices
                .iter()
                .find(|d| d.info.identifier == name)
                .unwrap()
                .profile
        };
        // The three D-Link sensors are phase-for-phase identical up to
        // the (same-length) DHCP hostname and the weak mDNS re-announce
        // probability.
        let water = profile("D-LinkWaterSensor");
        let siren = profile("D-LinkSiren");
        let sensor = profile("D-LinkSensor");
        assert_eq!(water.phases.len(), siren.phases.len());
        assert_eq!(siren.phases.len(), sensor.phases.len());
        for (a, b) in water.phases.iter().zip(siren.phases.iter()) {
            match (a, b) {
                (Phase::Dhcp { hostname: ha, .. }, Phase::Dhcp { hostname: hb, .. }) => {
                    assert_eq!(
                        ha.as_ref().map(String::len),
                        hb.as_ref().map(String::len),
                        "hostnames must have equal length to keep sizes equal"
                    );
                }
                (Phase::Optional { phase: pa, .. }, Phase::Optional { phase: pb, .. }) => {
                    assert_eq!(pa, pb, "optional phases identical up to probability");
                }
                (
                    Phase::Tls {
                        endpoint: ea,
                        port: pa,
                        hello_size: ha,
                        records: ra,
                    },
                    Phase::Tls {
                        endpoint: eb,
                        port: pb,
                        hello_size: hb,
                        records: rb,
                    },
                ) => {
                    // Same session shape; the hello differs by a few
                    // bytes inside the jitter band (the weak per-unit
                    // signal).
                    assert_eq!((ea, pa, ra), (eb, pb, rb));
                    assert!(ha.abs_diff(*hb) <= 9, "hello shift stays weak");
                }
                (a, b) => assert_eq!(a, b),
            }
        }
        // The plug (device 1) has one extra optional phase.
        let switch = profile("D-LinkSwitch");
        assert_eq!(switch.phases.len(), water.phases.len() + 1);
    }

    #[test]
    fn confusable_groups_reference_catalog_names() {
        let devices = catalog();
        let names: std::collections::HashSet<_> =
            devices.iter().map(|d| d.info.identifier).collect();
        for group in confusable_groups() {
            assert!(group.len() >= 2);
            for member in group {
                assert!(names.contains(member), "unknown device {member}");
            }
        }
    }

    #[test]
    fn every_phase_endpoint_index_is_valid() {
        for device in catalog() {
            let n = device.profile.endpoints.len();
            for phase in &device.profile.phases {
                check_phase(phase, n, device.info.identifier);
            }
        }
    }

    fn check_phase(phase: &Phase, n: usize, name: &str) {
        let check = |i: &usize| assert!(*i < n, "{name}: endpoint {i} out of range {n}");
        match phase {
            Phase::Dns { endpoint, .. }
            | Phase::Ntp { endpoint, .. }
            | Phase::Tls { endpoint, .. }
            | Phase::HttpGet { endpoint, .. }
            | Phase::HttpPost { endpoint, .. } => check(endpoint),
            Phase::TcpRaw { dest, .. } | Phase::UdpRaw { dest, .. } => {
                if let RawDest::Endpoint(i) = dest {
                    check(i);
                }
            }
            Phase::Optional { phase, .. } => check_phase(phase, n, name),
            _ => {}
        }
    }
}
