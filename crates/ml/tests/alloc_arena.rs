//! Counting-allocator audit of the arena fitting path: after one
//! warm-up fit has stretched the [`FitArena`] scratch buffers (and its
//! high-water marks), every subsequent tree fit must perform only the
//! handful of exact-sized output-array allocations — zero per-node
//! allocations in split search, leaf construction or partitioning.
//! The same audit covers the inference side: steady-state batched
//! classification through the row-blocked kernel (a warm
//! [`BatchMatrix`] plus verdict buffer) must allocate nothing at all.
//!
//! This lives in its own integration-test binary because a
//! `#[global_allocator]` is process-wide: any neighbouring test running
//! concurrently would perturb the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use sentinel_ml::{
    BatchMatrix, BinnedDataset, Dataset, DecisionTree, FitArena, ForestConfig, PackedForest,
    PinnedRng, RandomForest, TreeConfig,
};

/// Passes everything through to [`System`], counting every allocation
/// and reallocation (deallocations are free and uncounted).
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A deterministic dataset with heavy per-column duplication (like the
/// bit-features of `F'`), built without consuming any RNG.
fn corpus() -> Dataset {
    let mut data = Dataset::new(12);
    let mut row = [0.0f64; 12];
    for i in 0..240usize {
        for (f, slot) in row.iter_mut().enumerate() {
            *slot = ((i * (f + 3) + f * f) % 7) as f64 * 0.5;
        }
        data.push(&row, i % 3);
    }
    data
}

// The output tree is seven exact-sized arrays (features, thresholds,
// lefts, rights, leaf_counts, plus the two returned-Vec spines inside
// the tree's leaf bookkeeping); everything else must come from the
// arena. A little headroom tolerates allocator-internal bookkeeping.
const STEADY_STATE_BUDGET: usize = 12;

#[test]
fn steady_state_tree_fits_do_not_allocate_per_node() {
    let data = corpus();
    let bins = BinnedDataset::build(&data);
    let indices: Vec<usize> = (0..data.len()).collect();
    let labels: Vec<usize> = (0..data.len()).map(|i| usize::from(i % 3 == 0)).collect();
    let config = TreeConfig {
        max_depth: 8,
        min_samples_split: 2,
        min_samples_leaf: 1,
        n_candidate_features: Some(4),
    };
    let mut arena = FitArena::new();

    // Warm-up: stretches every scratch buffer and records the
    // high-water marks that pre-size the output arrays.
    let warm_binned = DecisionTree::fit_binned_in(
        &data,
        &bins,
        &indices,
        &config,
        &mut PinnedRng::from_key(9, 0, 0),
        &mut arena,
    );
    let warm_view = DecisionTree::fit_view_in(
        &data,
        &bins,
        &indices,
        &labels,
        2,
        &config,
        &mut PinnedRng::from_key(9, 0, 0),
        &mut arena,
    );

    // Steady state, histogram path: identical fit, warm arena.
    let before = allocations();
    let again = DecisionTree::fit_binned_in(
        &data,
        &bins,
        &indices,
        &config,
        &mut PinnedRng::from_key(9, 0, 0),
        &mut arena,
    );
    let spent = allocations() - before;
    assert_eq!(warm_binned, again, "arena reuse must not change the fit");
    assert!(
        spent <= STEADY_STATE_BUDGET,
        "histogram fit allocated {spent} times in steady state (budget {STEADY_STATE_BUDGET})"
    );

    // Steady state, corpus-view path (the classifier bank's hot loop).
    let before = allocations();
    let again = DecisionTree::fit_view_in(
        &data,
        &bins,
        &indices,
        &labels,
        2,
        &config,
        &mut PinnedRng::from_key(9, 0, 0),
        &mut arena,
    );
    let spent = allocations() - before;
    assert_eq!(warm_view, again, "arena reuse must not change the fit");
    assert!(
        spent <= STEADY_STATE_BUDGET,
        "view fit allocated {spent} times in steady state (budget {STEADY_STATE_BUDGET})"
    );

    // Steady state, batched classification: after one warm-up tick has
    // sized the batch matrix and the verdict buffer, refill +
    // row-blocked kernel walks must not touch the heap at all.
    let mut binary = Dataset::new(12);
    let mut row = [0.0f64; 12];
    for i in 0..240usize {
        for (f, slot) in row.iter_mut().enumerate() {
            *slot = ((i * (f + 5) + f) % 11) as f64;
        }
        binary.push(&row, usize::from(i % 3 == 0));
    }
    let forest = RandomForest::fit(
        &binary,
        &ForestConfig::default().with_trees(15).with_seed(3),
    );
    let packed = PackedForest::from_forest(&forest);
    let mut matrix = BatchMatrix::new();
    let mut verdicts: Vec<bool> = Vec::new();
    matrix.fill((0..64).map(|i| binary.row(i)));
    packed.accepts_rows(&matrix, &mut verdicts);
    let baseline = verdicts.clone();
    let before = allocations();
    for _ in 0..8 {
        matrix.fill((0..64).map(|i| binary.row(i)));
        verdicts.clear();
        packed.accepts_rows(&matrix, &mut verdicts);
    }
    let spent = allocations() - before;
    assert_eq!(verdicts, baseline, "warm-path verdicts must not drift");
    assert_eq!(
        spent, 0,
        "batched kernel classification allocated {spent} times over 8 steady-state ticks"
    );
}
