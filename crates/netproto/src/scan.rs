//! Zero-copy single-pass wire scan for feature extraction.
//!
//! [`WireScan::scan`] walks one Ethernet frame **in place** — no `Bytes`
//! copies, no owned header structs, no payload buffers — and emits the
//! tiny [`RawFeatures`] record that Table I of the paper actually needs:
//! protocol-presence flags, the two IP-option flags, the re-encoded
//! packet size, the raw-data flag, destination IP and the port pair.
//!
//! The scanner is *certified*: it only returns
//! [`ScanOutcome::Features`] when the full decoder ([`Packet::parse`])
//! would succeed on the same frame **and** derive exactly the same
//! features, and it only returns [`ScanOutcome::Malformed`] when the
//! decoder would reject the frame. Whenever a frame is valid but not
//! canonical — the decoder would accept it yet re-encode it to a
//! different length, or resolve structure the scanner cannot follow
//! without allocating (e.g. compressed DNS names) — the scanner answers
//! [`ScanOutcome::NeedsDecode`] and the caller falls back to the full
//! decoder. Equivalence is enforced by differential property tests in
//! `tests/scan_equivalence.rs`.
//!
//! The subtle part is `packet_size`: the decode path reports
//! `Packet::wire_len()`, the length of the *re-encoded* frame, which
//! drops trailing garbage, dropped padding options and other
//! non-canonical wiggle room. The scanner therefore computes the
//! re-encoded length arithmetically while walking, instead of trusting
//! `frame.len()`.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use crate::classify::{Protocol, ProtocolSet};
use crate::error::ParseError;
use crate::ipv4::internet_checksum;
use crate::mac::MacAddr;
use crate::packet::Packet;
use crate::ports;
use crate::timestamp::Timestamp;

/// Everything the Table I feature vector needs from one frame, with no
/// allocation and no borrowed data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawFeatures {
    /// Protocol-presence indicators (the 16 binary features).
    pub protocols: ProtocolSet,
    /// An IP padding option (IPv4 NOP/EOL, IPv6 Pad1/PadN) was present.
    pub ip_option_padding: bool,
    /// An IP router-alert option was present.
    pub ip_option_router_alert: bool,
    /// Re-encoded wire length of the frame (`Packet::wire_len`).
    pub packet_size: u32,
    /// The packet carried unparsed payload bytes.
    pub raw_data: bool,
    /// Destination IP address, when the frame carried an IP header.
    pub dst_ip: Option<IpAddr>,
    /// TCP/UDP source port, when present.
    pub src_port: Option<u16>,
    /// TCP/UDP destination port, when present.
    pub dst_port: Option<u16>,
    /// Ethernet source address (the monitored device on ingress).
    pub src_mac: MacAddr,
    /// Ethernet destination address.
    pub dst_mac: MacAddr,
}

impl RawFeatures {
    /// Derives the same record from a fully decoded packet.
    ///
    /// This is the reference implementation the scanner is certified
    /// against, and the slow-path fallback for non-canonical frames.
    pub fn from_packet(packet: &Packet) -> Self {
        use crate::packet::PacketBody;
        let (padding, router_alert) = match &packet.body {
            PacketBody::Ipv4 { header, .. } => {
                (header.has_padding_option(), header.has_router_alert())
            }
            PacketBody::Ipv6 { header, .. } => {
                (header.has_padding_option(), header.has_router_alert())
            }
            _ => (false, false),
        };
        RawFeatures {
            protocols: packet.protocols(),
            ip_option_padding: padding,
            ip_option_router_alert: router_alert,
            packet_size: packet.wire_len() as u32,
            raw_data: packet.has_raw_data(),
            dst_ip: packet.dst_ip(),
            src_port: packet.src_port(),
            dst_port: packet.dst_port(),
            src_mac: packet.src_mac(),
            dst_mac: packet.dst_mac(),
        }
    }

    /// Extracts features from a raw frame: wire scan on the fast path,
    /// full decode when the scanner cannot certify the frame.
    ///
    /// Errors exactly when `Packet::parse` errors.
    pub fn from_frame(frame: &[u8]) -> Result<Self, ParseError> {
        match WireScan::scan(frame) {
            ScanOutcome::Features(raw) => Ok(raw),
            ScanOutcome::Malformed | ScanOutcome::NeedsDecode => {
                Packet::parse(frame, Timestamp::ZERO).map(|p| RawFeatures::from_packet(&p))
            }
        }
    }
}

/// The scanner's verdict on one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanOutcome {
    /// The frame is valid and canonical; these are exactly the features
    /// the decode path would produce.
    Features(RawFeatures),
    /// `Packet::parse` would reject this frame.
    Malformed,
    /// The frame needs the full decoder (valid but non-canonical, or
    /// uses structure the scanner does not follow, e.g. compressed DNS
    /// names).
    NeedsDecode,
}

/// Zero-copy frame scanner (see the module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct WireScan;

/// Why a walk stopped early (internal control flow).
enum Fail {
    /// The decoder would reject the frame.
    Malformed,
    /// The scanner cannot certify the frame; decode it.
    NeedsDecode,
}

type Scan<T> = Result<T, Fail>;

impl WireScan {
    /// Scans one Ethernet frame without allocating.
    pub fn scan(frame: &[u8]) -> ScanOutcome {
        match scan_frame(frame) {
            Ok(raw) => ScanOutcome::Features(raw),
            Err(Fail::Malformed) => ScanOutcome::Malformed,
            Err(Fail::NeedsDecode) => ScanOutcome::NeedsDecode,
        }
    }
}

#[inline]
fn be16(bytes: &[u8], at: usize) -> u16 {
    u16::from_be_bytes([bytes[at], bytes[at + 1]])
}

fn scan_frame(frame: &[u8]) -> Scan<RawFeatures> {
    if frame.len() < 14 {
        return Err(Fail::Malformed);
    }
    let mut raw = RawFeatures {
        protocols: ProtocolSet::new(),
        ip_option_padding: false,
        ip_option_router_alert: false,
        packet_size: 0,
        raw_data: false,
        dst_ip: None,
        src_port: None,
        dst_port: None,
        src_mac: MacAddr::new(frame[6..12].try_into().expect("6 bytes")),
        dst_mac: MacAddr::new(frame[0..6].try_into().expect("6 bytes")),
    };
    let ethertype = be16(frame, 12);
    let body = &frame[14..];
    let body_encoded = match ethertype {
        0x0806 => scan_arp(body, &mut raw)?,
        0x0800 => scan_ipv4(body, &mut raw)?,
        0x86dd => scan_ipv6(body, &mut raw)?,
        0x888e => scan_eapol(body, &mut raw)?,
        t if t < 0x0600 => scan_llc(body, &mut raw)?,
        _ => {
            // Unknown ethertype: the decoder keeps the body verbatim.
            raw.raw_data = !body.is_empty();
            body.len()
        }
    };
    raw.packet_size = (14 + body_encoded) as u32;
    Ok(raw)
}

fn scan_arp(b: &[u8], raw: &mut RawFeatures) -> Scan<usize> {
    if b.len() < 28 {
        return Err(Fail::Malformed);
    }
    // Ethernet/IPv4 ARP only, like the decoder.
    if be16(b, 0) != 1 || be16(b, 2) != 0x0800 || b[4] != 6 || b[5] != 4 {
        return Err(Fail::Malformed);
    }
    raw.protocols.insert(Protocol::Arp);
    Ok(28) // trailing bytes are dropped on re-encode
}

fn scan_eapol(b: &[u8], raw: &mut RawFeatures) -> Scan<usize> {
    if b.len() < 4 {
        return Err(Fail::Malformed);
    }
    let body_len = be16(b, 2) as usize;
    if b.len() < 4 + body_len {
        return Err(Fail::Malformed);
    }
    raw.protocols.insert(Protocol::Eapol);
    Ok(4 + body_len)
}

fn scan_llc(b: &[u8], raw: &mut RawFeatures) -> Scan<usize> {
    if b.len() < 3 {
        return Err(Fail::Malformed);
    }
    raw.protocols.insert(Protocol::Llc);
    raw.raw_data = b.len() > 3;
    Ok(b.len())
}

fn scan_ipv4(b: &[u8], raw: &mut RawFeatures) -> Scan<usize> {
    if b.len() < 20 {
        return Err(Fail::Malformed);
    }
    if b[0] >> 4 != 4 {
        return Err(Fail::Malformed);
    }
    let ihl = ((b[0] & 0x0f) as usize) * 4;
    if ihl < 20 || ihl > b.len() {
        return Err(Fail::Malformed);
    }
    if internet_checksum(&b[..ihl]) != 0 {
        return Err(Fail::Malformed);
    }
    let total_len = be16(b, 2) as usize;
    if total_len < ihl || b.len() < total_len {
        return Err(Fail::Malformed);
    }
    // Walk the options area, mirroring the decoder: EOL is recorded once
    // and ends the walk, NOPs are recorded individually, RouterAlert is
    // only the (kind 148, len 4) form. The re-encoded header rounds the
    // summed option length up to a 4-byte boundary.
    let mut options_encoded = 0usize;
    let mut i = 20;
    while i < ihl {
        match b[i] {
            0 => {
                raw.ip_option_padding = true;
                options_encoded += 1;
                break;
            }
            1 => {
                raw.ip_option_padding = true;
                options_encoded += 1;
                i += 1;
            }
            kind => {
                if i + 2 > ihl {
                    return Err(Fail::Malformed);
                }
                let len = b[i + 1] as usize;
                if len < 2 || len > ihl - i {
                    return Err(Fail::Malformed);
                }
                if kind == 148 && len == 4 {
                    raw.ip_option_router_alert = true;
                }
                options_encoded += len;
                i += len;
            }
        }
    }
    raw.protocols.insert(Protocol::Ip);
    raw.dst_ip = Some(IpAddr::V4(Ipv4Addr::new(b[16], b[17], b[18], b[19])));
    let transport_encoded = scan_transport(b[9], &b[ihl..total_len], raw)?;
    Ok(20 + options_encoded.div_ceil(4) * 4 + transport_encoded)
}

fn scan_ipv6(b: &[u8], raw: &mut RawFeatures) -> Scan<usize> {
    if b.len() < 40 {
        return Err(Fail::Malformed);
    }
    if b[0] >> 4 != 6 {
        return Err(Fail::Malformed);
    }
    let payload_len = be16(b, 4) as usize;
    let total = 40 + payload_len;
    if b.len() < total {
        return Err(Fail::Malformed);
    }
    let mut next_header = b[6];
    let mut offset = 40usize;
    let mut hbh_encoded = 0usize;
    let mut hbh_recorded = false;
    if next_header == 0 {
        // Hop-by-hop extension header.
        if b.len() < 42 {
            return Err(Fail::Malformed);
        }
        next_header = b[40];
        let ext_len = (b[41] as usize + 1) * 8;
        if b.len() < 40 + ext_len || 40 + ext_len > total {
            return Err(Fail::Malformed);
        }
        // Option walk: trailing Pad1 runs are dropped by the decoder;
        // interior Pad1s and every PadN count as padding.
        let opts = &b[42..40 + ext_len];
        let mut i = 0usize;
        let mut pad1_run = 0usize;
        while i < opts.len() {
            let kind = opts[i];
            if kind == 0 {
                pad1_run += 1;
                i += 1;
                continue;
            }
            if pad1_run > 0 {
                raw.ip_option_padding = true;
                hbh_encoded += pad1_run;
                pad1_run = 0;
            }
            if i + 2 > opts.len() {
                return Err(Fail::Malformed);
            }
            let len = opts[i + 1] as usize;
            if i + 2 + len > opts.len() {
                return Err(Fail::Malformed);
            }
            match (kind, len) {
                (1, _) => raw.ip_option_padding = true,
                (5, 2) => raw.ip_option_router_alert = true,
                _ => {}
            }
            hbh_encoded += 2 + len;
            hbh_recorded = true;
            i += 2 + len;
        }
        offset = 40 + ext_len;
    }
    let hbh_len = if hbh_recorded {
        (2 + hbh_encoded).div_ceil(8) * 8
    } else {
        0
    };
    // Fragment extension header: the decoder consumes it only for a
    // canonical atomic fragment (reserved zero, offset 0, M clear) and
    // parses the inner transport; any other fragment stays an unknown
    // protocol with the header verbatim in the raw payload. Mirror both.
    let mut frag_len = 0usize;
    if next_header == 44 && offset + 8 <= total && b[offset + 1] == 0 && be16(b, offset + 2) == 0 {
        next_header = b[offset];
        offset += 8;
        frag_len = 8;
    }
    raw.protocols.insert(Protocol::Ip);
    let dst: [u8; 16] = b[24..40].try_into().expect("16 bytes");
    raw.dst_ip = Some(IpAddr::V6(Ipv6Addr::from(dst)));
    let transport_encoded = scan_transport(next_header, &b[offset..total], raw)?;
    Ok(40 + hbh_len + frag_len + transport_encoded)
}

fn scan_transport(protocol: u8, b: &[u8], raw: &mut RawFeatures) -> Scan<usize> {
    match protocol {
        6 => {
            // TCP: the header (incl. raw options) is length-preserving.
            if b.len() < 20 {
                return Err(Fail::Malformed);
            }
            let data_offset = ((b[12] >> 4) as usize) * 4;
            if data_offset < 20 || data_offset > b.len() {
                return Err(Fail::Malformed);
            }
            raw.protocols.insert(Protocol::Tcp);
            let (src, dst) = (be16(b, 0), be16(b, 2));
            raw.src_port = Some(src);
            raw.dst_port = Some(dst);
            let app = scan_app(&b[data_offset..], src, dst, false, raw)?;
            Ok(data_offset + app)
        }
        17 => {
            // UDP: bytes past the declared length are dropped on re-encode.
            if b.len() < 8 {
                return Err(Fail::Malformed);
            }
            let length = be16(b, 4) as usize;
            if length < 8 || length > b.len() {
                return Err(Fail::Malformed);
            }
            raw.protocols.insert(Protocol::Udp);
            let (src, dst) = (be16(b, 0), be16(b, 2));
            raw.src_port = Some(src);
            raw.dst_port = Some(dst);
            let app = scan_app(&b[8..length], src, dst, true, raw)?;
            Ok(8 + app)
        }
        1 => {
            // ICMP: checksum-verified over the whole message.
            if b.len() < 8 || internet_checksum(b) != 0 {
                return Err(Fail::Malformed);
            }
            raw.protocols.insert(Protocol::Icmp);
            raw.raw_data = b.len() > 8;
            Ok(b.len())
        }
        58 => {
            if b.len() < 4 {
                return Err(Fail::Malformed);
            }
            raw.protocols.insert(Protocol::Icmpv6);
            Ok(b.len())
        }
        _ => {
            // Unknown IP protocol: kept verbatim by the decoder.
            raw.raw_data = !b.is_empty();
            Ok(b.len())
        }
    }
}

/// Port-based fallback indicators for payloads the decoder keeps as
/// `AppPayload::Raw` or `AppPayload::Empty` (mirrors `classify_app`).
fn fallback_bits(src: u16, dst: u16, udp: bool, raw: &mut RawFeatures) {
    let port_is = |p: u16| src == p || dst == p;
    let protocol = if port_is(ports::HTTP) || port_is(ports::HTTP_ALT) {
        Some(Protocol::Http)
    } else if port_is(ports::HTTPS) {
        Some(Protocol::Https)
    } else if port_is(ports::DNS) {
        Some(Protocol::Dns)
    } else if udp && port_is(ports::MDNS) {
        Some(Protocol::Mdns)
    } else if udp && port_is(ports::SSDP) {
        Some(Protocol::Ssdp)
    } else if udp && port_is(ports::NTP) {
        Some(Protocol::Ntp)
    } else if udp && (port_is(ports::DHCP_SERVER) || port_is(ports::DHCP_CLIENT)) {
        Some(Protocol::Bootp)
    } else {
        None
    };
    if let Some(p) = protocol {
        raw.protocols.insert(p);
    }
}

/// The payload stays `Raw`: non-empty, length-preserving, port bits only.
fn raw_payload(b: &[u8], src: u16, dst: u16, udp: bool, raw: &mut RawFeatures) -> Scan<usize> {
    raw.raw_data = !b.is_empty();
    fallback_bits(src, dst, udp, raw);
    Ok(b.len())
}

fn scan_app(b: &[u8], src: u16, dst: u16, udp: bool, raw: &mut RawFeatures) -> Scan<usize> {
    let port_is = |p: u16| src == p || dst == p;
    if b.is_empty() {
        fallback_bits(src, dst, udp, raw);
        return Ok(0);
    }
    if port_is(ports::DHCP_SERVER) || port_is(ports::DHCP_CLIENT) {
        match scan_dhcp(b) {
            Some((encoded, is_dhcp)) => {
                raw.protocols.insert(Protocol::Bootp);
                if is_dhcp {
                    raw.protocols.insert(Protocol::Dhcp);
                }
                Ok(encoded)
            }
            None => raw_payload(b, src, dst, udp, raw),
        }
    } else if port_is(ports::DNS) || port_is(ports::MDNS) {
        match scan_dns(b) {
            DnsScan::Canonical(encoded) => {
                if udp && port_is(ports::MDNS) {
                    raw.protocols.insert(Protocol::Mdns);
                } else {
                    raw.protocols.insert(Protocol::Dns);
                }
                Ok(encoded)
            }
            DnsScan::ParseFails => raw_payload(b, src, dst, udp, raw),
            DnsScan::NeedsDecode => Err(Fail::NeedsDecode),
        }
    } else if port_is(ports::SSDP) || port_is(ports::HTTP) || port_is(ports::HTTP_ALT) {
        match scan_http(b) {
            HttpScan::Canonical => {
                if udp && port_is(ports::SSDP) {
                    raw.protocols.insert(Protocol::Ssdp);
                } else {
                    raw.protocols.insert(Protocol::Http);
                }
                Ok(b.len())
            }
            HttpScan::ParseFails => raw_payload(b, src, dst, udp, raw),
            HttpScan::NeedsDecode => Err(Fail::NeedsDecode),
        }
    } else if port_is(ports::HTTPS) {
        match scan_tls(b) {
            Some(encoded) => {
                raw.protocols.insert(Protocol::Https);
                Ok(encoded)
            }
            None => raw_payload(b, src, dst, udp, raw),
        }
    } else if port_is(ports::NTP) {
        if b.len() >= 48 && matches!((b[0] >> 3) & 0x7, 1..=4) {
            raw.protocols.insert(Protocol::Ntp);
            Ok(48) // everything past the fixed packet is dropped
        } else {
            raw_payload(b, src, dst, udp, raw)
        }
    } else if looks_like_tls(b) {
        // Opportunistic TLS sniff: the declared record length matches the
        // payload exactly, so the parse always succeeds length-preserving.
        raw.protocols.insert(Protocol::Https);
        Ok(b.len())
    } else {
        raw_payload(b, src, dst, udp, raw)
    }
}

/// Mirror of `packet::looks_like_tls`.
fn looks_like_tls(b: &[u8]) -> bool {
    b.len() >= 5
        && (20..=23).contains(&b[0])
        && b[1] == 3
        && b[2] <= 4
        && 5 + be16(b, 3) as usize == b.len()
}

/// TLS record on port 443: `Some(re-encoded length)` when the record
/// parses (trailing bytes dropped), `None` when it stays `Raw`.
fn scan_tls(b: &[u8]) -> Option<usize> {
    if b.len() < 5 {
        return None;
    }
    let declared = be16(b, 3) as usize;
    if 5 + declared > b.len() {
        return None;
    }
    Some(5 + declared)
}

/// BOOTP/DHCP: `Some((re-encoded length, is_dhcp))` when the message
/// parses, `None` when the decoder would fall back to `Raw`.
fn scan_dhcp(b: &[u8]) -> Option<(usize, bool)> {
    const MAGIC_COOKIE: [u8; 4] = [99, 130, 83, 99];
    if b.len() < 236 {
        return None;
    }
    if !(b[0] == 1 || b[0] == 2) || b[1] != 1 || b[2] != 6 {
        return None;
    }
    if b.len() < 240 || b[236..240] != MAGIC_COOKIE {
        return Some((236, false)); // plain BOOTP, options dropped
    }
    let mut encoded = 240usize;
    let mut i = 240usize;
    while i < b.len() {
        let code = b[i];
        if code == 255 {
            break; // END: everything after it is dropped
        }
        if code == 0 {
            i += 1; // PAD bytes are skipped and not re-encoded
            continue;
        }
        if i + 2 > b.len() {
            return None;
        }
        let len = b[i + 1] as usize;
        if i + 2 + len > b.len() {
            return None;
        }
        let data = &b[i + 2..i + 2 + len];
        let valid = match code {
            53 => len == 1 && (1..=8).contains(&data[0]),
            50 | 54 => len == 4,
            12 | 60 => std::str::from_utf8(data).is_ok(),
            57 => len == 2,
            _ => true,
        };
        if !valid {
            return None;
        }
        encoded += 2 + len;
        i += 2 + len;
    }
    Some((encoded + 1, true)) // the encoder always appends END
}

/// Outcome of the strict DNS walk.
enum DnsScan {
    /// Parses and re-encodes to exactly this many bytes.
    Canonical(usize),
    /// The decoder would fall back to `AppPayload::Raw`.
    ParseFails,
    /// Valid-but-non-canonical structure (e.g. name compression).
    NeedsDecode,
}

/// Outcome of one strict (pointer-free) DNS name walk.
enum NameScan {
    /// Name ends; next read position follows the terminator.
    Ok(usize),
    /// Compression pointer or dotted label: decode to resolve.
    NeedsDecode,
    /// The decoder's name parser would fail too.
    Fail,
}

fn scan_dns_name(b: &[u8], mut off: usize) -> NameScan {
    loop {
        let Some(&len) = b.get(off) else {
            return NameScan::Fail;
        };
        if len == 0 {
            return NameScan::Ok(off + 1);
        }
        if len & 0xc0 == 0xc0 {
            return NameScan::NeedsDecode; // compression pointer
        }
        if len >= 64 {
            return NameScan::Fail; // 0x40..=0xbf label kinds are invalid
        }
        let end = off + 1 + len as usize;
        let Some(label) = b.get(off + 1..end) else {
            return NameScan::Fail;
        };
        match std::str::from_utf8(label) {
            Ok(text) if text.contains('.') => return NameScan::NeedsDecode,
            Ok(_) => {}
            Err(_) => return NameScan::Fail,
        }
        off = end;
    }
}

fn scan_dns(b: &[u8]) -> DnsScan {
    if b.len() < 12 {
        return DnsScan::ParseFails;
    }
    let questions = be16(b, 4);
    let records = u32::from(be16(b, 6)) + u32::from(be16(b, 8)) + u32::from(be16(b, 10));
    let mut off = 12usize;
    for _ in 0..questions {
        off = match scan_dns_name(b, off) {
            NameScan::Ok(next) => next,
            NameScan::NeedsDecode => return DnsScan::NeedsDecode,
            NameScan::Fail => return DnsScan::ParseFails,
        };
        if b.len() < off + 4 {
            return DnsScan::ParseFails;
        }
        off += 4; // qtype + qclass (length-preserving)
    }
    for _ in 0..records {
        off = match scan_dns_name(b, off) {
            NameScan::Ok(next) => next,
            NameScan::NeedsDecode => return DnsScan::NeedsDecode,
            NameScan::Fail => return DnsScan::ParseFails,
        };
        if b.len() < off + 10 {
            return DnsScan::ParseFails;
        }
        let rtype = be16(b, off);
        let rdlen = be16(b, off + 8) as usize;
        off += 10;
        if b.len() < off + rdlen {
            return DnsScan::ParseFails;
        }
        match rtype {
            12 => {
                // PTR rdata is re-parsed as a name and re-encoded from it:
                // only a strict walk consuming exactly rdlen is canonical.
                match scan_dns_name(b, off) {
                    NameScan::Ok(end) if end == off + rdlen => {}
                    NameScan::Ok(_) | NameScan::NeedsDecode => return DnsScan::NeedsDecode,
                    NameScan::Fail => return DnsScan::ParseFails,
                }
            }
            16 => {
                // TXT: length-prefixed UTF-8 strings, length-preserving.
                let rdata = &b[off..off + rdlen];
                let mut i = 0usize;
                while i < rdata.len() {
                    let len = rdata[i] as usize;
                    if i + 1 + len > rdata.len() {
                        return DnsScan::ParseFails;
                    }
                    if std::str::from_utf8(&rdata[i + 1..i + 1 + len]).is_err() {
                        return DnsScan::ParseFails;
                    }
                    i += 1 + len;
                }
            }
            _ => {} // A/AAAA and raw rdata are length-preserving
        }
        off += rdlen;
    }
    DnsScan::Canonical(off) // trailing bytes are dropped on re-encode
}

/// Outcome of the HTTP canonicality check.
enum HttpScan {
    /// Parses and re-encodes byte-length-identically.
    Canonical,
    /// The decoder would fall back to `AppPayload::Raw`.
    ParseFails,
    /// Parses, but re-encoding would change the length (e.g. collapsed
    /// whitespace or a non-minimal status code).
    NeedsDecode,
}

fn decimal_len(v: u16) -> usize {
    match v {
        0..=9 => 1,
        10..=99 => 2,
        100..=999 => 3,
        1000..=9999 => 4,
        _ => 5,
    }
}

fn scan_http(b: &[u8]) -> HttpScan {
    let Some(head_end) = b.windows(4).position(|w| w == b"\r\n\r\n") else {
        return HttpScan::ParseFails;
    };
    let Ok(head) = std::str::from_utf8(&b[..head_end]) else {
        return HttpScan::ParseFails;
    };
    let mut lines = head.split("\r\n");
    let start = lines.next().unwrap_or("");
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return HttpScan::ParseFails;
        };
        // Headers re-encode as `name: value` with both sides trimmed.
        if line.len() != name.trim().len() + 2 + value.trim().len() {
            return HttpScan::NeedsDecode;
        }
    }
    if let Some(rest) = start
        .strip_prefix("HTTP/1.1 ")
        .or_else(|| start.strip_prefix("HTTP/1.0 "))
    {
        let (code, _reason) = rest.split_once(' ').unwrap_or((rest, ""));
        if code.parse::<u16>().is_err() {
            return HttpScan::ParseFails;
        }
        if rest.split_once(' ').is_none() {
            // Re-encoding appends a space before the (empty) reason.
            return HttpScan::NeedsDecode;
        }
        let status: u16 = code.parse().expect("checked above");
        if code.len() != decimal_len(status) {
            return HttpScan::NeedsDecode; // e.g. leading zeros
        }
        HttpScan::Canonical
    } else {
        let mut tokens = start.split(' ');
        let (Some(method), Some(target), Some(version)) =
            (tokens.next(), tokens.next(), tokens.next())
        else {
            return HttpScan::ParseFails;
        };
        if !version.starts_with("HTTP/") {
            return HttpScan::ParseFails;
        }
        // Request lines re-encode as `method target HTTP/1.1`.
        if start.len() != method.len() + target.len() + 10 {
            return HttpScan::NeedsDecode;
        }
        HttpScan::Canonical
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{AppPayload, Packet};
    use bytes::Bytes;

    fn mac(n: u8) -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, n])
    }

    fn assert_certified(packet: &Packet) {
        let frame = packet.encode();
        match WireScan::scan(&frame) {
            ScanOutcome::Features(raw) => {
                assert_eq!(raw, RawFeatures::from_packet(packet), "frame {frame:?}")
            }
            other => panic!("canonical frame not certified: {other:?}"),
        }
    }

    #[test]
    fn canonical_constructor_frames_certify() {
        let m = mac(1);
        let gw = mac(2);
        let ip = std::net::Ipv4Addr::new(10, 0, 0, 7);
        let peer = std::net::Ipv4Addr::new(93, 184, 216, 34);
        assert_certified(&Packet::dhcp_discover(m, 77, 1_000));
        assert_certified(&Packet::arp_probe(Timestamp::from_micros(2_000), m, ip));
        assert_certified(&Packet::eapol_key(Timestamp::from_micros(3_000), m, gw, 1));
        assert_certified(&Packet::tcp_syn(
            Timestamp::from_micros(4_000),
            m,
            gw,
            ip,
            peer,
            49_152,
            ports::HTTPS,
        ));
        assert_certified(&Packet::udp_ipv4(
            Timestamp::from_micros(5_000),
            m,
            gw,
            ip,
            peer,
            49_153,
            ports::NTP,
            AppPayload::Raw(Bytes::copy_from_slice(&[0u8; 48])),
        ));
    }

    #[test]
    fn truncated_prefixes_never_certify_wrongly() {
        let frame = Packet::dhcp_discover(mac(3), 9, 0).encode();
        for cut in 0..frame.len() {
            let prefix = &frame[..cut];
            match WireScan::scan(prefix) {
                ScanOutcome::Features(raw) => {
                    let packet = Packet::parse(prefix, Timestamp::ZERO)
                        .expect("certified prefix must decode");
                    assert_eq!(raw, RawFeatures::from_packet(&packet));
                }
                ScanOutcome::Malformed => {
                    assert!(Packet::parse(prefix, Timestamp::ZERO).is_err());
                }
                ScanOutcome::NeedsDecode => {}
            }
        }
    }

    #[test]
    fn from_frame_matches_decode_on_malformed_input() {
        let garbage = [0xffu8; 13];
        assert!(RawFeatures::from_frame(&garbage).is_err());
        assert!(Packet::parse(&garbage, Timestamp::ZERO).is_err());
    }

    #[test]
    fn compressed_dns_needs_decode() {
        // A DNS response whose answer name is a compression pointer.
        let mut payload = vec![0u8; 12];
        payload[5] = 1; // one question
        payload[7] = 1; // one answer
        payload.extend_from_slice(&[3, b'f', b'o', b'o', 0]); // question name
        payload.extend_from_slice(&[0, 1, 0, 1]); // qtype/qclass
        payload.extend_from_slice(&[0xc0, 12]); // answer name: pointer
        payload.extend_from_slice(&[0, 1, 0, 1, 0, 0, 0, 60, 0, 4, 1, 2, 3, 4]);
        let total = payload.len();
        let packet = Packet::udp_ipv4(
            Timestamp::ZERO,
            mac(4),
            mac(5),
            std::net::Ipv4Addr::new(10, 0, 0, 1),
            std::net::Ipv4Addr::new(10, 0, 0, 2),
            ports::DNS,
            49_000,
            AppPayload::Raw(Bytes::copy_from_slice(&payload)),
        );
        let mut frame = packet.encode();
        assert_eq!(&frame[frame.len() - total..], &payload[..]);
        assert_eq!(WireScan::scan(&frame), ScanOutcome::NeedsDecode);
        // The fallback path still agrees with the decoder.
        let via_scan = RawFeatures::from_frame(&frame).expect("valid frame");
        let decoded = Packet::parse(&frame, Timestamp::ZERO).expect("valid frame");
        assert_eq!(via_scan, RawFeatures::from_packet(&decoded));
        // Corrupting the IPv4 checksum makes the frame malformed.
        frame[25] ^= 0xff;
        assert_eq!(WireScan::scan(&frame), ScanOutcome::Malformed);
        assert!(Packet::parse(&frame, Timestamp::ZERO).is_err());
    }
}
