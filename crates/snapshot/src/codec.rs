//! Section payload codecs: fixed little-endian encodings of the
//! trained model's parts and their checked inverses.
//!
//! Encoding is **canonical** — one byte stream per logical model, with
//! hash-map content emitted in sorted order and interned feature
//! vectors in first-use order — so the golden fixture can pin the
//! format byte for byte. Decoding trusts nothing: every count is
//! bounds-guarded, every enum tag matched exhaustively, and the
//! structural invariants of trees/forests/banks are re-validated by the
//! `from_parts` constructors before a model is assembled.

use std::net::IpAddr;

use sentinel_core::vulndb::{CveRecord, StaticVulnDb};
use sentinel_core::{BankConfig, ClassifierBank, IdentifierConfig, IdentifyMode, TrainedModel};
use sentinel_fingerprint::{FeatureVector, Fingerprint, PortClass, FIXED_DIMENSIONS};
use sentinel_ml::{FeatureSubsample, ForestConfig, RandomForest, TreeParts};
use sentinel_netproto::ProtocolSet;

use crate::wire::{Reader, Writer};
use crate::SnapshotError;

// ---------------------------------------------------------------- config

fn put_forest_config(out: &mut Writer, config: &ForestConfig) {
    out.put_usize(config.n_trees);
    match config.feature_subsample {
        FeatureSubsample::Sqrt => out.put_u8(0),
        FeatureSubsample::All => out.put_u8(1),
        FeatureSubsample::Fixed(k) => {
            out.put_u8(2);
            out.put_usize(k);
        }
    }
    out.put_usize(config.max_depth);
    out.put_usize(config.min_samples_split);
    out.put_usize(config.min_samples_leaf);
    out.put_u64(config.seed);
    out.put_usize(config.threads);
}

fn get_forest_config(reader: &mut Reader) -> Result<ForestConfig, SnapshotError> {
    let n_trees = reader.usize()?;
    let feature_subsample = match reader.u8()? {
        0 => FeatureSubsample::Sqrt,
        1 => FeatureSubsample::All,
        2 => FeatureSubsample::Fixed(reader.usize()?),
        tag => return Err(reader.decode_err(&format!("unknown feature-subsample tag {tag}"))),
    };
    Ok(ForestConfig {
        n_trees,
        feature_subsample,
        max_depth: reader.usize()?,
        min_samples_split: reader.usize()?,
        min_samples_leaf: reader.usize()?,
        seed: reader.u64()?,
        threads: reader.usize()?,
    })
}

fn put_bank_config(out: &mut Writer, config: &BankConfig) {
    out.put_usize(config.negative_ratio);
    put_forest_config(out, &config.forest);
    out.put_u64(config.seed);
    out.put_usize(config.threads);
}

fn get_bank_config(reader: &mut Reader) -> Result<BankConfig, SnapshotError> {
    Ok(BankConfig {
        negative_ratio: reader.usize()?,
        forest: get_forest_config(reader)?,
        seed: reader.u64()?,
        threads: reader.usize()?,
    })
}

pub(crate) fn encode_config(config: &IdentifierConfig) -> Vec<u8> {
    let mut out = Writer::new();
    put_bank_config(&mut out, &config.bank);
    out.put_usize(config.references_per_type);
    out.put_u8(match config.mode {
        IdentifyMode::TwoStage => 0,
        IdentifyMode::RfOnly => 1,
        IdentifyMode::EditOnly => 2,
    });
    out.put_u64(config.seed);
    out.put_f64(config.max_dissimilarity);
    out.put_usize(config.threads);
    out.into_bytes()
}

pub(crate) fn decode_config(bytes: &[u8]) -> Result<IdentifierConfig, SnapshotError> {
    let mut reader = Reader::new(bytes, "config section");
    let bank = get_bank_config(&mut reader)?;
    let references_per_type = reader.usize()?;
    let mode = match reader.u8()? {
        0 => IdentifyMode::TwoStage,
        1 => IdentifyMode::RfOnly,
        2 => IdentifyMode::EditOnly,
        tag => return Err(reader.decode_err(&format!("unknown identify-mode tag {tag}"))),
    };
    let config = IdentifierConfig {
        bank,
        references_per_type,
        mode,
        seed: reader.u64()?,
        max_dissimilarity: reader.f64()?,
        threads: reader.usize()?,
    };
    reader.finish()?;
    Ok(config)
}

// ------------------------------------------------------------------ bank

fn put_forest(out: &mut Writer, forest: &RandomForest) {
    match forest.oob_accuracy() {
        Some(oob) => {
            out.put_u8(1);
            out.put_f64(oob);
        }
        None => out.put_u8(0),
    }
    out.put_u32(forest.n_trees() as u32);
    for tree in forest.trees() {
        let parts = tree.to_parts();
        out.put_u32(parts.features.len() as u32);
        out.put_u32(parts.n_classes as u32);
        for &feature in &parts.features {
            out.put_u32(feature);
        }
        for &threshold in &parts.thresholds {
            out.put_f64(threshold);
        }
        for &left in &parts.lefts {
            out.put_u32(left);
        }
        for &right in &parts.rights {
            out.put_u32(right);
        }
        for &count in &parts.n_samples {
            out.put_usize(count);
        }
        for &decrease in &parts.impurity_decreases {
            out.put_f64(decrease);
        }
        out.put_u32(parts.leaf_counts.len() as u32);
        for &count in &parts.leaf_counts {
            out.put_usize(count);
        }
    }
}

fn get_forest(reader: &mut Reader) -> Result<RandomForest, SnapshotError> {
    let oob_accuracy = match reader.u8()? {
        0 => None,
        1 => Some(reader.f64()?),
        tag => return Err(reader.decode_err(&format!("unknown oob-accuracy tag {tag}"))),
    };
    // Per tree: node count + class count + leaf-count length (12 bytes
    // of prefixes) at minimum.
    let n_trees = reader.count(12)?;
    let mut trees = Vec::with_capacity(n_trees);
    for _ in 0..n_trees {
        // Every node occupies 4+8+4+4+8+8 = 36 payload bytes.
        let n_nodes = reader.count(36)?;
        let n_classes = reader.u32()? as usize;
        let mut parts = TreeParts {
            n_classes,
            ..TreeParts::default()
        };
        parts.features = read_u32s(reader, n_nodes)?;
        parts.thresholds = read_f64s(reader, n_nodes)?;
        parts.lefts = read_u32s(reader, n_nodes)?;
        parts.rights = read_u32s(reader, n_nodes)?;
        parts.n_samples = read_usizes(reader, n_nodes)?;
        parts.impurity_decreases = read_f64s(reader, n_nodes)?;
        let n_leaf_slots = reader.count(8)?;
        parts.leaf_counts = read_usizes(reader, n_leaf_slots)?;
        trees.push(
            sentinel_ml::DecisionTree::from_parts(parts, FIXED_DIMENSIONS)
                .map_err(|err| reader.decode_err(&err))?,
        );
    }
    RandomForest::from_parts(trees, oob_accuracy).map_err(|err| reader.decode_err(&err))
}

fn read_u32s(reader: &mut Reader, n: usize) -> Result<Vec<u32>, SnapshotError> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(reader.u32()?);
    }
    Ok(out)
}

fn read_f64s(reader: &mut Reader, n: usize) -> Result<Vec<f64>, SnapshotError> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(reader.f64()?);
    }
    Ok(out)
}

fn read_usizes(reader: &mut Reader, n: usize) -> Result<Vec<usize>, SnapshotError> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(reader.usize()?);
    }
    Ok(out)
}

pub(crate) fn encode_bank(bank: &ClassifierBank) -> Vec<u8> {
    let mut out = Writer::new();
    put_bank_config(&mut out, bank.config());
    out.put_u32(bank.n_types() as u32);
    for name in bank.type_names() {
        out.put_str(name);
    }
    for forest in bank.classifiers() {
        put_forest(&mut out, forest);
    }
    out.into_bytes()
}

pub(crate) fn decode_bank(bytes: &[u8]) -> Result<ClassifierBank, SnapshotError> {
    let mut reader = Reader::new(bytes, "bank section");
    let config = get_bank_config(&mut reader)?;
    // Each type carries at least a name length prefix (4 bytes) and a
    // forest header (5 bytes).
    let n_types = reader.count(9)?;
    let mut type_names = Vec::with_capacity(n_types);
    for _ in 0..n_types {
        type_names.push(reader.str()?);
    }
    let mut classifiers = Vec::with_capacity(n_types);
    for _ in 0..n_types {
        classifiers.push(get_forest(&mut reader)?);
    }
    reader.finish()?;
    ClassifierBank::from_parts(classifiers, type_names, config).map_err(SnapshotError::Decode)
}

// ------------------------------------------------------------ references

/// One interned feature vector: 16 bytes, fixed layout.
///
/// ```text
/// offset  size  field
///      0     2  protocol indicator bits (little-endian u16)
///      2     1  flag bits: 0 ip_option_padding, 1 ip_option_router_alert,
///               2 raw_data
///      3     1  source port class (0-3)
///      4     1  destination port class (0-3)
///      5     3  zero padding
///      8     4  packet size (u32)
///     12     4  destination-IP counter (u32)
/// ```
const VECTOR_RECORD_SIZE: usize = 16;

fn put_vector(out: &mut Writer, vector: &FeatureVector) {
    out.put_u16(vector.protocols.bits());
    let flags = u8::from(vector.ip_option_padding)
        | u8::from(vector.ip_option_router_alert) << 1
        | u8::from(vector.raw_data) << 2;
    out.put_u8(flags);
    out.put_u8(vector.src_port_class.to_u8());
    out.put_u8(vector.dst_port_class.to_u8());
    out.put_bytes(&[0u8; 3]);
    out.put_u32(vector.packet_size);
    out.put_u32(vector.dst_ip_counter);
}

fn get_port_class(reader: &mut Reader, tag: u8) -> Result<PortClass, SnapshotError> {
    match tag {
        0 => Ok(PortClass::NoPort),
        1 => Ok(PortClass::WellKnown),
        2 => Ok(PortClass::Registered),
        3 => Ok(PortClass::Dynamic),
        _ => Err(reader.decode_err(&format!("unknown port-class tag {tag}"))),
    }
}

fn get_vector(reader: &mut Reader) -> Result<FeatureVector, SnapshotError> {
    let protocols = ProtocolSet::from_bits(reader.u16()?);
    let flags = reader.u8()?;
    if flags & !0b111 != 0 {
        return Err(reader.decode_err(&format!("unknown feature-vector flag bits {flags:#04x}")));
    }
    let src_tag = reader.u8()?;
    let src_port_class = get_port_class(reader, src_tag)?;
    let dst_tag = reader.u8()?;
    let dst_port_class = get_port_class(reader, dst_tag)?;
    if reader.take(3)? != [0u8; 3] {
        return Err(reader.decode_err("nonzero padding in feature-vector record"));
    }
    Ok(FeatureVector {
        protocols,
        ip_option_padding: flags & 0b001 != 0,
        ip_option_router_alert: flags & 0b010 != 0,
        packet_size: reader.u32()?,
        raw_data: flags & 0b100 != 0,
        dst_ip_counter: reader.u32()?,
        src_port_class,
        dst_port_class,
    })
}

/// Encodes the stage-2 reference fingerprints with interning: the pool
/// of *distinct* feature vectors in first-use order (exactly the dense
/// id order the identifier's `SymbolTable` assigns when the loaded
/// references are re-interned), then each fingerprint as a sequence of
/// pool ids.
pub(crate) fn encode_references(references: &[Vec<Fingerprint>]) -> Vec<u8> {
    let mut pool: Vec<FeatureVector> = Vec::new();
    let mut ids: std::collections::HashMap<FeatureVector, u32> = std::collections::HashMap::new();
    let mut sequences: Vec<Vec<Vec<u32>>> = Vec::with_capacity(references.len());
    for type_references in references {
        let mut type_sequences = Vec::with_capacity(type_references.len());
        for fingerprint in type_references {
            let sequence = fingerprint
                .vectors()
                .iter()
                .map(|vector| {
                    *ids.entry(vector.clone()).or_insert_with(|| {
                        pool.push(vector.clone());
                        (pool.len() - 1) as u32
                    })
                })
                .collect();
            type_sequences.push(sequence);
        }
        sequences.push(type_sequences);
    }
    let mut out = Writer::new();
    out.put_u32(pool.len() as u32);
    for vector in &pool {
        put_vector(&mut out, vector);
    }
    out.put_u32(references.len() as u32);
    for type_sequences in &sequences {
        out.put_u32(type_sequences.len() as u32);
        for sequence in type_sequences {
            out.put_u32(sequence.len() as u32);
            for &id in sequence {
                out.put_u32(id);
            }
        }
    }
    out.into_bytes()
}

pub(crate) fn decode_references(bytes: &[u8]) -> Result<Vec<Vec<Fingerprint>>, SnapshotError> {
    let mut reader = Reader::new(bytes, "references section");
    let pool_len = reader.count(VECTOR_RECORD_SIZE)?;
    let mut pool = Vec::with_capacity(pool_len);
    for _ in 0..pool_len {
        pool.push(get_vector(&mut reader)?);
    }
    let n_types = reader.count(4)?;
    let mut references = Vec::with_capacity(n_types);
    for _ in 0..n_types {
        let n_fingerprints = reader.count(4)?;
        let mut type_references = Vec::with_capacity(n_fingerprints);
        for _ in 0..n_fingerprints {
            let n_vectors = reader.count(4)?;
            let mut vectors = Vec::with_capacity(n_vectors);
            for _ in 0..n_vectors {
                let id = reader.u32()? as usize;
                let vector = pool
                    .get(id)
                    .ok_or_else(|| reader.decode_err("feature-vector id outside the pool"))?;
                vectors.push(vector.clone());
            }
            type_references.push(Fingerprint::from_vec(vectors));
        }
        references.push(type_references);
    }
    reader.finish()?;
    Ok(references)
}

// ---------------------------------------------------------------- vulndb

pub(crate) fn encode_vulndb(vulndb: &StaticVulnDb) -> Vec<u8> {
    let mut out = Writer::new();
    // Hash-map iteration order is nondeterministic; sort by device-type
    // so encoding is canonical.
    let mut records: Vec<_> = vulndb.records().collect();
    records.sort_by_key(|&(name, _)| name);
    out.put_u32(records.len() as u32);
    for (name, advisories) in records {
        out.put_str(name);
        out.put_u32(advisories.len() as u32);
        for advisory in advisories {
            out.put_str(&advisory.id);
            out.put_str(&advisory.summary);
            out.put_f64(advisory.severity);
        }
    }
    let mut endpoints: Vec<_> = vulndb.endpoints().collect();
    endpoints.sort_by_key(|&(name, _)| name);
    out.put_u32(endpoints.len() as u32);
    for (name, addresses) in endpoints {
        out.put_str(name);
        out.put_u32(addresses.len() as u32);
        for address in addresses {
            match address {
                IpAddr::V4(v4) => {
                    out.put_u8(4);
                    out.put_bytes(&v4.octets());
                }
                IpAddr::V6(v6) => {
                    out.put_u8(6);
                    out.put_bytes(&v6.octets());
                }
            }
        }
    }
    let mut uncontrollable: Vec<_> = vulndb.uncontrollable().collect();
    uncontrollable.sort_unstable();
    out.put_u32(uncontrollable.len() as u32);
    for name in uncontrollable {
        out.put_str(name);
    }
    out.into_bytes()
}

pub(crate) fn decode_vulndb(bytes: &[u8]) -> Result<StaticVulnDb, SnapshotError> {
    let mut reader = Reader::new(bytes, "vulnerability section");
    let mut vulndb = StaticVulnDb::new();
    let n_records = reader.count(8)?;
    for _ in 0..n_records {
        let name = reader.str()?;
        let n_advisories = reader.count(20)?;
        for _ in 0..n_advisories {
            let record = CveRecord {
                id: reader.str()?,
                summary: reader.str()?,
                severity: reader.f64()?,
            };
            vulndb.add_record(&name, record);
        }
    }
    let n_endpoints = reader.count(8)?;
    for _ in 0..n_endpoints {
        let name = reader.str()?;
        let n_addresses = reader.count(5)?;
        for _ in 0..n_addresses {
            let address = match reader.u8()? {
                4 => IpAddr::from(<[u8; 4]>::try_from(reader.take(4)?).unwrap()),
                6 => IpAddr::from(<[u8; 16]>::try_from(reader.take(16)?).unwrap()),
                tag => return Err(reader.decode_err(&format!("unknown address tag {tag}"))),
            };
            vulndb.add_endpoint(&name, address);
        }
    }
    let n_uncontrollable = reader.count(4)?;
    for _ in 0..n_uncontrollable {
        let name = reader.str()?;
        vulndb.mark_uncontrollable(name);
    }
    reader.finish()?;
    Ok(vulndb)
}

// ----------------------------------------------------------------- model

pub(crate) fn decode_model(
    config: &[u8],
    bank: &[u8],
    references: &[u8],
) -> Result<TrainedModel, SnapshotError> {
    let config = decode_config(config)?;
    let bank = decode_bank(bank)?;
    let references = decode_references(references)?;
    TrainedModel::from_parts(bank, references, config).map_err(SnapshotError::Decode)
}
