//! CART decision trees with Gini impurity.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::binning::{BinnedDataset, HistScratch};
use crate::Dataset;

/// Training parameters for a [`DecisionTree`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each child of an accepted split.
    pub min_samples_leaf: usize,
    /// Number of random candidate features per split (`None` = all).
    pub n_candidate_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 24,
            min_samples_split: 2,
            min_samples_leaf: 1,
            n_candidate_features: None,
        }
    }
}

/// Marks a leaf in the per-node `features` array.
pub(crate) const LEAF: u32 = u32::MAX;

/// A trained CART decision tree.
///
/// Samples with `feature <= threshold` go left. Leaves store training
/// class counts so the tree can emit probabilities.
///
/// Nodes live in parallel arrays (structure-of-arrays) rather than an
/// enum arena: the predict loop only touches `features`, `thresholds`
/// and the child ids, so a traversal step reads three small contiguous
/// arrays instead of one ~56-byte enum, and each leaf carries its
/// precomputed majority class — the per-visit `argmax` of the old
/// layout disappears. Forest prediction is the hot path of the
/// 27-classifier identification stage, which is why the layout is
/// tuned this aggressively.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    /// Per-node split feature; [`LEAF`] (`u32::MAX`) marks a leaf.
    features: Vec<u32>,
    /// Per-node split threshold (`0.0` at leaves).
    thresholds: Vec<f64>,
    /// Left child id at splits; at leaves, the index into `leaf_counts`.
    lefts: Vec<u32>,
    /// Right child id at splits; at leaves, the precomputed majority
    /// class (first class on ties, matching [`argmax`]).
    rights: Vec<u32>,
    /// Samples that reached each node (importance weighting).
    n_samples: Vec<usize>,
    /// Gini impurity decrease per node (`0.0` at leaves).
    impurity_decreases: Vec<f64>,
    /// Per-leaf training class counts (for probabilities).
    leaf_counts: Vec<Vec<usize>>,
    n_classes: usize,
}

/// Per-fit split-search inputs threaded through the build recursion:
/// the training rows, the optional pre-binned columns, and the reusable
/// histogram scratch.
struct FitContext<'a> {
    data: &'a Dataset,
    bins: Option<&'a BinnedDataset>,
    scratch: HistScratch,
}

impl DecisionTree {
    /// Fits a tree on `data` using all rows.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(data: &Dataset, config: &TreeConfig, rng: &mut impl Rng) -> Self {
        let indices: Vec<usize> = (0..data.len()).collect();
        Self::fit_on(data, &indices, config, rng)
    }

    /// Fits a tree on the rows selected by `indices` (used for bootstrap
    /// bagging; indices may repeat) with the exact sorted-scan split
    /// search.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty.
    pub fn fit_on(
        data: &Dataset,
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut impl Rng,
    ) -> Self {
        Self::fit_inner(data, None, indices, config, rng)
    }

    /// Fits a tree like [`DecisionTree::fit_on`], but finds splits with
    /// cumulative histogram sweeps over the pre-binned columns in `bins`
    /// (which must have been built from this `data`). The binning is
    /// lossless — bins are the feature's actual distinct values — so the
    /// fitted tree is **bit-identical** to [`DecisionTree::fit_on`] with
    /// the same RNG state; only the per-node cost changes, from
    /// `O(n log n)` sorting to `O(n + bins)` counting per candidate
    /// feature.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty.
    pub fn fit_binned(
        data: &Dataset,
        bins: &BinnedDataset,
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut impl Rng,
    ) -> Self {
        Self::fit_inner(data, Some(bins), indices, config, rng)
    }

    fn fit_inner(
        data: &Dataset,
        bins: Option<&BinnedDataset>,
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree on zero samples");
        let n_classes = data.n_classes().max(2);
        let mut tree = DecisionTree {
            features: Vec::new(),
            thresholds: Vec::new(),
            lefts: Vec::new(),
            rights: Vec::new(),
            n_samples: Vec::new(),
            impurity_decreases: Vec::new(),
            leaf_counts: Vec::new(),
            n_classes,
        };
        let mut work = indices.to_vec();
        let mut ctx = FitContext {
            data,
            bins,
            scratch: HistScratch::default(),
        };
        tree.build(&mut ctx, &mut work, 0, config, rng);
        tree
    }

    /// The number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.features.len()
    }

    /// The maximum depth of the tree (root = 0, single leaf = 0).
    pub fn depth(&self) -> usize {
        fn walk(tree: &DecisionTree, at: usize) -> usize {
            if tree.features[at] == LEAF {
                return 0;
            }
            1 + walk(tree, tree.lefts[at] as usize).max(walk(tree, tree.rights[at] as usize))
        }
        walk(self, 0)
    }

    /// Predicts the class of a feature row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is shorter than the features the tree was trained
    /// on.
    #[inline]
    pub fn predict(&self, row: &[f64]) -> usize {
        let mut at = 0usize;
        loop {
            let feature = self.features[at];
            if feature == LEAF {
                return self.rights[at] as usize;
            }
            at = if row[feature as usize] <= self.thresholds[at] {
                self.lefts[at]
            } else {
                self.rights[at]
            } as usize;
        }
    }

    /// Per-class probability estimate for a feature row (leaf class
    /// frequencies).
    pub fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
        let counts = self.leaf_counts_for(row);
        let total: usize = counts.iter().sum();
        counts
            .iter()
            .map(|&c| {
                if total == 0 {
                    0.0
                } else {
                    c as f64 / total as f64
                }
            })
            .collect()
    }

    /// Appends this tree's nodes to a [`crate::packed`] arena, offsetting
    /// child ids by the arena's current length, and returns the root's
    /// arena index.
    pub(crate) fn pack_into(&self, nodes: &mut Vec<crate::packed::PackedNode>) -> u32 {
        let base = nodes.len() as u32;
        if self.features.is_empty() {
            // Defensive: an empty tree cannot predict; pack it as a
            // class-0 leaf so the arena walk stays in bounds.
            nodes.push(crate::packed::PackedNode::leaf(0));
            return base;
        }
        for i in 0..self.features.len() {
            let feature = self.features[i];
            nodes.push(if feature == LEAF {
                crate::packed::PackedNode::leaf(self.rights[i])
            } else {
                crate::packed::PackedNode::split(
                    feature,
                    self.thresholds[i],
                    base + self.lefts[i],
                    base + self.rights[i],
                )
            });
        }
        base
    }

    fn leaf_counts_for(&self, row: &[f64]) -> &[usize] {
        let mut at = 0usize;
        while self.features[at] != LEAF {
            at = if row[self.features[at] as usize] <= self.thresholds[at] {
                self.lefts[at]
            } else {
                self.rights[at]
            } as usize;
        }
        &self.leaf_counts[self.lefts[at] as usize]
    }

    /// Builds the subtree over `indices`, returning its root node id.
    fn build(
        &mut self,
        ctx: &mut FitContext<'_>,
        indices: &mut [usize],
        depth: usize,
        config: &TreeConfig,
        rng: &mut impl Rng,
    ) -> usize {
        let data = ctx.data;
        let counts = self.class_counts(data, indices);
        let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
        if pure || depth >= config.max_depth || indices.len() < config.min_samples_split {
            return self.push_leaf(counts);
        }
        let split = match ctx.bins {
            Some(bins) => self.best_split_hist(data, bins, &mut ctx.scratch, indices, config, rng),
            None => self.best_split(data, indices, config, rng),
        };
        match split {
            Some((feature, threshold, weighted_child_gini)) => {
                let split_at = partition(data, indices, feature, threshold);
                if split_at < config.min_samples_leaf
                    || indices.len() - split_at < config.min_samples_leaf
                    || split_at == 0
                    || split_at == indices.len()
                {
                    return self.push_leaf(counts);
                }
                // Reserve the node id before children so the root is node 0.
                let id = self.push_placeholder();
                let parent_gini = gini(&counts, indices.len());
                let n_samples = indices.len();
                let (left_idx, right_idx) = indices.split_at_mut(split_at);
                let left = self.build(ctx, left_idx, depth + 1, config, rng);
                let right = self.build(ctx, right_idx, depth + 1, config, rng);
                self.features[id] = u32::try_from(feature).expect("feature id fits u32");
                self.thresholds[id] = threshold;
                self.lefts[id] = u32::try_from(left).expect("node id fits u32");
                self.rights[id] = u32::try_from(right).expect("node id fits u32");
                self.n_samples[id] = n_samples;
                self.impurity_decreases[id] = (parent_gini - weighted_child_gini).max(0.0);
                id
            }
            None => self.push_leaf(counts),
        }
    }

    fn push_placeholder(&mut self) -> usize {
        let id = self.features.len();
        self.features.push(LEAF);
        self.thresholds.push(0.0);
        self.lefts.push(0);
        self.rights.push(0);
        self.n_samples.push(0);
        self.impurity_decreases.push(0.0);
        id
    }

    fn push_leaf(&mut self, counts: Vec<usize>) -> usize {
        let id = self.push_placeholder();
        self.n_samples[id] = counts.iter().sum();
        self.lefts[id] = u32::try_from(self.leaf_counts.len()).expect("leaf id fits u32");
        self.rights[id] = u32::try_from(argmax(&counts)).expect("class id fits u32");
        self.leaf_counts.push(counts);
        id
    }

    fn class_counts(&self, data: &Dataset, indices: &[usize]) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &i in indices {
            counts[data.label(i)] += 1;
        }
        counts
    }

    /// Finds the `(feature, threshold)` minimizing weighted Gini impurity
    /// over the candidate features, or `None` if no split improves.
    fn best_split(
        &self,
        data: &Dataset,
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut impl Rng,
    ) -> Option<(usize, f64, f64)> {
        let n_features = data.n_features();
        let mut candidates: Vec<usize> = (0..n_features).collect();
        let limit = match config.n_candidate_features {
            Some(k) => {
                candidates.shuffle(rng);
                k.max(1).min(n_features)
            }
            None => n_features,
        };
        // Take the best split even at zero Gini gain (as CART splitters
        // do): greedy strict-improvement search cannot learn XOR-shaped
        // concepts whose first split is gain-free. Purity, depth and
        // min-samples rules bound the recursion instead.
        let mut best: Option<(f64, usize, f64)> = None;
        // Constant features do not count against the candidate budget —
        // like scikit-learn, keep drawing until `limit` splittable
        // features were examined or the feature set is exhausted.
        let mut examined = 0usize;
        let mut column: Vec<(f64, usize)> = Vec::with_capacity(indices.len());
        for &feature in &candidates {
            if examined >= limit {
                break;
            }
            column.clear();
            column.extend(
                indices
                    .iter()
                    .map(|&i| (data.row(i)[feature], data.label(i))),
            );
            column.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite features"));
            let total = column.len();
            if column[0].0 == column[total - 1].0 {
                continue; // constant feature: no threshold exists
            }
            examined += 1;
            let mut left_counts = vec![0usize; self.n_classes];
            let mut right_counts = self.class_counts(data, indices);
            for pos in 0..total - 1 {
                let (value, label) = column[pos];
                left_counts[label] += 1;
                right_counts[label] -= 1;
                let next_value = column[pos + 1].0;
                if value == next_value {
                    continue; // cannot split between equal values
                }
                let n_left = pos + 1;
                let n_right = total - n_left;
                let weighted = (n_left as f64 * gini(&left_counts, n_left)
                    + n_right as f64 * gini(&right_counts, n_right))
                    / total as f64;
                if best.is_none_or(|(g, _, _)| weighted + 1e-12 < g) {
                    best = Some((weighted, feature, (value + next_value) / 2.0));
                }
            }
        }
        best.map(|(weighted, feature, threshold)| (feature, threshold, weighted))
    }

    /// The histogram twin of [`DecisionTree::best_split`]: instead of
    /// sorting the node's column per candidate feature, count the node's
    /// rows into per-bin class histograms (bins = the feature's distinct
    /// values, pre-computed in `bins`) and sweep the bins cumulatively.
    ///
    /// The sweep probes exactly the thresholds the sorted scan would —
    /// midpoints between adjacent distinct values *present in the node*
    /// (empty bins between them are skipped, so the midpoint spans them
    /// just as the sort would) — with identical left/right class counts,
    /// in the same ascending order, under the same strict-improvement
    /// tolerance. Constant-in-node features are skipped without counting
    /// against the candidate budget, exactly like the exact scan, so the
    /// RNG stream and the returned split are bit-identical.
    fn best_split_hist(
        &self,
        data: &Dataset,
        bins: &BinnedDataset,
        scratch: &mut HistScratch,
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut impl Rng,
    ) -> Option<(usize, f64, f64)> {
        let n_features = data.n_features();
        let mut candidates: Vec<usize> = (0..n_features).collect();
        let limit = match config.n_candidate_features {
            Some(k) => {
                candidates.shuffle(rng);
                k.max(1).min(n_features)
            }
            None => n_features,
        };
        let total = indices.len();
        let n_classes = self.n_classes;
        let parent_counts = self.class_counts(data, indices);
        let mut best: Option<(f64, usize, f64)> = None;
        let mut examined = 0usize;
        let mut left_counts = vec![0usize; n_classes];
        let mut right_counts = vec![0usize; n_classes];
        for &feature in &candidates {
            if examined >= limit {
                break;
            }
            let n_bins = bins.n_bins(feature);
            if n_bins <= 1 {
                continue; // globally constant feature: no threshold exists
            }
            let codes = bins.column(feature);
            let hist = scratch.zeroed(n_bins, n_classes);
            for &i in indices {
                hist[codes[i] as usize * n_classes + data.label(i)] += 1;
            }
            let hist: &[u32] = hist;
            // A feature constant *within the node* (one non-empty bin)
            // does not count against the candidate budget — the exact
            // scan's `column[0] == column[total - 1]` check.
            let mut present = 0usize;
            for b in 0..n_bins {
                if hist[b * n_classes..(b + 1) * n_classes]
                    .iter()
                    .any(|&c| c > 0)
                {
                    present += 1;
                    if present >= 2 {
                        break;
                    }
                }
            }
            if present < 2 {
                continue;
            }
            examined += 1;
            let values = bins.bin_values(feature);
            left_counts.fill(0);
            right_counts.copy_from_slice(&parent_counts);
            let mut n_left = 0usize;
            let mut prev_value = 0.0f64;
            let mut started = false;
            for b in 0..n_bins {
                let bin = &hist[b * n_classes..(b + 1) * n_classes];
                let bin_total: usize = bin.iter().map(|&c| c as usize).sum();
                if bin_total == 0 {
                    continue;
                }
                let value = values[b];
                if started {
                    // Left holds every present value below `value`; the
                    // candidate threshold is the same midpoint the sorted
                    // scan evaluates between adjacent present values.
                    let n_right = total - n_left;
                    let weighted = (n_left as f64 * gini(&left_counts, n_left)
                        + n_right as f64 * gini(&right_counts, n_right))
                        / total as f64;
                    if best.is_none_or(|(g, _, _)| weighted + 1e-12 < g) {
                        best = Some((weighted, feature, (prev_value + value) / 2.0));
                    }
                }
                for (class, &count) in bin.iter().enumerate() {
                    left_counts[class] += count as usize;
                    right_counts[class] -= count as usize;
                }
                n_left += bin_total;
                prev_value = value;
                started = true;
            }
        }
        best.map(|(weighted, feature, threshold)| (feature, threshold, weighted))
    }

    /// Gini (mean-decrease-in-impurity) feature importances, normalized
    /// to sum to 1 over `n_features` (all zeros for a single-leaf tree).
    pub fn feature_importances(&self, n_features: usize) -> Vec<f64> {
        let mut importances = vec![0.0; n_features];
        if self.features.first().is_none_or(|&f| f == LEAF) {
            return importances; // single-leaf tree: no split anywhere
        }
        let root_samples = self.n_samples[0] as f64;
        for at in 0..self.features.len() {
            if self.features[at] != LEAF {
                importances[self.features[at] as usize] +=
                    self.n_samples[at] as f64 / root_samples * self.impurity_decreases[at];
            }
        }
        let total: f64 = importances.iter().sum();
        if total > 0.0 {
            for value in &mut importances {
                *value /= total;
            }
        }
        importances
    }
}

/// Gini impurity of a class-count vector over `total` samples.
fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let sum_sq: f64 = counts
        .iter()
        .map(|&c| {
            let p = c as f64 / total as f64;
            p * p
        })
        .sum();
    1.0 - sum_sq
}

/// Partitions `indices` in place so rows with `feature <= threshold` come
/// first; returns the boundary position.
fn partition(data: &Dataset, indices: &mut [usize], feature: usize, threshold: f64) -> usize {
    let mut boundary = 0;
    for i in 0..indices.len() {
        if data.row(indices[i])[feature] <= threshold {
            indices.swap(boundary, i);
            boundary += 1;
        }
    }
    boundary
}

/// Index of the maximum element (first on ties).
pub(crate) fn argmax(values: &[usize]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn xor_dataset() -> Dataset {
        let mut data = Dataset::new(2);
        for _ in 0..10 {
            data.push(&[0.0, 0.0], 0);
            data.push(&[1.0, 1.0], 0);
            data.push(&[0.0, 1.0], 1);
            data.push(&[1.0, 0.0], 1);
        }
        data
    }

    #[test]
    fn learns_xor() {
        let tree = DecisionTree::fit(&xor_dataset(), &TreeConfig::default(), &mut rng());
        assert_eq!(tree.predict(&[0.0, 0.0]), 0);
        assert_eq!(tree.predict(&[1.0, 1.0]), 0);
        assert_eq!(tree.predict(&[0.0, 1.0]), 1);
        assert_eq!(tree.predict(&[1.0, 0.0]), 1);
        assert!(tree.depth() >= 2, "xor needs at least two levels");
    }

    #[test]
    fn pure_node_is_single_leaf() {
        let mut data = Dataset::new(1);
        for i in 0..5 {
            data.push(&[i as f64], 1);
        }
        let tree = DecisionTree::fit(&data, &TreeConfig::default(), &mut rng());
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.predict(&[99.0]), 1);
    }

    #[test]
    fn max_depth_zero_gives_majority_vote() {
        let mut data = Dataset::new(1);
        data.push(&[0.0], 0);
        data.push(&[1.0], 1);
        data.push(&[2.0], 1);
        let config = TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&data, &config, &mut rng());
        assert_eq!(tree.predict(&[0.0]), 1, "majority class");
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let tree = DecisionTree::fit(&xor_dataset(), &TreeConfig::default(), &mut rng());
        let proba = tree.predict_proba(&[0.0, 1.0]);
        let sum: f64 = proba.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(proba[1] > proba[0]);
    }

    #[test]
    fn predict_agrees_with_proba_argmax() {
        let tree = DecisionTree::fit(&xor_dataset(), &TreeConfig::default(), &mut rng());
        for row in [[0.0, 0.0], [1.0, 1.0], [0.0, 1.0], [1.0, 0.0]] {
            let proba = tree.predict_proba(&row);
            let by_proba = proba
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(&a.0)))
                .map(|(i, _)| i)
                .unwrap();
            assert_eq!(
                tree.predict(&row),
                by_proba,
                "cached majority class matches"
            );
        }
    }

    #[test]
    fn min_samples_leaf_respected() {
        let mut data = Dataset::new(1);
        data.push(&[0.0], 0);
        data.push(&[1.0], 1);
        let config = TreeConfig {
            min_samples_leaf: 2,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&data, &config, &mut rng());
        assert_eq!(tree.node_count(), 1, "split would create 1-sample leaves");
    }

    #[test]
    fn identical_features_cannot_split() {
        let mut data = Dataset::new(2);
        data.push(&[1.0, 1.0], 0);
        data.push(&[1.0, 1.0], 1);
        let tree = DecisionTree::fit(&data, &TreeConfig::default(), &mut rng());
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn feature_subsampling_still_learns_separable_data() {
        let mut data = Dataset::new(4);
        for i in 0..50 {
            let x = i as f64;
            data.push(&[0.0, 0.0, x, 0.0], usize::from(x > 25.0));
        }
        let config = TreeConfig {
            n_candidate_features: Some(2),
            ..TreeConfig::default()
        };
        // With 2-of-4 candidates per split the informative feature is
        // found after at most a few levels.
        let tree = DecisionTree::fit(&data, &config, &mut rng());
        assert_eq!(tree.predict(&[0.0, 0.0, 40.0, 0.0]), 1);
        assert_eq!(tree.predict(&[0.0, 0.0, 10.0, 0.0]), 0);
    }

    #[test]
    fn importances_identify_the_informative_feature() {
        let mut data = Dataset::new(3);
        for i in 0..60 {
            let x = i as f64;
            // Only feature 1 is informative.
            data.push(&[(i % 7) as f64, x, 3.0], usize::from(x > 30.0));
        }
        let tree = DecisionTree::fit(&data, &TreeConfig::default(), &mut rng());
        let importances = tree.feature_importances(3);
        assert!((importances.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(
            importances[1] > 0.9,
            "feature 1 should dominate: {importances:?}"
        );
    }

    #[test]
    fn single_leaf_tree_has_zero_importances() {
        let mut data = Dataset::new(2);
        data.push(&[1.0, 2.0], 1);
        data.push(&[3.0, 4.0], 1);
        let tree = DecisionTree::fit(&data, &TreeConfig::default(), &mut rng());
        assert_eq!(tree.feature_importances(2), vec![0.0, 0.0]);
    }

    #[test]
    fn argmax_prefers_first_on_tie() {
        assert_eq!(argmax(&[3, 3, 1]), 0);
        assert_eq!(argmax(&[1, 5, 5]), 1);
        assert_eq!(argmax(&[]), 0);
    }
}
