//! Reproduces **Table IV**: time consumption of the device-type
//! identification stages.
//!
//! ```text
//! cargo run --release -p sentinel-bench --bin table4_timing
//! cargo run --release -p sentinel-bench --bin table4_timing -- --iterations 500
//! cargo run --release -p sentinel-bench --bin table4_timing -- --threads 1
//! cargo run --release -p sentinel-bench --bin table4_timing -- --json results/bench_table4.json
//! ```

use sentinel_bench::cli::Args;
use sentinel_bench::{tables, timing};
use sentinel_sdn::stats::Summary;

fn json_row(name: &str, s: &Summary) -> String {
    format!(
        "    \"{name}\": {{\"mean_ms\": {:.6}, \"stdev_ms\": {:.6}, \"n\": {}}}",
        s.mean, s.stdev, s.n
    )
}

fn main() {
    let args = Args::from_env();
    let train_runs: u64 = args.get("runs", 20);
    let iterations: u64 = args.get("iterations", 270);
    let seed: u64 = args.get("seed", 42);
    let threads: usize = args.get("threads", 0);
    let train_samples: usize = args.get("train-samples", 3);

    print!(
        "{}",
        tables::banner("Table IV — Time consumption for device-type identification")
    );
    println!("training: 27 types x {train_runs} runs; measuring {iterations} identifications\n");

    let report = timing::measure(train_runs, iterations, seed, threads);
    let fmt = |s: &Summary| format!("{:.3} ms (±{:.3})", s.mean, s.stdev);
    let rows = vec![
        vec![
            "1 Classification (Random Forest)".to_string(),
            fmt(&report.one_classification),
            "0.014 ms".into(),
        ],
        vec![
            "1 Discrimination (edit distance)".to_string(),
            fmt(&report.one_discrimination),
            "23.36 ms".into(),
        ],
        vec![
            "Fingerprint extraction".to_string(),
            fmt(&report.fingerprint_extraction),
            "0.850 ms".into(),
        ],
        vec![
            "27 Classifications (Random Forest)".to_string(),
            fmt(&report.all_classifications),
            "0.385 ms".into(),
        ],
        vec![
            "Discrimination step (when triggered)".to_string(),
            fmt(&report.discrimination_step),
            "156.5 ms".into(),
        ],
        vec![
            "Type identification".to_string(),
            fmt(&report.type_identification),
            "157.7 ms".into(),
        ],
    ];
    print!("{}", tables::render(&["Step", "Measured", "Paper"], &rows));
    println!();
    println!(
        "discrimination triggered for {:.0}% of identifications (paper: 55%); \
         mean edit-distance computations {:.1} (paper: 7)",
        report.discrimination_rate * 100.0,
        report.mean_edit_distances
    );

    println!(
        "\nbatched stage 1 (64-fingerprint tick): sequential {} vs batched {} vs warm scratch {}",
        fmt(&report.batch_classify_sequential),
        fmt(&report.batch_classify_batched),
        fmt(&report.batch_classify_warm),
    );

    let training = timing::measure_training(train_runs, seed, threads, train_samples);
    println!(
        "training: 27-forest bank {}; one forest histogram {} vs exact scan {}; \
         incremental add_type {}",
        fmt(&training.bank_training),
        fmt(&training.forest_fit_histogram),
        fmt(&training.forest_fit_exact),
        fmt(&training.incremental_add_type),
    );

    if let Some(path) = args.get_str("json") {
        let body = [
            json_row("one_classification", &report.one_classification),
            json_row("one_discrimination", &report.one_discrimination),
            json_row("fingerprint_extraction", &report.fingerprint_extraction),
            json_row("all_classifications", &report.all_classifications),
            json_row("discrimination_step", &report.discrimination_step),
            json_row("type_identification", &report.type_identification),
            json_row(
                "batch_classify_sequential",
                &report.batch_classify_sequential,
            ),
            json_row("batch_classify_batched", &report.batch_classify_batched),
            json_row("batch_classify_warm", &report.batch_classify_warm),
        ]
        .join(",\n");
        let train_body = [
            json_row("bank_training", &training.bank_training),
            json_row("forest_fit_histogram", &training.forest_fit_histogram),
            json_row("forest_fit_exact", &training.forest_fit_exact),
            json_row("incremental_add_type", &training.incremental_add_type),
        ]
        .join(",\n");
        // PR 4 measurements on this machine, kept as the "before" column
        // for the shared-binned-corpus + arena training path.
        let baseline = "    \"bank_training\": {\"mean_ms\": 227.4, \"note\": \"per-label Dataset copies, per-node allocation\"},\n    \
             \"forest_fit_histogram\": {\"mean_ms\": 9.6, \"note\": \"per-label binning, heap scratch per node\"}";
        // PR 7 measurements on this machine, the "before" column for the
        // batch-scratch inference path (per-tick row-pointer vectors and
        // result allocations; no warm-scratch entry point existed).
        let inference_baseline = "    \"batch_classify_sequential\": {\"mean_ms\": 0.8441, \"note\": \"per-item classify over 64 probes\"},\n    \
             \"batch_classify_batched\": {\"mean_ms\": 0.6556, \"note\": \"accepts_batch over a per-call Vec<&[f64]>, fresh result vectors\"}";
        let json = format!(
            "{{\n  \"bench\": \"table4_timing\",\n  \"train_runs\": {train_runs},\n  \
             \"iterations\": {iterations},\n  \"seed\": {seed},\n  \"threads\": {threads},\n  \
             \"discrimination_rate\": {:.4},\n  \"mean_edit_distances\": {:.4},\n  \"steps\": {{\n{body}\n  }},\n  \
             \"training\": {{\n{train_body}\n  }},\n  \
             \"training_baseline_pr4\": {{\n{baseline}\n  }},\n  \
             \"inference_baseline_pr7\": {{\n{inference_baseline}\n  }}\n}}\n",
            report.discrimination_rate, report.mean_edit_distances
        );
        sentinel_bench::results::write_json(path, &json);
    }

    println!(
        "\nnote: absolute times differ by ~1000x (Rust vs the paper's Java/Weka stack, and\n\
         our simulated setup traces are shorter than real captures, which shrinks the\n\
         quadratic edit-distance cost). The reproduced pipeline-level properties are:\n\
         identification completes in well under a second; discrimination is needed only\n\
         for a minority of fingerprints and over few candidate types; and edit-distance\n\
         cost grows quadratically with fingerprint length while classification stays\n\
         near-constant (see `cargo bench -p sentinel-bench --bench editdist`), which is\n\
         the paper's argument for classifying first and discriminating second."
    );
}
