//! Feature extraction from captured packets.

use std::collections::HashMap;
use std::net::IpAddr;

use sentinel_netproto::Packet;

use crate::{FeatureVector, Fingerprint};

/// Stateful per-device feature extractor.
///
/// The extractor owns the destination-IP counter required by the Table I
/// `Destination IP counter` feature: the `k`-th *distinct* destination
/// address a device contacts is mapped to `k` (1-based), capturing "the
/// count and order in which a device communicates with different
/// entities during its setup procedure".
///
/// Feed packets in capture order with [`FeatureExtractor::push`], then
/// take the fingerprint with [`FeatureExtractor::finish`]. For the common
/// batch case, use the free function [`extract`].
#[derive(Debug, Clone, Default)]
pub struct FeatureExtractor {
    dst_ip_order: HashMap<IpAddr, u32>,
    vectors: Vec<FeatureVector>,
}

impl FeatureExtractor {
    /// Creates an extractor with empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Extracts the features of `packet` and appends them.
    ///
    /// Returns the extracted vector for callers that want to observe it.
    pub fn push(&mut self, packet: &Packet) -> &FeatureVector {
        let counter = match packet.dst_ip() {
            Some(ip) => {
                let next = self.dst_ip_order.len() as u32 + 1;
                *self.dst_ip_order.entry(ip).or_insert(next)
            }
            None => 0,
        };
        self.vectors
            .push(FeatureVector::from_packet(packet, counter));
        self.vectors.last().expect("just pushed")
    }

    /// The number of packets consumed so far.
    pub fn packet_count(&self) -> usize {
        self.vectors.len()
    }

    /// Finalizes into a [`Fingerprint`] (dropping consecutive duplicates).
    pub fn finish(self) -> Fingerprint {
        Fingerprint::new(self.vectors)
    }
}

/// Extracts a [`Fingerprint`] from setup-phase packets in capture order.
///
/// ```
/// use sentinel_fingerprint::extract;
/// use sentinel_netproto::{MacAddr, Packet};
///
/// let mac = MacAddr::new([0, 0, 0, 0, 0, 7]);
/// let fingerprint = extract(&[Packet::dhcp_discover(mac, 9, 0)]);
/// assert_eq!(fingerprint.len(), 1);
/// ```
pub fn extract(packets: &[Packet]) -> Fingerprint {
    let mut extractor = FeatureExtractor::new();
    for packet in packets {
        extractor.push(packet);
    }
    extractor.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_netproto::{AppPayload, MacAddr, Timestamp};
    use std::net::Ipv4Addr;

    fn mac() -> MacAddr {
        MacAddr::new([5, 5, 5, 5, 5, 5])
    }

    fn udp_to(dst: Ipv4Addr, dst_port: u16, t: u64) -> Packet {
        Packet::udp_ipv4(
            Timestamp::from_micros(t),
            mac(),
            MacAddr::ZERO,
            Ipv4Addr::new(192, 168, 0, 50),
            dst,
            50000,
            dst_port,
            AppPayload::Empty,
        )
    }

    #[test]
    fn dst_ip_counter_tracks_first_appearance_order() {
        let gw = Ipv4Addr::new(192, 168, 0, 1);
        let cloud = Ipv4Addr::new(52, 1, 2, 3);
        let packets = [
            udp_to(gw, 53, 0),
            udp_to(cloud, 443, 1),
            udp_to(gw, 53, 2),
            udp_to(cloud, 443, 3),
        ];
        let mut extractor = FeatureExtractor::new();
        let counters: Vec<u32> = packets
            .iter()
            .map(|p| extractor.push(p).dst_ip_counter)
            .collect();
        assert_eq!(counters, vec![1, 2, 1, 2]);
    }

    #[test]
    fn packets_without_ip_get_zero_counter() {
        let probe = Packet::arp_probe(Timestamp::ZERO, mac(), Ipv4Addr::new(10, 0, 0, 1));
        let mut extractor = FeatureExtractor::new();
        assert_eq!(extractor.push(&probe).dst_ip_counter, 0);
        // An ARP probe must not consume a counter slot.
        let first_ip = udp_to(Ipv4Addr::new(10, 0, 0, 9), 80, 1);
        assert_eq!(extractor.push(&first_ip).dst_ip_counter, 1);
    }

    #[test]
    fn extract_dedups_consecutive_identical_packets() {
        let gw = Ipv4Addr::new(192, 168, 0, 1);
        // Identical from the feature perspective: same protocols, size,
        // counter and port classes.
        let packets = vec![udp_to(gw, 53, 0), udp_to(gw, 53, 100), udp_to(gw, 53, 200)];
        let fingerprint = extract(&packets);
        assert_eq!(fingerprint.len(), 1);
    }

    #[test]
    fn different_destinations_are_not_duplicates() {
        let packets = vec![
            udp_to(Ipv4Addr::new(192, 168, 0, 1), 53, 0),
            udp_to(Ipv4Addr::new(52, 0, 0, 1), 53, 1),
        ];
        assert_eq!(extract(&packets).len(), 2);
    }
}
