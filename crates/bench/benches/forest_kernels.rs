//! Row-blocked lockstep forest kernels vs the scalar walks.
//!
//! Three implementations of one function: the per-row scalar walk
//! (`PackedForest::accepts`, five trees in lockstep per row), the
//! row-pointer batch walk (`accepts_batch` over `&[&[f64]]`), and the
//! row-blocked kernel over the contiguous [`BatchMatrix`]
//! (`accepts_rows_blocked`), per block size. This sweep is what decided
//! the production default: the tree-lockstep walk per contiguous matrix
//! row (`accepts_rows`, the `fill_and_walk` case including the batch
//! copy) — the row-blocked kernel reaches parity at R=32 but never
//! beats it while the arenas stay cache-resident.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sentinel_ml::{BatchMatrix, Dataset, ForestConfig, PackedForest, RandomForest};

/// A deterministic `F'`-shaped corpus: 276 columns, heavy per-column
/// duplication like the fingerprint bit-features.
fn corpus(rows: usize, features: usize) -> Dataset {
    let mut data = Dataset::new(features);
    let mut row = vec![0.0f64; features];
    for i in 0..rows {
        for (f, slot) in row.iter_mut().enumerate() {
            *slot = ((i * (f + 3) + f * f) % 13) as f64;
        }
        data.push(&row, usize::from(i % 3 == 0));
    }
    data
}

fn forest_kernels(c: &mut Criterion) {
    let data = corpus(512, 276);
    let forest = RandomForest::fit(&data, &ForestConfig::default().with_seed(7));
    let packed = PackedForest::from_forest(&forest);
    let batch = 64usize;
    let rows: Vec<&[f64]> = (0..batch).map(|i| data.row(i)).collect();
    let mut matrix = BatchMatrix::new();
    matrix.fill(rows.iter().copied());

    // All paths must agree before we time them.
    let scalar: Vec<bool> = rows.iter().map(|r| packed.accepts(r)).collect();
    let mut verdicts = Vec::new();
    packed.accepts_rows(&matrix, &mut verdicts);
    assert_eq!(verdicts, scalar, "kernel diverged from scalar");

    let mut group = c.benchmark_group("forest_kernels");
    group.bench_function("scalar_per_row", |b| {
        b.iter(|| -> Vec<bool> { rows.iter().map(|r| packed.accepts(r)).collect() })
    });
    group.bench_function("row_pointer_batch", |b| {
        let mut out = Vec::with_capacity(batch);
        b.iter(|| {
            out.clear();
            packed.accepts_batch(&rows, &mut out);
            out.len()
        })
    });
    for block in [8usize, 16, 32, 64] {
        group.bench_with_input(BenchmarkId::new("blocked", block), &block, |b, &block| {
            let mut out = Vec::with_capacity(batch);
            b.iter(|| {
                out.clear();
                match block {
                    8 => packed.accepts_rows_blocked::<8>(&matrix, &mut out),
                    16 => packed.accepts_rows_blocked::<16>(&matrix, &mut out),
                    32 => packed.accepts_rows_blocked::<32>(&matrix, &mut out),
                    _ => packed.accepts_rows_blocked::<64>(&matrix, &mut out),
                }
                out.len()
            })
        });
    }
    group.bench_function("fill_and_walk", |b| {
        let mut warm = BatchMatrix::new();
        let mut out = Vec::with_capacity(batch);
        b.iter(|| {
            warm.fill(rows.iter().copied());
            out.clear();
            packed.accepts_rows(&warm, &mut out);
            out.len()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = forest_kernels
}
criterion_main!(benches);
