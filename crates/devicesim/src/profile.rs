//! Device behaviour profiles.

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::Phase;

/// A remote endpoint a device talks to during setup (vendor cloud, CDN,
/// NTP pool…). The IP is derived deterministically from the domain so a
/// given device-type always contacts the same addresses, as real devices
/// resolving the same vendor domains do.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Endpoint {
    /// DNS name of the endpoint.
    pub domain: String,
    /// Resolved public address.
    pub ip: Ipv4Addr,
}

impl Endpoint {
    /// Creates an endpoint with an address derived from the domain name.
    pub fn new(domain: impl Into<String>) -> Self {
        let domain = domain.into();
        let ip = derive_public_ip(&domain);
        Endpoint { domain, ip }
    }
}

/// Derives a stable, globally-routable-looking IPv4 address from a domain
/// name (FNV-1a hash folded into 52.0.0.0/10-ish space).
fn derive_public_ip(domain: &str) -> Ipv4Addr {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in domain.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    let b = ((hash >> 16) & 0x3f) as u8; // 0..64
    let c = ((hash >> 8) & 0xff) as u8;
    let d = (hash & 0xff) as u8;
    Ipv4Addr::new(52, 64 + b, c, d.max(1))
}

/// The behaviour model of one device-type: identity plus the ordered
/// setup-phase script executed when the device is inducted into a
/// network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Device-type identifier (the paper's Table II `Identifier` column).
    pub name: String,
    /// Vendor OUI used for generated MAC addresses.
    pub oui: [u8; 3],
    /// Remote endpoints contacted during setup, in first-contact order.
    pub endpoints: Vec<Endpoint>,
    /// The setup-phase script.
    pub phases: Vec<Phase>,
    /// One standby/operation cycle (heartbeats, keep-alives, periodic
    /// re-announcements) — the traffic the paper's Sect. VIII-A proposes
    /// to fingerprint for legacy installations where the setup phase was
    /// missed.
    pub standby_phases: Vec<Phase>,
    /// Uniform packet-size jitter in bytes (models TLS randomness,
    /// variable-length headers, firmware chattiness).
    pub size_jitter: u32,
    /// Firmware version tag; bumping it shifts observable sizes, modeling
    /// the paper's observation that firmware updates change fingerprints.
    pub firmware: u32,
}

impl DeviceProfile {
    /// Creates a profile.
    pub fn new(name: impl Into<String>, oui: [u8; 3]) -> Self {
        DeviceProfile {
            name: name.into(),
            oui,
            endpoints: Vec::new(),
            phases: Vec::new(),
            standby_phases: Vec::new(),
            size_jitter: 6,
            firmware: 1,
        }
    }

    /// Adds an endpoint, returning its index for use in phases (builder
    /// style).
    pub fn endpoint(&mut self, domain: impl Into<String>) -> usize {
        self.endpoints.push(Endpoint::new(domain));
        self.endpoints.len() - 1
    }

    /// Appends a phase (builder style).
    #[must_use]
    pub fn phase(mut self, phase: Phase) -> Self {
        self.phases.push(phase);
        self
    }

    /// Appends many phases.
    pub fn extend_phases(&mut self, phases: impl IntoIterator<Item = Phase>) {
        self.phases.extend(phases);
    }

    /// Appends standby-cycle phases.
    pub fn extend_standby(&mut self, phases: impl IntoIterator<Item = Phase>) {
        self.standby_phases.extend(phases);
    }

    /// Returns a copy with a newer firmware version (distinguishable
    /// fingerprints, per Sect. VIII-B).
    #[must_use]
    pub fn with_firmware(mut self, firmware: u32) -> Self {
        self.firmware = firmware;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_ips_are_stable_and_public_like() {
        let a = Endpoint::new("api.fitbit.com");
        let b = Endpoint::new("api.fitbit.com");
        let c = Endpoint::new("scale.withings.com");
        assert_eq!(a.ip, b.ip);
        assert_ne!(a.ip, c.ip);
        assert_eq!(a.ip.octets()[0], 52);
        assert_ne!(a.ip.octets()[3], 0);
    }

    #[test]
    fn endpoint_indices_are_sequential() {
        let mut profile = DeviceProfile::new("Test", [1, 2, 3]);
        assert_eq!(profile.endpoint("a.example"), 0);
        assert_eq!(profile.endpoint("b.example"), 1);
        assert_eq!(profile.endpoints.len(), 2);
    }

    #[test]
    fn firmware_bump_preserves_identity() {
        let profile = DeviceProfile::new("Test", [1, 2, 3]);
        let updated = profile.clone().with_firmware(2);
        assert_eq!(updated.name, profile.name);
        assert_ne!(updated.firmware, profile.firmware);
    }
}
