//! Differential property tests: the zero-copy wire scanner must be
//! indistinguishable from the full decoder for feature extraction.
//!
//! The contract (see `sentinel_netproto::scan`):
//!   * `ScanOutcome::Features(raw)` ⇒ `Packet::parse` succeeds and
//!     derives exactly `raw` — on *any* input, canonical or not.
//!   * `ScanOutcome::Malformed` ⇒ `Packet::parse` fails.
//!   * `ScanOutcome::NeedsDecode` carries no claim; the fallback in
//!     `RawFeatures::from_frame` must still agree with the decoder.
//!   * Nothing ever panics, on garbage, truncations or bit flips.

use proptest::prelude::*;

use sentinel_netproto::dhcp::DhcpMessage;
use sentinel_netproto::dns::{DnsMessage, Question};
use sentinel_netproto::http::HttpMessage;
use sentinel_netproto::icmp::IcmpMessage;
use sentinel_netproto::icmpv6::Icmpv6Message;
use sentinel_netproto::ipv4::{IpProtocol, Ipv4Header, Ipv4Option};
use sentinel_netproto::ipv6::{HopByHopOption, Ipv6Header};
use sentinel_netproto::llc::LlcHeader;
use sentinel_netproto::ntp::NtpPacket;
use sentinel_netproto::tcp::{TcpFlags, TcpHeader};
use sentinel_netproto::tls::TlsRecord;
use sentinel_netproto::{
    AppPayload, MacAddr, Packet, PacketBody, RawFeatures, ScanOutcome, Timestamp, Transport,
    WireScan,
};

/// The differential invariant, checked on arbitrary bytes.
fn check_equivalence(frame: &[u8]) {
    let decoded = Packet::parse(frame, Timestamp::ZERO);
    match WireScan::scan(frame) {
        ScanOutcome::Features(raw) => {
            let packet = decoded.as_ref().unwrap_or_else(|e| {
                panic!("scan certified a frame the decoder rejects ({e}): {frame:02x?}")
            });
            assert_eq!(raw, RawFeatures::from_packet(packet), "on {frame:02x?}");
        }
        ScanOutcome::Malformed => {
            assert!(
                decoded.is_err(),
                "scan said malformed but the decoder accepted: {frame:02x?}"
            );
        }
        ScanOutcome::NeedsDecode => {}
    }
    // The public entry point must agree with the decoder in all cases.
    match (RawFeatures::from_frame(frame), decoded) {
        (Ok(raw), Ok(packet)) => {
            assert_eq!(raw, RawFeatures::from_packet(&packet), "on {frame:02x?}")
        }
        (Err(_), Err(_)) => {}
        (scan, decode) => {
            panic!("from_frame {scan:?} disagrees with decode {decode:?} on {frame:02x?}")
        }
    }
}

fn mac(n: u8) -> MacAddr {
    MacAddr::new([0x02, 0x42, 0, 0, 0, n])
}

fn v4(a: u8) -> std::net::Ipv4Addr {
    std::net::Ipv4Addr::new(10, 0, 0, a)
}

fn v6(a: u8) -> std::net::Ipv6Addr {
    std::net::Ipv6Addr::new(0xfe80, 0, 0, 0, 0, 0, 0, u16::from(a))
}

/// One canonical frame per scanner code path: every link/network/
/// transport/application branch is covered, including both IP option
/// features and the IPv6 hop-by-hop walk.
fn corpus() -> Vec<Packet> {
    let ts = Timestamp::from_micros(1_000);
    let mut packets = vec![
        Packet::dhcp_discover(mac(1), 0xdead_beef, 1_000),
        Packet::arp_probe(ts, mac(2), v4(9)),
        Packet::eapol_key(ts, mac(3), mac(0xfe), 2),
        Packet::tcp_syn(ts, mac(4), mac(0xfe), v4(4), v4(1), 49_200, 443),
        Packet::new(
            ts,
            mac(5),
            mac(0xfe),
            PacketBody::Llc {
                header: LlcHeader::unnumbered(0x42),
                payload: vec![1, 2, 3].into(),
            },
        ),
        Packet::new(
            ts,
            mac(6),
            mac(0xfe),
            PacketBody::Other {
                ethertype: 0x9100,
                payload: vec![9, 9, 9].into(),
            },
        ),
        // ICMP echo and an unknown IP protocol (IGMP-like).
        Packet::new(
            ts,
            mac(7),
            mac(0xfe),
            PacketBody::Ipv4 {
                header: Ipv4Header::new(v4(7), v4(1), IpProtocol::Icmp),
                transport: Transport::Icmp(IcmpMessage::echo_request(7, 1, vec![0xaa; 12])),
            },
        ),
        Packet::new(
            ts,
            mac(8),
            mac(0xfe),
            PacketBody::Ipv4 {
                header: Ipv4Header::new(v4(8), v4(1), IpProtocol::Igmp),
                transport: Transport::Other {
                    protocol: 2,
                    payload: vec![0x11; 8].into(),
                },
            },
        ),
        // IPv4 options: router alert and padding.
        Packet::new(
            ts,
            mac(9),
            mac(0xfe),
            PacketBody::Ipv4 {
                header: Ipv4Header::new(v4(9), v4(1), IpProtocol::Udp)
                    .with_option(Ipv4Option::RouterAlert(0))
                    .with_option(Ipv4Option::Nop),
                transport: Transport::Udp {
                    header: sentinel_netproto::udp::UdpHeader::new(5353, 5353),
                    payload: AppPayload::Dns(DnsMessage::query(7, [Question::a("cast.local")])),
                },
            },
        ),
        // IPv6 with hop-by-hop router alert, carrying ICMPv6 (MLD).
        Packet::new(
            ts,
            mac(10),
            mac(0xfe),
            PacketBody::Ipv6 {
                header: Ipv6Header::new(v6(10), v6(1), IpProtocol::Icmpv6)
                    .with_hop_by_hop(HopByHopOption::RouterAlert(0)),
                transport: Transport::Icmpv6(Icmpv6Message::mld2_report(1)),
            },
        ),
        // IPv6 UDP DNS without extension headers.
        Packet::new(
            ts,
            mac(11),
            mac(0xfe),
            PacketBody::Ipv6 {
                header: Ipv6Header::new(v6(11), v6(1), IpProtocol::Udp),
                transport: Transport::Udp {
                    header: sentinel_netproto::udp::UdpHeader::new(49_001, 53),
                    payload: AppPayload::Dns(DnsMessage::query(8, [Question::a("example.com")])),
                },
            },
        ),
        // IPv6 atomic fragment (RFC 6946) carrying TCP/TLS.
        Packet::new(
            ts,
            mac(15),
            mac(0xfe),
            PacketBody::Ipv6 {
                header: Ipv6Header::new(v6(15), v6(1), IpProtocol::Tcp)
                    .with_atomic_fragment(0x6001_cafe),
                transport: Transport::Tcp {
                    header: TcpHeader::new(49_500, 443, TcpFlags::PSH | TcpFlags::ACK),
                    payload: AppPayload::Tls(TlsRecord::client_hello(48)),
                },
            },
        ),
        // IPv6 hop-by-hop + atomic fragment chained before UDP.
        Packet::new(
            ts,
            mac(16),
            mac(0xfe),
            PacketBody::Ipv6 {
                header: Ipv6Header::new(v6(16), v6(1), IpProtocol::Udp)
                    .with_hop_by_hop(HopByHopOption::RouterAlert(0))
                    .with_hop_by_hop(HopByHopOption::PadN(0))
                    .with_atomic_fragment(7),
                transport: Transport::Udp {
                    header: sentinel_netproto::udp::UdpHeader::new(5353, 5353),
                    payload: AppPayload::Dns(DnsMessage::query(9, [Question::a("frag.local")])),
                },
            },
        ),
    ];
    // TCP application payloads: HTTP, TLS on 443, TLS by sniff, NTP, raw.
    for (sport, dport, payload) in [
        (
            49_300u16,
            80u16,
            AppPayload::Http(HttpMessage::get("host.example", "/index")),
        ),
        (49_301, 443, AppPayload::Tls(TlsRecord::client_hello(64))),
        (49_302, 49_303, AppPayload::Tls(TlsRecord::client_hello(32))),
        (123, 123, AppPayload::Ntp(NtpPacket::client_request(42))),
        (49_304, 49_305, AppPayload::Raw(vec![0x80; 24].into())),
        (49_306, 49_307, AppPayload::Empty),
    ] {
        packets.push(Packet::new(
            ts,
            mac(12),
            mac(0xfe),
            PacketBody::Ipv4 {
                header: Ipv4Header::new(v4(12), v4(1), IpProtocol::Tcp),
                transport: Transport::Tcp {
                    header: TcpHeader::new(sport, dport, TcpFlags::PSH | TcpFlags::ACK),
                    payload,
                },
            },
        ));
    }
    // SSDP over UDP 1900 and a BOOTP reply without the DHCP cookie path.
    packets.push(Packet::udp_ipv4(
        ts,
        mac(13),
        mac(0xfe),
        v4(13),
        v4(255),
        49_400,
        1900,
        AppPayload::Http(HttpMessage::get("239.255.255.250:1900", "*")),
    ));
    packets.push(Packet::udp_ipv4(
        ts,
        mac(14),
        mac(0xfe),
        v4(14),
        v4(255),
        67,
        68,
        AppPayload::Dhcp(DhcpMessage::discover(mac(14), 7)),
    ));
    packets
}

#[test]
fn corpus_frames_certify_and_match() {
    for packet in corpus() {
        let frame = packet.encode();
        match WireScan::scan(&frame) {
            ScanOutcome::Features(raw) => {
                assert_eq!(
                    raw,
                    RawFeatures::from_packet(&packet),
                    "feature mismatch for {packet:?}"
                );
            }
            other => panic!("canonical frame not certified ({other:?}) for {packet:?}"),
        }
    }
}

#[test]
fn corpus_truncations_at_every_boundary() {
    for packet in corpus() {
        let frame = packet.encode();
        for cut in 0..frame.len() {
            check_equivalence(&frame[..cut]);
        }
    }
}

#[test]
fn corpus_trailing_garbage() {
    for packet in corpus() {
        let mut frame = packet.encode();
        frame.extend_from_slice(&[0xfb; 7]);
        check_equivalence(&frame);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn random_generated_frames_certify(
        index in (0usize..corpus().len()),
        extra in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        // Canonical frame: must certify without falling back.
        let packet = corpus().swap_remove(index);
        let frame = packet.encode();
        prop_assert!(matches!(WireScan::scan(&frame), ScanOutcome::Features(_)));
        check_equivalence(&frame);
        // With trailing garbage it may fall back, but never disagree.
        let mut extended = frame.clone();
        extended.extend_from_slice(&extra);
        check_equivalence(&extended);
    }

    #[test]
    fn random_garbage_never_panics_or_disagrees(
        bytes in proptest::collection::vec(any::<u8>(), 0..300)
    ) {
        check_equivalence(&bytes);
    }

    #[test]
    fn bit_flips_never_disagree(
        index in (0usize..corpus().len()),
        flips in proptest::collection::vec((any::<usize>(), 0u8..8), 1..6),
    ) {
        let packet = corpus().swap_remove(index);
        let mut frame = packet.encode();
        for (pos, bit) in flips {
            let at = pos % frame.len();
            frame[at] ^= 1 << bit;
        }
        check_equivalence(&frame);
    }

    #[test]
    fn tcp_option_layouts_certify(
        options in proptest::collection::vec(any::<u8>(), 0..=40),
        sport in 1024u16..65535,
        dport in prop_oneof![Just(80u16), Just(443u16), Just(123u16), 1024u16..65535],
        payload_len in 0usize..32,
    ) {
        // Arbitrary option bytes — MSS/SACK/timestamps, NOP runs, EOL,
        // unknown kinds, unaligned lengths — are length-preserving on the
        // wire, so every layout must certify and agree with the decoder.
        let mut header = TcpHeader::new(sport, dport, TcpFlags::PSH | TcpFlags::ACK);
        header.options = options;
        let packet = Packet::new(
            Timestamp::ZERO,
            mac(20),
            mac(0xfe),
            PacketBody::Ipv4 {
                header: Ipv4Header::new(v4(20), v4(1), IpProtocol::Tcp),
                transport: Transport::Tcp {
                    header,
                    payload: AppPayload::Raw(vec![0x55; payload_len].into()),
                },
            },
        );
        let frame = packet.encode();
        prop_assert!(
            matches!(WireScan::scan(&frame), ScanOutcome::Features(_)),
            "canonical TCP option layout not certified"
        );
        check_equivalence(&frame);
    }

    #[test]
    fn ipv6_fragment_headers_never_disagree(
        reserved in any::<u8>(),
        offset_flags in any::<u16>(),
        ident in any::<u32>(),
        inner in prop_oneof![Just(6u8), Just(17u8), Just(58u8), any::<u8>()],
        tail in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        // Hand-built fragment header with arbitrary reserved/offset/M
        // bits: atomic fragments must certify to the decoded features,
        // genuine (non-atomic) fragments must degrade identically on
        // both paths.
        let mut frame = Vec::new();
        frame.extend_from_slice(&mac(0xfe).octets());
        frame.extend_from_slice(&mac(21).octets());
        frame.extend_from_slice(&0x86ddu16.to_be_bytes());
        let payload_len = (8 + tail.len()) as u16;
        frame.extend_from_slice(&[0x60, 0, 0, 0]);
        frame.extend_from_slice(&payload_len.to_be_bytes());
        frame.push(44); // next header: fragment
        frame.push(64); // hop limit
        frame.extend_from_slice(&v6(21).octets());
        frame.extend_from_slice(&v6(1).octets());
        frame.push(inner);
        frame.push(reserved);
        frame.extend_from_slice(&offset_flags.to_be_bytes());
        frame.extend_from_slice(&ident.to_be_bytes());
        frame.extend_from_slice(&tail);
        check_equivalence(&frame);
        for cut in 0..frame.len() {
            check_equivalence(&frame[..cut]);
        }
    }

    #[test]
    fn truncations_of_mutated_frames_never_disagree(
        index in (0usize..corpus().len()),
        cut in any::<usize>(),
        flip in any::<usize>(),
    ) {
        let packet = corpus().swap_remove(index);
        let mut frame = packet.encode();
        let at = flip % frame.len();
        frame[at] = frame[at].wrapping_add(1);
        let cut = cut % (frame.len() + 1);
        check_equivalence(&frame[..cut]);
    }
}
