//! Wall-clock timing of the identification stages (Table IV).

use std::time::{Duration, Instant};

use sentinel_core::{FingerprintDataset, Identifier, IdentifierConfig};
use sentinel_devicesim::{catalog, Testbed};
use sentinel_fingerprint::editdist::normalized_distance;
use sentinel_fingerprint::{extract, extract_frames, FixedFingerprint};
use sentinel_sdn::stats::Summary;

/// Timing measurements mirroring the rows of Table IV.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// One Random Forest classification.
    pub one_classification: Summary,
    /// One edit-distance discrimination (distance to one reference).
    pub one_discrimination: Summary,
    /// Fingerprint extraction from a captured setup trace.
    pub fingerprint_extraction: Summary,
    /// All 27 classifications of one fingerprint.
    pub all_classifications: Summary,
    /// The discrimination step of a full identification (all edit
    /// distances, when triggered).
    pub discrimination_step: Summary,
    /// Full type identification (classification + discrimination).
    pub type_identification: Summary,
    /// Mean edit-distance computations per identification.
    pub mean_edit_distances: f64,
    /// Fraction of identifications requiring discrimination.
    pub discrimination_rate: f64,
}

/// Measures the Table IV rows on a trained pipeline.
///
/// `iterations` controls how many held-out fingerprints are identified;
/// the paper's statistics come from its full cross-validation, ours from
/// a train/holdout split of fresh testbed campaigns. `threads` is the
/// worker count for training and stage-2 scoring (`0` = auto via
/// `SENTINEL_THREADS`, `1` = sequential); the measured identifications
/// themselves are timed one at a time either way.
pub fn measure(train_runs: u64, iterations: u64, seed: u64, threads: usize) -> TimingReport {
    let devices = catalog();
    let dataset = FingerprintDataset::collect(&devices, train_runs, seed);
    let mut config = IdentifierConfig {
        threads,
        ..IdentifierConfig::default()
    };
    config.bank.threads = threads;
    config.bank.forest.threads = threads;
    let identifier = Identifier::train(&dataset, &config);
    let holdout = Testbed::new(seed ^ 0xdead_beef);

    let mut one_classification = Vec::new();
    let mut one_discrimination = Vec::new();
    let mut fingerprint_extraction = Vec::new();
    let mut all_classifications = Vec::new();
    let mut discrimination_step = Vec::new();
    let mut type_identification = Vec::new();
    let mut edit_distances = 0usize;
    let mut discriminated = 0usize;
    let mut total = 0usize;

    // Warm caches and lazy allocations so the first measured iteration
    // is not an outlier.
    {
        let trace = holdout.setup_run(&devices[0].profile, u64::MAX - 1);
        let full = extract(&trace.packets);
        let fixed = FixedFingerprint::from_fingerprint(&full);
        let _ = identifier.identify(&full, &fixed);
    }

    for run in 0..iterations {
        let device = &devices[(run as usize) % devices.len()];
        let trace = holdout.setup_run(&device.profile, run);

        // Row: fingerprint extraction — timed on the zero-copy wire-scan
        // path the gateway hot path takes (raw frames arrive from the
        // tap; encoding them is capture, not extraction, so it happens
        // outside the timer). Produces fingerprints bit-identical to
        // `extract(&trace.packets)`. The operation is single-digit
        // microseconds, so each sample amortizes a short inner loop to
        // keep one scheduler hiccup from swamping the mean.
        const EXTRACT_REPEATS: u32 = 64;
        let frames: Vec<Vec<u8>> = trace.packets.iter().map(|p| p.encode()).collect();
        let start = Instant::now();
        let mut full = extract_frames(&frames).expect("simulated frames are well-formed");
        let mut fixed = FixedFingerprint::from_fingerprint(&full);
        for _ in 1..EXTRACT_REPEATS {
            full = extract_frames(&frames).expect("simulated frames are well-formed");
            fixed = FixedFingerprint::from_fingerprint(&full);
        }
        fingerprint_extraction.push(start.elapsed() / EXTRACT_REPEATS);

        // Row: one classification (a single per-type forest, via the
        // identifier's packed arena — the path identification takes).
        let start = Instant::now();
        let _ = identifier.accepts(0, &fixed);
        one_classification.push(start.elapsed());

        // Row: all 27 classifications.
        let start = Instant::now();
        let candidates = identifier.classify(&fixed);
        all_classifications.push(start.elapsed());

        // Row: one edit-distance discrimination.
        let reference = dataset.full(0);
        let start = Instant::now();
        let _ = normalized_distance(&full, reference);
        one_discrimination.push(start.elapsed());

        // Rows: discrimination step + full identification.
        let start = Instant::now();
        let id = identifier.identify(&full, &fixed);
        let elapsed = start.elapsed();
        type_identification.push(elapsed);
        total += 1;
        if id.discriminated {
            discriminated += 1;
            edit_distances += id.candidates.len() * 5;
            // The discrimination share is the identification minus the
            // classification stage measured above.
            let classify = all_classifications
                .last()
                .copied()
                .unwrap_or(Duration::ZERO);
            discrimination_step.push(elapsed.saturating_sub(classify));
        }
        let _ = candidates;
    }

    TimingReport {
        one_classification: Summary::of_durations_ms(&one_classification),
        one_discrimination: Summary::of_durations_ms(&one_discrimination),
        fingerprint_extraction: Summary::of_durations_ms(&fingerprint_extraction),
        all_classifications: Summary::of_durations_ms(&all_classifications),
        discrimination_step: Summary::of_durations_ms(&discrimination_step),
        type_identification: Summary::of_durations_ms(&type_identification),
        mean_edit_distances: if total == 0 {
            0.0
        } else {
            edit_distances as f64 / total as f64
        },
        discrimination_rate: if total == 0 {
            0.0
        } else {
            discriminated as f64 / total as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_table_iv() {
        // Small but real measurement: classification must be far cheaper
        // than a full identification with discrimination.
        let report = measure(6, 27, 3, 1);
        assert!(report.one_classification.mean < report.all_classifications.mean * 1.5);
        assert!(report.fingerprint_extraction.mean >= 0.0);
        // Identification includes the classification stage; allow slack
        // for timer noise at the microsecond scale.
        assert!(
            report.type_identification.mean >= report.all_classifications.mean * 0.5,
            "identification {} ms vs classification {} ms",
            report.type_identification.mean,
            report.all_classifications.mean
        );
        assert!(report.discrimination_rate <= 1.0);
    }
}
