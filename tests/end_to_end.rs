//! End-to-end integration: lab collection → IoTSSP training → gateway
//! onboarding → enforcement, across crate boundaries.

use iot_sentinel::devicesim::{catalog, Testbed};
use iot_sentinel::netproto::{AppPayload, MacAddr, Packet, Timestamp};
use iot_sentinel::prelude::*;
use iot_sentinel::sdn::FlowAction;
use std::net::Ipv4Addr;

fn trained_service() -> IoTSecurityService {
    let devices = catalog();
    // Smaller-than-paper corpus keeps CI fast; behaviour is identical.
    let dataset = FingerprintDataset::collect(&devices, 10, 42);
    let mut config = ServiceConfig::default();
    config.identifier.bank.forest = iot_sentinel::ml::ForestConfig::default().with_trees(40);
    IoTSecurityService::train(&dataset, &config)
}

fn outbound(mac: MacAddr, src_ip: Ipv4Addr, dst: Ipv4Addr) -> Packet {
    Packet::udp_ipv4(
        Timestamp::from_secs(500),
        mac,
        MacAddr::new([0x02, 0x53, 0x47, 0x57, 0x00, 0x01]),
        src_ip,
        dst,
        50000,
        443,
        AppPayload::Empty,
    )
}

#[test]
fn onboarding_identifies_most_device_types() {
    let service = trained_service();
    let devices = catalog();
    let holdout = Testbed::new(777);
    let mut gateway = SecurityGateway::new(service);
    let mut correct = 0;
    for (label, device) in devices.iter().enumerate() {
        let trace = holdout.setup_run(&device.profile, 3);
        for packet in &trace.packets {
            gateway.observe(packet);
        }
        let report = gateway.finalize(trace.mac).expect("monitored");
        if report.response.identification.label() == Some(label) {
            correct += 1;
        }
    }
    // The paper's global accuracy is 0.815; with the confusable families a
    // single pass over 27 devices should land well above 0.6.
    assert!(
        correct >= 18,
        "only {correct}/27 devices identified correctly"
    );
}

#[test]
fn vulnerable_device_is_quarantined_but_reaches_vendor_cloud() {
    let service = trained_service();
    let devices = catalog();
    let holdout = Testbed::new(778);
    let mut gateway = SecurityGateway::new(service);

    // EdimaxCam has a synthetic advisory -> restricted.
    let cam = holdout.setup_run(&devices[8].profile, 0);
    for packet in &cam.packets {
        gateway.observe(packet);
    }
    let report = gateway.finalize(cam.mac).expect("monitored");
    assert_eq!(report.response.isolation, IsolationLevel::Restricted);
    let whitelist = report.response.permitted_endpoints.clone();
    assert!(!whitelist.is_empty());

    // Arbitrary internet: blocked.
    let blocked = gateway.enforce(&outbound(cam.mac, cam.device_ip, Ipv4Addr::new(8, 8, 8, 8)));
    assert_eq!(blocked.action, FlowAction::Drop);

    // Whitelisted vendor cloud: allowed.
    let std::net::IpAddr::V4(cloud) = whitelist[0] else {
        panic!("expected v4 endpoint");
    };
    let allowed = gateway.enforce(&outbound(cam.mac, cam.device_ip, cloud));
    assert_eq!(allowed.action, FlowAction::Forward);
}

#[test]
fn overlays_separate_trusted_from_untrusted_devices() {
    let service = trained_service();
    let devices = catalog();
    let holdout = Testbed::new(779);
    let mut gateway = SecurityGateway::new(service);

    let hue = holdout.setup_run(&devices[4].profile, 0); // trusted
    let cam = holdout.setup_run(&devices[8].profile, 0); // restricted
    for trace in [&hue, &cam] {
        for packet in &trace.packets {
            gateway.observe(packet);
        }
        gateway.finalize(trace.mac).expect("monitored");
    }
    assert_eq!(
        gateway.enforcement().level_of(hue.mac),
        IsolationLevel::Trusted
    );
    assert_eq!(
        gateway.enforcement().level_of(cam.mac),
        IsolationLevel::Restricted
    );

    // Device-to-device traffic across overlays is dropped both ways.
    let probe = Packet::udp_ipv4(
        Timestamp::from_secs(600),
        cam.mac,
        hue.mac,
        cam.device_ip,
        hue.device_ip,
        50002,
        80,
        AppPayload::Empty,
    );
    assert_eq!(gateway.enforce(&probe).action, FlowAction::Drop);
    let reverse = Packet::udp_ipv4(
        Timestamp::from_secs(601),
        hue.mac,
        cam.mac,
        hue.device_ip,
        cam.device_ip,
        50003,
        80,
        AppPayload::Empty,
    );
    assert_eq!(gateway.enforce(&reverse).action, FlowAction::Drop);
}

#[test]
fn flow_cache_makes_repeat_packets_cheap() {
    let service = trained_service();
    let devices = catalog();
    let holdout = Testbed::new(780);
    let mut gateway = SecurityGateway::new(service);
    let hue = holdout.setup_run(&devices[4].profile, 1);
    for packet in &hue.packets {
        gateway.observe(packet);
    }
    gateway.finalize(hue.mac).expect("monitored");

    let packet = outbound(hue.mac, hue.device_ip, Ipv4Addr::new(52, 10, 10, 10));
    let first = gateway.enforce(&packet);
    let second = gateway.enforce(&packet);
    assert!(first.packet_in, "first packet escalates to the controller");
    assert!(!second.packet_in, "second packet hits the flow cache");
    assert_eq!(gateway.switch().packet_ins(), 1);
}

#[test]
fn idle_flows_expire_and_rule_cache_can_evict() {
    let service = trained_service();
    let devices = catalog();
    let holdout = Testbed::new(782);
    let mut gateway = SecurityGateway::new(service);
    let hue = holdout.setup_run(&devices[4].profile, 2);
    for packet in &hue.packets {
        gateway.observe(packet);
    }
    gateway.finalize(hue.mac).expect("monitored");

    // Install a few flows, then expire them after idleness.
    for port_offset in 0..4u8 {
        let packet = outbound(
            hue.mac,
            hue.device_ip,
            Ipv4Addr::new(52, 10, 10, 10 + port_offset),
        );
        gateway.enforce(&packet);
    }
    assert_eq!(gateway.switch().table().len(), 4);
    let expired = gateway.expire_flows(
        iot_sentinel::netproto::Timestamp::from_secs(4000),
        std::time::Duration::from_secs(60),
    );
    assert_eq!(expired, 4);
    assert_eq!(gateway.switch().table().len(), 0);

    // The enforcement-rule cache supports bounded-memory eviction (the
    // Sect. VI-C "removing unused enforcement rules" strategy).
    let evicted = gateway.enforcement_mut().cache_mut().evict_to(0);
    assert_eq!(evicted.len(), 1);
    // With its rule gone the device falls back to the strict default.
    let blocked = gateway.enforce(&outbound(
        hue.mac,
        hue.device_ip,
        Ipv4Addr::new(52, 99, 0, 1),
    ));
    assert_eq!(blocked.action, FlowAction::Drop);
}

#[test]
fn port_filter_restricts_protocols_to_vendor_cloud() {
    // Tighten a restricted device's rule to TLS-only and verify the data
    // plane honours it (Sect. III-C.2 flow-granular filtering).
    let service = trained_service();
    let devices = catalog();
    let holdout = Testbed::new(783);
    let mut gateway = SecurityGateway::new(service);
    let cam = holdout.setup_run(&devices[8].profile, 1);
    for packet in &cam.packets {
        gateway.observe(packet);
    }
    let report = gateway.finalize(cam.mac).expect("monitored");
    assert_eq!(report.response.isolation, IsolationLevel::Restricted);
    let whitelist = report.response.permitted_endpoints.clone();
    let std::net::IpAddr::V4(cloud) = whitelist[0] else {
        panic!("expected v4");
    };
    // Refine the installed rule with a port filter.
    let tightened =
        iot_sentinel::sdn::EnforcementRule::restricted(cam.mac, whitelist.iter().copied())
            .with_port_filter([443]);
    gateway.enforcement_mut().install_rule(tightened);

    let tls = Packet::udp_ipv4(
        Timestamp::from_secs(700),
        cam.mac,
        MacAddr::new([0x02, 0x53, 0x47, 0x57, 0x00, 0x01]),
        cam.device_ip,
        cloud,
        50000,
        443,
        AppPayload::Empty,
    );
    let telnet = Packet::udp_ipv4(
        Timestamp::from_secs(701),
        cam.mac,
        MacAddr::new([0x02, 0x53, 0x47, 0x57, 0x00, 0x01]),
        cam.device_ip,
        cloud,
        50001,
        23,
        AppPayload::Empty,
    );
    assert_eq!(gateway.enforce(&tls).action, FlowAction::Forward);
    assert_eq!(gateway.enforce(&telnet).action, FlowAction::Drop);
}

#[test]
fn setup_end_detection_closes_monitoring_window() {
    let service = trained_service();
    let devices = catalog();
    let holdout = Testbed::new(781);
    let mut gateway = SecurityGateway::new(service);
    let trace = holdout.setup_run(&devices[0].profile, 2);
    for packet in &trace.packets {
        assert!(gateway.observe(packet).is_none());
    }
    // A keep-alive a minute later ends the setup phase automatically.
    let mut keepalive = trace.packets[0].clone();
    keepalive.timestamp =
        trace.packets.last().unwrap().timestamp + std::time::Duration::from_secs(90);
    let report = gateway.observe(&keepalive).expect("auto-finalize");
    assert_eq!(report.mac, trace.mac);
    assert_eq!(report.setup_packets, trace.packets.len());
}
