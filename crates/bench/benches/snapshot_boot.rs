//! Instant boot from a snapshot vs. retraining from scratch.
//!
//! The deployment question the snapshot subsystem answers: a fleet of
//! gateways booting the same model should pay training once, centrally,
//! and restore everywhere else. This bench trains the paper-shaped
//! pipeline (27 types, default bank) once, captures it as a version-1
//! binary snapshot, then measures
//!
//! * `retrain`   — `ClassifierBank::train` from the fingerprint corpus
//!   (the cost a gateway pays without a snapshot; stage-2 reference
//!   sampling and interning come on top of this), and
//! * `load`      — `IoTSecurityService::from_snapshot`: read the file,
//!   verify every section checksum, decode, and reassemble the full
//!   service (packed forests, interned references, scoring pools).
//!
//! Results (mean wall-clock of each, snapshot byte size, and the
//! boot speedup) are recorded in `results/bench_snapshot.json` via the
//! shared results writer. Override the output path with
//! `SNAPSHOT_BENCH_JSON`, iteration count with `SNAPSHOT_BENCH_ITERS`.

use std::time::Instant;

use sentinel_bench::results::JsonMap;
use sentinel_core::{
    BankConfig, ClassifierBank, FingerprintDataset, Identifier, IdentifierConfig,
    IoTSecurityService,
};
use sentinel_devicesim::catalog;
use sentinel_snapshot::{Snapshot, SnapshotBoot};

fn mean_ms(iterations: u64, mut work: impl FnMut()) -> f64 {
    // One warm-up pass (page in the file / corpus), then timed passes.
    work();
    let start = Instant::now();
    for _ in 0..iterations {
        work();
    }
    start.elapsed().as_secs_f64() * 1e3 / iterations as f64
}

fn main() {
    let iterations: u64 = std::env::var("SNAPSHOT_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    // `cargo bench` runs with the package dir as cwd; anchor the default
    // at the workspace root so the artifact lands next to the others.
    let json_path = std::env::var("SNAPSHOT_BENCH_JSON").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/bench_snapshot.json"
        )
        .to_owned()
    });
    let train_runs = 10;
    let seed = 21;

    println!("training the paper-shaped pipeline once ({train_runs} runs/type, seed {seed})…");
    let devices = catalog();
    let dataset = FingerprintDataset::collect(&devices, train_runs, seed);
    let identifier = Identifier::train(&dataset, &IdentifierConfig::default());
    let service = IoTSecurityService::from_identifier(identifier);

    let path = std::env::temp_dir().join(format!("sentinel-bench-{}.snap", std::process::id()));
    let snapshot = Snapshot::of_service(&service);
    snapshot.save(&path).expect("snapshot save");
    let snapshot_bytes = std::fs::metadata(&path).expect("snapshot metadata").len();

    let retrain_ms = mean_ms(iterations, || {
        std::hint::black_box(ClassifierBank::train(&dataset, &BankConfig::default()));
    });
    let load_ms = mean_ms(iterations, || {
        std::hint::black_box(IoTSecurityService::from_snapshot(&path).expect("snapshot load"));
    });
    std::fs::remove_file(&path).ok();

    let speedup = retrain_ms / load_ms;
    println!("snapshot size       {snapshot_bytes} bytes");
    println!("retrain (bank)      {retrain_ms:.2} ms/iter over {iterations} iters");
    println!("load + reassemble   {load_ms:.2} ms/iter over {iterations} iters");
    println!("boot speedup        {speedup:.1}x");
    if speedup < 10.0 {
        println!("WARNING: boot speedup below the 10x target");
    }

    let json = JsonMap::new()
        .string("bench", "snapshot_boot")
        .int("train_runs", train_runs)
        .int("seed", seed)
        .int("iterations", iterations)
        .int("snapshot_bytes", snapshot_bytes)
        .nested(
            "retrain",
            JsonMap::new()
                .float("mean_ms", retrain_ms)
                .string("note", "ClassifierBank::train over the full corpus"),
        )
        .nested(
            "load",
            JsonMap::new().float("mean_ms", load_ms).string(
                "note",
                "IoTSecurityService::from_snapshot: read, verify checksums, decode, reassemble",
            ),
        )
        .float("boot_speedup", speedup);
    sentinel_bench::results::write_map(&json_path, &json);
}
