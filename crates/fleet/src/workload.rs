//! Deterministic per-home workload derivation.
//!
//! Every home's traffic is a pure function of `(FleetConfig, home
//! index)`: which device-types join, when each join wave starts, which
//! device roams away mid-setup, which neighbour's roamer arrives, and
//! which devices later leave. No global state flows between homes, so
//! homes can be simulated in any order, on any number of threads, and
//! produce identical results.

use std::time::Duration;

use sentinel_devicesim::{interleave_at, DeviceModel, SetupTrace, Testbed};
use sentinel_netproto::{MacAddr, Timestamp};

use crate::FleetConfig;

/// Keyed FNV-1a mix, the same construction the testbed uses to make
/// collection campaigns reproducible.
fn mix(seed: u64, home: u64, slot: u64, tag: u64) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for value in [seed, home, slot, tag] {
        for byte in value.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    }
    hash
}

const TAG_PROFILE: u64 = 0x50_52_4f_46; // "PROF"
const TAG_JITTER: u64 = 0x4a_49_54_54; // "JITT"
const TAG_ROAM: u64 = 0x52_4f_41_4d; // "ROAM"
const TAG_LEAVE: u64 = 0x4c_45_41_56; // "LEAV"

/// One home's fully derived simulation input.
#[derive(Debug)]
pub(crate) struct HomeWorkload {
    /// Timestamp-ordered wire frames the home gateway ingests.
    pub frames: Vec<(Timestamp, Vec<u8>)>,
    /// MAC of the local device that roams away mid-setup, if any.
    pub roam_out: Option<MacAddr>,
    /// MAC of the neighbour's device that arrives mid-setup, if any.
    pub roam_in: Option<MacAddr>,
    /// Devices that leave (rule removal) one tick after onboarding.
    pub leavers: Vec<MacAddr>,
}

/// Whether `home` contributes a roaming device (to `home + 1`).
pub(crate) fn is_roam_origin(config: &FleetConfig, home: usize) -> bool {
    config.roaming_enabled() && home.is_multiple_of(config.roam_every)
}

/// The home a roamer leaving `home` arrives at.
pub(crate) fn roam_destination(config: &FleetConfig, home: usize) -> usize {
    (home + 1) % config.homes
}

/// The device slot of `home` that roams away, when `home` is an origin.
fn roam_slot(config: &FleetConfig, home: usize) -> usize {
    (mix(config.seed, home as u64, 0, TAG_ROAM) % config.devices_per_home.max(1) as u64) as usize
}

/// The full setup trace of `(home, slot)` — reproducible from the seed
/// alone, so a roam destination can re-derive its neighbour's roamer
/// without any cross-home state.
fn slot_trace(
    config: &FleetConfig,
    devices: &[DeviceModel],
    testbed: &Testbed,
    home: usize,
    slot: usize,
) -> SetupTrace {
    let profile =
        mix(config.seed, home as u64, slot as u64, TAG_PROFILE) % devices.len().max(1) as u64;
    let run = (home * config.devices_per_home + slot) as u64;
    testbed.setup_run(&devices[profile as usize].profile, run)
}

/// Start offset of `slot` inside its home's onboarding storm: joins
/// arrive in waves, staggered inside each wave, with a small keyed
/// jitter so homes are not phase-locked.
fn join_offset(config: &FleetConfig, home: usize, slot: usize) -> Duration {
    let waves = config.waves.max(1);
    let wave = (slot % waves) as u32;
    let rank = (slot / waves) as u32;
    let jitter_us = mix(config.seed, home as u64, slot as u64, TAG_JITTER) % 20_000;
    config.wave_stagger * wave + config.join_stagger * rank + Duration::from_micros(jitter_us)
}

/// When a roamer's remaining traffic shows up at its destination: after
/// the destination's own storm has launched every wave.
fn roam_arrival(config: &FleetConfig, home: usize) -> Duration {
    let jitter_us = mix(config.seed, home as u64, 1, TAG_ROAM) % 20_000;
    config.wave_stagger * (config.waves.max(1) as u32 + 1) + Duration::from_micros(jitter_us)
}

/// Splits a roamer's trace: the first `prefix_len` packets play at the
/// origin, the rest at the destination.
fn roam_split(trace: &SetupTrace) -> usize {
    (trace.packets.len() / 2).max(1)
}

/// Builds the complete workload of one home.
pub(crate) fn build_home_workload(
    config: &FleetConfig,
    devices: &[DeviceModel],
    home: usize,
) -> HomeWorkload {
    let testbed = Testbed::new(config.seed);
    let mut traces = Vec::with_capacity(config.devices_per_home + 1);
    let mut offsets = Vec::with_capacity(config.devices_per_home + 1);
    let mut leavers = Vec::new();
    let mut roam_out = None;

    let out_slot = is_roam_origin(config, home).then(|| roam_slot(config, home));
    for slot in 0..config.devices_per_home {
        let mut trace = slot_trace(config, devices, &testbed, home, slot);
        if out_slot == Some(slot) && trace.packets.len() >= 2 {
            // This device walks out mid-setup: only the prefix of its
            // traffic reaches this gateway.
            trace.packets.truncate(roam_split(&trace));
            roam_out = Some(trace.mac);
        } else if config.leave_every > 0
            && mix(config.seed, home as u64, slot as u64, TAG_LEAVE)
                .is_multiple_of(config.leave_every as u64)
        {
            leavers.push(trace.mac);
        }
        offsets.push(join_offset(config, home, slot));
        traces.push(trace);
    }

    // Re-derive the neighbour's roamer and append its remaining setup
    // traffic as a late arrival.
    let mut roam_in = None;
    if config.roaming_enabled() {
        let neighbour = (home + config.homes - 1) % config.homes;
        if is_roam_origin(config, neighbour) && roam_destination(config, neighbour) == home {
            let slot = roam_slot(config, neighbour);
            let full = slot_trace(config, devices, &testbed, neighbour, slot);
            if full.packets.len() >= 2 {
                let mut suffix = full;
                let split = roam_split(&suffix);
                suffix.packets.drain(..split);
                roam_in = Some(suffix.mac);
                offsets.push(roam_arrival(config, home));
                traces.push(suffix);
            }
        }
    }

    let packets = interleave_at(&traces, |index| offsets[index]);
    let frames = packets.iter().map(|p| (p.timestamp, p.encode())).collect();
    HomeWorkload {
        frames,
        roam_out,
        roam_in,
        leavers,
    }
}
