//! Facade crate for the IoT Sentinel reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! downstream users can depend on a single crate:
//!
//! * [`netproto`] — packet model, wire codecs, pcap I/O.
//! * [`fingerprint`] — Table I features, `F`/`F'` extraction, edit distance.
//! * [`ml`] — decision trees, Random Forest, cross-validation, metrics.
//! * [`devicesim`] — behaviour models for the 27 Table II device-types.
//! * [`sdn`] — OpenFlow-style switch, controller, overlays, rule cache.
//! * [`core`] — Security Gateway + IoT Security Service pipeline.
//! * [`stream`] — bounded-memory streaming onboarding runtime for
//!   interleaved multi-device traffic.
//! * [`fleet`] — multi-gateway fleet simulation: many home networks,
//!   each with its own switch and gateway, under one shared model.
//! * [`snapshot`] — versioned, checksummed binary model snapshots for
//!   instant-boot gateways.
//!
//! See the [README](https://example.invalid/iot-sentinel) for a quickstart
//! and `examples/` for runnable end-to-end scenarios.

#![forbid(unsafe_code)]

pub use sentinel_core as core;
pub use sentinel_devicesim as devicesim;
pub use sentinel_fingerprint as fingerprint;
pub use sentinel_fleet as fleet;
pub use sentinel_ml as ml;
pub use sentinel_netproto as netproto;
pub use sentinel_sdn as sdn;
pub use sentinel_snapshot as snapshot;
pub use sentinel_stream as stream;

pub use sentinel_core::prelude;
