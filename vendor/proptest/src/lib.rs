//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`/`prop_flat_map`, [`strategy::Just`], `any::<T>()`,
//! integer-range and `[class]{m,n}` string-pattern strategies,
//! `collection::vec`, `option::of`, [`prop_oneof!`] and the
//! `prop_assert*` macros. No shrinking is performed: failing inputs are
//! reported as-is via the panic message. Case generation is
//! deterministic per (test name, case index), so failures reproduce.

pub mod test_runner {
    /// Deterministic per-case random source (SplitMix64 seeded from a
    /// hash of the test name and the case index).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the generator for one test case.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for byte in test_name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: hash ^ (u64::from(case) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (`n` must be non-zero).
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }

    /// Per-test configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Builds a second strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies of a common value type
    /// (the expansion target of [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<V> {
        samplers: Vec<Box<dyn Fn(&mut TestRng) -> V>>,
    }

    impl<V> Union<V> {
        /// Creates an empty union.
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Union {
                samplers: Vec::new(),
            }
        }

        /// Adds one alternative.
        pub fn with<S>(mut self, strategy: S) -> Self
        where
            S: Strategy<Value = V> + 'static,
        {
            self.samplers
                .push(Box::new(move |rng| strategy.sample(rng)));
            self
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            assert!(
                !self.samplers.is_empty(),
                "prop_oneof! needs at least one arm"
            );
            let arm = rng.below(self.samplers.len() as u64) as usize;
            (self.samplers[arm])(rng)
        }
    }

    // ------------------------------------------------------ integer ranges

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64 + 1;
                    start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, usize);

    impl Strategy for core::ops::Range<u64> {
        type Value = u64;

        fn sample(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_u64() % (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<u64> {
        type Value = u64;

        fn sample(&self, rng: &mut TestRng) -> u64 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty range strategy");
            if start == 0 && end == u64::MAX {
                rng.next_u64()
            } else {
                start + rng.next_u64() % (end - start + 1)
            }
        }
    }

    // ------------------------------------------------------ string patterns

    /// `&'static str` patterns of the shape `[class]{n}` / `[class]{m,n}`,
    /// the only regex subset the workspace's tests use.
    impl Strategy for &'static str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            let (alphabet, min, max) =
                parse_class_pattern(self).unwrap_or_else(|| {
                    panic!("unsupported string strategy pattern `{self}`: only `[class]{{m,n}}` is implemented")
                });
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            // `a-z` is a range unless `-` is the final character.
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
                for c in lo..=hi {
                    alphabet.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() {
            return None;
        }
        let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (min, max) = match counts.split_once(',') {
            Some((lo, hi)) => (lo.parse().ok()?, hi.parse().ok()?),
            None => {
                let n = counts.parse().ok()?;
                (n, n)
            }
        };
        if min > max {
            return None;
        }
        Some((alphabet, min, max))
    }

    // ------------------------------------------------------------- tuples

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            core::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// An inclusive length range for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(range: core::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty collection size range");
            SizeRange {
                min: range.start,
                max_inclusive: range.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *range.start(),
                max_inclusive: *range.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy generating `Option`s of an inner strategy.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Roughly one in four values is `None`.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }

    /// Generates `None` or `Some` of the inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// The common imports property tests pull in with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn` runs `config.cases` times with
/// fresh random inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let union = $crate::strategy::Union::new();
        $(let union = union.with($strat);)+
        union
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy as _;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_patterns_sample_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..200 {
            let v = (3u8..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1u16..=4).sample(&mut rng);
            assert!((1..=4).contains(&w));
            let s = "[a-c0-1!.-]{2,5}".sample(&mut rng);
            assert!((2..=5).contains(&s.len()));
            assert!(s.chars().all(|c| "abc01!.-".contains(c)));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::for_case("combinators", 1);
        let strategy = (0u32..4, Just(10u32)).prop_map(|(a, b)| a + b);
        for _ in 0..50 {
            let v = strategy.sample(&mut rng);
            assert!((10..14).contains(&v));
        }
        let flat = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u8..2, n..n + 1));
        for _ in 0..50 {
            let v = flat.sample(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
        let one = prop_oneof![Just(1u8), Just(2u8), (5u8..7)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(one.sample(&mut rng));
        }
        assert!(seen.contains(&1) && seen.contains(&2));
        let opt = crate::option::of(any::<bool>());
        let nones = (0..100).filter(|_| opt.sample(&mut rng).is_none()).count();
        assert!(nones > 5 && nones < 60, "{nones}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(a in 0u8..10, items in crate::collection::vec(any::<u16>(), 0..5)) {
            prop_assert!(a < 10);
            prop_assert_eq!(items.len() < 5, true);
            prop_assert_ne!(a, 200);
        }
    }
}
