//! Little-endian wire primitives for the snapshot format.
//!
//! The writer appends fixed-width little-endian fields to a byte
//! buffer; the reader is its checked inverse. Every read is
//! bounds-checked and returns [`SnapshotError`] on shortfall — the
//! decode path must be panic-free for *arbitrary* input bytes, which
//! the corruption differential tests exercise with random mutations.

use crate::SnapshotError;

/// Appends fixed-width little-endian fields to a growing buffer.
#[derive(Debug, Default)]
pub(crate) struct Writer {
    bytes: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    pub(crate) fn put_u8(&mut self, value: u8) {
        self.bytes.push(value);
    }

    pub(crate) fn put_u16(&mut self, value: u16) {
        self.bytes.extend_from_slice(&value.to_le_bytes());
    }

    pub(crate) fn put_u32(&mut self, value: u32) {
        self.bytes.extend_from_slice(&value.to_le_bytes());
    }

    pub(crate) fn put_u64(&mut self, value: u64) {
        self.bytes.extend_from_slice(&value.to_le_bytes());
    }

    pub(crate) fn put_f64(&mut self, value: f64) {
        self.put_u64(value.to_bits());
    }

    pub(crate) fn put_usize(&mut self, value: usize) {
        self.put_u64(value as u64);
    }

    pub(crate) fn put_bytes(&mut self, bytes: &[u8]) {
        self.bytes.extend_from_slice(bytes);
    }

    /// A length-prefixed UTF-8 string (`u32` length + bytes).
    pub(crate) fn put_str(&mut self, value: &str) {
        self.put_u32(value.len() as u32);
        self.put_bytes(value.as_bytes());
    }
}

/// A checked cursor over untrusted snapshot bytes.
#[derive(Debug)]
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
    /// Section name used in error messages.
    context: &'static str,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8], context: &'static str) -> Self {
        Reader {
            bytes,
            at: 0,
            context,
        }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    /// The next `n` raw bytes.
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if n > self.remaining() {
            return Err(SnapshotError::Truncated {
                context: self.context,
            });
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?).map_err(|_| self.decode_err("count exceeds address space"))
    }

    /// An element count that must plausibly fit in the remaining bytes
    /// (each element occupying at least `elem_size` bytes). Guards the
    /// `Vec::with_capacity` that follows: a corrupted count can at
    /// worst claim the rest of the section, never an absurd allocation.
    pub(crate) fn count(&mut self, elem_size: usize) -> Result<usize, SnapshotError> {
        let count = self.u32()? as usize;
        if count.saturating_mul(elem_size) > self.remaining() {
            return Err(SnapshotError::Truncated {
                context: self.context,
            });
        }
        Ok(count)
    }

    /// A length-prefixed UTF-8 string.
    pub(crate) fn str(&mut self) -> Result<String, SnapshotError> {
        let len = self.count(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.decode_err("string is not UTF-8"))
    }

    /// Asserts the section was consumed exactly.
    pub(crate) fn finish(&self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(self.decode_err("trailing bytes after section payload"));
        }
        Ok(())
    }

    /// A decode error annotated with this reader's section context.
    pub(crate) fn decode_err(&self, what: &str) -> SnapshotError {
        SnapshotError::Decode(format!("{}: {what}", self.context))
    }
}
