//! SDN enforcement substrate for the IoT Sentinel reproduction
//! (Sect. V of the paper).
//!
//! The paper's Security Gateway runs Open vSwitch managed by a custom
//! Floodlight controller module. This crate rebuilds that stack
//! in-process:
//!
//! * [`EnforcementRule`] / [`IsolationLevel`] — the per-device rules of
//!   Fig. 2, keyed by MAC address, with the three isolation levels of
//!   Fig. 3 (*strict*, *restricted*, *trusted*).
//! * [`RuleCache`] — the hash-table enforcement-rule cache whose memory
//!   footprint Fig. 6c measures.
//! * [`FlowTable`] / [`OvsSwitch`] — an OpenFlow-style switch with
//!   exact-match flows and packet-in on miss.
//! * [`EnforcementModule`] — the controller module that turns rules +
//!   network overlays into per-flow verdicts.
//! * [`overlay`] — the trusted/untrusted virtual network overlays.
//! * [`netem`] — a calibrated network-cost model (latency, CPU, memory)
//!   reproducing the Raspberry-Pi gateway measurements of Tables V–VI
//!   and Fig. 6.
//!
//! # Example
//!
//! ```
//! use sentinel_sdn::{EnforcementRule, IsolationLevel, RuleCache};
//! use sentinel_netproto::MacAddr;
//!
//! let mac: MacAddr = "13-73-74-7E-A9-C2".parse().unwrap();
//! let rule = EnforcementRule::restricted(mac, ["52.29.100.7".parse().unwrap()]);
//! let mut cache = RuleCache::new();
//! cache.insert(rule);
//! assert_eq!(cache.get(mac).unwrap().level, IsolationLevel::Restricted);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod controller;
mod flow;
pub mod netem;
pub mod overlay;
mod rule;
pub mod stats;
mod switch;
pub mod topology;

pub use cache::RuleCache;
pub use controller::{Destination, EnforcementModule, Verdict};
pub use flow::{FlowAction, FlowKey, FlowTable};
pub use rule::{EnforcementRule, IsolationLevel};
pub use switch::{OvsSwitch, SwitchDecision};
