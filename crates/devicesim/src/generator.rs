//! Expands a [`DeviceProfile`] into the packet sequence one setup run
//! produces.

use std::net::Ipv4Addr;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sentinel_netproto::dns::{DnsMessage, Question, RecordData, RecordType, ResourceRecord};
use sentinel_netproto::http::HttpMessage;
use sentinel_netproto::icmp::IcmpMessage;
use sentinel_netproto::icmpv6::Icmpv6Message;
use sentinel_netproto::ipv4::IpProtocol;
use sentinel_netproto::ipv6::{HopByHopOption, Ipv6Header};
use sentinel_netproto::ntp::NtpPacket;
use sentinel_netproto::tcp::{TcpFlags, TcpHeader};
use sentinel_netproto::tls::TlsRecord;
use sentinel_netproto::{
    dhcp, ports, ssdp, AppPayload, MacAddr, Packet, PacketBody, Timestamp, Transport,
};

use crate::{DeviceProfile, Phase, RawDest};

/// The packets captured from one device setup run, plus the identity the
/// run used.
#[derive(Debug, Clone, PartialEq)]
pub struct SetupTrace {
    /// The device's MAC address for this run.
    pub mac: MacAddr,
    /// The DHCP-assigned device address.
    pub device_ip: Ipv4Addr,
    /// Device-sent packets in transmission order.
    pub packets: Vec<Packet>,
}

impl SetupTrace {
    /// Re-encodes the trace to timestamped wire frames, the form the
    /// zero-copy scan path (`sentinel_netproto::scan`) ingests.
    pub fn frames(&self) -> Vec<(Timestamp, Vec<u8>)> {
        self.packets
            .iter()
            .map(|p| (p.timestamp, p.encode()))
            .collect()
    }
}

/// Expands device profiles into setup-run packet traces.
///
/// The generator models the gateway side of the lab network (Fig. 4):
/// a fixed gateway MAC/IP, a /24 subnet, and a local DNS resolver on the
/// gateway. Only *device-sent* packets are produced, because the
/// fingerprint records "n packets received from it during its setup
/// phase" (Sect. IV-A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceGenerator {
    /// Gateway MAC address.
    pub gateway_mac: MacAddr,
    /// Gateway (and resolver) IPv4 address.
    pub gateway_ip: Ipv4Addr,
}

impl Default for TraceGenerator {
    fn default() -> Self {
        TraceGenerator {
            gateway_mac: MacAddr::new([0x02, 0x53, 0x47, 0x57, 0x00, 0x01]),
            gateway_ip: Ipv4Addr::new(192, 168, 0, 1),
        }
    }
}

struct RunState {
    rng: StdRng,
    cursor: Timestamp,
    mac: MacAddr,
    device_ip: Ipv4Addr,
    packets: Vec<Packet>,
}

impl RunState {
    /// Advances time by a typical inter-packet gap.
    fn step(&mut self) -> Timestamp {
        let gap = self.rng.gen_range(15..180u64);
        self.cursor += Duration::from_millis(gap);
        self.cursor
    }

    fn ephemeral_port(&mut self) -> u16 {
        self.rng.gen_range(49160..65000)
    }
}

impl TraceGenerator {
    /// Creates a generator with the default lab-network identities.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs one setup of `profile`, seeded by `seed` (a different seed is
    /// a different factory-reset run: new MAC suffix, new DHCP lease, new
    /// jitter).
    pub fn generate(&self, profile: &DeviceProfile, seed: u64) -> SetupTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mac = MacAddr::new([
            profile.oui[0],
            profile.oui[1],
            profile.oui[2],
            rng.gen(),
            rng.gen(),
            rng.gen(),
        ]);
        let device_ip = Ipv4Addr::new(192, 168, 0, rng.gen_range(20..220));
        let mut state = RunState {
            rng,
            cursor: Timestamp::ZERO,
            mac,
            device_ip,
            packets: Vec::with_capacity(48),
        };
        for phase in &profile.phases {
            self.run_phase(profile, phase, &mut state);
        }
        SetupTrace {
            mac,
            device_ip,
            packets: state.packets,
        }
    }

    /// Generates `cycles` standby/operation cycles of `profile` (the
    /// Sect. VIII-A legacy-installation scenario: the device is already
    /// on the network and only heartbeat/keep-alive traffic is visible).
    /// Cycles are separated by long idle gaps, as real standby traffic is.
    pub fn generate_standby(&self, profile: &DeviceProfile, seed: u64, cycles: u32) -> SetupTrace {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5742_5942); // "STBY"
        let mac = MacAddr::new([
            profile.oui[0],
            profile.oui[1],
            profile.oui[2],
            rng.gen(),
            rng.gen(),
            rng.gen(),
        ]);
        let device_ip = Ipv4Addr::new(192, 168, 0, rng.gen_range(20..220));
        let mut state = RunState {
            rng,
            cursor: Timestamp::ZERO,
            mac,
            device_ip,
            packets: Vec::with_capacity(16 * cycles as usize),
        };
        for _ in 0..cycles {
            for phase in &profile.standby_phases {
                self.run_phase(profile, phase, &mut state);
            }
            // Inter-cycle idle period (heartbeat interval with drift).
            let idle = state.rng.gen_range(25_000..35_000u64);
            state.cursor += Duration::from_millis(idle);
        }
        SetupTrace {
            mac,
            device_ip,
            packets: state.packets,
        }
    }

    fn run_phase(&self, profile: &DeviceProfile, phase: &Phase, state: &mut RunState) {
        match phase {
            Phase::Optional { prob, phase } => {
                if state.rng.gen_bool(*prob) {
                    self.run_phase(profile, phase, state);
                }
            }
            Phase::Pause { millis } => {
                state.cursor += Duration::from_millis(*millis);
            }
            Phase::Eapol => {
                for n in [2u8, 4] {
                    let t = state.step();
                    state
                        .packets
                        .push(Packet::eapol_key(t, state.mac, self.gateway_mac, n));
                }
            }
            Phase::Dhcp {
                hostname,
                vendor_class,
                param_list,
            } => self.dhcp_phase(hostname, vendor_class, param_list, state),
            Phase::ArpProbe { count, announce } => {
                for _ in 0..*count {
                    let t = state.step();
                    state
                        .packets
                        .push(Packet::arp_probe(t, state.mac, state.device_ip));
                }
                if *announce {
                    let t = state.step();
                    state.packets.push(Packet::new(
                        t,
                        state.mac,
                        MacAddr::BROADCAST,
                        PacketBody::Arp(sentinel_netproto::arp::ArpPacket::announcement(
                            state.mac,
                            state.device_ip,
                        )),
                    ));
                }
            }
            Phase::Ipv6Bringup {
                mld_records,
                router_solicit,
            } => self.ipv6_phase(*mld_records, *router_solicit, state),
            Phase::Dns { endpoint, aaaa } => {
                let domain = profile.endpoints[*endpoint].domain.clone();
                let src_port = state.ephemeral_port();
                let t = state.step();
                let id = state.rng.gen();
                state.packets.push(self.udp_to_gateway(
                    t,
                    state,
                    src_port,
                    ports::DNS,
                    AppPayload::Dns(DnsMessage::query(id, [Question::a(domain.clone())])),
                ));
                if *aaaa {
                    let t = state.step();
                    let id = state.rng.gen();
                    state.packets.push(self.udp_to_gateway(
                        t,
                        state,
                        src_port,
                        ports::DNS,
                        AppPayload::Dns(DnsMessage::query(
                            id,
                            [Question {
                                name: domain,
                                qtype: RecordType::Aaaa,
                                unicast_response: false,
                            }],
                        )),
                    ));
                }
            }
            Phase::Ntp { endpoint, count } => {
                let dst_ip = profile.endpoints[*endpoint].ip;
                for _ in 0..*count {
                    let t = state.step();
                    let stamp = state.rng.gen();
                    state.packets.push(Packet::udp_ipv4(
                        t,
                        state.mac,
                        self.gateway_mac,
                        state.device_ip,
                        dst_ip,
                        ports::NTP,
                        ports::NTP,
                        AppPayload::Ntp(NtpPacket::client_request(stamp)),
                    ));
                }
            }
            Phase::Tls {
                endpoint,
                port,
                hello_size,
                records,
            } => {
                let dst_ip = profile.endpoints[*endpoint].ip;
                let src_port = state.ephemeral_port();
                let t = state.step();
                state.packets.push(Packet::tcp_syn(
                    t,
                    state.mac,
                    self.gateway_mac,
                    state.device_ip,
                    dst_ip,
                    src_port,
                    *port,
                ));
                let hello = self.jitter_size(profile, *hello_size, state);
                let t = state.step();
                state.packets.push(self.tcp_segment(
                    t,
                    state,
                    dst_ip,
                    src_port,
                    *port,
                    AppPayload::Tls(TlsRecord::client_hello(hello as usize)),
                ));
                for &record in records {
                    let size = self.jitter_size(profile, record, state);
                    let t = state.step();
                    state.packets.push(self.tcp_segment(
                        t,
                        state,
                        dst_ip,
                        src_port,
                        *port,
                        AppPayload::Tls(TlsRecord::application_data(size as usize)),
                    ));
                }
            }
            Phase::HttpGet { endpoint, path } => {
                let ep = &profile.endpoints[*endpoint];
                let dst_ip = ep.ip;
                let src_port = state.ephemeral_port();
                let t = state.step();
                state.packets.push(Packet::tcp_syn(
                    t,
                    state.mac,
                    self.gateway_mac,
                    state.device_ip,
                    dst_ip,
                    src_port,
                    ports::HTTP,
                ));
                let t = state.step();
                state.packets.push(self.tcp_segment(
                    t,
                    state,
                    dst_ip,
                    src_port,
                    ports::HTTP,
                    AppPayload::Http(HttpMessage::get(ep.domain.clone(), path.clone())),
                ));
            }
            Phase::HttpPost {
                endpoint,
                path,
                body_size,
            } => {
                let ep = &profile.endpoints[*endpoint];
                let dst_ip = ep.ip;
                let src_port = state.ephemeral_port();
                let t = state.step();
                state.packets.push(Packet::tcp_syn(
                    t,
                    state.mac,
                    self.gateway_mac,
                    state.device_ip,
                    dst_ip,
                    src_port,
                    ports::HTTP,
                ));
                let size = self.jitter_size(profile, *body_size, state) as usize;
                let t = state.step();
                state.packets.push(self.tcp_segment(
                    t,
                    state,
                    dst_ip,
                    src_port,
                    ports::HTTP,
                    AppPayload::Http(HttpMessage::post(
                        ep.domain.clone(),
                        path.clone(),
                        vec![0x78; size],
                    )),
                ));
            }
            Phase::SsdpSearch { target, count } => {
                let src_port = state.ephemeral_port();
                for _ in 0..*count {
                    let t = state.step();
                    state.packets.push(Packet::udp_ipv4(
                        t,
                        state.mac,
                        MacAddr::new([0x01, 0x00, 0x5e, 0x7f, 0xff, 0xfa]),
                        state.device_ip,
                        ssdp::MULTICAST_ADDR,
                        src_port,
                        ports::SSDP,
                        AppPayload::Http(ssdp::m_search(target)),
                    ));
                }
            }
            Phase::SsdpNotify { device_type, count } => {
                let location = format!("http://{}:49153/setup.xml", state.device_ip);
                for _ in 0..*count {
                    let t = state.step();
                    state.packets.push(Packet::udp_ipv4(
                        t,
                        state.mac,
                        MacAddr::new([0x01, 0x00, 0x5e, 0x7f, 0xff, 0xfa]),
                        state.device_ip,
                        ssdp::MULTICAST_ADDR,
                        ports::SSDP,
                        ports::SSDP,
                        AppPayload::Http(ssdp::notify_alive(device_type, &location)),
                    ));
                }
            }
            Phase::MdnsAnnounce { services } => {
                let records: Vec<ResourceRecord> = services
                    .iter()
                    .flat_map(|service| {
                        let instance = format!("device.{service}");
                        [
                            ResourceRecord {
                                name: service.clone(),
                                ttl: 4500,
                                cache_flush: false,
                                data: RecordData::Ptr(instance.clone()),
                            },
                            ResourceRecord {
                                name: instance,
                                ttl: 4500,
                                cache_flush: true,
                                data: RecordData::A(state.device_ip),
                            },
                        ]
                    })
                    .collect();
                let t = state.step();
                state.packets.push(Packet::udp_ipv4(
                    t,
                    state.mac,
                    MacAddr::new([0x01, 0x00, 0x5e, 0x00, 0x00, 0xfb]),
                    state.device_ip,
                    Ipv4Addr::new(224, 0, 0, 251),
                    ports::MDNS,
                    ports::MDNS,
                    AppPayload::Dns(DnsMessage::mdns_announcement(records)),
                ));
            }
            Phase::MdnsQuery { service } => {
                let t = state.step();
                state.packets.push(Packet::udp_ipv4(
                    t,
                    state.mac,
                    MacAddr::new([0x01, 0x00, 0x5e, 0x00, 0x00, 0xfb]),
                    state.device_ip,
                    Ipv4Addr::new(224, 0, 0, 251),
                    ports::MDNS,
                    ports::MDNS,
                    AppPayload::Dns(DnsMessage::mdns_query([Question::ptr(service.clone())])),
                ));
            }
            Phase::TcpRaw { dest, port, sizes } => {
                let dst_ip = self.resolve_dest(profile, *dest);
                let src_port = state.ephemeral_port();
                let t = state.step();
                state.packets.push(Packet::tcp_syn(
                    t,
                    state.mac,
                    self.gateway_mac,
                    state.device_ip,
                    dst_ip,
                    src_port,
                    *port,
                ));
                for &size in sizes {
                    let size = self.jitter_size(profile, size, state) as usize;
                    let t = state.step();
                    state.packets.push(self.tcp_segment(
                        t,
                        state,
                        dst_ip,
                        src_port,
                        *port,
                        AppPayload::Raw(vec![0xd5; size].into()),
                    ));
                }
            }
            Phase::UdpRaw { dest, port, sizes } => {
                let dst_ip = self.resolve_dest(profile, *dest);
                let src_port = state.ephemeral_port();
                for &size in sizes {
                    let size = self.jitter_size(profile, size, state) as usize;
                    let t = state.step();
                    let dst_mac = if dst_ip.is_broadcast() {
                        MacAddr::BROADCAST
                    } else {
                        self.gateway_mac
                    };
                    state.packets.push(Packet::udp_ipv4(
                        t,
                        state.mac,
                        dst_mac,
                        state.device_ip,
                        dst_ip,
                        src_port,
                        *port,
                        AppPayload::Raw(vec![0xd5; size].into()),
                    ));
                }
            }
            Phase::Stp { count } => {
                for _ in 0..*count {
                    let t = state.step();
                    let mut bpdu = vec![0u8; 35];
                    bpdu[3] = 0x02; // BPDU type: config
                    state.packets.push(Packet::new(
                        t,
                        state.mac,
                        MacAddr::new([0x01, 0x80, 0xc2, 0, 0, 0]),
                        PacketBody::Llc {
                            header: sentinel_netproto::llc::LlcHeader::unnumbered(
                                sentinel_netproto::llc::sap::STP,
                            ),
                            payload: bpdu.into(),
                        },
                    ));
                }
            }
            Phase::Ping { count } => {
                for seq in 0..*count {
                    let t = state.step();
                    let id = state.rng.gen();
                    state.packets.push(Packet::new(
                        t,
                        state.mac,
                        self.gateway_mac,
                        PacketBody::Ipv4 {
                            header: sentinel_netproto::ipv4::Ipv4Header::new(
                                state.device_ip,
                                self.gateway_ip,
                                IpProtocol::Icmp,
                            ),
                            transport: Transport::Icmp(IcmpMessage::echo_request(
                                id,
                                seq as u16,
                                vec![0u8; 32],
                            )),
                        },
                    ));
                }
            }
        }
    }

    fn dhcp_phase(
        &self,
        hostname: &Option<String>,
        vendor_class: &Option<String>,
        param_list: &[u8],
        state: &mut RunState,
    ) {
        let xid: u32 = state.rng.gen();
        let mut discover = dhcp::DhcpMessage::discover(state.mac, xid);
        discover.options.truncate(2); // MessageType + ClientId
        discover
            .options
            .push(dhcp::DhcpOption::ParameterRequestList(param_list.to_vec()));
        if let Some(name) = hostname {
            discover
                .options
                .push(dhcp::DhcpOption::HostName(name.clone()));
        }
        if let Some(class) = vendor_class {
            discover
                .options
                .push(dhcp::DhcpOption::VendorClassId(class.clone()));
        }
        let mut request =
            dhcp::DhcpMessage::request(state.mac, xid, state.device_ip, self.gateway_ip);
        if let Some(name) = hostname {
            request
                .options
                .push(dhcp::DhcpOption::HostName(name.clone()));
        }
        for message in [discover, request] {
            let t = state.step();
            state.packets.push(Packet::udp_ipv4(
                t,
                state.mac,
                MacAddr::BROADCAST,
                Ipv4Addr::UNSPECIFIED,
                Ipv4Addr::BROADCAST,
                ports::DHCP_CLIENT,
                ports::DHCP_SERVER,
                AppPayload::Dhcp(message),
            ));
        }
    }

    fn ipv6_phase(&self, mld_records: u16, router_solicit: bool, state: &mut RunState) {
        let octets = state.mac.octets();
        let link_local: std::net::Ipv6Addr = format!(
            "fe80::{:02x}{:02x}:{:02x}ff:fe{:02x}:{:02x}{:02x}",
            octets[0] ^ 0x02,
            octets[1],
            octets[2],
            octets[3],
            octets[4],
            octets[5]
        )
        .parse()
        .expect("well-formed link-local address");
        let t = state.step();
        state.packets.push(Packet::new(
            t,
            state.mac,
            MacAddr::new([0x33, 0x33, 0, 0, 0, 0x16]),
            PacketBody::Ipv6 {
                header: Ipv6Header::new(
                    link_local,
                    "ff02::16".parse().expect("mld group"),
                    IpProtocol::Icmpv6,
                )
                .with_hop_by_hop(HopByHopOption::RouterAlert(0))
                .with_hop_by_hop(HopByHopOption::PadN(0)),
                transport: Transport::Icmpv6(Icmpv6Message::mld2_report(mld_records)),
            },
        ));
        if router_solicit {
            let t = state.step();
            state.packets.push(Packet::new(
                t,
                state.mac,
                MacAddr::new([0x33, 0x33, 0, 0, 0, 0x02]),
                PacketBody::Ipv6 {
                    header: Ipv6Header::new(
                        link_local,
                        "ff02::2".parse().expect("router group"),
                        IpProtocol::Icmpv6,
                    ),
                    transport: Transport::Icmpv6(Icmpv6Message::router_solicitation()),
                },
            ));
        }
    }

    fn udp_to_gateway(
        &self,
        t: Timestamp,
        state: &RunState,
        src_port: u16,
        dst_port: u16,
        payload: AppPayload,
    ) -> Packet {
        Packet::udp_ipv4(
            t,
            state.mac,
            self.gateway_mac,
            state.device_ip,
            self.gateway_ip,
            src_port,
            dst_port,
            payload,
        )
    }

    fn tcp_segment(
        &self,
        t: Timestamp,
        state: &RunState,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: AppPayload,
    ) -> Packet {
        Packet::tcp_ipv4(
            t,
            state.mac,
            self.gateway_mac,
            state.device_ip,
            dst_ip,
            TcpHeader::new(src_port, dst_port, TcpFlags::PSH | TcpFlags::ACK),
            payload,
        )
    }

    fn resolve_dest(&self, profile: &DeviceProfile, dest: RawDest) -> Ipv4Addr {
        match dest {
            RawDest::Gateway => self.gateway_ip,
            RawDest::Broadcast => Ipv4Addr::BROADCAST,
            RawDest::Endpoint(i) => profile.endpoints[i].ip,
            RawDest::Multicast(addr) => addr,
        }
    }

    /// Applies the profile's size jitter and firmware shift to a nominal
    /// payload size.
    fn jitter_size(&self, profile: &DeviceProfile, size: u32, state: &mut RunState) -> u32 {
        let jitter = if profile.size_jitter > 0 {
            state.rng.gen_range(0..=profile.size_jitter)
        } else {
            0
        };
        size + jitter + (profile.firmware - 1) * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Phase;

    fn profile() -> DeviceProfile {
        let mut p = DeviceProfile::new("TestCam", [0xb0, 0xc5, 0x54]);
        let cloud = p.endpoint("cloud.testcam.example");
        let ntp = p.endpoint("pool.ntp.example");
        p.extend_phases([
            Phase::Eapol,
            Phase::dhcp("TestCam"),
            Phase::ArpProbe {
                count: 2,
                announce: true,
            },
            Phase::Dns {
                endpoint: cloud,
                aaaa: true,
            },
            Phase::Ntp {
                endpoint: ntp,
                count: 1,
            },
            Phase::Tls {
                endpoint: cloud,
                port: 443,
                hello_size: 180,
                records: vec![300, 120],
            },
        ]);
        p
    }

    #[test]
    fn generates_expected_packet_count() {
        let trace = TraceGenerator::new().generate(&profile(), 1);
        // 2 eapol + 2 dhcp + 3 arp + 2 dns + 1 ntp + (1 syn + 1 hello + 2 records)
        assert_eq!(trace.packets.len(), 14);
    }

    #[test]
    fn timestamps_are_monotonic() {
        let trace = TraceGenerator::new().generate(&profile(), 2);
        for window in trace.packets.windows(2) {
            assert!(window[0].timestamp < window[1].timestamp);
        }
    }

    #[test]
    fn mac_uses_profile_oui() {
        let trace = TraceGenerator::new().generate(&profile(), 3);
        assert_eq!(trace.mac.oui(), [0xb0, 0xc5, 0x54]);
        for packet in &trace.packets {
            assert_eq!(packet.src_mac(), trace.mac, "only device-sent packets");
        }
    }

    #[test]
    fn different_seeds_differ_but_same_seed_reproduces() {
        let generator = TraceGenerator::new();
        let a = generator.generate(&profile(), 10);
        let b = generator.generate(&profile(), 10);
        let c = generator.generate(&profile(), 11);
        assert_eq!(a, b);
        assert_ne!(a.mac, c.mac);
    }

    #[test]
    fn optional_phase_sometimes_skipped() {
        let mut p = DeviceProfile::new("Opt", [1, 2, 3]);
        p.extend_phases([Phase::Eapol, Phase::optional(0.5, Phase::Ping { count: 1 })]);
        let generator = TraceGenerator::new();
        let lengths: std::collections::HashSet<usize> = (0..64)
            .map(|seed| generator.generate(&p, seed).packets.len())
            .collect();
        assert_eq!(lengths, [2usize, 3].into_iter().collect());
    }

    #[test]
    fn firmware_update_shifts_sizes() {
        let v1 = TraceGenerator::new().generate(&profile(), 5);
        let v2 = TraceGenerator::new().generate(&profile().with_firmware(2), 5);
        let tls_size = |trace: &SetupTrace| {
            trace
                .packets
                .iter()
                .filter(|p| p.protocols().contains(sentinel_netproto::Protocol::Https))
                .map(|p| p.wire_len())
                .max()
                .unwrap()
        };
        assert!(tls_size(&v2) > tls_size(&v1));
    }

    #[test]
    fn all_packets_roundtrip_on_the_wire() {
        let trace = TraceGenerator::new().generate(&profile(), 7);
        for packet in &trace.packets {
            let bytes = packet.encode();
            let parsed = Packet::parse(&bytes, packet.timestamp).expect("parse");
            assert_eq!(&parsed, packet);
        }
    }

    #[test]
    fn ipv6_bringup_sets_ip_option_features() {
        let mut p = DeviceProfile::new("V6", [1, 2, 3]);
        p.extend_phases([Phase::Ipv6Bringup {
            mld_records: 2,
            router_solicit: true,
        }]);
        let trace = TraceGenerator::new().generate(&p, 1);
        assert_eq!(trace.packets.len(), 2);
        let mld = &trace.packets[0];
        match &mld.body {
            PacketBody::Ipv6 { header, .. } => {
                assert!(header.has_router_alert());
                assert!(header.has_padding_option());
            }
            other => panic!("expected ipv6, got {other:?}"),
        }
    }
}
