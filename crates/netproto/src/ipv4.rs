//! IPv4 headers including the two header options the paper's fingerprint
//! tracks: padding (NOP/EOL) and Router Alert (RFC 2113).

use std::net::Ipv4Addr;

use bytes::BufMut;
use serde::{Deserialize, Serialize};

use crate::ParseError;

/// Length of an IPv4 header without options.
pub const MIN_HEADER_LEN: usize = 20;

/// IP protocol numbers carried in the IPv4 `protocol` / IPv6 `next header`
/// field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IpProtocol {
    /// ICMP (1).
    Icmp,
    /// IGMP (2).
    Igmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// ICMPv6 (58).
    Icmpv6,
    /// Any other protocol number.
    Other(u8),
}

impl IpProtocol {
    /// The raw protocol number.
    pub fn to_u8(self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::Igmp => 2,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Icmpv6 => 58,
            IpProtocol::Other(v) => v,
        }
    }

    /// Classifies a raw protocol number.
    pub fn from_u8(v: u8) -> Self {
        match v {
            1 => IpProtocol::Icmp,
            2 => IpProtocol::Igmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            58 => IpProtocol::Icmpv6,
            v => IpProtocol::Other(v),
        }
    }
}

/// An IPv4 header option.
///
/// Only the two options that are fingerprint features (Table I) are modeled
/// structurally; everything else is preserved as raw type/data.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ipv4Option {
    /// End of options list (type 0) — counted as padding.
    EndOfOptions,
    /// No-operation (type 1) — counted as padding.
    Nop,
    /// Router Alert (type 148, RFC 2113) with its 16-bit value.
    RouterAlert(u16),
    /// Any other option, kept verbatim.
    Other {
        /// Raw option type byte.
        kind: u8,
        /// Raw option data (excluding type and length bytes).
        data: Vec<u8>,
    },
}

impl Ipv4Option {
    /// Returns `true` for padding options (NOP / End-of-Options).
    pub fn is_padding(&self) -> bool {
        matches!(self, Ipv4Option::Nop | Ipv4Option::EndOfOptions)
    }

    /// Returns `true` for the Router Alert option.
    pub fn is_router_alert(&self) -> bool {
        matches!(self, Ipv4Option::RouterAlert(_))
    }

    fn encoded_len(&self) -> usize {
        match self {
            Ipv4Option::EndOfOptions | Ipv4Option::Nop => 1,
            Ipv4Option::RouterAlert(_) => 4,
            Ipv4Option::Other { data, .. } => 2 + data.len(),
        }
    }

    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            Ipv4Option::EndOfOptions => buf.put_u8(0),
            Ipv4Option::Nop => buf.put_u8(1),
            Ipv4Option::RouterAlert(value) => {
                buf.put_u8(148);
                buf.put_u8(4);
                buf.put_u16(*value);
            }
            Ipv4Option::Other { kind, data } => {
                buf.put_u8(*kind);
                buf.put_u8(2 + data.len() as u8);
                buf.put_slice(data);
            }
        }
    }
}

/// An IPv4 header.
///
/// The `total_len` field is computed at encode time from the payload, not
/// stored, so headers cannot describe inconsistent lengths.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv4Header {
    /// Differentiated services code point + ECN byte.
    pub dscp_ecn: u8,
    /// Identification field.
    pub identification: u16,
    /// Don't-fragment flag.
    pub dont_fragment: bool,
    /// Time to live.
    pub ttl: u8,
    /// Transport protocol of the payload.
    pub protocol: IpProtocol,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Header options (padded to a 32-bit boundary at encode time).
    pub options: Vec<Ipv4Option>,
}

impl Ipv4Header {
    /// Creates a header with typical defaults (TTL 64, DF set, no options).
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol) -> Self {
        Ipv4Header {
            dscp_ecn: 0,
            identification: 0,
            dont_fragment: true,
            ttl: 64,
            protocol,
            src,
            dst,
            options: Vec::new(),
        }
    }

    /// Adds an option (builder style).
    #[must_use]
    pub fn with_option(mut self, option: Ipv4Option) -> Self {
        self.options.push(option);
        self
    }

    /// Returns `true` if any option is padding (Table I `Padding` feature).
    pub fn has_padding_option(&self) -> bool {
        self.options.iter().any(Ipv4Option::is_padding)
    }

    /// Returns `true` if a Router Alert option is present (Table I
    /// `RouterAlert` feature).
    pub fn has_router_alert(&self) -> bool {
        self.options.iter().any(Ipv4Option::is_router_alert)
    }

    /// Length of the encoded header in bytes (options padded to 32 bits).
    pub fn header_len(&self) -> usize {
        let opts: usize = self.options.iter().map(Ipv4Option::encoded_len).sum();
        MIN_HEADER_LEN + opts.div_ceil(4) * 4
    }

    /// Appends the header bytes to `buf`, computing length and checksum for
    /// a payload of `payload_len` bytes.
    pub fn encode(&self, buf: &mut impl BufMut, payload_len: usize) {
        let header_len = self.header_len();
        let mut raw = Vec::with_capacity(header_len);
        raw.put_u8(0x40 | (header_len / 4) as u8);
        raw.put_u8(self.dscp_ecn);
        raw.put_u16((header_len + payload_len) as u16);
        raw.put_u16(self.identification);
        raw.put_u16(if self.dont_fragment { 0x4000 } else { 0 });
        raw.put_u8(self.ttl);
        raw.put_u8(self.protocol.to_u8());
        raw.put_u16(0); // checksum placeholder
        raw.put_slice(&self.src.octets());
        raw.put_slice(&self.dst.octets());
        for opt in &self.options {
            opt.encode(&mut raw);
        }
        while raw.len() < header_len {
            raw.put_u8(0); // end-of-options padding to 32-bit boundary
        }
        let checksum = internet_checksum(&raw);
        raw[10..12].copy_from_slice(&checksum.to_be_bytes());
        buf.put_slice(&raw);
    }

    /// Parses a header, returning it and the payload slice delimited by the
    /// header's total-length field.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Truncated`] if the input is shorter than the
    /// header or the declared total length, and [`ParseError::Invalid`] for
    /// a bad version, IHL, or checksum.
    pub fn parse(bytes: &[u8]) -> Result<(Self, &[u8]), ParseError> {
        if bytes.len() < MIN_HEADER_LEN {
            return Err(ParseError::truncated("ipv4", MIN_HEADER_LEN, bytes.len()));
        }
        let version = bytes[0] >> 4;
        if version != 4 {
            return Err(ParseError::invalid("ipv4", format!("version {version}")));
        }
        let ihl = (bytes[0] & 0x0f) as usize * 4;
        if ihl < MIN_HEADER_LEN {
            return Err(ParseError::invalid("ipv4", format!("ihl {ihl} < 20")));
        }
        if bytes.len() < ihl {
            return Err(ParseError::truncated("ipv4", ihl, bytes.len()));
        }
        if internet_checksum(&bytes[..ihl]) != 0 {
            return Err(ParseError::invalid("ipv4", "header checksum mismatch"));
        }
        let total_len = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
        if total_len < ihl || bytes.len() < total_len {
            return Err(ParseError::truncated("ipv4", total_len, bytes.len()));
        }
        let flags_frag = u16::from_be_bytes([bytes[6], bytes[7]]);
        let options = parse_options(&bytes[MIN_HEADER_LEN..ihl])?;
        let header = Ipv4Header {
            dscp_ecn: bytes[1],
            identification: u16::from_be_bytes([bytes[4], bytes[5]]),
            dont_fragment: flags_frag & 0x4000 != 0,
            ttl: bytes[8],
            protocol: IpProtocol::from_u8(bytes[9]),
            src: Ipv4Addr::new(bytes[12], bytes[13], bytes[14], bytes[15]),
            dst: Ipv4Addr::new(bytes[16], bytes[17], bytes[18], bytes[19]),
            options,
        };
        Ok((header, &bytes[ihl..total_len]))
    }
}

fn parse_options(mut bytes: &[u8]) -> Result<Vec<Ipv4Option>, ParseError> {
    let mut options = Vec::new();
    while let Some(&kind) = bytes.first() {
        match kind {
            0 => {
                // End-of-options: remaining bytes are padding; record once.
                options.push(Ipv4Option::EndOfOptions);
                break;
            }
            1 => {
                options.push(Ipv4Option::Nop);
                bytes = &bytes[1..];
            }
            _ => {
                if bytes.len() < 2 {
                    return Err(ParseError::truncated("ipv4 option", 2, bytes.len()));
                }
                let len = bytes[1] as usize;
                if len < 2 || bytes.len() < len {
                    return Err(ParseError::invalid(
                        "ipv4 option",
                        format!("option {kind} length {len}"),
                    ));
                }
                let option = if kind == 148 && len == 4 {
                    Ipv4Option::RouterAlert(u16::from_be_bytes([bytes[2], bytes[3]]))
                } else {
                    Ipv4Option::Other {
                        kind,
                        data: bytes[2..len].to_vec(),
                    }
                };
                options.push(option);
                bytes = &bytes[len..];
            }
        }
    }
    Ok(options)
}

/// RFC 1071 internet checksum over `data`.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u16::from_be_bytes([chunk[0], chunk[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        Ipv4Header::new(
            Ipv4Addr::new(192, 168, 0, 10),
            Ipv4Addr::new(192, 168, 0, 1),
            IpProtocol::Udp,
        )
    }

    #[test]
    fn roundtrip_no_options() {
        let hdr = sample();
        let mut buf = Vec::new();
        hdr.encode(&mut buf, 3);
        buf.extend_from_slice(&[0xaa, 0xbb, 0xcc]);
        let (parsed, payload) = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(parsed, hdr);
        assert_eq!(payload, &[0xaa, 0xbb, 0xcc]);
    }

    #[test]
    fn roundtrip_router_alert() {
        let hdr = sample().with_option(Ipv4Option::RouterAlert(0));
        assert!(hdr.has_router_alert());
        assert_eq!(hdr.header_len(), 24);
        let mut buf = Vec::new();
        hdr.encode(&mut buf, 0);
        let (parsed, _) = Ipv4Header::parse(&buf).unwrap();
        assert!(parsed.has_router_alert());
        assert_eq!(parsed, hdr);
    }

    #[test]
    fn padding_options_detected_after_roundtrip() {
        let hdr = sample().with_option(Ipv4Option::Nop);
        assert!(hdr.has_padding_option());
        let mut buf = Vec::new();
        hdr.encode(&mut buf, 0);
        let (parsed, _) = Ipv4Header::parse(&buf).unwrap();
        assert!(parsed.has_padding_option());
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut buf = Vec::new();
        sample().encode(&mut buf, 0);
        buf[8] ^= 0xff; // flip TTL
        assert!(matches!(
            Ipv4Header::parse(&buf).unwrap_err(),
            ParseError::Invalid { layer: "ipv4", .. }
        ));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        sample().encode(&mut buf, 0);
        buf[0] = 0x65; // version 6
        assert!(Ipv4Header::parse(&buf).is_err());
    }

    #[test]
    fn total_length_bounds_payload() {
        let mut buf = Vec::new();
        sample().encode(&mut buf, 2);
        buf.extend_from_slice(&[1, 2, 3, 4]); // two extra trailing bytes
        let (_, payload) = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(payload.len(), 2, "payload must stop at total_len");
    }

    #[test]
    fn checksum_known_vector() {
        // RFC 1071 example data.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn protocol_number_roundtrip() {
        for raw in [1u8, 2, 6, 17, 58, 99] {
            assert_eq!(IpProtocol::from_u8(raw).to_u8(), raw);
        }
    }
}
