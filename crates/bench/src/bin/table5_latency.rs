//! Reproduces **Table V**: latency experienced between user devices and
//! servers, with and without the filtering mechanism.
//!
//! ```text
//! cargo run --release -p sentinel-bench --bin table5_latency
//! cargo run --release -p sentinel-bench --bin table5_latency -- --iterations 100
//! ```

use sentinel_bench::cli::Args;
use sentinel_bench::{enforcement, tables};

fn main() {
    let args = Args::from_env();
    let iterations: usize = args.get("iterations", 15);
    let flows: usize = args.get("flows", 20);
    let seed: u64 = args.get("seed", 42);

    print!(
        "{}",
        tables::banner("Table V — Latency (ms) experienced by users")
    );
    println!("{iterations} iterations per device pair, {flows} concurrent flows (paper: 15 iterations)\n");

    let rows_data = enforcement::latency_table(iterations, flows, seed);
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|row| {
            vec![
                row.source.clone(),
                row.destination.clone(),
                format!("{:.1}", row.filtering),
                format!("{:.1}", row.no_filtering),
                format!("{:+.2}%", row.overhead_percent()),
            ]
        })
        .collect();
    print!(
        "{}",
        tables::render(
            &[
                "Source",
                "Destination",
                "Filtering",
                "No filtering",
                "Overhead"
            ],
            &rows,
        )
    );
    println!();
    println!(
        "paper magnitudes: D->D 24.5-28.5 ms, D->Slocal 15.4-18.4 ms, D->Sremote 19.8-20.6 ms;\n\
         filtering deltas within measurement noise."
    );
}
