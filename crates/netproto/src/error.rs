use std::fmt;

/// Error returned when decoding a packet (or one of its layers) from wire
/// bytes fails.
///
/// `ParseError` is the single error type of this crate: every `parse`
/// function returns `Result<T, ParseError>`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// The input ended before the layer was complete.
    Truncated {
        /// Which protocol layer was being decoded.
        layer: &'static str,
        /// How many bytes the layer needed.
        needed: usize,
        /// How many bytes were available.
        got: usize,
    },
    /// A field held a value that is not valid for the protocol.
    Invalid {
        /// Which protocol layer was being decoded.
        layer: &'static str,
        /// Human-readable reason the bytes were rejected.
        reason: String,
    },
    /// The pcap file magic number was not recognized.
    BadPcapMagic(u32),
    /// An I/O error surfaced while reading or writing a capture file.
    Io(String),
}

impl ParseError {
    /// Convenience constructor for [`ParseError::Truncated`].
    pub(crate) fn truncated(layer: &'static str, needed: usize, got: usize) -> Self {
        ParseError::Truncated { layer, needed, got }
    }

    /// Convenience constructor for [`ParseError::Invalid`].
    pub(crate) fn invalid(layer: &'static str, reason: impl Into<String>) -> Self {
        ParseError::Invalid {
            layer,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated { layer, needed, got } => {
                write!(f, "truncated {layer}: needed {needed} bytes, got {got}")
            }
            ParseError::Invalid { layer, reason } => write!(f, "invalid {layer}: {reason}"),
            ParseError::BadPcapMagic(magic) => {
                write!(f, "unrecognized pcap magic number {magic:#010x}")
            }
            ParseError::Io(err) => write!(f, "capture i/o error: {err}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<std::io::Error> for ParseError {
    fn from(err: std::io::Error) -> Self {
        ParseError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = ParseError::truncated("ipv4", 20, 7);
        assert_eq!(err.to_string(), "truncated ipv4: needed 20 bytes, got 7");
        let err = ParseError::invalid("dns", "label too long");
        assert_eq!(err.to_string(), "invalid dns: label too long");
        let err = ParseError::BadPcapMagic(0xdead_beef);
        assert!(err.to_string().contains("0xdeadbeef"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<ParseError>();
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let err: ParseError = io.into();
        assert!(matches!(err, ParseError::Io(_)));
    }
}
