//! Property tests for the ML substrate: cross-validation partitions,
//! sampling invariants, metric laws, and forest sanity.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sentinel_ml::crossval::stratified_k_fold;
use sentinel_ml::metrics::{accuracy, ConfusionMatrix};
use sentinel_ml::sampling::{balanced_one_vs_rest, bootstrap_indices, sample_without_replacement};
use sentinel_ml::{Dataset, ForestConfig, RandomForest};

fn labels_strategy() -> impl Strategy<Value = Vec<usize>> {
    // 2-5 classes, enough rows per class for 2-5 folds.
    (2usize..5, 2usize..6).prop_flat_map(|(classes, per_class)| {
        Just(
            (0..classes)
                .flat_map(|c| std::iter::repeat_n(c, per_class * 5))
                .collect::<Vec<usize>>(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn folds_partition_every_row_exactly_once(labels in labels_strategy(), k in 2usize..6, seed in any::<u64>()) {
        let folds = stratified_k_fold(&labels, k, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(folds.len(), k);
        let mut tested = vec![0usize; labels.len()];
        for fold in &folds {
            for &i in &fold.test {
                tested[i] += 1;
            }
            let test: std::collections::HashSet<_> = fold.test.iter().collect();
            prop_assert!(fold.train.iter().all(|i| !test.contains(i)), "train/test overlap");
            prop_assert_eq!(fold.train.len() + fold.test.len(), labels.len());
        }
        prop_assert!(tested.iter().all(|&c| c == 1), "row tested more or less than once");
    }

    #[test]
    fn folds_preserve_class_balance(labels in labels_strategy(), seed in any::<u64>()) {
        let k = 5;
        let folds = stratified_k_fold(&labels, k, &mut StdRng::seed_from_u64(seed));
        let n_classes = labels.iter().max().unwrap() + 1;
        for fold in &folds {
            for class in 0..n_classes {
                let total = labels.iter().filter(|&&l| l == class).count();
                let in_test = fold.test.iter().filter(|&&i| labels[i] == class).count();
                // Stratified: each fold holds total/k of the class ± 1.
                let expected = total / k;
                prop_assert!(
                    in_test == expected || in_test == expected + 1,
                    "class {class}: {in_test} vs expected {expected}"
                );
            }
        }
    }

    #[test]
    fn bootstrap_covers_range(n in 1usize..200, seed in any::<u64>()) {
        let sample = bootstrap_indices(n, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(sample.len(), n);
        prop_assert!(sample.iter().all(|&i| i < n));
    }

    #[test]
    fn sampling_without_replacement_is_a_subset(pool_size in 1usize..100, k in 0usize..120, seed in any::<u64>()) {
        let pool: Vec<usize> = (0..pool_size).collect();
        let sample = sample_without_replacement(&pool, k, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(sample.len(), k.min(pool_size));
        let distinct: std::collections::HashSet<_> = sample.iter().collect();
        prop_assert_eq!(distinct.len(), sample.len(), "duplicates in sample");
        prop_assert!(sample.iter().all(|i| pool.contains(i)));
    }

    #[test]
    fn one_vs_rest_labels_align(pos in 1usize..20, neg in 1usize..200, ratio in 1usize..12, seed in any::<u64>()) {
        let positives: Vec<usize> = (0..pos).collect();
        let negatives: Vec<usize> = (pos..pos + neg).collect();
        let (indices, labels) =
            balanced_one_vs_rest(&positives, &negatives, ratio, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(indices.len(), labels.len());
        prop_assert_eq!(labels.iter().filter(|&&l| l == 1).count(), pos);
        prop_assert_eq!(
            labels.iter().filter(|&&l| l == 0).count(),
            (pos * ratio).min(neg)
        );
        for (&i, &l) in indices.iter().zip(&labels) {
            prop_assert_eq!(l == 1, i < pos);
        }
    }

    #[test]
    fn accuracy_bounds_and_extremes(truth in proptest::collection::vec(0usize..4, 1..50)) {
        prop_assert_eq!(accuracy(&truth, &truth), 1.0);
        let wrong: Vec<usize> = truth.iter().map(|&t| t + 1).collect();
        prop_assert_eq!(accuracy(&truth, &wrong), 0.0);
    }

    #[test]
    fn confusion_matrix_consistency(pairs in proptest::collection::vec((0usize..4, 0usize..4), 1..80)) {
        let mut matrix = ConfusionMatrix::new(["a", "b", "c", "d"]);
        for &(actual, predicted) in &pairs {
            matrix.record(actual, predicted);
        }
        // Accuracy equals the direct computation.
        let truth: Vec<usize> = pairs.iter().map(|&(a, _)| a).collect();
        let predicted: Vec<usize> = pairs.iter().map(|&(_, p)| p).collect();
        prop_assert!((matrix.accuracy() - accuracy(&truth, &predicted)).abs() < 1e-12);
        // Recall and precision stay in [0, 1].
        for class in 0..4 {
            if let Some(r) = matrix.recall(class) {
                prop_assert!((0.0..=1.0).contains(&r));
            }
            if let Some(p) = matrix.precision(class) {
                prop_assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn forest_predictions_are_valid_labels(seed in any::<u64>(), n in 10usize..40) {
        let mut data = Dataset::new(3);
        for i in 0..n {
            let x = i as f64;
            data.push(&[x, x * 0.5, 2.0], usize::from(i % 3 == 0));
        }
        let forest = RandomForest::fit(
            &data,
            &ForestConfig::default().with_trees(15).with_seed(seed),
        );
        for i in 0..n {
            let predicted = forest.predict(data.row(i));
            prop_assert!(predicted < forest.n_classes());
            let proba = forest.predict_proba(data.row(i));
            prop_assert!((proba.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn forest_memorizes_separable_data(seed in any::<u64>()) {
        // Well-separated clusters must be perfectly learned.
        let mut data = Dataset::new(2);
        for i in 0..30 {
            let j = (i % 5) as f64 * 0.1;
            data.push(&[j, j], 0);
            data.push(&[10.0 + j, 10.0 + j], 1);
        }
        let forest = RandomForest::fit(
            &data,
            &ForestConfig::default().with_trees(20).with_seed(seed),
        );
        for i in 0..data.len() {
            prop_assert_eq!(forest.predict(data.row(i)), data.label(i));
        }
    }
}
