//! The tick-driven multi-gateway fleet simulation.

use std::net::IpAddr;

use serde::Serialize;

use sentinel_core::{OnboardingReport, SecurityService};
use sentinel_devicesim::{catalog, DeviceModel};
use sentinel_ml::parallel::map_indexed;
use sentinel_netproto::{MacAddr, Timestamp};
use sentinel_sdn::topology::Topology;
use sentinel_sdn::Destination;
use sentinel_stream::{StreamRuntime, StreamStats};

use crate::workload::{build_home_workload, is_roam_origin, roam_destination};
use crate::{FleetConfig, FleetStats};

/// Everything one home gateway produced: its streaming counters, the
/// onboarding reports in deterministic `(seq, mac)` emission order, and
/// its enforcement-side accounting.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HomeOutcome {
    /// Home index in `0..config.homes`.
    pub home: usize,
    /// The gateway's streaming counters.
    pub stats: StreamStats,
    /// Onboarding reports, in emission order.
    pub reports: Vec<OnboardingReport>,
    /// MAC that roamed away mid-setup, if any.
    pub roam_out: Option<MacAddr>,
    /// MAC that roamed in from the neighbouring home, if any.
    pub roam_in: Option<MacAddr>,
    /// Enforcement rules installed by this gateway.
    pub rules_installed: u64,
    /// Rules removed because the device left.
    pub rules_removed: u64,
    /// Rules still cached when the run ended.
    pub rules_resident: u64,
    /// Rule-cache hits at this gateway.
    pub cache_hits: u64,
    /// Rule-cache lookups at this gateway.
    pub cache_lookups: u64,
    /// Data-plane probe flows allowed.
    pub probes_allowed: u64,
    /// Data-plane probe flows denied.
    pub probes_denied: u64,
}

/// The result of a whole fleet run: summed stats plus every home's
/// outcome, in home order — `PartialEq`/`Serialize` so thread-count
/// sweeps can assert bit-for-bit equality.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetReport {
    /// Aggregated fleet counters (see [`FleetStats`] for the rules).
    pub stats: FleetStats,
    /// Per-home outcomes, indexed by home.
    pub homes: Vec<HomeOutcome>,
}

impl FleetReport {
    /// The outcome of one home.
    pub fn home(&self, home: usize) -> &HomeOutcome {
        &self.homes[home]
    }
}

/// Runs the whole fleet: `config.homes` independent home networks, in
/// parallel across `config.threads` workers, against one shared trained
/// service.
///
/// Each home is a pure function of `(service, config, home index)` —
/// the v2 keyed RNG contract makes assessment itself deterministic, and
/// no state flows between homes — so the report is bit-identical at any
/// thread count and for any home-evaluation order.
pub fn run_fleet<S: SecurityService + Sync>(service: &S, config: &FleetConfig) -> FleetReport {
    let devices = catalog();
    let outcomes = map_indexed(config.homes, config.threads, |home| {
        run_home(service, config, &devices, home)
    });
    let mut stats = FleetStats {
        homes: config.homes,
        ..FleetStats::default()
    };
    for outcome in &outcomes {
        stats.absorb(outcome);
    }
    FleetReport {
        stats,
        homes: outcomes,
    }
}

/// Simulates one home network end to end: its own [`Topology`], its own
/// gateway ([`StreamRuntime`] + enforcement module), a tick loop over
/// the home's onboarding storm, leaves one tick after onboarding, and
/// deterministic data-plane probes that exercise the rule cache.
pub fn run_home<S: SecurityService + Sync>(
    service: &S,
    config: &FleetConfig,
    devices: &[DeviceModel],
    home: usize,
) -> HomeOutcome {
    let workload = build_home_workload(config, devices, home);
    let topology = Topology::lab();
    let remote_ip = IpAddr::V4(
        topology
            .host("Sremote")
            .expect("lab topology has a remote server")
            .ip,
    );
    // A MAC no simulated device uses: probing it is a guaranteed cache
    // miss, decided by the gateway's default (strict) level.
    let stranger = MacAddr::new([0x02, 0xff, 0xff, 0xff, 0xff, 0xfe]);

    let mut runtime = StreamRuntime::with_config(service, config.stream_config());
    let mut outcome = HomeOutcome {
        home,
        stats: StreamStats::default(),
        reports: Vec::new(),
        roam_out: workload.roam_out,
        roam_in: workload.roam_in,
        rules_installed: 0,
        rules_removed: 0,
        rules_resident: 0,
        cache_hits: 0,
        cache_lookups: 0,
        probes_allowed: 0,
        probes_denied: 0,
    };

    let mut pending_leaves: Vec<MacAddr> = Vec::new();
    let mut cursor = 0usize;
    let mut tick_end = config.tick;
    while cursor < workload.frames.len() {
        // Leaves land on tick boundaries, one tick after onboarding.
        for mac in pending_leaves.drain(..) {
            if runtime.enforcement_mut().remove_rule(mac).is_some() {
                outcome.rules_removed += 1;
            }
        }
        let limit = Timestamp::ZERO + tick_end;
        let mut end = cursor;
        while end < workload.frames.len() && workload.frames[end].0 < limit {
            end += 1;
        }
        let reports = runtime.ingest_frames(&workload.frames[cursor..end]);
        cursor = end;
        tick_end += config.tick;
        settle(
            &mut runtime,
            reports,
            &workload.leavers,
            &mut pending_leaves,
            &mut outcome,
            remote_ip,
            stranger,
        );
    }
    let reports = runtime.flush();
    settle(
        &mut runtime,
        reports,
        &workload.leavers,
        &mut pending_leaves,
        &mut outcome,
        remote_ip,
        stranger,
    );
    for mac in pending_leaves.drain(..) {
        if runtime.enforcement_mut().remove_rule(mac).is_some() {
            outcome.rules_removed += 1;
        }
    }

    let cache = runtime.enforcement().cache();
    outcome.rules_resident = cache.len() as u64;
    outcome.cache_hits = cache.hits();
    outcome.cache_lookups = cache.lookups();
    outcome.stats = runtime.stats().clone();
    outcome
}

/// Post-tick bookkeeping: record fresh onboardings, schedule leaves,
/// and send one data-plane probe per new device (plus one stranger
/// probe) through the enforcement module so the rule cache sees a
/// realistic hit/miss mix.
fn settle<S: SecurityService + Sync>(
    runtime: &mut StreamRuntime<S>,
    reports: Vec<OnboardingReport>,
    leavers: &[MacAddr],
    pending_leaves: &mut Vec<MacAddr>,
    outcome: &mut HomeOutcome,
    remote_ip: IpAddr,
    stranger: MacAddr,
) {
    for report in reports {
        outcome.rules_installed += 1;
        let probe = runtime
            .enforcement_mut()
            .decide(report.mac, Destination::Internet(remote_ip));
        if probe.is_allow() {
            outcome.probes_allowed += 1;
        } else {
            outcome.probes_denied += 1;
        }
        let miss = runtime
            .enforcement_mut()
            .decide(stranger, Destination::Internet(remote_ip));
        if miss.is_allow() {
            outcome.probes_allowed += 1;
        } else {
            outcome.probes_denied += 1;
        }
        if leavers.contains(&report.mac) {
            pending_leaves.push(report.mac);
        }
        outcome.reports.push(report);
    }
}

/// Re-export for determinism tests: which home a roamer from `home`
/// lands in.
pub fn roamer_route(config: &FleetConfig, home: usize) -> Option<(usize, usize)> {
    is_roam_origin(config, home).then(|| (home, roam_destination(config, home)))
}
