//! End-to-end legacy migration (Sect. VIII-A): a whole legacy fleet is
//! identified from standby traffic by a real trained service, and the
//! overlay placement comes out right.

use iot_sentinel::devicesim::{catalog, Testbed};
use iot_sentinel::ml::ForestConfig;
use iot_sentinel::prelude::*;
use iot_sentinel::sdn::overlay::Overlay;
use iot_sentinel::sdn::EnforcementModule;

fn standby_service() -> IoTSecurityService {
    let devices = catalog();
    let dataset = FingerprintDataset::collect_standby(&devices, 10, 3, 42);
    let mut config = ServiceConfig::default();
    config.identifier.bank.forest = ForestConfig::default().with_trees(40);
    IoTSecurityService::train(&dataset, &config)
}

#[test]
fn legacy_fleet_lands_in_correct_overlays() {
    let devices = catalog();
    let service = standby_service();
    let testbed = Testbed::new(4242);

    // (catalog index, rekey support, expected outcome class)
    let fleet = [
        (4usize, RekeySupport::Wps), // HueBridge: clean + WPS -> trusted
        (0, RekeySupport::None),     // Aria: clean, no WPS -> untrusted
        (8, RekeySupport::Wps),      // EdimaxCam: CVE -> untrusted
    ];
    let legacy: Vec<LegacyDevice> = fleet
        .iter()
        .map(|&(index, rekey)| {
            let trace = testbed.standby_run(&devices[index].profile, 1, 3);
            LegacyDevice {
                mac: trace.mac,
                packets: trace.packets,
                rekey,
            }
        })
        .collect();

    let mut module = EnforcementModule::new();
    let records = migrate(&service, PskPolicy::Retain, &legacy, &mut module);

    assert_eq!(
        records[0].outcome,
        MigrationOutcome::MovedToTrusted,
        "{:?}",
        records[0]
    );
    assert_eq!(module.overlay_of(legacy[0].mac), Overlay::Trusted);

    assert!(
        matches!(records[1].outcome, MigrationOutcome::RemainsUntrusted(_)),
        "{:?}",
        records[1]
    );
    assert_eq!(module.overlay_of(legacy[1].mac), Overlay::Untrusted);

    assert!(
        matches!(records[2].outcome, MigrationOutcome::RemainsUntrusted(_)),
        "{:?}",
        records[2]
    );
    assert_eq!(module.overlay_of(legacy[2].mac), Overlay::Untrusted);
}

#[test]
fn standby_identification_matches_device_types() {
    // The Sect. VIII-A hypothesis, tested end-to-end: a service trained
    // on standby fingerprints identifies held-out standby captures.
    let devices = catalog();
    let service = standby_service();
    let testbed = Testbed::new(9999);
    let mut correct = 0;
    // The behaviourally distinct devices; families are expected to
    // confuse in standby too.
    let easy = [0usize, 2, 3, 4, 7, 8, 10, 13, 16];
    for &index in &easy {
        let trace = testbed.standby_run(&devices[index].profile, 5, 3);
        let full = iot_sentinel::fingerprint::extract(&trace.packets);
        let fixed = FixedFingerprint::from_fingerprint(&full);
        let response = service.assess(&full, &fixed);
        if response.identification.label() == Some(index) {
            correct += 1;
        }
    }
    assert!(
        correct >= easy.len() - 2,
        "only {correct}/{} standby identifications correct",
        easy.len()
    );
}

#[test]
fn uncontrollable_vulnerable_device_triggers_user_notification() {
    // EdnetGateway (index 6) has both an advisory and a sub-GHz radio
    // the gateway cannot see: the service must tell the user to remove
    // it (Sect. III-C.3).
    let devices = catalog();
    let dataset = FingerprintDataset::collect(&devices, 10, 42);
    let mut config = ServiceConfig::default();
    config.identifier.bank.forest = ForestConfig::default().with_trees(40);
    let service = IoTSecurityService::train(&dataset, &config);

    let trace = Testbed::new(31).setup_run(&devices[6].profile, 0);
    let mut gateway = SecurityGateway::new(service);
    for packet in &trace.packets {
        gateway.observe(packet);
    }
    let report = gateway.finalize(trace.mac).expect("monitored");
    assert_eq!(
        report.response.identification.label(),
        Some(6),
        "{:?}",
        report.response.identification
    );
    let notice = report
        .response
        .user_notification
        .as_ref()
        .expect("removal notice for EdnetGateway");
    assert!(notice.contains("remove the device"));
    assert!(report.to_string().contains("USER ACTION REQUIRED"));
}
