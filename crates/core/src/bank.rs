//! The "one classifier per device-type" bank (Sect. IV-B.1).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use sentinel_fingerprint::FixedFingerprint;
use sentinel_ml::parallel;
use sentinel_ml::sampling::balanced_one_vs_rest;
use sentinel_ml::{BinnedDataset, Dataset, ForestConfig, RandomForest};

use crate::FingerprintDataset;

/// Training parameters for a [`ClassifierBank`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BankConfig {
    /// Negative-to-positive sampling ratio for one-vs-rest training (the
    /// paper trains each classifier on all `n` positives plus `10·n`
    /// random negatives).
    pub negative_ratio: usize,
    /// Random Forest parameters.
    pub forest: ForestConfig,
    /// Seed for negative sampling (forests derive their own sub-seeds).
    pub seed: u64,
    /// Worker threads for training the per-type classifiers (`0` = auto
    /// via `SENTINEL_THREADS` / available parallelism, `1` = the exact
    /// sequential path). Each label already derives independent RNG
    /// streams from the bank and forest seeds, so the trained bank is
    /// bit-identical for every thread count.
    pub threads: usize,
}

impl Default for BankConfig {
    fn default() -> Self {
        BankConfig {
            negative_ratio: 10,
            forest: ForestConfig::default(),
            seed: 0,
            threads: 0,
        }
    }
}

/// One binary Random Forest per known device-type.
///
/// New device-types are added with [`ClassifierBank::add_type`] without
/// touching existing classifiers — the property the paper highlights
/// over multi-class approaches ("a new classifier is trained without
/// making any modification to the existing classifiers").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassifierBank {
    classifiers: Vec<RandomForest>,
    type_names: Vec<String>,
    config: BankConfig,
}

impl ClassifierBank {
    /// Trains one classifier per device-type present in `dataset`.
    ///
    /// The full corpus is copied into one design matrix and binned
    /// **once**; every label's forest then trains over an index *view*
    /// of that shared [`BinnedDataset`] (its positives plus sampled
    /// negatives, with a 1/0 label remap) instead of materializing and
    /// re-binning a per-label dataset — bit-identical models, ~27×
    /// less binning work (see `RandomForest::fit_view`).
    ///
    /// Labels train concurrently (see [`BankConfig::threads`]); every
    /// label's sampling and forest RNG streams are derived from the
    /// seeds alone, so the result never depends on the thread count.
    pub fn train(dataset: &FingerprintDataset, config: &BankConfig) -> Self {
        let mut bank = ClassifierBank {
            classifiers: Vec::new(),
            type_names: dataset.type_names().to_vec(),
            config: config.clone(),
        };
        if dataset.n_types() == 0 {
            return bank;
        }
        let corpus = corpus_of(dataset);
        let bins = BinnedDataset::build(&corpus);
        let threads = parallel::effective_threads(config.threads).min(dataset.n_types().max(1));
        // With the label fan-out already saturating the workers, each
        // forest fits sequentially; a lone worker lets the forest use
        // its own configured parallelism instead.
        let forest_threads = if threads > 1 { Some(1) } else { None };
        let classifiers = parallel::map_indexed(dataset.n_types(), threads, |label| {
            bank.train_one(dataset, &corpus, &bins, label, forest_threads)
        });
        bank.classifiers = classifiers;
        bank
    }

    /// Trains a classifier for one additional device-type and appends
    /// it, leaving existing classifiers untouched. Returns the new
    /// type's label.
    ///
    /// `dataset` must contain fingerprints labeled with the new type's
    /// index (i.e. `self.n_types()`). The appended classifier is
    /// bit-identical to the one a full [`ClassifierBank::train`] on
    /// `dataset` would produce for that label: its sampling and forest
    /// seeds derive from the label alone, and the corpus it bins is the
    /// same.
    pub fn add_type(&mut self, name: impl Into<String>, dataset: &FingerprintDataset) -> usize {
        let label = self.classifiers.len();
        let corpus = corpus_of(dataset);
        let bins = BinnedDataset::build(&corpus);
        self.type_names.push(name.into());
        self.classifiers
            .push(self.train_one(dataset, &corpus, &bins, label, None));
        label
    }

    fn train_one(
        &self,
        dataset: &FingerprintDataset,
        corpus: &Dataset,
        bins: &BinnedDataset,
        label: usize,
        forest_threads: Option<usize>,
    ) -> RandomForest {
        let positives = dataset.indices_of(label);
        let negatives: Vec<usize> = (0..dataset.len())
            .filter(|&i| dataset.label(i) != label)
            .collect();
        assert!(
            !positives.is_empty(),
            "no fingerprints for type {label} ({})",
            self.type_names.get(label).map_or("?", |s| s)
        );
        let mut rng =
            StdRng::seed_from_u64(self.config.seed ^ (label as u64).wrapping_mul(0x9e37_79b9));
        let (indices, labels) =
            balanced_one_vs_rest(&positives, &negatives, self.config.negative_ratio, &mut rng);
        let mut forest_config = self
            .config
            .forest
            .clone()
            .with_seed(self.config.forest.seed ^ (label as u64).wrapping_mul(0x85eb_ca6b));
        if let Some(threads) = forest_threads {
            forest_config.threads = threads;
        }
        RandomForest::fit_view(corpus, bins, &indices, &labels, &forest_config)
    }

    /// Number of device-types the bank recognizes.
    pub fn n_types(&self) -> usize {
        self.classifiers.len()
    }

    /// Device-type names, indexed by label.
    pub fn type_names(&self) -> &[String] {
        &self.type_names
    }

    /// The trained classifier for type `label` (model inspection and
    /// determinism tests).
    pub fn classifier(&self, label: usize) -> &RandomForest {
        &self.classifiers[label]
    }

    /// All one-vs-rest classifiers, indexed by label (binary model
    /// persistence).
    pub fn classifiers(&self) -> &[RandomForest] {
        &self.classifiers
    }

    /// The configuration the bank was trained with.
    pub fn config(&self) -> &BankConfig {
        &self.config
    }

    /// Rebuilds a bank from persisted parts. Each classifier must be
    /// binary (the one-vs-rest contract every acceptance query relies
    /// on) and pair up with exactly one type name.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant.
    pub fn from_parts(
        classifiers: Vec<RandomForest>,
        type_names: Vec<String>,
        config: BankConfig,
    ) -> Result<Self, String> {
        if classifiers.len() != type_names.len() {
            return Err(format!(
                "{} classifiers for {} type names",
                classifiers.len(),
                type_names.len()
            ));
        }
        if let Some(odd) = classifiers.iter().position(|c| c.n_classes() != 2) {
            return Err(format!(
                "classifier {odd} distinguishes {} classes; one-vs-rest classifiers are binary",
                classifiers[odd].n_classes()
            ));
        }
        Ok(ClassifierBank {
            classifiers,
            type_names,
            config,
        })
    }

    /// Labels of all device-types whose classifier accepts the
    /// fingerprint. Empty means *new/unknown device-type*.
    pub fn matches(&self, fingerprint: &FixedFingerprint) -> Vec<usize> {
        self.classifiers
            .iter()
            .enumerate()
            .filter(|(_, classifier)| classifier.accepts(fingerprint.as_slice()))
            .map(|(label, _)| label)
            .collect()
    }

    /// Whether type `label`'s classifier accepts the fingerprint.
    pub fn accepts(&self, label: usize, fingerprint: &FixedFingerprint) -> bool {
        self.classifiers[label].accepts(fingerprint.as_slice())
    }

    /// The acceptance vote fraction of type `label` for the fingerprint.
    pub fn confidence(&self, label: usize, fingerprint: &FixedFingerprint) -> f64 {
        // Bank classifiers are binary; a stack buffer keeps this
        // per-row query allocation-free.
        let mut proba = [0.0f64; 2];
        self.classifiers[label].predict_proba_into(fingerprint.as_slice(), &mut proba);
        proba[1]
    }

    /// Gini feature importances of type `label`'s classifier over the
    /// `n_features` dimensions of `F'`.
    pub fn classifier_importances(&self, label: usize, n_features: usize) -> Vec<f64> {
        self.classifiers[label].feature_importances(n_features)
    }
}

/// Copies the full fingerprint dataset into one dense design matrix
/// (the corpus every one-vs-rest view trains against).
fn corpus_of(dataset: &FingerprintDataset) -> Dataset {
    assert!(
        !dataset.is_empty(),
        "cannot train a classifier bank on an empty dataset"
    );
    let n_features = dataset.fixed(0).dimensions();
    let mut corpus = Dataset::with_capacity(n_features, dataset.len());
    for i in 0..dataset.len() {
        corpus.push(dataset.fixed(i).as_slice(), dataset.label(i));
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_devicesim::catalog;

    fn dataset() -> FingerprintDataset {
        // Three behaviourally distinct devices keep the test fast.
        let devices: Vec<_> = catalog().into_iter().take(3).collect();
        FingerprintDataset::collect(&devices, 8, 3)
    }

    fn fast_config() -> BankConfig {
        BankConfig {
            forest: ForestConfig::default().with_trees(25),
            ..BankConfig::default()
        }
    }

    #[test]
    fn distinct_types_accepted_by_own_classifier() {
        let data = dataset();
        let bank = ClassifierBank::train(&data, &fast_config());
        assert_eq!(bank.n_types(), 3);
        // Evaluate on the training data: distinct types must at minimum
        // separate there.
        let mut correct = 0;
        for i in 0..data.len() {
            let matches = bank.matches(data.fixed(i));
            if matches == vec![data.label(i)] {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / data.len() as f64 > 0.9,
            "only {correct}/{} cleanly matched",
            data.len()
        );
    }

    #[test]
    fn add_type_is_incremental() {
        let devices: Vec<_> = catalog().into_iter().take(4).collect();
        let three = FingerprintDataset::collect(&devices[..3], 8, 3);
        let four = FingerprintDataset::collect(&devices, 8, 3);
        let mut bank = ClassifierBank::train(&three, &fast_config());
        let before: Vec<_> = (0..3).map(|l| bank.confidence(l, four.fixed(0))).collect();
        let label = bank.add_type(devices[3].info.identifier, &four);
        assert_eq!(label, 3);
        assert_eq!(bank.n_types(), 4);
        let after: Vec<_> = (0..3).map(|l| bank.confidence(l, four.fixed(0))).collect();
        assert_eq!(before, after, "existing classifiers untouched");
        // The new classifier accepts its own type's training data.
        let new_idx = four.indices_of(3)[0];
        assert!(bank.accepts(3, four.fixed(new_idx)));
    }

    #[test]
    fn add_type_classifier_matches_full_retrain() {
        // The appended classifier must be bit-identical to the one a
        // full retrain on the extended dataset produces for that label:
        // its sampling and forest seeds derive from the label alone and
        // the corpus it bins is the same. (The *old* labels' classifiers
        // legitimately differ from a full retrain — their negative pools
        // grow with the new type's fingerprints — which is exactly the
        // incremental property: they are left untouched instead.)
        let devices: Vec<_> = catalog().into_iter().take(4).collect();
        let three = FingerprintDataset::collect(&devices[..3], 8, 3);
        let four = FingerprintDataset::collect(&devices, 8, 3);
        let mut incremental = ClassifierBank::train(&three, &fast_config());
        let label = incremental.add_type(devices[3].info.identifier, &four);
        let full = ClassifierBank::train(&four, &fast_config());
        assert_eq!(incremental.classifier(label), full.classifier(label));
        assert_eq!(incremental.type_names()[label], full.type_names()[label]);
    }

    #[test]
    fn confidence_in_unit_interval() {
        let data = dataset();
        let bank = ClassifierBank::train(&data, &fast_config());
        for i in 0..data.len() {
            for label in 0..bank.n_types() {
                let c = bank.confidence(label, data.fixed(i));
                assert!((0.0..=1.0).contains(&c));
            }
        }
    }

    #[test]
    fn training_is_deterministic() {
        let data = dataset();
        let a = ClassifierBank::train(&data, &fast_config());
        let b = ClassifierBank::train(&data, &fast_config());
        assert_eq!(a, b);
    }

    #[test]
    fn histogram_training_matches_exact_on_fingerprint_data() {
        // The histogram split search must reproduce the exact sorted-scan
        // reference bit-for-bit on real 276-dimensional `F'` data, at
        // every thread count (the bank trains through the histogram path).
        let data = dataset();
        let mut training = Dataset::new(data.fixed(0).dimensions());
        for i in 0..data.len() {
            training.push(data.fixed(i).as_slice(), data.label(i));
        }
        let config = ForestConfig::default().with_trees(25).with_threads(1);
        let exact = RandomForest::fit_exact(&training, &config);
        for threads in [1, 2, 8] {
            let binned = RandomForest::fit(&training, &config.clone().with_threads(threads));
            assert_eq!(exact, binned, "diverged at {threads} threads");
        }
    }

    #[test]
    fn trained_bank_is_identical_for_every_thread_count() {
        let data = dataset();
        let sequential = ClassifierBank::train(
            &data,
            &BankConfig {
                threads: 1,
                ..fast_config()
            },
        );
        for threads in [2, 8] {
            let parallel = ClassifierBank::train(
                &data,
                &BankConfig {
                    threads,
                    ..fast_config()
                },
            );
            // The configs differ in `threads` by construction; the
            // trained classifiers must not.
            for label in 0..sequential.n_types() {
                assert_eq!(
                    sequential.classifier(label),
                    parallel.classifier(label),
                    "label {label}, threads {threads}"
                );
            }
        }
    }
}
