//! Packet-column interning for fast edit-distance comparison.
//!
//! The OSA inner loop compares packet columns (23-feature
//! [`FeatureVector`]s) once per DP cell. Interning maps every distinct
//! column to a compact `u32` symbol id so the O(n·m) loop compares two
//! integers instead of two structs. Reference fingerprints are interned
//! once at training time; probes are projected against the frozen table
//! at identification time.

use std::collections::HashMap;

use crate::{FeatureVector, Fingerprint};

/// A fingerprint whose packet columns have been replaced by `u32`
/// symbol ids from a [`SymbolTable`].
///
/// Two interned fingerprints from the same table (or a table and its
/// [`SymbolTable::project`]ion) have equal symbols at a position iff the
/// original feature vectors are equal, so any distance over the symbol
/// slices equals the distance over the original vector slices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternedFingerprint {
    symbols: Vec<u32>,
}

impl InternedFingerprint {
    /// The symbol sequence, one id per packet column.
    pub fn symbols(&self) -> &[u32] {
        &self.symbols
    }

    /// The number of packet columns `n`.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Returns `true` if the fingerprint has no packets.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }
}

/// Bijective mapping from distinct [`FeatureVector`]s to dense `u32`
/// symbol ids.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    ids: HashMap<FeatureVector, u32>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// The number of distinct feature vectors interned so far.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns `true` if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Interns every packet column of `fingerprint`, growing the table
    /// with fresh ids for vectors not seen before.
    pub fn intern(&mut self, fingerprint: &Fingerprint) -> InternedFingerprint {
        let symbols = fingerprint
            .vectors()
            .iter()
            .map(|vector| {
                if let Some(&id) = self.ids.get(vector) {
                    id
                } else {
                    let id = u32::try_from(self.ids.len())
                        .expect("fewer than 2^32 distinct packet columns");
                    self.ids.insert(vector.clone(), id);
                    id
                }
            })
            .collect();
        InternedFingerprint { symbols }
    }

    /// Maps `fingerprint` onto this table *without* growing it: vectors
    /// already interned keep their id, unseen vectors get consistent
    /// fresh ids past the table (so they compare unequal to every
    /// interned symbol, and equal among themselves within this call).
    ///
    /// This is the identification-time path: probes are projected
    /// against the frozen training-time table, keeping `&self` so
    /// concurrent identifications need no locking.
    pub fn project(&self, fingerprint: &Fingerprint) -> InternedFingerprint {
        let mut symbols = Vec::with_capacity(fingerprint.len());
        self.project_into(fingerprint, &mut symbols);
        InternedFingerprint { symbols }
    }

    /// [`SymbolTable::project`] into a caller-owned symbol buffer,
    /// **appended** without clearing (the shared batch-entry contract:
    /// the caller owns and clears `out`, so steady-state projection
    /// reuses one allocation).
    ///
    /// The side table for unseen vectors is only materialized when a
    /// probe actually contains one — a probe of a known device type
    /// usually hits the frozen table for every column and projects
    /// without touching the heap.
    pub fn project_into(&self, fingerprint: &Fingerprint, out: &mut Vec<u32>) {
        let base = u32::try_from(self.ids.len()).expect("fewer than 2^32 distinct packet columns");
        let mut fresh: Option<HashMap<&FeatureVector, u32>> = None;
        out.extend(fingerprint.vectors().iter().map(|vector| {
            if let Some(&id) = self.ids.get(vector) {
                id
            } else {
                let fresh = fresh.get_or_insert_with(HashMap::new);
                let next = base + u32::try_from(fresh.len()).expect("fresh ids fit in u32");
                *fresh.entry(vector).or_insert(next)
            }
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::editdist::osa_distance;
    use sentinel_netproto::{MacAddr, Packet};

    fn vector(counter: u32) -> FeatureVector {
        FeatureVector::from_packet(&Packet::dhcp_discover(MacAddr::ZERO, 1, 0), counter)
    }

    fn fp(counters: &[u32]) -> Fingerprint {
        counters.iter().map(|&c| vector(c)).collect()
    }

    #[test]
    fn interning_preserves_equality_structure() {
        let mut table = SymbolTable::new();
        let a = table.intern(&fp(&[1, 2, 3, 2]));
        let b = table.intern(&fp(&[2, 1, 3]));
        assert_eq!(table.len(), 3, "three distinct columns");
        assert_eq!(a.symbols()[1], b.symbols()[0], "same vector, same id");
        assert_ne!(a.symbols()[0], b.symbols()[0]);
        assert_eq!(
            osa_distance(a.symbols(), b.symbols()),
            osa_distance(fp(&[1, 2, 3, 2]).vectors(), fp(&[2, 1, 3]).vectors())
        );
    }

    #[test]
    fn projection_does_not_grow_the_table() {
        let mut table = SymbolTable::new();
        let _ = table.intern(&fp(&[1, 2]));
        let before = table.len();
        let probe = table.project(&fp(&[2, 9, 8, 9]));
        assert_eq!(table.len(), before);
        // Seen vector keeps its id; unseen ones get fresh ids past the
        // table, consistent within the projection.
        assert!(probe.symbols()[0] < before as u32);
        assert!(probe.symbols()[1] >= before as u32);
        assert_eq!(
            probe.symbols()[1],
            probe.symbols()[3],
            "repeated unseen vector"
        );
        assert_ne!(probe.symbols()[1], probe.symbols()[2]);
    }

    #[test]
    fn projected_probe_distance_matches_vector_distance() {
        let mut table = SymbolTable::new();
        let reference = fp(&[1, 2, 3, 4, 5]);
        let interned = table.intern(&reference);
        let probe = fp(&[1, 9, 3, 4]);
        let projected = table.project(&probe);
        assert_eq!(
            osa_distance(projected.symbols(), interned.symbols()),
            osa_distance(probe.vectors(), reference.vectors())
        );
    }

    #[test]
    fn project_into_appends_without_clearing() {
        let mut table = SymbolTable::new();
        let _ = table.intern(&fp(&[1, 2]));
        let mut out = vec![99u32];
        table.project_into(&fp(&[2, 1]), &mut out);
        assert_eq!(out.len(), 3, "appended after the sentinel");
        assert_eq!(out[0], 99);
        assert_eq!(&out[1..], table.project(&fp(&[2, 1])).symbols());
    }

    #[test]
    fn empty_fingerprint_interns_empty() {
        let mut table = SymbolTable::new();
        let empty = table.intern(&Fingerprint::default());
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
        assert!(table.is_empty());
    }
}
