//! Classic pcap capture-file format (the format `tcpdump` writes).
//!
//! The paper's measurement setup recorded setup-phase traffic with
//! `tcpdump`; this module lets the reproduction both export simulated
//! setup captures and ingest real ones into the same pipeline.

use std::io::{Read, Write};

use crate::{Packet, ParseError, Timestamp};

const MAGIC_LE: u32 = 0xa1b2_c3d4;
const MAGIC_BE: u32 = 0xd4c3_b2a1;
const VERSION_MAJOR: u16 = 2;
const VERSION_MINOR: u16 = 4;
const LINKTYPE_ETHERNET: u32 = 1;
const SNAPLEN: u32 = 65535;

/// Writes packets to a pcap capture stream.
///
/// ```
/// use sentinel_netproto::pcap::{PcapReader, PcapWriter};
/// use sentinel_netproto::{MacAddr, Packet};
///
/// # fn main() -> Result<(), sentinel_netproto::ParseError> {
/// let mut buf = Vec::new();
/// let mut writer = PcapWriter::new(&mut buf)?;
/// writer.write_packet(&Packet::dhcp_discover(MacAddr::ZERO, 1, 0))?;
/// let mut reader = PcapReader::new(buf.as_slice())?;
/// let packet = reader.read_packet()?.expect("one packet");
/// assert_eq!(packet.ports(), Some((68, 67)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PcapWriter<W> {
    inner: W,
}

impl<W: Write> PcapWriter<W> {
    /// Creates a writer, emitting the pcap global header immediately.
    ///
    /// A `&mut W` also works wherever a `W: Write` is required.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Io`] if writing the header fails.
    pub fn new(mut inner: W) -> Result<Self, ParseError> {
        let mut header = Vec::with_capacity(24);
        header.extend_from_slice(&MAGIC_LE.to_le_bytes());
        header.extend_from_slice(&VERSION_MAJOR.to_le_bytes());
        header.extend_from_slice(&VERSION_MINOR.to_le_bytes());
        header.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        header.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        header.extend_from_slice(&SNAPLEN.to_le_bytes());
        header.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        inner.write_all(&header)?;
        Ok(PcapWriter { inner })
    }

    /// Writes one packet record.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Io`] if the underlying write fails.
    pub fn write_packet(&mut self, packet: &Packet) -> Result<(), ParseError> {
        self.write_raw(packet.timestamp, &packet.encode())
    }

    /// Writes a raw frame record.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Io`] if the underlying write fails.
    pub fn write_raw(&mut self, timestamp: Timestamp, frame: &[u8]) -> Result<(), ParseError> {
        let (secs, micros) = timestamp.to_pcap_parts();
        let mut record = Vec::with_capacity(16 + frame.len());
        record.extend_from_slice(&secs.to_le_bytes());
        record.extend_from_slice(&micros.to_le_bytes());
        record.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        record.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        record.extend_from_slice(frame);
        self.inner.write_all(&record)?;
        Ok(())
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Io`] if the flush fails.
    pub fn finish(mut self) -> Result<W, ParseError> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Reads packets from a pcap capture stream (either byte order).
#[derive(Debug)]
pub struct PcapReader<R> {
    inner: R,
    big_endian: bool,
}

impl<R: Read> PcapReader<R> {
    /// Creates a reader, consuming and validating the global header.
    ///
    /// A `&mut R` also works wherever an `R: Read` is required.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::BadPcapMagic`] for an unknown magic number,
    /// [`ParseError::Invalid`] for a non-Ethernet link type and
    /// [`ParseError::Io`] on read failure.
    pub fn new(mut inner: R) -> Result<Self, ParseError> {
        let mut header = [0u8; 24];
        inner.read_exact(&mut header)?;
        let magic = u32::from_le_bytes(header[0..4].try_into().expect("slice of 4"));
        let big_endian = match magic {
            MAGIC_LE => false,
            MAGIC_BE => true,
            other => return Err(ParseError::BadPcapMagic(other)),
        };
        let read_u32 = |bytes: &[u8]| {
            let arr: [u8; 4] = bytes.try_into().expect("slice of 4");
            if big_endian {
                u32::from_be_bytes(arr)
            } else {
                u32::from_le_bytes(arr)
            }
        };
        let linktype = read_u32(&header[20..24]);
        if linktype != LINKTYPE_ETHERNET {
            return Err(ParseError::invalid("pcap", format!("link type {linktype}")));
        }
        Ok(PcapReader { inner, big_endian })
    }

    /// Reads the next raw frame, or `None` at end of stream.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Io`] on a short or failed read mid-record.
    pub fn read_raw(&mut self) -> Result<Option<(Timestamp, Vec<u8>)>, ParseError> {
        let mut frame = Vec::new();
        Ok(self
            .read_raw_into(&mut frame)?
            .map(|timestamp| (timestamp, frame)))
    }

    /// Reads the next raw frame into `frame` (cleared and overwritten in
    /// place, reusing its capacity), returning its timestamp — or `None`
    /// at end of stream, leaving `frame` empty. This is the
    /// allocation-free replay path: after warm-up, a whole capture streams
    /// through one buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Io`] on a short or failed read mid-record.
    pub fn read_raw_into(&mut self, frame: &mut Vec<u8>) -> Result<Option<Timestamp>, ParseError> {
        frame.clear();
        let mut record = [0u8; 16];
        match self.inner.read_exact(&mut record) {
            Ok(()) => {}
            Err(err) if err.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(err) => return Err(err.into()),
        }
        let read_u32 = |bytes: &[u8]| {
            let arr: [u8; 4] = bytes.try_into().expect("slice of 4");
            if self.big_endian {
                u32::from_be_bytes(arr)
            } else {
                u32::from_le_bytes(arr)
            }
        };
        let secs = read_u32(&record[0..4]);
        let micros = read_u32(&record[4..8]);
        let incl_len = read_u32(&record[8..12]) as usize;
        frame.resize(incl_len, 0);
        self.inner.read_exact(frame)?;
        Ok(Some(Timestamp::from_pcap_parts(secs, micros)))
    }

    /// Reads and parses the next packet, or `None` at end of stream.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and packet [`ParseError`]s.
    pub fn read_packet(&mut self) -> Result<Option<Packet>, ParseError> {
        match self.read_raw()? {
            Some((timestamp, frame)) => Ok(Some(Packet::parse(&frame, timestamp)?)),
            None => Ok(None),
        }
    }

    /// Reads all remaining packets.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and packet [`ParseError`]s.
    pub fn read_all(&mut self) -> Result<Vec<Packet>, ParseError> {
        let mut packets = Vec::new();
        while let Some(packet) = self.read_packet()? {
            packets.push(packet);
        }
        Ok(packets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MacAddr;

    fn sample_packets() -> Vec<Packet> {
        let mac = MacAddr::new([1, 2, 3, 4, 5, 6]);
        vec![
            Packet::eapol_key(Timestamp::from_millis(1), mac, MacAddr::ZERO, 2),
            Packet::dhcp_discover(mac, 7, 150_000),
            Packet::arp_probe(
                Timestamp::from_millis(200),
                mac,
                "10.0.0.5".parse().unwrap(),
            ),
        ]
    }

    #[test]
    fn roundtrip_multiple_packets() {
        let packets = sample_packets();
        let mut buf = Vec::new();
        let mut writer = PcapWriter::new(&mut buf).unwrap();
        for packet in &packets {
            writer.write_packet(packet).unwrap();
        }
        writer.finish().unwrap();

        let mut reader = PcapReader::new(buf.as_slice()).unwrap();
        let read = reader.read_all().unwrap();
        assert_eq!(read, packets);
        assert!(reader.read_packet().unwrap().is_none(), "stream exhausted");
    }

    #[test]
    fn rejects_bad_magic() {
        let bytes = [0u8; 24];
        assert!(matches!(
            PcapReader::new(bytes.as_slice()).unwrap_err(),
            ParseError::BadPcapMagic(0)
        ));
    }

    #[test]
    fn reads_big_endian_captures() {
        // Hand-build a BE header + one empty... minimal ARP record.
        let packet = sample_packets().pop().unwrap();
        let frame = packet.encode();
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_LE.to_be_bytes()); // BE writer stores magic natively
        buf.extend_from_slice(&VERSION_MAJOR.to_be_bytes());
        buf.extend_from_slice(&VERSION_MINOR.to_be_bytes());
        buf.extend_from_slice(&0i32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&SNAPLEN.to_be_bytes());
        buf.extend_from_slice(&LINKTYPE_ETHERNET.to_be_bytes());
        let (secs, micros) = packet.timestamp.to_pcap_parts();
        buf.extend_from_slice(&secs.to_be_bytes());
        buf.extend_from_slice(&micros.to_be_bytes());
        buf.extend_from_slice(&(frame.len() as u32).to_be_bytes());
        buf.extend_from_slice(&(frame.len() as u32).to_be_bytes());
        buf.extend_from_slice(&frame);

        let mut reader = PcapReader::new(buf.as_slice()).unwrap();
        assert_eq!(reader.read_packet().unwrap().unwrap(), packet);
    }

    #[test]
    fn truncated_record_is_io_error() {
        let mut buf = Vec::new();
        let mut writer = PcapWriter::new(&mut buf).unwrap();
        writer.write_packet(&sample_packets()[0]).unwrap();
        writer.finish().unwrap();
        buf.truncate(buf.len() - 3);
        let mut reader = PcapReader::new(buf.as_slice()).unwrap();
        assert!(matches!(
            reader.read_packet().unwrap_err(),
            ParseError::Io(_)
        ));
    }

    #[test]
    fn rejects_non_ethernet_linktype() {
        let mut buf = Vec::new();
        PcapWriter::new(&mut buf).unwrap().finish().unwrap();
        buf[20] = 101; // LINKTYPE_RAW
        assert!(PcapReader::new(buf.as_slice()).is_err());
    }
}
