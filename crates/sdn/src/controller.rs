//! The Sentinel enforcement module of the SDN controller.
//!
//! This is the reproduction of the paper's "custom module for Floodlight
//! SDN controller" (Sect. V): it owns the enforcement-rule cache and
//! turns `(source device, destination)` pairs into per-flow verdicts
//! according to the device's isolation level and the overlay separation
//! rules of Fig. 3.

use std::net::{IpAddr, Ipv4Addr};

use sentinel_netproto::{MacAddr, Packet};

use crate::overlay::Overlay;
use crate::{EnforcementRule, IsolationLevel, RuleCache};

/// Where a flow is headed, from the gateway's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Destination {
    /// Another device in the local network.
    Device(MacAddr),
    /// A broadcast or multicast destination within the local network.
    LocalBroadcast,
    /// A remote (Internet) endpoint.
    Internet(IpAddr),
}

impl Destination {
    /// Classifies a packet's destination given the local IPv4 subnet
    /// (`prefix` address + mask length).
    pub fn of_packet(packet: &Packet, subnet: Ipv4Addr, mask_bits: u8) -> Destination {
        if packet.dst_mac().is_broadcast() || packet.dst_mac().is_multicast() {
            return Destination::LocalBroadcast;
        }
        match packet.dst_ip() {
            Some(IpAddr::V4(ip)) if !in_subnet(ip, subnet, mask_bits) && !ip.is_broadcast() => {
                Destination::Internet(IpAddr::V4(ip))
            }
            Some(IpAddr::V6(ip)) if !ip.is_loopback() && (ip.segments()[0] & 0xffc0) != 0xfe80 => {
                Destination::Internet(IpAddr::V6(ip))
            }
            _ => Destination::Device(packet.dst_mac()),
        }
    }
}

fn in_subnet(ip: Ipv4Addr, subnet: Ipv4Addr, mask_bits: u8) -> bool {
    let mask = if mask_bits == 0 {
        0
    } else {
        u32::MAX << (32 - mask_bits)
    };
    (u32::from(ip) & mask) == (u32::from(subnet) & mask)
}

/// Why a flow was denied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DenyReason {
    /// Source and destination devices live in different overlays.
    CrossOverlay,
    /// The source device has no Internet access.
    InternetBlocked,
    /// The remote endpoint is not on the restricted device's whitelist.
    EndpointNotPermitted,
}

/// The controller's decision for a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Forward the flow.
    Allow,
    /// Drop the flow.
    Deny(DenyReason),
}

impl Verdict {
    /// Returns `true` for [`Verdict::Allow`].
    pub fn is_allow(&self) -> bool {
        matches!(self, Verdict::Allow)
    }
}

/// The enforcement module: rule cache + decision logic.
///
/// Devices without a rule are treated according to the module's default
/// isolation level — [`IsolationLevel::Strict`], matching the paper's
/// "unknown devices will be assigned the level strict".
#[derive(Debug)]
pub struct EnforcementModule {
    cache: RuleCache,
    default_level: IsolationLevel,
}

impl Default for EnforcementModule {
    fn default() -> Self {
        EnforcementModule {
            cache: RuleCache::new(),
            default_level: IsolationLevel::Strict,
        }
    }
}

impl EnforcementModule {
    /// Creates a module with the paper's defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or replaces) a device's enforcement rule.
    pub fn install_rule(&mut self, rule: EnforcementRule) {
        self.cache.insert(rule);
    }

    /// Removes a device's rule (device left the network).
    pub fn remove_rule(&mut self, mac: MacAddr) -> Option<EnforcementRule> {
        self.cache.remove(mac)
    }

    /// Read access to the rule cache.
    pub fn cache(&self) -> &RuleCache {
        &self.cache
    }

    /// Mutable access to the rule cache (eviction policies, stats).
    pub fn cache_mut(&mut self) -> &mut RuleCache {
        &mut self.cache
    }

    /// The isolation level currently effective for `mac`.
    pub fn level_of(&self, mac: MacAddr) -> IsolationLevel {
        self.cache.get(mac).map_or(self.default_level, |r| r.level)
    }

    /// The overlay `mac` currently lives in.
    pub fn overlay_of(&self, mac: MacAddr) -> Overlay {
        Overlay::for_level(self.level_of(mac))
    }

    /// Decides whether a flow from `src` to `dst` is permitted.
    pub fn decide(&mut self, src: MacAddr, dst: Destination) -> Verdict {
        let src_level = self
            .cache
            .lookup(src)
            .map_or(self.default_level, |r| r.level);
        let src_overlay = Overlay::for_level(src_level);
        match dst {
            Destination::Device(dst_mac) => {
                let dst_overlay = self.overlay_of(dst_mac);
                if src_overlay.reachable(dst_overlay) {
                    Verdict::Allow
                } else {
                    Verdict::Deny(DenyReason::CrossOverlay)
                }
            }
            // Broadcast/multicast stays within the source's overlay by
            // construction (the switch only replicates to same-overlay
            // ports), so it is always permitted.
            Destination::LocalBroadcast => Verdict::Allow,
            Destination::Internet(ip) => match src_level {
                IsolationLevel::Trusted => Verdict::Allow,
                IsolationLevel::Strict => Verdict::Deny(DenyReason::InternetBlocked),
                IsolationLevel::Restricted => {
                    let permitted = self
                        .cache
                        .get(src)
                        .is_some_and(|rule| rule.permits_remote(ip));
                    if permitted {
                        Verdict::Allow
                    } else {
                        Verdict::Deny(DenyReason::EndpointNotPermitted)
                    }
                }
            },
        }
    }

    /// Decides a packet given the local subnet, classifying its
    /// destination first. This is the flow-granular path: on top of the
    /// endpoint decision it applies the rule's optional remote-port
    /// filter (Sect. III-C.2).
    pub fn decide_packet(&mut self, packet: &Packet, subnet: Ipv4Addr, mask_bits: u8) -> Verdict {
        let dst = Destination::of_packet(packet, subnet, mask_bits);
        let verdict = self.decide(packet.src_mac(), dst);
        if let (Verdict::Allow, Destination::Internet(_)) = (verdict, dst) {
            let port_ok = self
                .cache
                .get(packet.src_mac())
                .is_none_or(|rule| rule.permits_remote_port(packet.dst_port()));
            if !port_ok {
                return Verdict::Deny(DenyReason::EndpointNotPermitted);
            }
        }
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(last: u8) -> MacAddr {
        MacAddr::new([0, 0, 0, 0, 1, last])
    }

    fn module() -> EnforcementModule {
        let mut m = EnforcementModule::new();
        m.install_rule(EnforcementRule::trusted(mac(1)));
        m.install_rule(EnforcementRule::strict(mac(2)));
        m.install_rule(EnforcementRule::restricted(
            mac(3),
            ["52.29.100.7".parse().unwrap()],
        ));
        m
    }

    #[test]
    fn trusted_reaches_internet_and_trusted_devices() {
        let mut m = module();
        assert!(m
            .decide(mac(1), Destination::Internet("8.8.8.8".parse().unwrap()))
            .is_allow());
        assert!(m.decide(mac(1), Destination::Device(mac(1))).is_allow());
    }

    #[test]
    fn strict_blocked_from_internet_and_trusted_overlay() {
        let mut m = module();
        assert_eq!(
            m.decide(mac(2), Destination::Internet("8.8.8.8".parse().unwrap())),
            Verdict::Deny(DenyReason::InternetBlocked)
        );
        assert_eq!(
            m.decide(mac(2), Destination::Device(mac(1))),
            Verdict::Deny(DenyReason::CrossOverlay)
        );
    }

    #[test]
    fn strict_and_restricted_share_untrusted_overlay() {
        let mut m = module();
        assert!(m.decide(mac(2), Destination::Device(mac(3))).is_allow());
        assert!(m.decide(mac(3), Destination::Device(mac(2))).is_allow());
    }

    #[test]
    fn restricted_reaches_only_whitelisted_endpoints() {
        let mut m = module();
        assert!(m
            .decide(
                mac(3),
                Destination::Internet("52.29.100.7".parse().unwrap())
            )
            .is_allow());
        assert_eq!(
            m.decide(mac(3), Destination::Internet("8.8.8.8".parse().unwrap())),
            Verdict::Deny(DenyReason::EndpointNotPermitted)
        );
    }

    #[test]
    fn unknown_devices_default_to_strict() {
        let mut m = module();
        assert_eq!(m.level_of(mac(9)), IsolationLevel::Strict);
        assert_eq!(
            m.decide(mac(9), Destination::Device(mac(1))),
            Verdict::Deny(DenyReason::CrossOverlay)
        );
        assert!(m.decide(mac(9), Destination::Device(mac(2))).is_allow());
    }

    #[test]
    fn trusted_cannot_reach_untrusted_overlay() {
        // Network isolation protects untrusted devices from probing too —
        // the overlays are "strictly separated" (Sect. VIII-A).
        let mut m = module();
        assert_eq!(
            m.decide(mac(1), Destination::Device(mac(2))),
            Verdict::Deny(DenyReason::CrossOverlay)
        );
    }

    #[test]
    fn destination_classification() {
        let subnet = Ipv4Addr::new(192, 168, 0, 0);
        let device = Packet::dhcp_discover(mac(5), 1, 0);
        assert_eq!(
            Destination::of_packet(&device, subnet, 24),
            Destination::LocalBroadcast
        );
        let remote = Packet::udp_ipv4(
            sentinel_netproto::Timestamp::ZERO,
            mac(5),
            mac(0),
            Ipv4Addr::new(192, 168, 0, 30),
            Ipv4Addr::new(52, 29, 100, 7),
            50000,
            443,
            sentinel_netproto::AppPayload::Empty,
        );
        assert_eq!(
            Destination::of_packet(&remote, subnet, 24),
            Destination::Internet("52.29.100.7".parse().unwrap())
        );
        let local = Packet::udp_ipv4(
            sentinel_netproto::Timestamp::ZERO,
            mac(5),
            mac(6),
            Ipv4Addr::new(192, 168, 0, 30),
            Ipv4Addr::new(192, 168, 0, 31),
            50000,
            80,
            sentinel_netproto::AppPayload::Empty,
        );
        assert_eq!(
            Destination::of_packet(&local, subnet, 24),
            Destination::Device(mac(6))
        );
    }

    #[test]
    fn port_filter_enforced_at_flow_granularity() {
        let mut m = EnforcementModule::new();
        let cloud: Ipv4Addr = "52.29.100.7".parse().unwrap();
        m.install_rule(
            EnforcementRule::restricted(mac(4), [std::net::IpAddr::V4(cloud)])
                .with_port_filter([443]),
        );
        let subnet = Ipv4Addr::new(192, 168, 0, 0);
        let packet_to = |port: u16| {
            Packet::udp_ipv4(
                sentinel_netproto::Timestamp::ZERO,
                mac(4),
                mac(0),
                Ipv4Addr::new(192, 168, 0, 30),
                cloud,
                50000,
                port,
                sentinel_netproto::AppPayload::Empty,
            )
        };
        assert!(m.decide_packet(&packet_to(443), subnet, 24).is_allow());
        assert_eq!(
            m.decide_packet(&packet_to(23), subnet, 24),
            Verdict::Deny(DenyReason::EndpointNotPermitted),
            "telnet to the cloud endpoint is filtered out"
        );
    }

    #[test]
    fn rule_replacement_changes_verdict() {
        let mut m = module();
        assert!(!m
            .decide(mac(2), Destination::Internet("1.1.1.1".parse().unwrap()))
            .is_allow());
        m.install_rule(EnforcementRule::trusted(mac(2)));
        assert!(m
            .decide(mac(2), Destination::Internet("1.1.1.1".parse().unwrap()))
            .is_allow());
    }
}
