//! Packet-stream abstraction for continuous capture ingestion.
//!
//! The batch pipeline reads a whole capture into a `Vec<Packet>` before
//! doing anything with it. Streaming consumers (the `sentinel-stream`
//! onboarding runtime) instead pull packets one at a time through
//! [`PacketSource`], so a multi-gigabyte capture — or a live tap — never
//! has to be resident in memory. [`PcapReader`](crate::pcap::PcapReader)
//! implements the trait directly, and [`MemorySource`] adapts an
//! in-memory packet list (e.g. a simulated interleaved workload).

use std::io::Read;

use crate::pcap::PcapReader;
use crate::{Packet, ParseError, Timestamp};

/// A pull-based source of capture packets in timestamp order.
///
/// Implementations yield `Ok(None)` exactly once, at end of stream;
/// callers must not poll past it.
pub trait PacketSource {
    /// Produces the next packet, or `None` when the stream is exhausted.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] if the underlying capture is truncated
    /// or malformed.
    fn next_packet(&mut self) -> Result<Option<Packet>, ParseError>;

    /// Drains up to `max` packets into `buf` (appended), returning how
    /// many were read. A return of `0` with an empty error means end of
    /// stream.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ParseError`] from [`Self::next_packet`];
    /// packets read before the error remain in `buf`.
    fn fill_batch(&mut self, buf: &mut Vec<Packet>, max: usize) -> Result<usize, ParseError> {
        let mut read = 0;
        while read < max {
            match self.next_packet()? {
                Some(packet) => {
                    buf.push(packet);
                    read += 1;
                }
                None => break,
            }
        }
        Ok(read)
    }
}

impl<R: Read> PacketSource for PcapReader<R> {
    fn next_packet(&mut self) -> Result<Option<Packet>, ParseError> {
        self.read_packet()
    }
}

impl<S: PacketSource + ?Sized> PacketSource for &mut S {
    fn next_packet(&mut self) -> Result<Option<Packet>, ParseError> {
        (**self).next_packet()
    }
}

/// A [`PacketSource`] over an in-memory packet list, in order.
///
/// ```
/// use sentinel_netproto::stream::{MemorySource, PacketSource};
/// use sentinel_netproto::{MacAddr, Packet};
///
/// let mut source = MemorySource::new(vec![Packet::dhcp_discover(MacAddr::ZERO, 1, 0)]);
/// assert!(source.next_packet().unwrap().is_some());
/// assert!(source.next_packet().unwrap().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct MemorySource {
    packets: std::vec::IntoIter<Packet>,
}

impl MemorySource {
    /// Creates a source that yields `packets` front to back.
    pub fn new(packets: Vec<Packet>) -> Self {
        MemorySource {
            packets: packets.into_iter(),
        }
    }

    /// Packets not yet yielded.
    pub fn remaining(&self) -> usize {
        self.packets.len()
    }
}

impl PacketSource for MemorySource {
    fn next_packet(&mut self) -> Result<Option<Packet>, ParseError> {
        Ok(self.packets.next())
    }
}

/// A pull-based source of timestamped **raw frames** in capture order.
///
/// This is the zero-copy counterpart of [`PacketSource`]: consumers that
/// only need Table I features (the streaming onboarding runtime) take the
/// undecoded bytes and run the wire scanner
/// ([`crate::WireScan`]) over them, so the hot path never builds a
/// [`Packet`]. Frames are *not* validated here — a malformed frame is the
/// consumer's decision (the runtime counts and skips it).
pub trait FrameSource {
    /// Produces the next raw frame, or `None` at end of stream.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] if the underlying capture container
    /// (e.g. a pcap record header) is truncated — frame *contents* are
    /// never inspected.
    fn next_frame(&mut self) -> Result<Option<(Timestamp, Vec<u8>)>, ParseError>;

    /// Produces the next raw frame into `frame` (cleared and overwritten,
    /// reusing its capacity where the source supports it), returning the
    /// frame's timestamp — or `None` at end of stream.
    ///
    /// The default moves [`Self::next_frame`]'s buffer into `frame`;
    /// file-backed sources override it to read in place
    /// ([`PcapReader::read_raw_into`]), making replay allocation-free.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::next_frame`].
    fn next_frame_into(&mut self, frame: &mut Vec<u8>) -> Result<Option<Timestamp>, ParseError> {
        match self.next_frame()? {
            Some((timestamp, bytes)) => {
                *frame = bytes;
                Ok(Some(timestamp))
            }
            None => {
                frame.clear();
                Ok(None)
            }
        }
    }

    /// Drains up to `max` frames into `buf` (appended), returning how
    /// many were read. A return of `0` means end of stream.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ParseError`] from [`Self::next_frame`];
    /// frames read before the error remain in `buf`.
    fn fill_frames(
        &mut self,
        buf: &mut Vec<(Timestamp, Vec<u8>)>,
        max: usize,
    ) -> Result<usize, ParseError> {
        let mut read = 0;
        while read < max {
            match self.next_frame()? {
                Some(frame) => {
                    buf.push(frame);
                    read += 1;
                }
                None => break,
            }
        }
        Ok(read)
    }

    /// Like [`Self::fill_frames`], but **overwrites** `buf` in place —
    /// each retained slot's `Vec<u8>` keeps its capacity and is refilled
    /// through [`Self::next_frame_into`], then `buf` is truncated to the
    /// number of frames read. Batch replay loops that call this with the
    /// same `buf` every round stop allocating once the buffers have
    /// grown to the capture's frame sizes.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ParseError`]; frames read before the error
    /// remain in `buf` (truncated to exactly those).
    fn refill_frames(
        &mut self,
        buf: &mut Vec<(Timestamp, Vec<u8>)>,
        max: usize,
    ) -> Result<usize, ParseError> {
        let mut read = 0;
        let result = loop {
            if read >= max {
                break Ok(read);
            }
            if read < buf.len() {
                let (slot_ts, slot) = &mut buf[read];
                match self.next_frame_into(slot) {
                    Ok(Some(timestamp)) => {
                        *slot_ts = timestamp;
                        read += 1;
                    }
                    Ok(None) => break Ok(read),
                    Err(err) => break Err(err),
                }
            } else {
                let mut frame = Vec::new();
                match self.next_frame_into(&mut frame) {
                    Ok(Some(timestamp)) => {
                        buf.push((timestamp, frame));
                        read += 1;
                    }
                    Ok(None) => break Ok(read),
                    Err(err) => break Err(err),
                }
            }
        };
        buf.truncate(read);
        result
    }
}

impl<R: Read> FrameSource for PcapReader<R> {
    fn next_frame(&mut self) -> Result<Option<(Timestamp, Vec<u8>)>, ParseError> {
        self.read_raw()
    }

    fn next_frame_into(&mut self, frame: &mut Vec<u8>) -> Result<Option<Timestamp>, ParseError> {
        self.read_raw_into(frame)
    }
}

impl<S: FrameSource + ?Sized> FrameSource for &mut S {
    fn next_frame(&mut self) -> Result<Option<(Timestamp, Vec<u8>)>, ParseError> {
        (**self).next_frame()
    }

    fn next_frame_into(&mut self, frame: &mut Vec<u8>) -> Result<Option<Timestamp>, ParseError> {
        (**self).next_frame_into(frame)
    }
}

/// A [`FrameSource`] over an in-memory frame list, in order.
#[derive(Debug, Clone)]
pub struct MemoryFrameSource {
    frames: std::vec::IntoIter<(Timestamp, Vec<u8>)>,
}

impl MemoryFrameSource {
    /// Creates a source that yields `frames` front to back.
    pub fn new(frames: Vec<(Timestamp, Vec<u8>)>) -> Self {
        MemoryFrameSource {
            frames: frames.into_iter(),
        }
    }

    /// Encodes `packets` to wire frames up front (outside any measured
    /// hot path) and serves them.
    pub fn from_packets(packets: &[Packet]) -> Self {
        MemoryFrameSource::new(packets.iter().map(|p| (p.timestamp, p.encode())).collect())
    }

    /// Frames not yet yielded.
    pub fn remaining(&self) -> usize {
        self.frames.len()
    }
}

impl FrameSource for MemoryFrameSource {
    fn next_frame(&mut self) -> Result<Option<(Timestamp, Vec<u8>)>, ParseError> {
        Ok(self.frames.next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcap::PcapWriter;
    use crate::MacAddr;

    fn sample() -> Vec<Packet> {
        let mac = MacAddr::new([9, 8, 7, 6, 5, 4]);
        (0..5)
            .map(|i| Packet::dhcp_discover(mac, i, u64::from(i) * 1000))
            .collect()
    }

    #[test]
    fn memory_source_yields_in_order_then_none() {
        let packets = sample();
        let mut source = MemorySource::new(packets.clone());
        for expected in &packets {
            assert_eq!(source.next_packet().unwrap().as_ref(), Some(expected));
        }
        assert!(source.next_packet().unwrap().is_none());
        assert_eq!(source.remaining(), 0);
    }

    #[test]
    fn pcap_reader_is_a_source() {
        let packets = sample();
        let mut buf = Vec::new();
        let mut writer = PcapWriter::new(&mut buf).unwrap();
        for packet in &packets {
            writer.write_packet(packet).unwrap();
        }
        writer.finish().unwrap();
        let mut reader = PcapReader::new(buf.as_slice()).unwrap();
        let mut out = Vec::new();
        while let Some(packet) = reader.next_packet().unwrap() {
            out.push(packet);
        }
        assert_eq!(out, packets);
    }

    #[test]
    fn fill_batch_respects_max_and_eof() {
        let mut source = MemorySource::new(sample());
        let mut buf = Vec::new();
        assert_eq!(source.fill_batch(&mut buf, 3).unwrap(), 3);
        assert_eq!(source.fill_batch(&mut buf, 3).unwrap(), 2);
        assert_eq!(source.fill_batch(&mut buf, 3).unwrap(), 0);
        assert_eq!(buf.len(), 5);
    }

    #[test]
    fn memory_frame_source_yields_encoded_frames_in_order() {
        let packets = sample();
        let mut source = MemoryFrameSource::from_packets(&packets);
        for expected in &packets {
            let (ts, frame) = source.next_frame().unwrap().unwrap();
            assert_eq!(ts, expected.timestamp);
            assert_eq!(frame, expected.encode());
        }
        assert!(source.next_frame().unwrap().is_none());
        assert_eq!(source.remaining(), 0);
    }

    fn pcap_of(packets: &[Packet]) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut writer = PcapWriter::new(&mut buf).unwrap();
        for packet in packets {
            writer.write_packet(packet).unwrap();
        }
        writer.finish().unwrap();
        buf
    }

    #[test]
    fn refill_frames_reuses_buffers_and_matches_fill_frames() {
        let packets = sample();
        let capture = pcap_of(&packets);
        // Reference: plain fill_frames over the whole capture.
        let mut expected = Vec::new();
        PcapReader::new(capture.as_slice())
            .unwrap()
            .fill_frames(&mut expected, usize::MAX)
            .unwrap();
        // Refill in rounds of 2 into one reused batch.
        let mut reader = PcapReader::new(capture.as_slice()).unwrap();
        let mut batch = Vec::new();
        let mut streamed = Vec::new();
        loop {
            if reader.refill_frames(&mut batch, 2).unwrap() == 0 {
                break;
            }
            assert!(batch.len() <= 2);
            streamed.extend(batch.iter().cloned());
        }
        assert_eq!(streamed, expected);
        assert!(batch.is_empty(), "final refill truncates to zero");
    }

    #[test]
    fn next_frame_into_reads_in_place_without_reallocating() {
        let packets = sample();
        let capture = pcap_of(&packets);
        let mut reader = PcapReader::new(capture.as_slice()).unwrap();
        let mut frame = Vec::new();
        let ts = reader.next_frame_into(&mut frame).unwrap().unwrap();
        assert_eq!(ts, packets[0].timestamp);
        assert_eq!(frame, packets[0].encode());
        // All sample frames are the same size: the buffer must be reused,
        // not regrown.
        let capacity = frame.capacity();
        for expected in &packets[1..] {
            let ts = reader.next_frame_into(&mut frame).unwrap().unwrap();
            assert_eq!(ts, expected.timestamp);
            assert_eq!(frame, expected.encode());
            assert_eq!(frame.capacity(), capacity, "in-place read reallocated");
        }
        assert!(reader.next_frame_into(&mut frame).unwrap().is_none());
        assert!(frame.is_empty());
    }

    #[test]
    fn pcap_reader_is_a_frame_source() {
        let packets = sample();
        let mut buf = Vec::new();
        let mut writer = PcapWriter::new(&mut buf).unwrap();
        for packet in &packets {
            writer.write_packet(packet).unwrap();
        }
        writer.finish().unwrap();
        let mut reader = PcapReader::new(buf.as_slice()).unwrap();
        let mut frames = Vec::new();
        assert_eq!(reader.fill_frames(&mut frames, 16).unwrap(), 5);
        for (packet, (ts, frame)) in packets.iter().zip(&frames) {
            assert_eq!(*ts, packet.timestamp);
            assert_eq!(*frame, packet.encode());
        }
    }
}
