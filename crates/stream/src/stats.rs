//! Observability counters for the streaming onboarding runtime.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::session::CompletionReason;

/// Aggregate counters of one streaming run.
///
/// Everything a capacity-planning dashboard needs: how much traffic went
/// through, how many device setups were tracked concurrently (and how
/// many the bounded table had to shed), and how the completed
/// onboardings split across identification outcomes and isolation
/// levels.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Packets consumed from the source.
    pub packets_in: u64,
    /// Packets skipped: ignored MACs or devices already onboarded.
    pub packets_ignored: u64,
    /// Raw frames the frame-ingest path dropped because even the lenient
    /// decoder would reject them. Always zero on the decoded-packet path.
    pub frames_malformed: u64,
    /// Raw frames the wire scanner could not certify (`NeedsDecode`)
    /// that fell back to the full decoder. Always zero on the
    /// decoded-packet path; the fleet soak asserts it stays zero on the
    /// frame path too.
    pub frames_decoded: u64,
    /// Sessions opened (a shed device re-opening counts again).
    pub sessions_opened: u64,
    /// Sessions that reached identification, by completion reason.
    pub completed_idle_gap: u64,
    /// See [`StreamStats::completed_idle_gap`].
    pub completed_packet_cap: u64,
    /// See [`StreamStats::completed_idle_gap`].
    pub completed_byte_cap: u64,
    /// Sessions finalized by the end-of-stream flush.
    pub completed_flush: u64,
    /// Sessions shed by the bounded table's LRU overflow policy.
    pub sessions_evicted: u64,
    /// Highest number of concurrently resident sessions observed.
    pub peak_resident_sessions: usize,
    /// Completed onboardings whose device-type was identified.
    pub identified: u64,
    /// Completed onboardings rejected by every classifier.
    pub unknown: u64,
    /// Onboardings that landed in strict isolation.
    pub strict: u64,
    /// Onboardings that landed in restricted isolation.
    pub restricted: u64,
    /// Onboardings that landed in trusted isolation.
    pub trusted: u64,
}

impl StreamStats {
    /// Total sessions that reached identification.
    pub fn sessions_completed(&self) -> u64 {
        self.completed_idle_gap
            + self.completed_packet_cap
            + self.completed_byte_cap
            + self.completed_flush
    }

    /// Records one completion reason.
    pub(crate) fn record_completion(&mut self, reason: CompletionReason) {
        match reason {
            CompletionReason::IdleGap => self.completed_idle_gap += 1,
            CompletionReason::PacketCap => self.completed_packet_cap += 1,
            CompletionReason::ByteCap => self.completed_byte_cap += 1,
            CompletionReason::Flush => self.completed_flush += 1,
        }
    }
}

impl fmt::Display for StreamStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} packets in ({} ignored, {} malformed, {} decode-fallback); {} sessions opened, {} completed \
             (gap {}, packet-cap {}, byte-cap {}, flush {}), {} shed, peak {} resident; \
             outcomes: {} identified / {} unknown; isolation: {} strict / {} restricted / {} trusted",
            self.packets_in,
            self.packets_ignored,
            self.frames_malformed,
            self.frames_decoded,
            self.sessions_opened,
            self.sessions_completed(),
            self.completed_idle_gap,
            self.completed_packet_cap,
            self.completed_byte_cap,
            self.completed_flush,
            self.sessions_evicted,
            self.peak_resident_sessions,
            self.identified,
            self.unknown,
            self.strict,
            self.restricted,
            self.trusted,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_reasons_sum() {
        let mut stats = StreamStats::default();
        stats.record_completion(CompletionReason::IdleGap);
        stats.record_completion(CompletionReason::Flush);
        stats.record_completion(CompletionReason::Flush);
        assert_eq!(stats.sessions_completed(), 3);
        assert_eq!(stats.completed_flush, 2);
    }

    #[test]
    fn display_mentions_the_load_bearing_numbers() {
        let stats = StreamStats {
            packets_in: 1234,
            sessions_evicted: 7,
            peak_resident_sessions: 42,
            ..StreamStats::default()
        };
        let text = stats.to_string();
        assert!(text.contains("1234 packets"));
        assert!(text.contains("7 shed"));
        assert!(text.contains("peak 42"));
    }
}
