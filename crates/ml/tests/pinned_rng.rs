//! The v2 pinned RNG contract (`sentinel_ml::pinned`): a checked-in
//! reference stream freezes the exact outputs, and property tests pin
//! the algorithmic shape (draw counts, ranges, sampling order).
//!
//! If `reference_stream_is_pinned` fails, the generator's semantics
//! changed: every decision keyed through [`PinnedRng`] (streaming
//! assessment, discrimination tie-breaks) changes with it. That is a
//! deliberate contract break — update `data/pinned_rng_v2.txt` with the
//! printed actual text and say so in the changelog.

use proptest::prelude::*;

use sentinel_ml::pinned::PinnedRng;

/// Renders the canonical reference stream: for each probe key, eight
/// raw draws, five bounded draws and one 4-of-12 sample, all from a
/// freshly keyed generator per line.
fn render_reference_stream() -> String {
    let keys: [(u64, u64, u64); 6] = [
        (0, 0, 0),
        (0, 0, 1),
        (0, 1, 0),
        (42, 0, 0x0a1b_2c3d_4e5f),
        (42, 7, 0x0a1b_2c3d_4e5f),
        (0xdead_beef, u64::MAX, u64::MAX),
    ];
    let mut out = String::from(
        "# pinned RNG contract v2 reference stream\n\
         # line format: seed/key_hi/key_lo | next_u64 x8 | next_below(10,100,7,1000,3) | sample_k(0..12, 4)\n",
    );
    for (seed, hi, lo) in keys {
        let mut rng = PinnedRng::from_key(seed, hi, lo);
        let raw: Vec<String> = (0..8).map(|_| format!("{:016x}", rng.next_u64())).collect();
        let mut rng = PinnedRng::from_key(seed, hi, lo);
        let below: Vec<String> = [10u64, 100, 7, 1000, 3]
            .iter()
            .map(|&n| rng.next_below(n).to_string())
            .collect();
        let mut rng = PinnedRng::from_key(seed, hi, lo);
        let pool: Vec<usize> = (0..12).collect();
        let sample: Vec<String> = rng
            .sample_k(&pool, 4)
            .iter()
            .map(usize::to_string)
            .collect();
        out.push_str(&format!(
            "{seed}/{hi}/{lo} | {} | {} | {}\n",
            raw.join(" "),
            below.join(" "),
            sample.join(" ")
        ));
    }
    out
}

#[test]
fn reference_stream_is_pinned() {
    let expected = include_str!("data/pinned_rng_v2.txt");
    let actual = render_reference_stream();
    assert_eq!(
        actual, expected,
        "the pinned RNG contract changed; if intentional, re-pin \
         data/pinned_rng_v2.txt to this actual stream:\n{actual}"
    );
}

/// Naive restatement of the pinned sampling algorithm, kept independent
/// of the implementation: partial Fisher–Yates, one bounded draw per
/// selected slot.
fn naive_sample(seed: u64, hi: u64, lo: u64, n: usize, k: usize) -> Vec<usize> {
    let mut rng = PinnedRng::from_key(seed, hi, lo);
    let mut items: Vec<usize> = (0..n).collect();
    let k = k.min(n);
    for i in 0..k {
        let j = i + rng.index(n - i);
        items.swap(i, j);
    }
    items.truncate(k);
    items
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The stream is a pure function of `(seed, key)`: rebuilding the
    /// generator replays it exactly, and draws never depend on what any
    /// other generator did.
    #[test]
    fn keyed_streams_replay_exactly(seed in any::<u64>(), hi in any::<u64>(), lo in any::<u64>()) {
        let mut first = PinnedRng::from_key(seed, hi, lo);
        // An unrelated generator draws in between: no shared state.
        let mut noise = PinnedRng::from_key(seed ^ 1, hi, lo);
        let a: Vec<u64> = (0..16).map(|_| first.next_u64()).collect();
        let _ = noise.next_u64();
        let mut second = PinnedRng::from_key(seed, hi, lo);
        let b: Vec<u64> = (0..16).map(|_| second.next_u64()).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn bounded_draws_stay_in_range(seed in any::<u64>(), hi in any::<u64>(), lo in any::<u64>(), n in 1u64..1_000_000) {
        let mut rng = PinnedRng::from_key(seed, hi, lo);
        for _ in 0..32 {
            prop_assert!(rng.next_below(n) < n);
        }
    }

    /// `sample_k` is the pinned partial Fisher–Yates: it matches the
    /// naive restatement draw for draw, returns distinct in-range
    /// elements, and consumes exactly `min(k, n)` draws.
    #[test]
    fn sample_k_is_the_pinned_partial_fisher_yates(
        seed in any::<u64>(), hi in any::<u64>(), lo in any::<u64>(),
        n in 1usize..64, k in 0usize..80,
    ) {
        let pool: Vec<usize> = (0..n).collect();
        let mut rng = PinnedRng::from_key(seed, hi, lo);
        let sample = rng.sample_k(&pool, k);
        prop_assert_eq!(&sample, &naive_sample(seed, hi, lo, n, k));
        let took = k.min(n);
        prop_assert_eq!(sample.len(), took);
        let distinct: std::collections::HashSet<_> = sample.iter().collect();
        prop_assert_eq!(distinct.len(), took);
        prop_assert!(sample.iter().all(|&i| i < n));
        // Draw accounting: the sampler's end state equals `took` raw draws.
        let mut counter = PinnedRng::from_key(seed, hi, lo);
        for _ in 0..took {
            counter.next_u64();
        }
        prop_assert_eq!(rng, counter);
    }

    /// `sample_step` is the lazy form of the same pinned contract:
    /// iterating it slot by slot replays `sample_k`'s prefix draw for
    /// draw (one draw per step, identical end state). Training's
    /// per-node candidate subsampling rides on this — its draw stream
    /// is `sample_k`'s, stopped wherever the candidate budget fills.
    #[test]
    fn sample_step_replays_the_sample_k_prefix(
        seed in any::<u64>(), hi in any::<u64>(), lo in any::<u64>(),
        n in 1usize..64, k in 0usize..80,
    ) {
        let pool: Vec<usize> = (0..n).collect();
        let mut reference = PinnedRng::from_key(seed, hi, lo);
        let sample = reference.sample_k(&pool, k);
        let mut rng = PinnedRng::from_key(seed, hi, lo);
        let mut items = pool.clone();
        let mut stepped = Vec::new();
        for i in 0..k.min(n) {
            stepped.push(rng.sample_step(&mut items, i));
        }
        prop_assert_eq!(&stepped, &sample);
        prop_assert_eq!(rng, reference, "identical draw accounting");
    }
}
