//! Shared bench-results JSON output.
//!
//! Every bench target that records machine-readable results writes
//! them through here, so the `results/*.json` artifacts share one
//! shape discipline (ordered keys, two-space indentation, trailing
//! newline) and one announcement line on stdout. The builder is
//! deliberately tiny — ordered key/value pairs with pre-rendered
//! values — because bench output is write-only JSON: nothing in this
//! workspace parses it back.

use std::fmt::Write as _;
use std::path::Path;

/// An insertion-ordered JSON object under construction.
#[derive(Debug, Default, Clone)]
pub struct JsonMap {
    entries: Vec<(String, String)>,
}

impl JsonMap {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a pre-rendered JSON value (use for numbers formatted to a
    /// specific precision, arrays, or inline objects).
    pub fn raw(mut self, key: &str, value: impl Into<String>) -> Self {
        self.entries.push((key.to_owned(), value.into()));
        self
    }

    /// Adds a string value, escaping it.
    pub fn string(self, key: &str, value: &str) -> Self {
        let mut escaped = String::with_capacity(value.len() + 2);
        escaped.push('"');
        for c in value.chars() {
            match c {
                '"' => escaped.push_str("\\\""),
                '\\' => escaped.push_str("\\\\"),
                '\n' => escaped.push_str("\\n"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(escaped, "\\u{:04x}", c as u32);
                }
                c => escaped.push(c),
            }
        }
        escaped.push('"');
        self.raw(key, escaped)
    }

    /// Adds an integer value.
    pub fn int(self, key: &str, value: u64) -> Self {
        self.raw(key, value.to_string())
    }

    /// Adds a float value with millisecond-bench precision (4 decimal
    /// places).
    pub fn float(self, key: &str, value: f64) -> Self {
        self.raw(key, format!("{value:.4}"))
    }

    /// Adds a nested object.
    pub fn nested(self, key: &str, value: JsonMap) -> Self {
        let rendered = value.render_indented(1);
        self.raw(key, rendered)
    }

    fn render_indented(&self, level: usize) -> String {
        if self.entries.is_empty() {
            return "{}".to_owned();
        }
        let pad = "  ".repeat(level + 1);
        let body: Vec<String> = self
            .entries
            .iter()
            .map(|(key, value)| format!("{pad}\"{key}\": {value}"))
            .collect();
        format!("{{\n{}\n{}}}", body.join(",\n"), "  ".repeat(level))
    }

    /// Renders the object as pretty-printed JSON with a trailing
    /// newline.
    pub fn render(&self) -> String {
        let mut out = self.render_indented(0);
        out.push('\n');
        out
    }
}

/// Writes pre-rendered bench JSON to `path`, creating parent
/// directories as needed, and announces the artifact on stdout.
///
/// # Panics
///
/// Panics if the file cannot be written — a bench run whose results
/// vanish silently is worse than one that aborts.
pub fn write_json(path: &str, json: &str) {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .unwrap_or_else(|e| panic!("cannot create {parent:?}: {e}"));
        }
    }
    std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
    println!("\nBENCH JSON written to {path}");
}

/// Renders and writes a [`JsonMap`] to `path` (see [`write_json`]).
pub fn write_map(path: &str, map: &JsonMap) {
    write_json(path, &map.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_ordered_nested_json() {
        let json = JsonMap::new()
            .string("bench", "demo")
            .int("iterations", 3)
            .float("mean_ms", 1.25)
            .nested("inner", JsonMap::new().int("a", 1).string("b", "x\"y"))
            .render();
        assert_eq!(
            json,
            "{\n  \"bench\": \"demo\",\n  \"iterations\": 3,\n  \"mean_ms\": 1.2500,\n  \
             \"inner\": {\n    \"a\": 1,\n    \"b\": \"x\\\"y\"\n  }\n}\n"
        );
    }

    #[test]
    fn empty_map_renders_as_empty_object() {
        assert_eq!(JsonMap::new().render(), "{}\n");
    }
}
