//! Property tests: edit-distance metric laws and fingerprint-structure
//! invariants.

use proptest::prelude::*;

use sentinel_fingerprint::editdist::{
    levenshtein_distance, osa_distance, osa_distance_bounded, osa_distance_wavefront_with,
    WavefrontScratch,
};
use sentinel_fingerprint::{
    extract, FeatureVector, Fingerprint, FixedFingerprint, PortClass, SymbolTable, FEATURE_COUNT,
};
use sentinel_netproto::{MacAddr, Packet};

fn symbols() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..6, 0..24)
}

fn vectors(max: usize) -> impl Strategy<Value = Vec<FeatureVector>> {
    proptest::collection::vec(0u32..8, 0..max).prop_map(|counters| {
        counters
            .into_iter()
            .map(|c| FeatureVector::from_packet(&Packet::dhcp_discover(MacAddr::ZERO, 1, 0), c))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // --- Edit-distance laws ---

    #[test]
    fn osa_identity(a in symbols()) {
        prop_assert_eq!(osa_distance(&a, &a), 0);
    }

    #[test]
    fn osa_symmetry(a in symbols(), b in symbols()) {
        prop_assert_eq!(osa_distance(&a, &b), osa_distance(&b, &a));
    }

    #[test]
    fn osa_bounds(a in symbols(), b in symbols()) {
        let d = osa_distance(&a, &b);
        let longest = a.len().max(b.len());
        let diff = a.len().abs_diff(b.len());
        prop_assert!(d <= longest, "distance {} exceeds longest {}", d, longest);
        prop_assert!(d >= diff, "distance {} below length difference {}", d, diff);
        prop_assert_eq!(d == 0, a == b);
    }

    #[test]
    fn osa_bounded_by_levenshtein(a in symbols(), b in symbols()) {
        prop_assert!(osa_distance(&a, &b) <= levenshtein_distance(&a, &b));
    }

    #[test]
    fn osa_bounded_agrees_with_exact(a in symbols(), b in symbols(), bound in 0usize..30) {
        let exact = osa_distance(&a, &b);
        match osa_distance_bounded(&a, &b, bound) {
            // Within the bound the banded DP must reproduce the exact
            // distance bit-for-bit.
            Some(d) => {
                prop_assert_eq!(d, exact);
                prop_assert!(d <= bound);
            }
            // `None` is only allowed when the true distance genuinely
            // exceeds the bound — never a false early exit.
            None => prop_assert!(
                exact > bound,
                "bounded OSA gave up at bound {} but exact distance is {}",
                bound,
                exact
            ),
        }
    }

    #[test]
    fn wavefront_agrees_with_scalar_band(a in symbols(), b in symbols(), bound in 0usize..30) {
        // The anti-diagonal formulation must be indistinguishable from
        // the scalar row-major band: same Some/None verdict, same
        // distance — which pins every downstream score and tie-break.
        let mut scratch = WavefrontScratch::default();
        prop_assert_eq!(
            osa_distance_wavefront_with(&a, &b, bound, &mut scratch),
            osa_distance_bounded(&a, &b, bound)
        );
        // Scratch reuse across a second (differently-sized) call must
        // not leak state.
        prop_assert_eq!(
            osa_distance_wavefront_with(&b, &a, bound, &mut scratch),
            osa_distance_bounded(&b, &a, bound)
        );
    }

    #[test]
    fn interned_distance_equals_vector_distance(a in vectors(20), b in vectors(20)) {
        let fa = Fingerprint::new(a);
        let fb = Fingerprint::new(b);
        // Reference side interned, probe side projected (the identifier's
        // exact usage): integer-symbol OSA must equal the vector OSA.
        let mut table = SymbolTable::new();
        let ia = table.intern(&fa);
        let ib = table.project(&fb);
        prop_assert_eq!(
            osa_distance(ia.symbols(), ib.symbols()),
            osa_distance(fa.vectors(), fb.vectors())
        );
        // And the bounded variant agrees on the interned views: the
        // distance never exceeds the longer length, so that bound is
        // always sufficient.
        let exact = osa_distance(ia.symbols(), ib.symbols());
        let longest = fa.len().max(fb.len());
        prop_assert_eq!(
            osa_distance_bounded(ia.symbols(), ib.symbols(), longest),
            Some(exact)
        );
    }

    #[test]
    fn levenshtein_triangle_inequality(a in symbols(), b in symbols(), c in symbols()) {
        let ab = levenshtein_distance(&a, &b);
        let bc = levenshtein_distance(&b, &c);
        let ac = levenshtein_distance(&a, &c);
        prop_assert!(ac <= ab + bc, "triangle violated: {} > {} + {}", ac, ab, bc);
    }

    #[test]
    fn normalized_distance_in_unit_interval(a in vectors(20), b in vectors(20)) {
        let fa = Fingerprint::new(a);
        let fb = Fingerprint::new(b);
        let d = sentinel_fingerprint::editdist::normalized_distance(&fa, &fb);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert_eq!(
            sentinel_fingerprint::editdist::normalized_distance(&fb, &fa),
            d
        );
    }

    // --- Fingerprint structure invariants ---

    #[test]
    fn consecutive_dedup_is_idempotent(raw in vectors(24)) {
        let once = Fingerprint::new(raw);
        let twice = Fingerprint::new(once.vectors().to_vec());
        prop_assert_eq!(&twice, &once);
        // No two adjacent columns are equal after construction.
        for window in once.vectors().windows(2) {
            prop_assert_ne!(&window[0], &window[1]);
        }
    }

    #[test]
    fn fixed_fingerprint_always_276_dims_zero_padded(raw in vectors(30)) {
        let fingerprint = Fingerprint::new(raw);
        let fixed = FixedFingerprint::from_fingerprint(&fingerprint);
        prop_assert_eq!(fixed.dimensions(), 276);
        let unique = fingerprint.unique_vectors(12).len();
        // Slots beyond the unique packets are exactly zero.
        for (i, &value) in fixed.as_slice().iter().enumerate() {
            if i >= unique * FEATURE_COUNT {
                prop_assert_eq!(value, 0.0, "slot {} not padded", i);
            }
        }
    }

    #[test]
    fn unique_vectors_are_distinct_and_ordered(raw in vectors(30), limit in 1usize..15) {
        let fingerprint = Fingerprint::new(raw);
        let unique = fingerprint.unique_vectors(limit);
        prop_assert!(unique.len() <= limit);
        for (i, a) in unique.iter().enumerate() {
            for b in &unique[i + 1..] {
                prop_assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn port_class_total_and_stable(port in proptest::option::of(any::<u16>())) {
        let class = PortClass::from_port(port);
        let encoded = class.to_u8();
        prop_assert!(encoded <= 3);
        prop_assert_eq!(encoded == 0, port.is_none());
        // Same port always classifies the same.
        prop_assert_eq!(PortClass::from_port(port), class);
    }

    #[test]
    fn feature_array_matches_count(counter in 0u32..100) {
        let vector = FeatureVector::from_packet(
            &Packet::dhcp_discover(MacAddr::ZERO, 1, 0),
            counter,
        );
        let array = vector.to_array();
        prop_assert_eq!(array.len(), FEATURE_COUNT);
        prop_assert_eq!(array[20], counter as f64);
        // Binary features really are binary.
        for &value in &array[0..18] {
            prop_assert!(value == 0.0 || value == 1.0);
        }
    }

    #[test]
    fn incremental_push_matches_independent_counter_model(dsts in proptest::collection::vec(proptest::option::of(0u8..6), 0..40)) {
        use sentinel_fingerprint::FeatureExtractor;
        use sentinel_netproto::{AppPayload, Timestamp};
        use std::net::Ipv4Addr;

        let mac = MacAddr::new([7, 7, 7, 7, 7, 7]);
        let packets: Vec<Packet> = dsts
            .iter()
            .enumerate()
            .map(|(i, dst)| match dst {
                // `None` steps have no IP destination and must not
                // consume a counter slot.
                None => Packet::arp_probe(
                    Timestamp::from_micros(i as u64 * 1000),
                    mac,
                    Ipv4Addr::new(10, 0, 0, 1),
                ),
                Some(d) => Packet::udp_ipv4(
                    Timestamp::from_micros(i as u64 * 1000),
                    mac,
                    MacAddr::ZERO,
                    Ipv4Addr::new(192, 168, 0, 50),
                    Ipv4Addr::new(10, 0, 0, *d),
                    50000,
                    53,
                    AppPayload::Empty,
                ),
            })
            .collect();

        // Independent model of the Table I destination-IP counter: the
        // k-th distinct destination (1-based, in first-appearance order)
        // maps to k; packets without an IP destination map to 0.
        let mut order: Vec<u8> = Vec::new();
        let expected: Vec<u32> = dsts
            .iter()
            .map(|dst| match dst {
                None => 0,
                Some(d) => match order.iter().position(|seen| seen == d) {
                    Some(k) => k as u32 + 1,
                    None => {
                        order.push(*d);
                        order.len() as u32
                    }
                },
            })
            .collect();

        // Incremental push must reproduce the model counter per packet…
        let mut extractor = FeatureExtractor::new();
        let streamed: Vec<u32> = packets
            .iter()
            .map(|p| extractor.push(p).dst_ip_counter)
            .collect();
        prop_assert_eq!(&streamed, &expected);
        // …and finalize to exactly the batch fingerprint.
        prop_assert_eq!(extractor.finish(), extract(&packets));
    }

    #[test]
    fn extraction_is_deterministic(seed in any::<u64>()) {
        // Same packets -> same fingerprint, regardless of how often we run.
        let mac = MacAddr::new([1, 2, 3, 4, 5, 6]);
        let packets = vec![
            Packet::dhcp_discover(mac, seed as u32, 0),
            Packet::dhcp_discover(mac, seed as u32 ^ 1, 500_000),
        ];
        prop_assert_eq!(extract(&packets), extract(&packets));
    }
}
