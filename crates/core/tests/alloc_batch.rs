//! Counting-allocator audit of steady-state batched classification:
//! after one warm-up tick has sized the [`ClassifyScratch`] — the
//! batch matrix, the per-forest verdict buffer and the
//! per-item candidate pool — every subsequent
//! [`Identifier::classify_batch_in`] tick over a same-shaped batch must
//! perform **zero** heap allocations. This pins the satellite contract
//! behind the row-blocked kernel: the streaming runtime's shards hold
//! one scratch each and classify tick after tick without touching the
//! allocator.
//!
//! This lives in its own integration-test binary because a
//! `#[global_allocator]` is process-wide: any neighbouring test running
//! concurrently would perturb the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use sentinel_core::{
    BankConfig, ClassifyScratch, FingerprintDataset, Identifier, IdentifierConfig,
};
use sentinel_devicesim::catalog;
use sentinel_fingerprint::FixedFingerprint;
use sentinel_ml::ForestConfig;

/// Passes everything through to [`System`], counting every allocation
/// and reallocation (deallocations are free and uncounted).
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_batched_classification_does_not_allocate() {
    let devices: Vec<_> = catalog().into_iter().take(3).collect();
    let dataset = FingerprintDataset::collect(&devices, 8, 5);
    let config = IdentifierConfig {
        bank: BankConfig {
            forest: ForestConfig::default().with_trees(15),
            ..BankConfig::default()
        },
        ..IdentifierConfig::default()
    };
    let identifier = Identifier::train(&dataset, &config);
    let fixed: Vec<&FixedFingerprint> = (0..dataset.len()).map(|i| dataset.fixed(i)).collect();

    // Warm-up tick: stretches the batch matrix, the verdict buffer and
    // every per-item candidate vector to this batch shape.
    let mut scratch = ClassifyScratch::default();
    let baseline: Vec<Vec<usize>> = identifier.classify_batch_in(&fixed, &mut scratch).to_vec();
    assert_eq!(baseline.len(), fixed.len());

    // Steady state: refilling the matrix and re-walking every packed
    // arena through the row-blocked kernel must not touch the heap.
    let before = allocations();
    for _ in 0..8 {
        let candidates = identifier.classify_batch_in(&fixed, &mut scratch);
        assert_eq!(candidates.len(), baseline.len());
    }
    let spent = allocations() - before;
    assert_eq!(
        spent, 0,
        "batched classification allocated {spent} times over 8 steady-state ticks"
    );

    // And scratch reuse must not have drifted any verdict.
    let again = identifier.classify_batch_in(&fixed, &mut scratch).to_vec();
    assert_eq!(again, baseline, "warm-path candidates must not drift");
}
