//! Dense design matrix with class labels.

use serde::{Deserialize, Serialize};

/// A dataset of feature rows with integer class labels.
///
/// Rows are stored contiguously (row-major) for cache-friendly split
/// search. Labels are small integers; binary per-device-type classifiers
/// use 0 (= "not this type") and 1 (= "this type").
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dataset {
    features: Vec<f64>,
    n_features: usize,
    labels: Vec<usize>,
}

impl Dataset {
    /// Creates an empty dataset whose rows have `n_features` columns.
    ///
    /// # Panics
    ///
    /// Panics if `n_features` is zero.
    pub fn new(n_features: usize) -> Self {
        assert!(n_features > 0, "a dataset needs at least one feature");
        Dataset {
            features: Vec::new(),
            n_features,
            labels: Vec::new(),
        }
    }

    /// Creates an empty dataset pre-sized for `rows` rows of
    /// `n_features` columns, so filling it performs one allocation per
    /// backing array instead of doubling growth.
    ///
    /// # Panics
    ///
    /// Panics if `n_features` is zero.
    pub fn with_capacity(n_features: usize, rows: usize) -> Self {
        assert!(n_features > 0, "a dataset needs at least one feature");
        Dataset {
            features: Vec::with_capacity(rows * n_features),
            n_features,
            labels: Vec::with_capacity(rows),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the dataset's feature count.
    pub fn push(&mut self, row: &[f64], label: usize) {
        assert_eq!(
            row.len(),
            self.n_features,
            "row has {} features, dataset expects {}",
            row.len(),
            self.n_features
        );
        self.features.extend_from_slice(row);
        self.labels.push(label);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The feature row at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn row(&self, index: usize) -> &[f64] {
        let start = index * self.n_features;
        &self.features[start..start + self.n_features]
    }

    /// The label of row `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn label(&self, index: usize) -> usize {
        self.labels[index]
    }

    /// All labels in row order.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// One more than the largest label (0 for an empty dataset).
    pub fn n_classes(&self) -> usize {
        self.labels.iter().max().map_or(0, |&m| m + 1)
    }

    /// Builds a sub-dataset from the given row indices (rows are copied).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.n_features);
        for &i in indices {
            out.push(self.row(i), self.label(i));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut data = Dataset::new(2);
        data.push(&[1.0, 2.0], 0);
        data.push(&[3.0, 4.0], 1);
        assert_eq!(data.len(), 2);
        assert_eq!(data.row(1), &[3.0, 4.0]);
        assert_eq!(data.label(0), 0);
        assert_eq!(data.n_classes(), 2);
    }

    #[test]
    #[should_panic(expected = "row has 3 features")]
    fn wrong_width_rejected() {
        let mut data = Dataset::new(2);
        data.push(&[1.0, 2.0, 3.0], 0);
    }

    #[test]
    fn subset_copies_rows() {
        let mut data = Dataset::new(1);
        for i in 0..5 {
            data.push(&[i as f64], i % 2);
        }
        let sub = data.subset(&[4, 0, 2]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.row(0), &[4.0]);
        assert_eq!(sub.label(0), 0);
        assert_eq!(sub.row(1), &[0.0]);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut data = Dataset::with_capacity(2, 4);
        assert!(data.is_empty());
        data.push(&[1.0, 2.0], 1);
        assert_eq!(data.row(0), &[1.0, 2.0]);
        assert!(data.features.capacity() >= 8);
    }

    #[test]
    fn empty_dataset() {
        let data = Dataset::new(3);
        assert!(data.is_empty());
        assert_eq!(data.n_classes(), 0);
    }
}
