//! Ethernet II framing.

use bytes::{BufMut, BytesMut};
use serde::{Deserialize, Serialize};

use crate::{MacAddr, ParseError};

/// Length of an Ethernet II header in bytes.
pub const HEADER_LEN: usize = 14;

/// The EtherType (or IEEE 802.3 length) field of an Ethernet frame.
///
/// Values below `0x0600` are 802.3 length fields, meaning the frame carries
/// an LLC header instead of an EtherType-dispatched payload — this is how
/// the paper's `LLC` link-layer feature is detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EtherType {
    /// IPv4 (`0x0800`).
    Ipv4,
    /// ARP (`0x0806`).
    Arp,
    /// IPv6 (`0x86DD`).
    Ipv6,
    /// EAPoL / 802.1X authentication (`0x888E`).
    Eapol,
    /// An IEEE 802.3 length field (value < `0x0600`); payload starts with LLC.
    Length(u16),
    /// Any other EtherType.
    Other(u16),
}

impl EtherType {
    /// The raw 16-bit wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Ipv6 => 0x86dd,
            EtherType::Eapol => 0x888e,
            EtherType::Length(len) => len,
            EtherType::Other(v) => v,
        }
    }

    /// Classifies a raw 16-bit wire value.
    pub fn from_u16(value: u16) -> Self {
        match value {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x86dd => EtherType::Ipv6,
            0x888e => EtherType::Eapol,
            v if v < 0x0600 => EtherType::Length(v),
            v => EtherType::Other(v),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(et: EtherType) -> u16 {
        et.to_u16()
    }
}

impl From<u16> for EtherType {
    fn from(v: u16) -> EtherType {
        EtherType::from_u16(v)
    }
}

/// An Ethernet II (or 802.3) frame header.
///
/// ```
/// use sentinel_netproto::{EthernetHeader, EtherType, MacAddr};
///
/// let hdr = EthernetHeader::new(MacAddr::BROADCAST, MacAddr::ZERO, EtherType::Arp);
/// let mut buf = Vec::new();
/// hdr.encode(&mut buf);
/// let (parsed, rest) = EthernetHeader::parse(&buf).unwrap();
/// assert_eq!(parsed, hdr);
/// assert!(rest.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EthernetHeader {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// EtherType or 802.3 length.
    pub ethertype: EtherType,
}

impl EthernetHeader {
    /// Creates a header.
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: EtherType) -> Self {
        EthernetHeader {
            dst,
            src,
            ethertype,
        }
    }

    /// Appends the 14 header bytes to `buf`.
    pub fn encode(&self, buf: &mut impl BufMut) {
        buf.put_slice(&self.dst.octets());
        buf.put_slice(&self.src.octets());
        buf.put_u16(self.ethertype.to_u16());
    }

    /// Parses a header, returning it and the remaining payload bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Truncated`] if fewer than 14 bytes are given.
    pub fn parse(bytes: &[u8]) -> Result<(Self, &[u8]), ParseError> {
        if bytes.len() < HEADER_LEN {
            return Err(ParseError::truncated("ethernet", HEADER_LEN, bytes.len()));
        }
        let dst = MacAddr::new(bytes[0..6].try_into().expect("slice of 6"));
        let src = MacAddr::new(bytes[6..12].try_into().expect("slice of 6"));
        let ethertype = EtherType::from_u16(u16::from_be_bytes([bytes[12], bytes[13]]));
        Ok((
            EthernetHeader {
                dst,
                src,
                ethertype,
            },
            &bytes[HEADER_LEN..],
        ))
    }

    /// Encodes into a fresh buffer (convenience for tests).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(HEADER_LEN);
        self.encode(&mut buf);
        buf.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EthernetHeader {
        EthernetHeader::new(
            MacAddr::new([1, 2, 3, 4, 5, 6]),
            MacAddr::new([7, 8, 9, 10, 11, 12]),
            EtherType::Ipv4,
        )
    }

    #[test]
    fn encode_layout_is_big_endian() {
        let bytes = sample().to_bytes();
        assert_eq!(bytes.len(), HEADER_LEN);
        assert_eq!(&bytes[0..6], &[1, 2, 3, 4, 5, 6]);
        assert_eq!(&bytes[6..12], &[7, 8, 9, 10, 11, 12]);
        assert_eq!(&bytes[12..14], &[0x08, 0x00]);
    }

    #[test]
    fn parse_rejects_short_input() {
        let err = EthernetHeader::parse(&[0u8; 13]).unwrap_err();
        assert!(matches!(
            err,
            ParseError::Truncated {
                layer: "ethernet",
                ..
            }
        ));
    }

    #[test]
    fn parse_returns_remainder() {
        let mut bytes = sample().to_bytes();
        bytes.extend_from_slice(&[0xaa, 0xbb]);
        let (hdr, rest) = EthernetHeader::parse(&bytes).unwrap();
        assert_eq!(hdr, sample());
        assert_eq!(rest, &[0xaa, 0xbb]);
    }

    #[test]
    fn ethertype_classification() {
        assert_eq!(EtherType::from_u16(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from_u16(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from_u16(0x86dd), EtherType::Ipv6);
        assert_eq!(EtherType::from_u16(0x888e), EtherType::Eapol);
        assert_eq!(EtherType::from_u16(0x0100), EtherType::Length(0x0100));
        assert_eq!(EtherType::from_u16(0x9999), EtherType::Other(0x9999));
    }

    #[test]
    fn ethertype_u16_roundtrip() {
        for raw in [0x0800u16, 0x0806, 0x86dd, 0x888e, 0x0042, 0x1234] {
            assert_eq!(EtherType::from_u16(raw).to_u16(), raw);
        }
    }
}
