//! The zero-copy scan fast path on simulated traffic.
//!
//! Every frame the device simulator emits is canonical (see the
//! `all_packets_roundtrip_on_the_wire` test), so the wire scanner must
//! certify **all** of them without falling back to the decoder — that is
//! what makes the streaming hot path allocation-free — and the
//! frame-based extraction must reproduce the packet-based fingerprints
//! bit for bit.

use sentinel_devicesim::{catalog, Testbed};
use sentinel_fingerprint::{extract, extract_frames};
use sentinel_netproto::{RawFeatures, ScanOutcome, WireScan};

#[test]
fn every_simulated_frame_certifies() {
    let testbed = Testbed::new(0xfa57);
    for (i, device) in catalog().iter().enumerate() {
        let trace = testbed.setup_run(&device.profile, i as u64);
        for packet in &trace.packets {
            let frame = packet.encode();
            match WireScan::scan(&frame) {
                ScanOutcome::Features(raw) => {
                    assert_eq!(
                        raw,
                        RawFeatures::from_packet(packet),
                        "{} packet {packet:?}",
                        device.info.identifier
                    );
                }
                other => panic!(
                    "{} produced a frame the scanner cannot certify ({other:?}): {packet:?}",
                    device.info.identifier
                ),
            }
        }
    }
}

#[test]
fn frame_extraction_matches_packet_extraction() {
    let testbed = Testbed::new(0x1d3a);
    for (i, device) in catalog().iter().enumerate() {
        let trace = testbed.setup_run(&device.profile, 1_000 + i as u64);
        let frames: Vec<Vec<u8>> = trace.frames().into_iter().map(|(_, f)| f).collect();
        let via_frames = extract_frames(&frames).expect("simulated frames are well-formed");
        assert_eq!(
            via_frames,
            extract(&trace.packets),
            "fingerprint mismatch for {}",
            device.info.identifier
        );
    }
}
