use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::ParseError;

/// An IEEE 802 MAC address.
///
/// IoT Sentinel identifies devices (and keys enforcement rules) by their MAC
/// address, assuming IoT devices use static MAC addresses (Sect. V).
///
/// ```
/// use sentinel_netproto::MacAddr;
///
/// let mac: MacAddr = "13-73-74-7E-A9-C2".parse().unwrap();
/// assert_eq!(mac.to_string(), "13-73-74-7E-A9-C2");
/// assert_eq!(mac.oui(), [0x13, 0x73, 0x74]);
/// assert!(!mac.is_broadcast());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MacAddr([u8; 6]);

impl MacAddr {
    /// The broadcast address `FF-FF-FF-FF-FF-FF`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// The all-zero address, used as a placeholder in ARP and DHCP.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Creates a MAC address from its six octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// Returns the six octets of the address.
    pub const fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// Returns the Organizationally Unique Identifier (first three octets).
    ///
    /// Device vendors own OUIs, so the OUI alone narrows a device to a
    /// vendor — but not to a device-type, which is why IoT Sentinel
    /// fingerprints behaviour instead.
    pub const fn oui(&self) -> [u8; 3] {
        [self.0[0], self.0[1], self.0[2]]
    }

    /// Returns `true` for the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// Returns `true` if the group (multicast) bit is set.
    pub const fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Returns `true` if the locally-administered bit is set.
    pub const fn is_local(&self) -> bool {
        self.0[0] & 0x02 != 0
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

impl From<MacAddr> for [u8; 6] {
    fn from(mac: MacAddr) -> Self {
        mac.0
    }
}

impl AsRef<[u8]> for MacAddr {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Display for MacAddr {
    /// Formats in the dashed style used by the paper's Fig. 2
    /// (`13-73-74-7E-A9-C2`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = &self.0;
        write!(
            f,
            "{:02X}-{:02X}-{:02X}-{:02X}-{:02X}-{:02X}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

impl FromStr for MacAddr {
    type Err = ParseError;

    /// Parses `AA-BB-CC-DD-EE-FF` or `aa:bb:cc:dd:ee:ff`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Invalid`] if the string does not consist of six
    /// hex octets separated by `-` or `:`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = if s.contains(':') {
            s.split(':').collect()
        } else {
            s.split('-').collect()
        };
        if parts.len() != 6 {
            return Err(ParseError::invalid(
                "mac",
                format!("expected 6 octets, got {}", parts.len()),
            ));
        }
        let mut octets = [0u8; 6];
        for (i, part) in parts.iter().enumerate() {
            octets[i] = u8::from_str_radix(part, 16)
                .map_err(|_| ParseError::invalid("mac", format!("bad hex octet {part:?}")))?;
        }
        Ok(MacAddr(octets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_figure_2_style() {
        let mac = MacAddr::new([0x13, 0x73, 0x74, 0x7e, 0xa9, 0xc2]);
        assert_eq!(mac.to_string(), "13-73-74-7E-A9-C2");
    }

    #[test]
    fn parses_both_separator_styles() {
        let dashed: MacAddr = "13-73-74-7E-A9-C2".parse().unwrap();
        let colon: MacAddr = "13:73:74:7e:a9:c2".parse().unwrap();
        assert_eq!(dashed, colon);
    }

    #[test]
    fn rejects_malformed_strings() {
        assert!("13-73-74".parse::<MacAddr>().is_err());
        assert!("13-73-74-7E-A9-ZZ".parse::<MacAddr>().is_err());
        assert!("".parse::<MacAddr>().is_err());
    }

    #[test]
    fn broadcast_and_multicast_flags() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        let unicast = MacAddr::new([0x00, 0x11, 0x22, 0x33, 0x44, 0x55]);
        assert!(!unicast.is_multicast());
        // mDNS group address is multicast but not broadcast.
        let mdns = MacAddr::new([0x01, 0x00, 0x5e, 0x00, 0x00, 0xfb]);
        assert!(mdns.is_multicast());
        assert!(!mdns.is_broadcast());
    }

    #[test]
    fn roundtrips_through_display() {
        let mac = MacAddr::new([1, 2, 3, 4, 5, 6]);
        let parsed: MacAddr = mac.to_string().parse().unwrap();
        assert_eq!(mac, parsed);
    }

    #[test]
    fn oui_is_first_three_octets() {
        let mac = MacAddr::new([0xb0, 0xc5, 0x54, 1, 2, 3]);
        assert_eq!(mac.oui(), [0xb0, 0xc5, 0x54]);
    }
}
