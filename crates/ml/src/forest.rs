//! Random Forest (Breiman, 2001): bagged CART trees with per-split
//! feature subsampling.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::binning::BinnedDataset;
use crate::parallel;
use crate::pinned::PinnedRng;
use crate::sampling::bootstrap_indices_into;
use crate::tree::{argmax, FitArena};
use crate::{Dataset, DecisionTree, TreeConfig};

/// How many candidate features each split considers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureSubsample {
    /// `⌈√d⌉` random features per split (the Random Forest default).
    Sqrt,
    /// All features (pure bagging).
    All,
    /// A fixed number of random features per split.
    Fixed(usize),
}

impl FeatureSubsample {
    fn resolve(self, n_features: usize) -> Option<usize> {
        match self {
            FeatureSubsample::Sqrt => Some((n_features as f64).sqrt().ceil() as usize),
            FeatureSubsample::All => None,
            FeatureSubsample::Fixed(k) => Some(k.clamp(1, n_features)),
        }
    }
}

/// Training parameters for a [`RandomForest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-split feature subsampling strategy.
    pub feature_subsample: FeatureSubsample,
    /// Maximum depth of each tree.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// RNG seed for bootstrap and feature sampling.
    pub seed: u64,
    /// Worker threads for fitting (`0` = auto via `SENTINEL_THREADS` /
    /// available parallelism, `1` = the exact sequential path). The
    /// fitted forest is bit-identical for every thread count: bootstrap
    /// samples and per-tree seeds are drawn sequentially up front, so
    /// threads only share out already-determined work.
    pub threads: usize,
}

impl Default for ForestConfig {
    /// Matches the Weka defaults the paper's evaluation would have used:
    /// 100 unpruned trees with √d features per split.
    fn default() -> Self {
        ForestConfig {
            n_trees: 100,
            feature_subsample: FeatureSubsample::Sqrt,
            max_depth: 24,
            min_samples_split: 2,
            min_samples_leaf: 1,
            seed: 0,
            threads: 0,
        }
    }
}

impl ForestConfig {
    /// Returns the config with a different seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with a different tree count (builder style).
    #[must_use]
    pub fn with_trees(mut self, n_trees: usize) -> Self {
        self.n_trees = n_trees;
        self
    }

    /// Returns the config with a different thread count (builder style).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Where a forest's training rows, labels and bins come from.
enum FitMode<'a> {
    /// All of `data`, split-searched over bins built from it here.
    Binned,
    /// All of `data`, exact sorted-scan reference path.
    Exact,
    /// A shared-corpus view: train on `rows` (distinct indices into the
    /// corpus) with `labels[k]` as row `rows[k]`'s class, over `bins`
    /// built once from the full corpus.
    View {
        bins: &'a BinnedDataset,
        rows: &'a [usize],
        labels: &'a [usize],
    },
}

/// A trained Random Forest classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
    /// Out-of-bag accuracy estimated during training (`None` if some
    /// sample was never out-of-bag, e.g. with very few trees).
    oob_accuracy: Option<f64>,
}

impl RandomForest {
    /// Fits a forest on `data`.
    ///
    /// Split search runs over pre-binned feature columns (built once per
    /// fit, shared read-only by every tree and worker thread) with
    /// cumulative histogram sweeps — bit-identical trees to the exact
    /// sorted-scan path ([`RandomForest::fit_exact`]), at a fraction of
    /// the node cost for the small-cardinality Table I features.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `config.n_trees` is zero.
    pub fn fit(data: &Dataset, config: &ForestConfig) -> Self {
        Self::fit_inner(data, config, FitMode::Binned)
    }

    /// Fits a forest with the exact per-node sorted-scan split search —
    /// the reference implementation [`RandomForest::fit`] must match
    /// bit-for-bit (kept for differential tests and benchmarks).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `config.n_trees` is zero.
    pub fn fit_exact(data: &Dataset, config: &ForestConfig) -> Self {
        Self::fit_inner(data, config, FitMode::Exact)
    }

    /// Fits a forest over a *view* of a shared corpus: `rows` selects
    /// distinct rows of `data`, `labels[k]` is the class of row
    /// `rows[k]`, and split search runs over `bins` built **once** from
    /// the full corpus (shared read-only by every view that trains over
    /// it — the one-vs-rest bank trains 27 forests against a single
    /// binned design matrix this way).
    ///
    /// Lossless versus copying the view into its own `Dataset` and
    /// calling [`RandomForest::fit`]: corpus bins absent from a node
    /// are empty in its histogram and the sweep skips empty bins, so
    /// thresholds, evaluation order, candidate budget and RNG stream
    /// are identical (pinned by `tests/prop_histogram.rs`).
    ///
    /// # Panics
    ///
    /// Panics if the view is empty, `rows` and `labels` disagree in
    /// length, or `bins` was not built from `data`.
    pub fn fit_view(
        data: &Dataset,
        bins: &BinnedDataset,
        rows: &[usize],
        labels: &[usize],
        config: &ForestConfig,
    ) -> Self {
        Self::fit_inner(data, config, FitMode::View { bins, rows, labels })
    }

    fn fit_inner(data: &Dataset, config: &ForestConfig, mode: FitMode<'_>) -> Self {
        assert!(!data.is_empty(), "cannot fit a forest on an empty dataset");
        assert!(config.n_trees > 0, "a forest needs at least one tree");
        let (n, n_classes) = match &mode {
            FitMode::View { bins, rows, labels } => {
                assert_eq!(rows.len(), labels.len(), "every view row needs a label");
                assert!(!rows.is_empty(), "cannot fit a forest on an empty view");
                assert_eq!(
                    bins.n_rows(),
                    data.len(),
                    "bins must be built from this corpus"
                );
                (rows.len(), labels.iter().max().map_or(0, |&m| m + 1))
            }
            _ => (data.len(), data.n_classes()),
        };
        let n_classes = n_classes.max(2);
        let tree_config = TreeConfig {
            max_depth: config.max_depth,
            min_samples_split: config.min_samples_split,
            min_samples_leaf: config.min_samples_leaf,
            n_candidate_features: config.feature_subsample.resolve(data.n_features()),
        };
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Draw every tree's bootstrap sample and seed sequentially from
        // the forest RNG first — the exact stream of the sequential
        // implementation — then fit the (now fully determined) trees on
        // worker threads. Each tree gets an independent stream so
        // feature shuffling cannot correlate across trees. All samples
        // live back to back in one flat buffer (positions `0..n` into
        // the training view).
        let mut samples: Vec<usize> = Vec::with_capacity(n * config.n_trees);
        let mut seeds: Vec<u64> = Vec::with_capacity(config.n_trees);
        for _ in 0..config.n_trees {
            bootstrap_indices_into(n, &mut rng, &mut samples);
            seeds.push(rng.gen());
        }
        let owned_bins = matches!(mode, FitMode::Binned).then(|| BinnedDataset::build(data));
        // View fits look labels up by corpus row id during tree
        // building; scatter the view labels into a dense per-row array
        // once per forest (rows outside the view are never read — the
        // bootstrap only draws view rows).
        let row_labels: Option<Vec<usize>> = match &mode {
            FitMode::View { rows, labels, .. } => {
                let mut by_row = vec![0usize; data.len()];
                for (&row, &label) in rows.iter().zip(labels.iter()) {
                    by_row[row] = label;
                }
                Some(by_row)
            }
            _ => None,
        };
        let threads = parallel::effective_threads(config.threads);
        // One scratch arena per worker thread, warm across all the
        // trees that worker claims (`FitArena` is pure scratch, so the
        // fitted forest stays bit-identical for every thread count).
        let fitted: Vec<(DecisionTree, Vec<(usize, usize)>)> =
            parallel::map_indexed_init(config.n_trees, threads, FitArena::new, |arena, t| {
                let positions = &samples[t * n..(t + 1) * n];
                // Per-tree candidate draws live on the v2 pinned
                // contract, keyed by (forest seed, tree index, per-tree
                // seed word) — the per-tree seed still comes from the
                // forest-level StdRng stream above, so bootstrap
                // sampling is untouched and streams stay independent
                // across trees.
                let mut tree_rng = PinnedRng::from_key(config.seed, t as u64, seeds[t]);
                let tree = match &mode {
                    FitMode::View { bins, rows, .. } => {
                        // Map bootstrap positions to corpus row ids in
                        // the arena's staging buffer.
                        let mut sample = std::mem::take(&mut arena.sample);
                        sample.clear();
                        sample.extend(positions.iter().map(|&p| rows[p]));
                        let labels = row_labels.as_deref().expect("view fit scattered labels");
                        let tree = DecisionTree::fit_view_in(
                            data,
                            bins,
                            &sample,
                            labels,
                            n_classes,
                            &tree_config,
                            &mut tree_rng,
                            arena,
                        );
                        arena.sample = sample;
                        tree
                    }
                    FitMode::Binned => {
                        let bins = owned_bins.as_ref().expect("binned fit built bins");
                        DecisionTree::fit_binned_in(
                            data,
                            bins,
                            positions,
                            &tree_config,
                            &mut tree_rng,
                            arena,
                        )
                    }
                    FitMode::Exact => {
                        DecisionTree::fit_in(data, positions, &tree_config, &mut tree_rng, arena)
                    }
                };
                // Out-of-bag votes: each tree votes on the samples its
                // bootstrap missed, giving a free generalization
                // estimate (Breiman 2001).
                let in_bag = &mut arena.in_bag;
                in_bag.clear();
                in_bag.resize(n, false);
                for &p in positions {
                    in_bag[p] = true;
                }
                let oob: Vec<(usize, usize)> = (0..n)
                    .filter(|&p| !in_bag[p])
                    .map(|p| {
                        let row = match &mode {
                            FitMode::View { rows, .. } => data.row(rows[p]),
                            _ => data.row(p),
                        };
                        (p, tree.predict(row))
                    })
                    .collect();
                (tree, oob)
            });
        let truth = |p: usize| match &mode {
            FitMode::View { labels, .. } => labels[p],
            _ => data.label(p),
        };
        let mut oob_votes = vec![vec![0usize; n_classes]; n];
        let mut trees = Vec::with_capacity(config.n_trees);
        for (tree, oob) in fitted {
            for (i, vote) in oob {
                oob_votes[i][vote] += 1;
            }
            trees.push(tree);
        }
        let mut correct = 0usize;
        let mut voted = 0usize;
        for (i, votes) in oob_votes.iter().enumerate() {
            if votes.iter().sum::<usize>() == 0 {
                continue;
            }
            voted += 1;
            if argmax(votes) == truth(i) {
                correct += 1;
            }
        }
        let oob_accuracy = (voted == n).then(|| correct as f64 / voted as f64);
        RandomForest {
            trees,
            n_classes,
            oob_accuracy,
        }
    }

    /// The out-of-bag accuracy estimate from training, if every training
    /// sample received at least one out-of-bag vote.
    pub fn oob_accuracy(&self) -> Option<f64> {
        self.oob_accuracy
    }

    /// The fitted trees, in fitting order.
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// The number of trees in the forest.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The number of classes the forest distinguishes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Rebuilds a forest from already-validated trees (binary model
    /// persistence): the forest's class count is taken from the trees,
    /// which must agree on it.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant if `trees` is
    /// empty or the trees disagree on the number of classes.
    pub fn from_parts(trees: Vec<DecisionTree>, oob_accuracy: Option<f64>) -> Result<Self, String> {
        let n_classes = match trees.first() {
            Some(tree) => tree.n_classes(),
            None => return Err("forest has no trees".into()),
        };
        if let Some(odd) = trees.iter().position(|t| t.n_classes() != n_classes) {
            return Err(format!(
                "tree {odd} distinguishes {} classes, tree 0 distinguishes {n_classes}",
                trees[odd].n_classes()
            ));
        }
        Ok(RandomForest {
            trees,
            n_classes,
            oob_accuracy,
        })
    }

    /// Predicts the majority-vote class for a feature row.
    pub fn predict(&self, row: &[f64]) -> usize {
        let mut votes = vec![0usize; self.n_classes];
        for tree in &self.trees {
            votes[tree.predict(row)] += 1;
        }
        argmax(&votes)
    }

    /// Per-class vote fractions for a feature row.
    pub fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n_classes];
        self.predict_proba_into(row, &mut out);
        out
    }

    /// Writes the per-class vote fractions for a feature row into `out`
    /// — the allocation-free twin of [`RandomForest::predict_proba`]
    /// for per-row queries in hot loops (vote tallies up to `n_trees`
    /// are exact in `f64`, so the fractions are bit-identical).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.n_classes()`.
    pub fn predict_proba_into(&self, row: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), self.n_classes, "probability buffer width");
        out.fill(0.0);
        for tree in &self.trees {
            out[tree.predict(row)] += 1.0;
        }
        for slot in out.iter_mut() {
            *slot /= self.trees.len() as f64;
        }
    }

    /// Convenience for binary classifiers: returns `true` if class 1 wins
    /// the vote.
    ///
    /// Equivalent to `predict(row) == 1`, but for binary forests the
    /// vote loop stops as soon as the outcome is mathematically decided
    /// (majority reached, or unreachable even if every remaining tree
    /// votes 1) — on decisive inputs this skips roughly half the trees,
    /// which is most of the 27-classifier identification stage.
    pub fn accepts(&self, row: &[f64]) -> bool {
        if self.n_classes != 2 {
            return self.predict(row) == 1;
        }
        let n = self.trees.len();
        // `argmax` sends ties to class 0, so class 1 needs a strict
        // majority of the votes.
        let needed = n / 2 + 1;
        let mut ones = 0usize;
        for (t, tree) in self.trees.iter().enumerate() {
            ones += usize::from(tree.predict(row) == 1);
            if ones >= needed {
                return true;
            }
            if ones + (n - t - 1) < needed {
                return false;
            }
        }
        false
    }

    /// Mean Gini feature importances over all trees, normalized to sum
    /// to 1 (all zeros if no tree ever split).
    pub fn feature_importances(&self, n_features: usize) -> Vec<f64> {
        let mut total = vec![0.0; n_features];
        for tree in &self.trees {
            for (slot, value) in total.iter_mut().zip(tree.feature_importances(n_features)) {
                *slot += value;
            }
        }
        let sum: f64 = total.iter().sum();
        if sum > 0.0 {
            for value in &mut total {
                *value /= sum;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per_class: usize) -> Dataset {
        // Two well-separated 2-D blobs laid out deterministically.
        let mut data = Dataset::new(2);
        for i in 0..n_per_class {
            let jitter = (i % 7) as f64 * 0.01;
            data.push(&[0.0 + jitter, 0.0 - jitter], 0);
            data.push(&[5.0 - jitter, 5.0 + jitter], 1);
        }
        data
    }

    #[test]
    fn separable_blobs_classified() {
        let forest = RandomForest::fit(&blobs(30), &ForestConfig::default().with_seed(1));
        assert_eq!(forest.predict(&[0.2, 0.1]), 0);
        assert_eq!(forest.predict(&[4.8, 5.1]), 1);
        assert!(forest.accepts(&[5.0, 5.0]));
        assert!(!forest.accepts(&[0.0, 0.0]));
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs(20);
        let a = RandomForest::fit(&data, &ForestConfig::default().with_seed(9));
        let b = RandomForest::fit(&data, &ForestConfig::default().with_seed(9));
        assert_eq!(a, b);
    }

    #[test]
    fn fitted_forest_is_identical_for_every_thread_count() {
        let data = blobs(20);
        let sequential =
            RandomForest::fit(&data, &ForestConfig::default().with_seed(9).with_threads(1));
        for threads in [2, 8] {
            let parallel = RandomForest::fit(
                &data,
                &ForestConfig::default().with_seed(9).with_threads(threads),
            );
            assert_eq!(sequential, parallel, "threads={threads}");
        }
    }

    #[test]
    fn accepts_early_exit_matches_full_vote() {
        let data = blobs(25);
        let forest = RandomForest::fit(&data, &ForestConfig::default().with_trees(31).with_seed(5));
        for i in 0..data.len() {
            let row = data.row(i);
            assert_eq!(forest.accepts(row), forest.predict(row) == 1, "row {i}");
        }
        // Ambiguous mid-point rows too, where the vote is close.
        for x in [2.0, 2.5, 3.0] {
            let row = [x, x];
            assert_eq!(forest.accepts(&row), forest.predict(&row) == 1);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let data = blobs(20);
        let a = RandomForest::fit(&data, &ForestConfig::default().with_seed(1));
        let b = RandomForest::fit(&data, &ForestConfig::default().with_seed(2));
        assert_ne!(a, b, "bootstrap samples should differ");
    }

    #[test]
    fn proba_sums_to_one() {
        let forest = RandomForest::fit(&blobs(10), &ForestConfig::default().with_trees(31));
        let proba = forest.predict_proba(&[2.5, 2.5]);
        assert!((proba.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(forest.n_trees(), 31);
    }

    #[test]
    fn subsample_strategies_resolve() {
        assert_eq!(FeatureSubsample::Sqrt.resolve(276), Some(17));
        assert_eq!(FeatureSubsample::All.resolve(276), None);
        assert_eq!(FeatureSubsample::Fixed(500).resolve(276), Some(276));
        assert_eq!(FeatureSubsample::Fixed(0).resolve(276), Some(1));
    }

    #[test]
    fn oob_accuracy_high_on_separable_data() {
        let forest = RandomForest::fit(&blobs(30), &ForestConfig::default().with_seed(4));
        let oob = forest.oob_accuracy().expect("100 trees cover all samples");
        assert!(oob > 0.95, "oob accuracy {oob}");
    }

    #[test]
    fn oob_none_with_single_tree_is_possible() {
        // One tree leaves ~37% of samples out-of-bag; the rest get no
        // vote, so the estimate must be withheld.
        let forest = RandomForest::fit(&blobs(30), &ForestConfig::default().with_trees(1));
        // Either every sample happened to be OOB (tiny chance) or None.
        if let Some(oob) = forest.oob_accuracy() {
            assert!((0.0..=1.0).contains(&oob));
        }
    }

    #[test]
    fn forest_importances_are_normalized() {
        let forest = RandomForest::fit(&blobs(20), &ForestConfig::default().with_trees(15));
        let importances = forest.feature_importances(2);
        assert!((importances.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(importances.iter().all(|&v| v >= 0.0));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let _ = RandomForest::fit(&Dataset::new(2), &ForestConfig::default());
    }
}
