//! IoT Sentinel core: automated device-type identification and security
//! enforcement (the paper's primary contribution).
//!
//! The crate wires the substrates together into the two components of
//! Fig. 1:
//!
//! * **[`SecurityGateway`]** — monitors traffic of newly connected
//!   devices, detects the end of the setup phase, extracts fingerprints
//!   and enforces the isolation level returned by the security service
//!   through the SDN switch.
//! * **[`IoTSecurityService`]** — the IoTSSP backend: a
//!   [`ClassifierBank`] with one binary Random Forest per known
//!   device-type, edit-distance discrimination between multiple matches
//!   (Sect. IV-B), and a vulnerability assessment that maps device-types
//!   to isolation levels (Sect. III-B).
//!
//! # End-to-end example
//!
//! ```no_run
//! use sentinel_core::prelude::*;
//! use sentinel_devicesim::{catalog, Testbed};
//!
//! // Train the IoTSSP on 20 lab setups per device-type.
//! let devices = catalog();
//! let dataset = FingerprintDataset::collect(&devices, 20, 42);
//! let service = IoTSecurityService::train(&dataset, &ServiceConfig::default());
//!
//! // A new device joins the user's network.
//! let gateway = &mut SecurityGateway::new(service);
//! let trace = Testbed::new(7).setup_run(&devices[0].profile, 99);
//! for packet in &trace.packets {
//!     gateway.observe(packet);
//! }
//! let report = gateway.finalize(trace.mac).expect("device was monitored");
//! println!("{report}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod dataset;
mod gateway;
mod identify;
pub mod migration;
pub mod report;
mod service;
pub mod vulndb;

pub use bank::{BankConfig, ClassifierBank};
pub use dataset::FingerprintDataset;
pub use gateway::{GatewayConfig, SecurityGateway};
pub use identify::{
    AssessKey, ClassifyScratch, Identifier, IdentifierConfig, IdentifyMode, TrainedModel,
};
pub use migration::{
    migrate, LegacyDevice, MigrationOutcome, MigrationRecord, PskPolicy, RekeySupport,
};
pub use report::{Identification, OnboardingReport, Outcome, ServiceResponse};
pub use service::{AssessScratch, IoTSecurityService, SecurityService, ServiceConfig};

/// Commonly used types, re-exported for examples and downstream users.
pub mod prelude {
    pub use crate::migration::{
        migrate, LegacyDevice, MigrationOutcome, MigrationRecord, PskPolicy, RekeySupport,
    };
    pub use crate::report::{Identification, OnboardingReport, Outcome, ServiceResponse};
    pub use crate::vulndb::{CveRecord, StaticVulnDb, VulnerabilityDatabase};
    pub use crate::{
        AssessKey, AssessScratch, BankConfig, ClassifierBank, ClassifyScratch, FingerprintDataset,
        GatewayConfig, Identifier, IdentifierConfig, IdentifyMode, IoTSecurityService,
        SecurityGateway, SecurityService, ServiceConfig,
    };
    pub use sentinel_fingerprint::{extract, Fingerprint, FixedFingerprint};
    pub use sentinel_sdn::{EnforcementRule, IsolationLevel};
}
