//! Streaming ↔ batch equivalence: an interleaved multi-device stream
//! pushed through `sentinel-stream` must reach exactly the decisions the
//! batch `SecurityGateway` reaches — bit-identical against a sequential
//! gateway consuming the same stream, and decision-identical against
//! gateways onboarding each device's trace alone — at thread counts
//! 1, 2, 4 and 8, over both the packet and raw-frame ingest paths.
//!
//! Under the v2 pinned RNG contract every assessment is keyed by
//! `(seq, mac)`, so one *shared, stateful* service instance must answer
//! bit-identically no matter how many runtimes (or threads) consult it;
//! a proptest pins that per-completion contract at the service level.

use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::Duration;

use proptest::prelude::*;

use iot_sentinel::core::{
    AssessKey, BankConfig, FingerprintDataset, Identifier, IdentifierConfig, IoTSecurityService,
    OnboardingReport, SecurityGateway, SecurityService, ServiceConfig, ServiceResponse,
    TrainedModel,
};
use iot_sentinel::devicesim::{catalog, interleave, SetupTrace, Testbed};
use iot_sentinel::fingerprint::{extract, Fingerprint, FixedFingerprint};
use iot_sentinel::ml::{ForestConfig, PinnedRng};
use iot_sentinel::netproto::stream::{MemoryFrameSource, MemorySource};
use iot_sentinel::netproto::{MacAddr, Packet};
use iot_sentinel::sdn::IsolationLevel;
use iot_sentinel::stream::{StreamConfig, StreamRuntime};

/// A real trained IoTSSP, small enough for test time.
///
/// `references_per_type` covers the whole 8-run training pool so stage-2
/// discrimination always scores against every reference: the *set* of
/// references (and therefore the decision) no longer depends on how many
/// identifications the shared service has served before — only the
/// floating-point summation order of the scores does.
fn trained_model(train_runs: u64) -> TrainedModel {
    let devices = catalog();
    let dataset = FingerprintDataset::collect(&devices, train_runs, 42);
    let config = ServiceConfig {
        identifier: IdentifierConfig {
            bank: BankConfig {
                forest: ForestConfig::default().with_trees(25),
                ..BankConfig::default()
            },
            references_per_type: train_runs as usize,
            ..IdentifierConfig::default()
        },
    };
    TrainedModel::from(&Identifier::train(&dataset, &config.identifier))
}

/// Reassembles the snapshot into an independent service instance. Under
/// the v2 keyed contract the streaming/gateway paths never touch the
/// shared v1 discrimination RNG, so two instances of the same model are
/// interchangeable — the separate instances here just mirror the
/// deployment shape (one IoTSSP per site).
fn fresh_service(model: &TrainedModel) -> IoTSecurityService {
    IoTSecurityService::from_identifier(Identifier::from(model.clone()))
}

/// ≥20 concurrent setup runs spanning the whole catalog.
fn concurrent_traces(n: usize) -> Vec<SetupTrace> {
    let devices = catalog();
    let testbed = Testbed::new(0x0e9);
    (0..n)
        .map(|i| {
            let device = &devices[i % devices.len()];
            testbed.setup_run(&device.profile, 300 + (i / devices.len()) as u64)
        })
        .collect()
}

/// Feeds the interleaved stream through ONE sequential batch gateway —
/// the reference semantics the sharded runtime must reproduce exactly.
///
/// Mid-stream completions happen where `observe` returns a report; the
/// sessions still open at end of stream are finalized in the order of
/// their last absorbed packet (ties broken by MAC), which is the order
/// the streaming runtime's flush assesses them in.
fn sequential_baseline(service: &IoTSecurityService, stream: &[Packet]) -> Vec<OnboardingReport> {
    let mut gateway = SecurityGateway::new(service);
    let mut last_index: HashMap<MacAddr, usize> = HashMap::new();
    let mut reports = Vec::new();
    for (i, packet) in stream.iter().enumerate() {
        if let Some(report) = gateway.observe(packet) {
            reports.push(report);
        }
        if gateway.monitored_packets(packet.src_mac()) > 0 {
            last_index.insert(packet.src_mac(), i);
        }
    }
    let mut leftover: Vec<MacAddr> = gateway.monitoring().collect();
    leftover.sort_by_key(|&mac| (last_index[&mac], mac));
    for mac in leftover {
        reports.push(gateway.finalize(mac).expect("still monitored"));
    }
    reports
}

#[test]
fn interleaved_stream_is_bit_identical_to_a_sequential_gateway() {
    let model = trained_model(8);
    let traces = concurrent_traces(24);
    // A 9 ms stagger shifts every trace's packets over a common
    // timeline, so dozens of setups are in flight at once.
    let stream = interleave(&traces, Duration::from_millis(9));
    let baseline = sequential_baseline(&fresh_service(&model), &stream);
    assert_eq!(baseline.len(), traces.len(), "every device must onboard");

    for threads in [1usize, 2, 8] {
        let mut runtime = StreamRuntime::with_config(
            fresh_service(&model),
            StreamConfig {
                threads,
                ..StreamConfig::default()
            },
        );
        let reports = runtime
            .run(MemorySource::new(stream.clone()))
            .expect("in-memory source cannot fail");
        // Same reports, same decision order, bit for bit — scores
        // included. (Under the v2 contract both sides key every draw by
        // `(seq, mac)`, so full equality also proves the runtime and
        // the gateway assign identical stream sequence numbers.)
        assert_eq!(
            reports, baseline,
            "streamed reports diverged from the sequential gateway at {threads} threads"
        );
        assert_eq!(runtime.stats().sessions_evicted, 0);
        for report in &baseline {
            assert_eq!(
                runtime.enforcement().level_of(report.mac),
                report.response.isolation,
                "installed rule diverged for {}",
                report.mac
            );
        }
    }
}

#[test]
fn interleaved_stream_matches_onboarding_each_trace_alone() {
    let model = trained_model(8);
    let service = fresh_service(&model);
    let traces = concurrent_traces(24);

    // --- Baseline: each trace onboarded alone through a batch gateway.
    // The gateway may auto-finalize mid-trace (idle gap / packet cap);
    // whatever it decides is the ground truth the stream must reproduce.
    let mut baseline = Vec::with_capacity(traces.len());
    for trace in &traces {
        let mut gateway = SecurityGateway::new(&service);
        let mut report = None;
        for packet in &trace.packets {
            if report.is_none() {
                report = gateway.observe(packet);
            }
        }
        baseline.push(
            report
                .or_else(|| gateway.finalize(trace.mac))
                .expect("onboards"),
        );
    }

    // --- Streaming: all traces interleaved into one stream. ---
    let stream = interleave(&traces, Duration::from_millis(9));
    for threads in [1usize, 2, 8] {
        let mut runtime = StreamRuntime::with_config(
            &service,
            StreamConfig {
                threads,
                ..StreamConfig::default()
            },
        );
        let reports = runtime
            .run(MemorySource::new(stream.clone()))
            .expect("in-memory source cannot fail");
        assert_eq!(reports.len(), traces.len());

        for (trace, expected) in traces.iter().zip(&baseline) {
            let streamed = runtime
                .report(trace.mac)
                .unwrap_or_else(|| panic!("{} not onboarded at {threads} threads", trace.mac));
            // Identical decisions: fingerprint window, identification,
            // candidates and verdict. The dissimilarity scores are summed
            // over the same full reference set but in an RNG-dependent
            // order, so they are compared within float-summation noise
            // rather than bit-for-bit.
            assert_eq!(streamed.mac, expected.mac);
            assert_eq!(streamed.setup_packets, expected.setup_packets);
            assert_eq!(
                streamed.response.identification.outcome, expected.response.identification.outcome,
                "identification diverged for {} at {threads} threads",
                trace.mac
            );
            assert_eq!(
                streamed.response.identification.candidates,
                expected.response.identification.candidates
            );
            assert_eq!(streamed.response.isolation, expected.response.isolation);
            assert_eq!(
                streamed.response.permitted_endpoints,
                expected.response.permitted_endpoints
            );
            assert_eq!(
                streamed.response.user_notification,
                expected.response.user_notification
            );
            let streamed_scores = &streamed.response.identification.scores;
            let expected_scores = &expected.response.identification.scores;
            assert_eq!(streamed_scores.len(), expected_scores.len());
            for (a, b) in streamed_scores.iter().zip(expected_scores) {
                assert!(
                    (a - b).abs() < 1e-9,
                    "score diverged for {}: {a} vs {b}",
                    trace.mac
                );
            }
        }
    }
}

#[test]
fn streaming_identifies_and_isolates_like_the_paper() {
    // Sanity on decision *quality*, not just equivalence: with the full
    // catalog trained, the overwhelming majority of streamed setups must
    // be identified, and at least one vulnerable type must be isolated.
    let service = fresh_service(&trained_model(8));
    let traces = concurrent_traces(27);
    let stream = interleave(&traces, Duration::from_millis(9));
    let mut runtime = StreamRuntime::new(&service);
    runtime
        .run(MemorySource::new(stream))
        .expect("in-memory source cannot fail");
    let stats = runtime.stats();
    assert_eq!(stats.sessions_completed(), 27);
    assert!(
        stats.identified >= 20,
        "too few identifications in-stream: {stats}"
    );
    assert!(
        stats.restricted + stats.strict > 0,
        "the seed vulnerability database must isolate someone: {stats}"
    );
    let isolated = traces
        .iter()
        .filter_map(|t| runtime.report(t.mac))
        .any(|r| r.response.isolation != IsolationLevel::Trusted);
    assert!(isolated);
}

#[test]
fn one_stateful_service_is_bit_identical_across_threads_and_paths() {
    // The strongest form of the v2 contract: ONE service instance —
    // carrying its (now bypassed) v1 RNG state and serving every run in
    // sequence — must produce bit-identical reports AND stats at thread
    // counts 1/2/4/8 and over both the decoded-packet and raw-frame
    // ingest paths. Under the v1 contract this was impossible: each
    // assessment advanced the shared RNG, so merely *running twice*
    // changed the answers.
    let model = trained_model(8);
    let service = fresh_service(&model);
    let traces = concurrent_traces(24);
    let stream = interleave(&traces, Duration::from_millis(9));

    let mut baseline: Option<(Vec<OnboardingReport>, iot_sentinel::stream::StreamStats)> = None;
    for threads in [1usize, 2, 4, 8] {
        let config = StreamConfig {
            threads,
            ..StreamConfig::default()
        };
        let mut packets = StreamRuntime::with_config(&service, config.clone());
        let packet_reports = packets
            .run(MemorySource::new(stream.clone()))
            .expect("in-memory source cannot fail");
        let mut frames = StreamRuntime::with_config(&service, config);
        let frame_reports = frames
            .run_frames(MemoryFrameSource::from_packets(&stream))
            .expect("in-memory source cannot fail");
        assert_eq!(
            frame_reports, packet_reports,
            "frame path diverged from packet path at {threads} threads"
        );
        assert_eq!(
            frames.stats(),
            packets.stats(),
            "frame stats diverged at {threads} threads"
        );
        match &baseline {
            None => baseline = Some((packet_reports, packets.stats().clone())),
            Some((reports, stats)) => {
                assert_eq!(
                    &packet_reports, reports,
                    "reports diverged at {threads} threads"
                );
                assert_eq!(
                    packets.stats(),
                    stats,
                    "stats diverged at {threads} threads"
                );
            }
        }
    }
}

/// Forces the per-item scalar path: implements only the itemwise
/// assessment methods, so the trait's *default* batch implementations
/// loop item by item — stage 1 through the scalar lockstep tree walk
/// (`PackedForest::accepts`), never the row-blocked kernel over the
/// contiguous batch matrix. Running a full stream through this
/// wrapper and through the direct service (whose batch overrides route
/// everything through the data-parallel kernels) pins
/// kernels-on == kernels-off end to end.
struct ScalarPathService<'a>(&'a IoTSecurityService);

impl SecurityService for ScalarPathService<'_> {
    fn assess(&self, full: &Fingerprint, fixed: &FixedFingerprint) -> ServiceResponse {
        self.0.assess(full, fixed)
    }

    fn assess_keyed(
        &self,
        full: &Fingerprint,
        fixed: &FixedFingerprint,
        key: AssessKey,
    ) -> ServiceResponse {
        self.0.assess_keyed(full, fixed, key)
    }
}

#[test]
fn kernel_batched_runtime_matches_per_item_scalar_path() {
    // The whole-stack kernel differential: the same interleaved stream,
    // once through the batched kernels (row-blocked stage 1 in-shard)
    // and once through the per-item scalar walks, must yield byte-equal
    // reports and stats — at thread counts 1/2/4/8 and over both the
    // decoded-packet and raw-frame ingest paths.
    let model = trained_model(8);
    let service = fresh_service(&model);
    let traces = concurrent_traces(24);
    let stream = interleave(&traces, Duration::from_millis(9));

    let mut baseline: Option<Vec<OnboardingReport>> = None;
    for threads in [1usize, 2, 4, 8] {
        let config = StreamConfig {
            threads,
            ..StreamConfig::default()
        };
        let mut kernel = StreamRuntime::with_config(&service, config.clone());
        let kernel_reports = kernel
            .run(MemorySource::new(stream.clone()))
            .expect("in-memory source cannot fail");
        let mut scalar = StreamRuntime::with_config(ScalarPathService(&service), config.clone());
        let scalar_reports = scalar
            .run(MemorySource::new(stream.clone()))
            .expect("in-memory source cannot fail");
        assert_eq!(
            kernel_reports, scalar_reports,
            "kernel path diverged from the per-item scalar path at {threads} threads"
        );
        assert_eq!(
            kernel.stats(),
            scalar.stats(),
            "stats diverged between kernel and scalar paths at {threads} threads"
        );

        let mut kernel_frames = StreamRuntime::with_config(&service, config.clone());
        let kernel_frame_reports = kernel_frames
            .run_frames(MemoryFrameSource::from_packets(&stream))
            .expect("in-memory source cannot fail");
        let mut scalar_frames = StreamRuntime::with_config(ScalarPathService(&service), config);
        let scalar_frame_reports = scalar_frames
            .run_frames(MemoryFrameSource::from_packets(&stream))
            .expect("in-memory source cannot fail");
        assert_eq!(
            kernel_frame_reports, scalar_frame_reports,
            "frame-path kernels diverged from scalar at {threads} threads"
        );
        assert_eq!(
            kernel_frame_reports, kernel_reports,
            "frame path diverged from packet path at {threads} threads"
        );

        match &baseline {
            None => baseline = Some(kernel_reports),
            Some(reports) => assert_eq!(
                &kernel_reports, reports,
                "reports diverged at {threads} threads"
            ),
        }
    }
}

/// Cross-boot equivalence (the snapshot subsystem's load-path claim):
/// a service booted from a binary snapshot *file* must be
/// indistinguishable, bit for bit, from the freshly trained instance it
/// was captured from — same interleaved capture, same streaming
/// reports, same installed enforcement, at multiple thread counts.
#[test]
fn snapshot_booted_runtime_streams_bit_identically() {
    use iot_sentinel::snapshot::{Snapshot, SnapshotBoot};

    let model = trained_model(8);
    let fresh = fresh_service(&model);
    let path = std::env::temp_dir().join(format!(
        "sentinel-streaming-equivalence-{}.snap",
        std::process::id()
    ));
    Snapshot::of_service(&fresh).save(&path).expect("save");

    let traces = concurrent_traces(12);
    let stream = interleave(&traces, Duration::from_millis(9));
    let baseline = sequential_baseline(&fresh, &stream);
    assert_eq!(baseline.len(), traces.len(), "every device must onboard");

    for threads in [1usize, 4] {
        // A brand-new boot from disk per thread count: nothing is
        // shared with the trained instance but the bytes in the file.
        let loaded = IoTSecurityService::from_snapshot(&path).expect("load");
        let mut runtime = StreamRuntime::with_config(
            loaded,
            StreamConfig {
                threads,
                ..StreamConfig::default()
            },
        );
        let reports = runtime
            .run(MemorySource::new(stream.clone()))
            .expect("in-memory source cannot fail");
        assert_eq!(
            reports, baseline,
            "snapshot-booted reports diverged from the trained gateway at {threads} threads"
        );
        for report in &baseline {
            assert_eq!(
                runtime.enforcement().level_of(report.mac),
                report.response.isolation,
                "installed rule diverged for {} after snapshot boot",
                report.mac
            );
        }
    }
    std::fs::remove_file(&path).ok();
}

/// Probe items for the keyed-assessment proptest: a trained service
/// plus `(fingerprint, key)` pairs and their individually assessed
/// baseline responses. Built once — training dominates the test's cost.
struct KeyedProbes {
    service: IoTSecurityService,
    probes: Vec<(Fingerprint, FixedFingerprint, AssessKey)>,
    baseline: Vec<ServiceResponse>,
}

fn keyed_probes() -> &'static KeyedProbes {
    static PROBES: OnceLock<KeyedProbes> = OnceLock::new();
    PROBES.get_or_init(|| {
        let service = fresh_service(&trained_model(8));
        let traces = concurrent_traces(6);
        let probes: Vec<(Fingerprint, FixedFingerprint, AssessKey)> = traces
            .iter()
            .enumerate()
            .map(|(i, trace)| {
                let full = extract(&trace.packets);
                let fixed = FixedFingerprint::from_fingerprint(&full);
                (full, fixed, AssessKey::new(1000 + 17 * i as u64, trace.mac))
            })
            .collect();
        let baseline = probes
            .iter()
            .map(|(full, fixed, key)| service.assess_keyed(full, fixed, *key))
            .collect();
        KeyedProbes {
            service,
            probes,
            baseline,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The per-completion contract: a keyed assessment is a pure
    /// function of `(trained model, fingerprints, key)`. Whatever order
    /// the probes are assessed in, however they are split into batches,
    /// and however often they are re-assessed, every response equals the
    /// itemwise baseline bit for bit — which is exactly what lets the
    /// streaming shards assess concurrently.
    #[test]
    fn keyed_assessment_is_schedule_independent(order_seed in any::<u64>(), split_seed in any::<u64>()) {
        let fixture = keyed_probes();
        let n = fixture.probes.len();
        let indices: Vec<usize> = (0..n).collect();
        let order = PinnedRng::from_key(order_seed, 0, 0).sample_k(&indices, n);
        let split = PinnedRng::from_key(split_seed, 1, 0).index(n + 1);
        let items: Vec<(&Fingerprint, &FixedFingerprint, AssessKey)> = order
            .iter()
            .map(|&i| {
                let (full, fixed, key) = &fixture.probes[i];
                (full, fixed, *key)
            })
            .collect();
        let mut responses = fixture.service.assess_keyed_batch(&items[..split]);
        responses.extend(fixture.service.assess_keyed_batch(&items[split..]));
        for (&i, response) in order.iter().zip(&responses) {
            prop_assert_eq!(
                response,
                &fixture.baseline[i],
                "probe {} diverged under order {:?} split {}",
                i,
                &order,
                split
            );
        }
    }
}
