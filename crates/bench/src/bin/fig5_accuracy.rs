//! Reproduces **Fig. 5**: the ratio of correct identification for the 27
//! device-types, via stratified 10-fold cross-validation repeated 10
//! times (Sect. VI-B).
//!
//! ```text
//! cargo run --release -p sentinel-bench --bin fig5_accuracy
//! cargo run --release -p sentinel-bench --bin fig5_accuracy -- --quick
//! cargo run --release -p sentinel-bench --bin fig5_accuracy -- --packets 6   # F' ablation
//! cargo run --release -p sentinel-bench --bin fig5_accuracy -- --mode rf-only
//! ```

use sentinel_bench::cli::Args;
use sentinel_bench::evaluation::{evaluate, EvalConfig};
use sentinel_bench::tables;
use sentinel_core::IdentifyMode;

fn main() {
    let args = Args::from_env();
    let mut config = if args.switch("quick") {
        EvalConfig::quick()
    } else {
        EvalConfig::default()
    };
    config.runs = args.get("runs", config.runs);
    config.folds = args.get("folds", config.folds);
    config.repetitions = args.get("reps", config.repetitions);
    config.trees = args.get("trees", config.trees);
    config.negative_ratio = args.get("neg-ratio", config.negative_ratio);
    config.packets = args.get("packets", config.packets);
    config.references = args.get("refs", config.references);
    config.seed = args.get("seed", config.seed);
    config.workers = args.get("workers", config.workers);
    config.mode = match args.get_str("mode").unwrap_or("two-stage") {
        "two-stage" => IdentifyMode::TwoStage,
        "rf-only" => IdentifyMode::RfOnly,
        "edit-only" => IdentifyMode::EditOnly,
        other => panic!("unknown --mode {other:?} (two-stage|rf-only|edit-only)"),
    };

    print!(
        "{}",
        tables::banner("Fig. 5 — Ratio of correct identification for 27 device-types")
    );
    println!(
        "config: {} runs/type, {}-fold CV x {} repetitions, {} trees, 1:{} ratio, \
         F' = {} packets, {} refs, mode {:?}\n",
        config.runs,
        config.folds,
        config.repetitions,
        config.trees,
        config.negative_ratio,
        config.packets,
        config.references,
        config.mode
    );

    let start = std::time::Instant::now();
    let result = evaluate(&config);
    let rows: Vec<Vec<String>> = result
        .per_type_accuracy()
        .into_iter()
        .map(|(name, accuracy)| vec![name, tables::ratio(accuracy)])
        .collect();
    print!("{}", tables::render(&["Device-type", "Accuracy"], &rows));
    println!();
    println!(
        "global ratio of correct identification: {}",
        tables::ratio(result.global_accuracy())
    );
    println!("paper reports:                           0.815");
    println!(
        "identifications needing discrimination:  {:.0}% (paper: 55%)",
        result.discrimination_rate() * 100.0
    );
    println!(
        "mean edit-distance computations:         {:.1} (paper: ~7 per device)",
        result.mean_candidates() * config.references as f64 * result.discrimination_rate()
    );
    println!("elapsed: {:.1?}", start.elapsed());
}
