//! Property tests: the streaming session path must be indistinguishable
//! from batch extraction, for arbitrary packet sequences.

use std::net::Ipv4Addr;
use std::time::Duration;

use proptest::prelude::*;

use sentinel_fingerprint::extract;
use sentinel_fingerprint::setup::SetupDetector;
use sentinel_netproto::{AppPayload, MacAddr, Packet, Timestamp};
use sentinel_stream::{Session, SessionEvent};

/// One step of an arbitrary device conversation.
#[derive(Debug, Clone)]
enum Step {
    /// UDP to the `i`-th destination of a small pool (exercises the
    /// first-appearance dst-IP counter, including revisits).
    Udp { dst: u8, port: u16, gap_ms: u16 },
    /// A packet without an IP destination (must not consume a counter).
    Arp { gap_ms: u16 },
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..6, 1u16..1024, 0u16..500).prop_map(|(dst, port, gap_ms)| Step::Udp {
                dst,
                port,
                gap_ms
            }),
            (0u16..500).prop_map(|gap_ms| Step::Arp { gap_ms }),
        ],
        0..48,
    )
}

fn build_packets(steps: &[Step]) -> Vec<Packet> {
    let mac = MacAddr::new([0x0a, 1, 2, 3, 4, 5]);
    let src = Ipv4Addr::new(192, 168, 0, 50);
    let mut cursor = Timestamp::ZERO;
    let mut packets = Vec::with_capacity(steps.len());
    for step in steps {
        match *step {
            Step::Udp { dst, port, gap_ms } => {
                cursor += Duration::from_millis(u64::from(gap_ms));
                packets.push(Packet::udp_ipv4(
                    cursor,
                    mac,
                    MacAddr::ZERO,
                    src,
                    Ipv4Addr::new(10, 0, 0, dst),
                    50000,
                    port,
                    AppPayload::Empty,
                ));
            }
            Step::Arp { gap_ms } => {
                cursor += Duration::from_millis(u64::from(gap_ms));
                packets.push(Packet::arp_probe(cursor, mac, Ipv4Addr::new(10, 0, 0, 99)));
            }
        }
    }
    packets
}

/// A detector that never closes the session, so every packet flows in.
fn open_detector() -> SetupDetector {
    SetupDetector::new(usize::MAX, Duration::from_secs(1 << 40), usize::MAX)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Streaming a sequence packet-by-packet through a `Session` yields
    /// exactly the fingerprint of batch `extract()` — same columns, same
    /// dst-IP counter ordering, same duplicate trimming.
    #[test]
    fn session_extraction_equals_batch_extract(steps in steps()) {
        let packets = build_packets(&steps);
        let detector = open_detector();
        let mut session = Session::open(0, Timestamp::ZERO);
        for (seq, packet) in packets.iter().enumerate() {
            prop_assert_eq!(
                session.offer(packet, seq as u64, &detector, u64::MAX),
                SessionEvent::Absorbed
            );
        }
        prop_assert_eq!(session.packets(), packets.len());
        prop_assert_eq!(session.finish(), extract(&packets));
    }

    /// The session's per-packet byte accounting matches the wire.
    #[test]
    fn session_bytes_match_wire_lengths(steps in steps()) {
        let packets = build_packets(&steps);
        let detector = open_detector();
        let mut session = Session::open(0, Timestamp::ZERO);
        for (seq, packet) in packets.iter().enumerate() {
            session.offer(packet, seq as u64, &detector, u64::MAX);
        }
        let wire: u64 = packets.iter().map(|p| p.wire_len() as u64).sum();
        prop_assert_eq!(session.bytes(), wire);
    }

    /// A packet cap at `k` makes the session fingerprint equal batch
    /// extraction of the first `k` packets — the identification window
    /// is a pure prefix property.
    #[test]
    fn packet_cap_is_a_prefix(steps in steps(), cap in 1usize..16) {
        let packets = build_packets(&steps);
        let detector = SetupDetector::new(usize::MAX, Duration::from_secs(1 << 40), cap);
        let mut session = Session::open(0, Timestamp::ZERO);
        let mut absorbed = 0;
        for (seq, packet) in packets.iter().enumerate() {
            absorbed += 1;
            match session.offer(packet, seq as u64, &detector, u64::MAX) {
                SessionEvent::Absorbed => {}
                SessionEvent::CapComplete(_) => break,
                SessionEvent::GapComplete => unreachable!("gap disabled"),
            }
        }
        let window = packets.len().min(cap);
        prop_assert_eq!(absorbed, window);
        prop_assert_eq!(session.finish(), extract(&packets[..window]));
    }
}
