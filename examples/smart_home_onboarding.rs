//! A smart-home scenario: several devices join the network — a clean
//! bridge, a camera with known CVEs, and a gadget the IoTSSP has never
//! seen. Each lands in the right isolation level, and the SDN data
//! plane enforces it (Sect. III, V).
//!
//! ```text
//! cargo run --release --example smart_home_onboarding
//! ```

use std::net::Ipv4Addr;

use iot_sentinel::devicesim::{catalog, DeviceProfile, Phase, RawDest, Testbed};
use iot_sentinel::netproto::{AppPayload, MacAddr, Packet, Timestamp};
use iot_sentinel::prelude::*;
use iot_sentinel::sdn::FlowAction;

fn main() {
    let devices = catalog();
    let dataset = FingerprintDataset::collect(&devices, 20, 42);
    let service = IoTSecurityService::train(&dataset, &ServiceConfig::default());
    let mut gateway = SecurityGateway::new(service);
    let testbed = Testbed::new(7);

    // --- Device 1: Philips Hue Bridge (no known vulnerabilities). ---
    let hue = testbed.setup_run(&devices[4].profile, 1);
    onboard(&mut gateway, &hue.packets, hue.mac, "Hue Bridge");

    // --- Device 2: Edimax camera (synthetic advisory on file). ---
    let cam = testbed.setup_run(&devices[8].profile, 1);
    onboard(&mut gateway, &cam.packets, cam.mac, "Edimax camera");

    // --- Device 3: a no-name gadget the service has never seen. ---
    let mut gadget = DeviceProfile::new("MysteryGadget", [0xde, 0xad, 0x01]);
    gadget.extend_phases([
        Phase::Stp { count: 3 },
        Phase::Ipv6Bringup {
            mld_records: 4,
            router_solicit: true,
        },
        Phase::UdpRaw {
            dest: RawDest::Broadcast,
            port: 31337,
            sizes: vec![512, 64, 512],
        },
        Phase::Ping { count: 4 },
        Phase::UdpRaw {
            dest: RawDest::Gateway,
            port: 31338,
            sizes: vec![900, 900],
        },
    ]);
    let mystery = testbed.setup_run(&gadget, 0);
    onboard(
        &mut gateway,
        &mystery.packets,
        mystery.mac,
        "mystery gadget",
    );

    // --- Enforcement in action. ---
    println!("\n--- data-plane checks ---");
    let try_internet =
        |gateway: &mut SecurityGateway<IoTSecurityService>, mac: MacAddr, who: &str| {
            let packet = outbound(mac, Ipv4Addr::new(93, 184, 216, 34), 443);
            let decision = gateway.enforce(&packet);
            println!(
                "{who:<16} -> internet: {}",
                match decision.action {
                    FlowAction::Forward => "forwarded",
                    FlowAction::Drop => "BLOCKED",
                }
            );
        };
    try_internet(&mut gateway, hue.mac, "Hue Bridge");
    try_internet(&mut gateway, cam.mac, "Edimax camera");
    try_internet(&mut gateway, mystery.mac, "mystery gadget");

    // The restricted camera can still reach its vendor cloud.
    let whitelist = gateway
        .report(cam.mac)
        .expect("onboarded")
        .response
        .permitted_endpoints
        .clone();
    if let Some(std::net::IpAddr::V4(cloud)) = whitelist.first() {
        let decision = gateway.enforce(&outbound(cam.mac, *cloud, 443));
        println!(
            "Edimax camera    -> vendor cloud {cloud}: {}",
            match decision.action {
                FlowAction::Forward => "forwarded (whitelisted)",
                FlowAction::Drop => "BLOCKED",
            }
        );
    }

    // Cross-overlay isolation: the quarantined camera cannot probe the
    // trusted bridge.
    let probe = Packet::udp_ipv4(
        Timestamp::from_secs(400),
        cam.mac,
        hue.mac,
        cam.device_ip,
        hue.device_ip,
        50001,
        80,
        AppPayload::Empty,
    );
    let decision = gateway.enforce(&probe);
    println!(
        "Edimax camera    -> Hue Bridge: {}",
        match decision.action {
            FlowAction::Forward => "forwarded",
            FlowAction::Drop => "BLOCKED (cross-overlay)",
        }
    );
}

fn onboard(
    gateway: &mut SecurityGateway<IoTSecurityService>,
    packets: &[Packet],
    mac: MacAddr,
    who: &str,
) {
    for packet in packets {
        gateway.observe(packet);
    }
    let report = gateway.finalize(mac).expect("monitored");
    println!("[{who}] {report}");
}

fn outbound(mac: MacAddr, dst: Ipv4Addr, port: u16) -> Packet {
    Packet::udp_ipv4(
        Timestamp::from_secs(300),
        mac,
        MacAddr::new([0x02, 0x53, 0x47, 0x57, 0x00, 0x01]),
        Ipv4Addr::new(192, 168, 0, 99),
        dst,
        50000,
        port,
        AppPayload::Empty,
    )
}
