//! The fixed-size fingerprint `F'` (Sect. IV-A).
//!
//! `F'` concatenates the first 12 unique packet vectors of `F` into a
//! `12 × 23 = 276`-dimensional feature vector, zero-padding if `F` holds
//! fewer than 12 unique packets. The paper's preliminary analysis found
//! 12 packets "long enough to distinguish device-types and short enough
//! to be fully filled with unique packets from F".

use serde::{Deserialize, Serialize};

use crate::{Fingerprint, FEATURE_COUNT};

/// Number of unique packets concatenated into `F'`.
pub const FIXED_PACKETS: usize = 12;

/// Dimensionality of `F'` (`12 × 23`).
pub const FIXED_DIMENSIONS: usize = FIXED_PACKETS * FEATURE_COUNT;

/// The fixed-size fingerprint `F'` consumed by the per-device-type
/// classifiers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixedFingerprint {
    values: Vec<f64>,
}

impl FixedFingerprint {
    /// Builds the standard 276-dimensional `F'` from a fingerprint.
    pub fn from_fingerprint(fingerprint: &Fingerprint) -> Self {
        Self::with_packets(fingerprint, FIXED_PACKETS)
    }

    /// Builds an `F'` variant truncated at `packets` unique packets
    /// (`packets × 23` dimensions) — used by the truncation-length
    /// ablation experiment.
    pub fn with_packets(fingerprint: &Fingerprint, packets: usize) -> Self {
        let mut values = vec![0.0; packets * FEATURE_COUNT];
        for (i, vector) in fingerprint.unique_vectors(packets).into_iter().enumerate() {
            values[i * FEATURE_COUNT..(i + 1) * FEATURE_COUNT].copy_from_slice(&vector.to_array());
        }
        FixedFingerprint { values }
    }

    /// The feature values (unique packets concatenated, zero-padded).
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// The dimensionality of this vector.
    pub fn dimensions(&self) -> usize {
        self.values.len()
    }
}

impl AsRef<[f64]> for FixedFingerprint {
    fn as_ref(&self) -> &[f64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeatureVector;
    use sentinel_netproto::{MacAddr, Packet};

    fn vector(counter: u32) -> FeatureVector {
        FeatureVector::from_packet(&Packet::dhcp_discover(MacAddr::ZERO, 1, 0), counter)
    }

    #[test]
    fn dimensions_are_276() {
        assert_eq!(FIXED_DIMENSIONS, 276);
        let fp: Fingerprint = (1..=3).map(vector).collect();
        let fixed = FixedFingerprint::from_fingerprint(&fp);
        assert_eq!(fixed.dimensions(), 276);
    }

    #[test]
    fn short_fingerprints_zero_padded() {
        let fp: Fingerprint = (1..=2).map(vector).collect();
        let fixed = FixedFingerprint::from_fingerprint(&fp);
        // Two packets fill 46 slots; the rest must be zero.
        assert!(fixed.as_slice()[2 * FEATURE_COUNT..]
            .iter()
            .all(|&v| v == 0.0));
        // The filled part is not all zero (dhcp/udp/ip bits are set).
        assert!(fixed.as_slice()[..FEATURE_COUNT].iter().any(|&v| v != 0.0));
    }

    #[test]
    fn duplicates_do_not_fill_slots() {
        // ABAB -> unique A, B: only 2 slots filled.
        let fp = Fingerprint::new([vector(1), vector(2), vector(1), vector(2)]);
        let fixed = FixedFingerprint::from_fingerprint(&fp);
        assert!(fixed.as_slice()[2 * FEATURE_COUNT..]
            .iter()
            .all(|&v| v == 0.0));
    }

    #[test]
    fn long_fingerprints_truncated_at_12() {
        let fp: Fingerprint = (1..=30).map(vector).collect();
        let fixed = FixedFingerprint::from_fingerprint(&fp);
        assert_eq!(fixed.dimensions(), 276);
        // 12th unique packet has counter 12 at offset 11*23+20.
        assert_eq!(fixed.as_slice()[11 * FEATURE_COUNT + 20], 12.0);
    }

    #[test]
    fn ablation_lengths() {
        let fp: Fingerprint = (1..=30).map(vector).collect();
        for packets in [6, 9, 12, 15, 18] {
            let fixed = FixedFingerprint::with_packets(&fp, packets);
            assert_eq!(fixed.dimensions(), packets * FEATURE_COUNT);
        }
    }
}
