//! Per-device onboarding session state machines.
//!
//! A [`Session`] is the streaming replacement for the batch gateway's
//! raw packet buffer: it feeds every observed packet straight into an
//! incremental [`FeatureExtractor`] and keeps only the growing feature
//! matrix plus a handful of counters, so memory per monitored device is
//! bounded by the identification window (the detector's packet cap)
//! instead of the device's chattiness.

use sentinel_fingerprint::setup::SetupDetector;
use sentinel_fingerprint::{FeatureExtractor, Fingerprint};
use sentinel_netproto::{Packet, RawFeatures, Timestamp};

/// Why a session stopped collecting packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompletionReason {
    /// A transmission gap ended the setup phase (the paper's rate
    /// collapse, Sect. IV-A).
    IdleGap,
    /// The detector's hard packet cap was reached.
    PacketCap,
    /// The configured per-session byte cap was reached.
    ByteCap,
    /// The stream ended (or the runtime was flushed) with the session
    /// still open.
    Flush,
}

/// What [`Session::offer`] decided about one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEvent {
    /// The packet was absorbed into the session.
    Absorbed,
    /// The packet revealed an idle gap: the session must be completed
    /// *without* the packet (it belongs to steady-state traffic), exactly
    /// like the batch gateway's automatic finalization.
    GapComplete,
    /// The packet was absorbed and a hard cap was hit: complete now.
    CapComplete(CompletionReason),
}

/// Bounded per-device monitoring state for one in-flight setup phase.
#[derive(Debug, Clone)]
pub struct Session {
    extractor: FeatureExtractor,
    packets: usize,
    bytes: u64,
    first_seen: Timestamp,
    last_seen: Timestamp,
    opened_seq: u64,
    last_seq: u64,
}

impl Session {
    /// Opens a session at stream sequence number `seq`.
    pub fn open(seq: u64, now: Timestamp) -> Self {
        Session::open_sized(seq, now, 0)
    }

    /// Opens a session with `capacity` feature slots pre-allocated.
    ///
    /// The runtime passes the detector's packet cap, so a session never
    /// reallocates its feature arena while absorbing a setup burst.
    pub fn open_sized(seq: u64, now: Timestamp, capacity: usize) -> Self {
        Session {
            extractor: FeatureExtractor::with_capacity(capacity),
            packets: 0,
            bytes: 0,
            first_seen: now,
            last_seen: now,
            opened_seq: seq,
            last_seq: seq,
        }
    }

    /// Offers one packet (stream sequence `seq`) to the session.
    ///
    /// The decision mirrors `SecurityGateway::observe` bit for bit: the
    /// idle-gap check runs *before* the packet is absorbed (the packet
    /// that reveals the gap is steady-state traffic, not setup), the
    /// packet cap *after*. The byte cap is a streaming-only extension and
    /// is disabled when set to `u64::MAX`.
    pub fn offer(
        &mut self,
        packet: &Packet,
        seq: u64,
        detector: &SetupDetector,
        byte_cap: u64,
    ) -> SessionEvent {
        self.offer_raw(
            &RawFeatures::from_packet(packet),
            packet.timestamp,
            seq,
            detector,
            byte_cap,
        )
    }

    /// Offers one wire-scanned frame record to the session (the zero-copy
    /// fast path). Identical decision logic and state transitions as
    /// [`Session::offer`]: `raw.packet_size` is the frame's wire length,
    /// so byte accounting is bit-identical to the decode path.
    pub fn offer_raw(
        &mut self,
        raw: &RawFeatures,
        timestamp: Timestamp,
        seq: u64,
        detector: &SetupDetector,
        byte_cap: u64,
    ) -> SessionEvent {
        if self.packets >= detector.min_packets
            && timestamp.saturating_since(self.last_seen) >= detector.idle_gap
        {
            return SessionEvent::GapComplete;
        }
        self.extractor.push_raw(raw);
        self.packets += 1;
        self.bytes += u64::from(raw.packet_size);
        self.last_seen = timestamp;
        self.last_seq = seq;
        if self.packets >= detector.max_packets {
            SessionEvent::CapComplete(CompletionReason::PacketCap)
        } else if self.bytes >= byte_cap {
            SessionEvent::CapComplete(CompletionReason::ByteCap)
        } else {
            SessionEvent::Absorbed
        }
    }

    /// Finalizes the session into the fingerprint of everything absorbed.
    pub fn finish(self) -> Fingerprint {
        self.extractor.finish()
    }

    /// Packets absorbed so far.
    pub fn packets(&self) -> usize {
        self.packets
    }

    /// Wire bytes absorbed so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Capture time of the first offered packet.
    pub fn first_seen(&self) -> Timestamp {
        self.first_seen
    }

    /// Capture time of the last absorbed packet.
    pub fn last_seen(&self) -> Timestamp {
        self.last_seen
    }

    /// Stream sequence at which the session was opened.
    pub fn opened_seq(&self) -> u64 {
        self.opened_seq
    }

    /// Stream sequence of the last absorbed packet (the LRU key).
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_fingerprint::extract;
    use sentinel_netproto::MacAddr;
    use std::time::Duration;

    fn packets(n: u32, gap_millis: u64) -> Vec<Packet> {
        let mac = MacAddr::new([1, 1, 1, 1, 1, 1]);
        (0..n)
            .map(|i| Packet::dhcp_discover(mac, i, u64::from(i) * gap_millis * 1000))
            .collect()
    }

    #[test]
    fn incremental_fingerprint_matches_batch_extract() {
        let packets = packets(10, 50);
        let detector = SetupDetector::default();
        let mut session = Session::open(0, packets[0].timestamp);
        for (i, packet) in packets.iter().enumerate() {
            assert_eq!(
                session.offer(packet, i as u64, &detector, u64::MAX),
                SessionEvent::Absorbed
            );
        }
        assert_eq!(session.packets(), 10);
        assert_eq!(session.finish(), extract(&packets));
    }

    #[test]
    fn idle_gap_completes_without_the_trigger_packet() {
        let detector = SetupDetector::new(2, Duration::from_secs(5), 100);
        let burst = packets(4, 100);
        let mut session = Session::open(0, burst[0].timestamp);
        for (i, packet) in burst.iter().enumerate() {
            session.offer(packet, i as u64, &detector, u64::MAX);
        }
        let mut late = burst[0].clone();
        late.timestamp = burst.last().unwrap().timestamp + Duration::from_secs(30);
        assert_eq!(
            session.offer(&late, 99, &detector, u64::MAX),
            SessionEvent::GapComplete
        );
        // The gap packet must not be in the fingerprint.
        assert_eq!(session.packets(), 4);
    }

    #[test]
    fn packet_cap_completes_inclusively() {
        let detector = SetupDetector::new(1, Duration::from_secs(600), 3);
        let burst = packets(5, 10);
        let mut session = Session::open(0, burst[0].timestamp);
        assert_eq!(
            session.offer(&burst[0], 0, &detector, u64::MAX),
            SessionEvent::Absorbed
        );
        assert_eq!(
            session.offer(&burst[1], 1, &detector, u64::MAX),
            SessionEvent::Absorbed
        );
        assert_eq!(
            session.offer(&burst[2], 2, &detector, u64::MAX),
            SessionEvent::CapComplete(CompletionReason::PacketCap)
        );
    }

    #[test]
    fn byte_cap_completes() {
        let detector = SetupDetector::default();
        let burst = packets(3, 10);
        let cap = burst[0].wire_len() as u64; // first packet already hits it
        let mut session = Session::open(0, burst[0].timestamp);
        assert_eq!(
            session.offer(&burst[0], 0, &detector, cap),
            SessionEvent::CapComplete(CompletionReason::ByteCap)
        );
        assert!(session.bytes() >= cap);
    }
}
