//! Plain-text rendering helpers for the reproduction binaries.

/// Renders a table with a header row: columns are sized to their widest
/// cell, left-aligned for the first column and right-aligned otherwise.
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let columns = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(columns) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let mut push_row = |cells: Vec<String>| {
        for (i, cell) in cells.iter().enumerate().take(columns) {
            if i == 0 {
                out.push_str(&format!("{:<width$}  ", cell, width = widths[0]));
            } else {
                out.push_str(&format!("{:>width$}  ", cell, width = widths[i]));
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    push_row(header.iter().map(|s| s.to_string()).collect());
    push_row(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        push_row(row.clone());
    }
    out
}

/// Formats a ratio as a fixed-precision decimal (Fig. 5 style).
pub fn ratio(value: f64) -> String {
    format!("{value:.3}")
}

/// A section banner for experiment output.
pub fn banner(title: &str) -> String {
    let bar = "=".repeat(title.len().max(8));
    format!("{bar}\n{title}\n{bar}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let out = render(
            &["Device", "Accuracy"],
            &[
                vec!["Aria".into(), "1.000".into()],
                vec!["D-LinkWaterSensor".into(), "0.515".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Device"));
        assert!(lines[3].contains("0.515"));
        // Numeric column right-aligned under its header.
        assert!(lines[2].ends_with("1.000"));
    }

    #[test]
    fn ratio_format() {
        assert_eq!(ratio(0.8148), "0.815");
        assert_eq!(ratio(1.0), "1.000");
    }

    #[test]
    fn banner_contains_title() {
        assert!(banner("Table IV").contains("Table IV"));
    }
}
