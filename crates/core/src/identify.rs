//! The two-stage identification pipeline (Sect. IV-B).
//!
//! Stage 1 feeds `F'` to every per-type classifier. Zero acceptances ⇒
//! unknown device-type. One acceptance ⇒ done. Several ⇒ stage 2:
//! compare the full fingerprint `F` against 5 reference fingerprints of
//! each candidate type with normalized Damerau–Levenshtein distance,
//! sum per type into a dissimilarity score `s_i ∈ [0, 5]`, and pick the
//! minimum.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use sentinel_fingerprint::editdist::{
    osa_distance_bounded, osa_distance_wavefront_with, WavefrontScratch,
};
use sentinel_fingerprint::{Fingerprint, FixedFingerprint, InternedFingerprint, SymbolTable};
use sentinel_ml::parallel;
use sentinel_ml::pinned::PinnedRng;
use sentinel_ml::sampling::sample_without_replacement;
use sentinel_ml::{BatchMatrix, PackedForest};
use sentinel_netproto::MacAddr;

use crate::report::{Identification, Outcome};
use crate::{BankConfig, ClassifierBank, FingerprintDataset};

/// The deterministic key of one assessment in a packet stream: the
/// stream sequence number of the packet that completed the device's
/// setup phase, plus the device MAC.
///
/// Keyed identification ([`Identifier::identify_keyed`]) derives its
/// entire discrimination randomness — reference sampling and tie-breaks
/// — from `(seed, key)` through the v2 pinned RNG contract
/// ([`sentinel_ml::pinned`]). The answer is therefore a pure function of
/// the trained model, the fingerprints and this key: two completions
/// assess identically no matter which shard, thread or order serves
/// them, which is what lets a streaming runtime score stage 2 inside
/// its parallel region. The v1 shared-`StdRng` stream (still behind the
/// unkeyed [`Identifier::identify`], for evaluation harnesses) is
/// order-dependent and superseded by this contract on every onboarding
/// path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AssessKey {
    /// Stream sequence of the completing packet (unique per stream).
    pub seq: u64,
    /// The assessed device's MAC address.
    pub mac: MacAddr,
}

impl AssessKey {
    /// Builds the key for a completion.
    pub fn new(seq: u64, mac: MacAddr) -> Self {
        AssessKey { seq, mac }
    }

    /// The MAC's 48 bits as the low key word.
    fn mac_bits(self) -> u64 {
        self.mac
            .octets()
            .iter()
            .fold(0u64, |bits, &byte| (bits << 8) | u64::from(byte))
    }

    /// The pinned per-completion generator for a model seed.
    pub(crate) fn rng(self, seed: u64) -> PinnedRng {
        PinnedRng::from_key(seed, self.seq, self.mac_bits())
    }
}

/// Where discrimination draws its randomness from.
///
/// `Shared` is the v1 contract: one seeded `StdRng` per identifier,
/// advanced on every identification, so each answer depends on how many
/// came before it. `Keyed` is the v2 contract: a [`PinnedRng`] built
/// per assessment from an [`AssessKey`], so answers are
/// order-independent. Both draw the same *shape* (one reference
/// permutation per candidate, at most one tie-break index), only the
/// streams differ.
enum Draw<'a> {
    Shared(&'a Mutex<StdRng>),
    Keyed(PinnedRng),
}

impl Draw<'_> {
    /// Draws `k` references without replacement from `pool`.
    fn sample(&mut self, pool: &[usize], k: usize) -> Vec<usize> {
        match self {
            Draw::Shared(rng) => sample_without_replacement(pool, k, &mut *rng.lock()),
            Draw::Keyed(rng) => rng.sample_k(pool, k),
        }
    }

    /// Draws a tie-break index in `0..n`.
    fn index(&mut self, n: usize) -> usize {
        match self {
            Draw::Shared(rng) => {
                use rand::Rng;
                rng.lock().gen_range(0..n)
            }
            Draw::Keyed(rng) => rng.index(n),
        }
    }
}

/// Which pipeline variant to run — the ablation axis of
/// `fig5_accuracy --mode`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum IdentifyMode {
    /// The paper's pipeline: classifier bank, then edit-distance
    /// discrimination of multiple matches.
    #[default]
    TwoStage,
    /// Classifier bank only; ties broken by acceptance confidence.
    RfOnly,
    /// Edit distance against every type's references (no classifiers) —
    /// accurate but slow, the paper's argument for the two-stage design.
    EditOnly,
}

/// Configuration of an [`Identifier`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdentifierConfig {
    /// Classifier-bank training parameters.
    pub bank: BankConfig,
    /// Reference fingerprints per type used for discrimination (the
    /// paper uses 5).
    pub references_per_type: usize,
    /// Pipeline variant.
    pub mode: IdentifyMode,
    /// Seed for reference sampling.
    pub seed: u64,
    /// Rejection cutoff on the winner's *mean* normalized dissimilarity:
    /// if even the best-scoring candidate is farther than this from its
    /// own references (per sampled reference, so the score cutoff is
    /// `max_dissimilarity × references`), the device is reported as
    /// unknown rather than force-matched. Same-type probes score well
    /// below this; traffic that shares nothing with a type's references
    /// scores 1.0 per reference.
    pub max_dissimilarity: f64,
    /// Worker threads for stage-2 candidate scoring (`0` = auto via
    /// `SENTINEL_THREADS` / available parallelism, `1` = the exact
    /// sequential path). Reference sampling and tie-breaking always run
    /// sequentially, so the identified label is thread-count-invariant.
    pub threads: usize,
}

impl Default for IdentifierConfig {
    fn default() -> Self {
        IdentifierConfig {
            bank: BankConfig::default(),
            references_per_type: 5,
            mode: IdentifyMode::TwoStage,
            seed: 0,
            max_dissimilarity: 0.9,
            threads: 0,
        }
    }
}

/// Reusable scratch for the batched identification paths.
///
/// Holds the [`BatchMatrix`] batch scratch, the per-forest
/// acceptance buffer, the per-item candidate pool and the stage-2
/// wavefront band buffers. A caller that keeps one `ClassifyScratch`
/// alive across ticks (the streaming runtime holds one per shard)
/// performs **zero per-tick heap allocations** in steady-state batched
/// classification — pinned by the counting-allocator test
/// `crates/core/tests/alloc_batch.rs`. The scratch carries no state
/// between calls, so reuse cannot change any result.
#[derive(Debug, Default)]
pub struct ClassifyScratch {
    /// Feature-major transpose of the current batch's `F'` rows.
    matrix: BatchMatrix,
    /// Per-forest acceptance verdicts for the current batch.
    accepted: Vec<bool>,
    /// Per-item candidate label sets; entries are reused across ticks.
    candidates: Vec<Vec<usize>>,
    /// Diagonal band buffers for stage-2 wavefront edit distances.
    wavefront: WavefrontScratch,
    /// `F'` bit-pattern buffer for verdict-cache key derivation.
    key: Vec<u64>,
    /// Batch slots the verdict cache could not answer, in batch order.
    misses: Vec<u32>,
    /// Routing hash of each miss, aligned with `misses`.
    miss_hashes: Vec<u64>,
    /// `(batch slot, miss index)` pairs whose row duplicates an earlier
    /// miss of the same batch — classified once, copied after.
    aliases: Vec<(u32, u32)>,
    /// In-batch dedup index: routing hash → first miss with that hash.
    pending: HashMap<u64, u32>,
}

/// Domain tag of the verdict cache's shard-routing hash family.
const VERDICT_DOMAIN: u64 = 0x5645_5244_4943_5431; // "VERDICT1"

/// Domain tag of the model-identity stamp hashed over the interned
/// reference corpus.
const MODEL_STAMP_DOMAIN: u64 = 0x4d4f_4445_4c49_4431; // "MODELID1"

/// Lock shards of the verdict cache (fixed: shard membership of a key
/// never depends on the machine or the run).
const VERDICT_SHARDS: usize = 16;

/// One content-addressed stage-1 verdict: the exact `F'` bit pattern
/// and the candidate labels every per-type classifier produced for it.
#[derive(Debug)]
struct CachedVerdict {
    bits: Box<[u64]>,
    labels: Box<[u32]>,
}

/// The content-addressed stage-1 verdict cache.
///
/// Stage-1 classification is a pure function of the 276-dim `F'`
/// vector, so its verdict can be shared by every completion across a
/// whole gateway fleet that extracts the same fingerprint. Entries are
/// keyed by the **exact bit pattern** of `F'` (`f64::to_bits` per
/// dimension): the routing hash — a domain-separated word-wise FNV of
/// the bit pattern, keyed by the model stamp
/// ([`sentinel_ml::hash::keyed_hash_words`]) — only picks the lock
/// shard and the bucket chain, and every chain entry is compared for
/// full bit equality before it answers. A hash collision therefore
/// costs a chain walk, never a wrong verdict, which is what makes the
/// cache byte-transparent: results with the cache on are identical to
/// results with it off, entry by entry.
///
/// Hit/lookup counters are scheduling-dependent under concurrency
/// (which thread misses first is a race), so they are exposed only
/// through [`Identifier::verdict_cache_stats`] for observability and
/// never folded into any deterministic report.
#[derive(Debug)]
struct VerdictCache {
    /// Model-identity stamp: a content hash of the interned reference
    /// corpus, mixed into the routing-hash domain so caches of
    /// different trained models route (and would chain-compare) in
    /// unrelated hash families. The cache is owned by one
    /// [`Identifier`] and rebuilt on [`Identifier::add_type`], so the
    /// stamp is defense in depth, not the correctness boundary — that
    /// is the exact-bits comparison.
    stamp: u64,
    shards: Vec<Mutex<HashMap<u64, Vec<CachedVerdict>>>>,
    hits: AtomicU64,
    lookups: AtomicU64,
}

impl VerdictCache {
    fn new(stamp: u64) -> Self {
        VerdictCache {
            stamp,
            shards: (0..VERDICT_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
        }
    }

    /// The shard/bucket routing hash of one `F'` bit pattern.
    fn row_hash(&self, bits: &[u64]) -> u64 {
        sentinel_ml::hash::keyed_hash_words(
            VERDICT_DOMAIN ^ self.stamp,
            bits.iter().copied(),
        )
    }

    /// Copies the cached candidate labels of `bits` into `out` if an
    /// exactly-equal entry exists. Counts one lookup (and, on success,
    /// one hit).
    fn lookup_into(&self, hash: u64, bits: &[u64], out: &mut Vec<usize>) -> bool {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let shard = self.shards[(hash % VERDICT_SHARDS as u64) as usize].lock();
        if let Some(chain) = shard.get(&hash) {
            for entry in chain {
                if *entry.bits == *bits {
                    out.extend(entry.labels.iter().map(|&label| label as usize));
                    drop(shard);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
            }
        }
        false
    }

    /// Inserts one freshly classified verdict. `row` is the `F'` row in
    /// feature values; its bit pattern becomes the key. Idempotent
    /// under races: if another thread inserted the same bits first, the
    /// (necessarily identical) entry is kept and this one dropped.
    fn insert(&self, hash: u64, row: &[f64], labels: &[usize]) {
        let mut shard = self.shards[(hash % VERDICT_SHARDS as u64) as usize].lock();
        let chain = shard.entry(hash).or_default();
        if chain
            .iter()
            .any(|entry| entry.bits.iter().copied().eq(row.iter().map(|v| v.to_bits())))
        {
            return;
        }
        chain.push(CachedVerdict {
            bits: row.iter().map(|v| v.to_bits()).collect(),
            labels: labels.iter().map(|&label| label as u32).collect(),
        });
    }

    fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.lookups.load(Ordering::Relaxed),
        )
    }
}

/// The trained identification pipeline: classifier bank plus reference
/// fingerprints for edit-distance discrimination.
#[derive(Debug)]
pub struct Identifier {
    bank: ClassifierBank,
    /// Per-label packed prediction arenas over the bank's forests — the
    /// stage-1 hot path (results identical to the bank's own forests).
    packed: Vec<PackedForest>,
    /// All training fingerprints `F`, grouped by type label.
    references: Vec<Vec<Fingerprint>>,
    /// Packet columns of every reference, interned to `u32` symbols.
    symbols: SymbolTable,
    /// Interned views of `references` (same shape), precomputed at
    /// training time so the OSA inner loop compares integers.
    interned: Vec<Vec<InternedFingerprint>>,
    /// `0..references[label].len()` per label — the sampling pool handed
    /// to [`sample_without_replacement`], prebuilt so discrimination does
    /// not allocate it on every identification.
    pools: Vec<Vec<usize>>,
    config: IdentifierConfig,
    /// [`IdentifierConfig::threads`] resolved once at assembly —
    /// `effective_threads` consults the environment and the scheduler,
    /// which is far too slow for the per-identification hot path.
    threads: usize,
    rng: Mutex<StdRng>,
    /// Content-addressed stage-1 verdict cache — `None` (the default)
    /// leaves every batch path exactly on the uncached kernel. Enabled
    /// explicitly via [`Identifier::enable_verdict_cache`] by callers
    /// that classify many repeated fingerprints (the fleet simulation);
    /// not part of [`IdentifierConfig`], so trained-model snapshots are
    /// unaffected by the toggle.
    verdict_cache: Option<VerdictCache>,
}

/// The serializable snapshot of a trained [`Identifier`] — what an
/// IoTSSP ships to (or restores from) persistent storage so gateways do
/// not retrain on every boot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedModel {
    bank: ClassifierBank,
    references: Vec<Vec<Fingerprint>>,
    config: IdentifierConfig,
}

impl TrainedModel {
    /// Reassembles a model from persisted parts. The reference list is
    /// indexed by the bank's labels, so both must agree on the number
    /// of device-types.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant.
    pub fn from_parts(
        bank: ClassifierBank,
        references: Vec<Vec<Fingerprint>>,
        config: IdentifierConfig,
    ) -> Result<Self, String> {
        if references.len() != bank.n_types() {
            return Err(format!(
                "{} reference sets for {} device-types",
                references.len(),
                bank.n_types()
            ));
        }
        Ok(TrainedModel {
            bank,
            references,
            config,
        })
    }

    /// The stage-1 one-vs-rest classifier bank.
    pub fn bank(&self) -> &ClassifierBank {
        &self.bank
    }

    /// Stage-2 reference fingerprints, indexed by label.
    pub fn references(&self) -> &[Vec<Fingerprint>] {
        &self.references
    }

    /// The configuration the identifier was trained with.
    pub fn config(&self) -> &IdentifierConfig {
        &self.config
    }
}

impl From<&Identifier> for TrainedModel {
    fn from(identifier: &Identifier) -> Self {
        TrainedModel {
            bank: identifier.bank.clone(),
            references: identifier.references.clone(),
            config: identifier.config.clone(),
        }
    }
}

impl From<TrainedModel> for Identifier {
    fn from(model: TrainedModel) -> Self {
        Identifier::assemble(model.bank, model.references, model.config)
    }
}

impl Identifier {
    /// Trains the pipeline on a labeled fingerprint dataset.
    pub fn train(dataset: &FingerprintDataset, config: &IdentifierConfig) -> Self {
        let bank = ClassifierBank::train(dataset, &config.bank);
        let references = (0..dataset.n_types())
            .map(|label| {
                dataset
                    .indices_of(label)
                    .into_iter()
                    .map(|i| dataset.full(i).clone())
                    .collect()
            })
            .collect();
        Identifier::assemble(bank, references, config.clone())
    }

    /// Builds the identifier from its parts, interning every reference
    /// fingerprint so identification-time edit distances run over `u32`
    /// symbols.
    fn assemble(
        bank: ClassifierBank,
        references: Vec<Vec<Fingerprint>>,
        config: IdentifierConfig,
    ) -> Self {
        let mut symbols = SymbolTable::new();
        let interned = references
            .iter()
            .map(|of_type| of_type.iter().map(|fp| symbols.intern(fp)).collect())
            .collect();
        let packed = (0..bank.n_types())
            .map(|label| PackedForest::from_forest(bank.classifier(label)))
            .collect();
        let pools = references
            .iter()
            .map(|of_type| (0..of_type.len()).collect())
            .collect();
        let rng = Mutex::new(StdRng::seed_from_u64(config.seed));
        let threads = parallel::effective_threads(config.threads);
        Identifier {
            bank,
            packed,
            references,
            symbols,
            interned,
            pools,
            threads,
            config,
            rng,
            verdict_cache: None,
        }
    }

    /// The model-identity stamp: a content hash of every interned
    /// reference fingerprint's symbols (sequence boundaries included)
    /// folded with the number of trained types. Two identifiers trained
    /// on different corpora get different stamps, which keys their
    /// verdict caches into unrelated routing-hash families.
    fn model_stamp(&self) -> u64 {
        let corpus = sentinel_ml::hash::symbol_set_hash(
            MODEL_STAMP_DOMAIN,
            self.interned
                .iter()
                .flat_map(|of_type| of_type.iter().map(InternedFingerprint::symbols)),
        );
        sentinel_ml::hash::keyed_hash(corpus, [self.bank.n_types() as u64])
    }

    /// Turns the content-addressed stage-1 verdict cache on or off.
    ///
    /// The cache is **byte-transparent**: every batch classification
    /// path returns bit-identical candidate sets with the cache on or
    /// off, because entries are keyed by the exact `F'` bit pattern and
    /// stage 1 is a pure function of it. Enabling (or re-enabling)
    /// starts from an empty cache stamped with the current model
    /// identity; [`Identifier::add_type`] rebuilds an enabled cache so
    /// stale verdicts can never outlive the model they were computed
    /// under.
    pub fn enable_verdict_cache(&mut self, enabled: bool) {
        self.verdict_cache = enabled.then(|| VerdictCache::new(self.model_stamp()));
    }

    /// `(hits, lookups)` of the verdict cache since it was enabled —
    /// `(0, 0)` when disabled. Scheduling-dependent under concurrency
    /// (which racing thread misses first is not deterministic), so
    /// callers must keep these out of any byte-compared report.
    pub fn verdict_cache_stats(&self) -> (u64, u64) {
        self.verdict_cache
            .as_ref()
            .map_or((0, 0), VerdictCache::stats)
    }

    /// The underlying classifier bank.
    pub fn bank(&self) -> &ClassifierBank {
        &self.bank
    }

    /// Learns one additional device-type incrementally: trains its
    /// classifier ([`ClassifierBank::add_type`]), registers its stage-2
    /// reference fingerprints, and packs its prediction arena — all
    /// without touching the existing types' models, references or
    /// interned symbols. Returns the new type's label.
    ///
    /// `dataset` must contain fingerprints labeled with the new type's
    /// index (i.e. the current number of types). The appended state is
    /// bit-identical to what a full [`Identifier::train`] on `dataset`
    /// builds for that label: the classifier's RNG streams derive from
    /// the label and seeds alone, references are registered in the same
    /// label order, and interning new symbols is append-only.
    pub fn add_type(&mut self, name: impl Into<String>, dataset: &FingerprintDataset) -> usize {
        let label = self.bank.add_type(name, dataset);
        let references: Vec<Fingerprint> = dataset
            .indices_of(label)
            .into_iter()
            .map(|i| dataset.full(i).clone())
            .collect();
        let interned = references
            .iter()
            .map(|fp| self.symbols.intern(fp))
            .collect();
        self.packed
            .push(PackedForest::from_forest(self.bank.classifier(label)));
        self.pools.push((0..references.len()).collect());
        self.interned.push(interned);
        self.references.push(references);
        // The model changed: verdicts computed under the old type set
        // are stale (the new classifier may accept old fingerprints),
        // so an enabled cache restarts empty under the new stamp.
        if self.verdict_cache.is_some() {
            self.verdict_cache = Some(VerdictCache::new(self.model_stamp()));
        }
        label
    }

    /// Serializes the trained pipeline as JSON.
    ///
    /// # Errors
    ///
    /// Returns any I/O or serialization error from `serde_json`.
    pub fn to_json_writer<W: std::io::Write>(&self, writer: W) -> Result<(), serde_json::Error> {
        serde_json::to_writer(writer, &TrainedModel::from(self))
    }

    /// Restores a pipeline serialized with [`Identifier::to_json_writer`].
    /// The discrimination RNG restarts from the config seed.
    ///
    /// # Errors
    ///
    /// Returns any I/O or deserialization error from `serde_json`.
    pub fn from_json_reader<R: std::io::Read>(reader: R) -> Result<Self, serde_json::Error> {
        let model: TrainedModel = serde_json::from_reader(reader)?;
        Ok(model.into())
    }

    /// Device-type names, indexed by label.
    pub fn type_names(&self) -> &[String] {
        self.bank.type_names()
    }

    /// Identifies a device from its fingerprints, drawing from the
    /// shared (order-dependent, v1) discrimination stream. Kept for
    /// evaluation harnesses and direct service queries; every streaming
    /// onboarding path goes through [`Identifier::identify_keyed`]
    /// instead.
    pub fn identify(&self, full: &Fingerprint, fixed: &FixedFingerprint) -> Identification {
        self.identify_with(full, fixed, Draw::Shared(&self.rng))
    }

    /// Identifies a device with the v2 pinned per-completion draw: the
    /// answer is a pure function of the trained model, the fingerprints
    /// and `key`, so calls may run concurrently and in any order with
    /// bit-identical results (see [`AssessKey`]).
    pub fn identify_keyed(
        &self,
        full: &Fingerprint,
        fixed: &FixedFingerprint,
        key: AssessKey,
    ) -> Identification {
        self.identify_with(full, fixed, Draw::Keyed(key.rng(self.config.seed)))
    }

    /// The mode dispatch shared by both draw contracts.
    fn identify_with(
        &self,
        full: &Fingerprint,
        fixed: &FixedFingerprint,
        mut draw: Draw,
    ) -> Identification {
        let mut wavefront = WavefrontScratch::default();
        match self.config.mode {
            IdentifyMode::TwoStage => {
                self.discriminate_with(full, self.classify(fixed), &mut draw, &mut wavefront)
            }
            IdentifyMode::RfOnly => self.rf_best(fixed, self.classify(fixed)),
            IdentifyMode::EditOnly => {
                let all: Vec<usize> = (0..self.bank.n_types()).collect();
                let scores = self.dissimilarity_scores(full, &all, &mut draw, &mut wavefront);
                self.pick_minimum(all, scores, false, &mut draw)
            }
        }
    }

    /// Identifies a whole batch of devices, returning one
    /// [`Identification`] per item in order — bit-identical to calling
    /// [`Identifier::identify`] on each item in sequence.
    ///
    /// Stage 1 is RNG-free, so it runs batched through
    /// [`Identifier::classify_batch`] (forest-major, cache-friendly);
    /// stage 2 consumes the discrimination RNG and therefore runs
    /// strictly sequentially in item order, exactly as the
    /// per-item path would.
    pub fn identify_batch(
        &self,
        items: &[(&Fingerprint, &FixedFingerprint)],
    ) -> Vec<Identification> {
        match self.config.mode {
            IdentifyMode::TwoStage | IdentifyMode::RfOnly => {
                let mut scratch = ClassifyScratch::default();
                let n = self.classify_into(items.iter().map(|&(_, f)| f.as_slice()), &mut scratch);
                debug_assert_eq!(n, items.len());
                items
                    .iter()
                    .enumerate()
                    .map(|(index, &(full, fixed))| {
                        let candidates = scratch.candidates[index].clone();
                        match self.config.mode {
                            IdentifyMode::TwoStage => {
                                let mut draw = Draw::Shared(&self.rng);
                                self.discriminate_with(
                                    full,
                                    candidates,
                                    &mut draw,
                                    &mut scratch.wavefront,
                                )
                            }
                            _ => self.rf_best(fixed, candidates),
                        }
                    })
                    .collect()
            }
            // Edit-only has no stage 1 to batch.
            IdentifyMode::EditOnly => items
                .iter()
                .map(|&(full, fixed)| self.identify(full, fixed))
                .collect(),
        }
    }

    /// Identifies a whole batch of keyed completions — bit-identical to
    /// calling [`Identifier::identify_keyed`] on each item, in any
    /// order. Stage 1 runs batched (forest-major over the packed
    /// arenas); stage 2 builds each item's pinned generator from its
    /// [`AssessKey`], so unlike [`Identifier::identify_batch`] nothing
    /// here depends on item order — which is what lets a sharded
    /// streaming runtime call this concurrently on per-shard slices of
    /// one tick's completions.
    pub fn identify_keyed_batch(
        &self,
        items: &[(&Fingerprint, &FixedFingerprint, AssessKey)],
    ) -> Vec<Identification> {
        let mut scratch = ClassifyScratch::default();
        let mut out = Vec::with_capacity(items.len());
        self.identify_keyed_batch_into(items, &mut scratch, &mut out);
        out
    }

    /// [`Identifier::identify_keyed_batch`] into caller-owned buffers:
    /// identifications are **appended** to `out` (the shared batch-entry
    /// contract — the caller owns and clears `out`), and all stage-1 and
    /// stage-2 working memory comes from `scratch`, so a caller that
    /// keeps both warm across ticks (the streaming runtime's shards)
    /// rebuilds nothing per tick.
    pub fn identify_keyed_batch_into(
        &self,
        items: &[(&Fingerprint, &FixedFingerprint, AssessKey)],
        scratch: &mut ClassifyScratch,
        out: &mut Vec<Identification>,
    ) {
        match self.config.mode {
            IdentifyMode::TwoStage | IdentifyMode::RfOnly => {
                let n = self.classify_into(items.iter().map(|&(_, f, _)| f.as_slice()), scratch);
                debug_assert_eq!(n, items.len());
                for (index, &(full, fixed, key)) in items.iter().enumerate() {
                    let candidates = scratch.candidates[index].clone();
                    let identification = match self.config.mode {
                        IdentifyMode::TwoStage => {
                            let mut draw = Draw::Keyed(key.rng(self.config.seed));
                            self.discriminate_with(
                                full,
                                candidates,
                                &mut draw,
                                &mut scratch.wavefront,
                            )
                        }
                        _ => self.rf_best(fixed, candidates),
                    };
                    out.push(identification);
                }
            }
            // Edit-only has no stage 1 to batch.
            IdentifyMode::EditOnly => out.extend(
                items
                    .iter()
                    .map(|&(full, fixed, key)| self.identify_keyed(full, fixed, key)),
            ),
        }
    }

    /// Stage-1 classification: labels of every per-type classifier that
    /// accepts the fingerprint, via the packed prediction arenas
    /// (identical to [`ClassifierBank::matches`], faster).
    pub fn classify(&self, fixed: &FixedFingerprint) -> Vec<usize> {
        self.packed
            .iter()
            .enumerate()
            .filter(|(_, forest)| forest.accepts(fixed.as_slice()))
            .map(|(label, _)| label)
            .collect()
    }

    /// Stage-1 classification of a whole batch: per-item candidate label
    /// sets, identical to calling [`Identifier::classify`] on each item.
    ///
    /// The loop order is inverted relative to the per-item path —
    /// *forests outermost, fingerprints innermost* — so each packed
    /// arena is walked by every fingerprint back-to-back while it is
    /// cache-resident, instead of all 27 arenas being cycled through per
    /// fingerprint. Labels are visited in increasing order, so each
    /// item's candidate vector is pushed in exactly the per-item order.
    pub fn classify_batch(&self, fixed: &[&FixedFingerprint]) -> Vec<Vec<usize>> {
        let mut scratch = ClassifyScratch::default();
        self.classify_batch_in(fixed, &mut scratch).to_vec()
    }

    /// [`Identifier::classify_batch`] into caller-owned scratch: the
    /// batch is transposed into the scratch's [`BatchMatrix`] and walked
    /// by the row-blocked kernel; the returned slice borrows the
    /// scratch's candidate pool (one entry per item, in order). With a
    /// warm scratch this makes zero heap allocations.
    pub fn classify_batch_in<'s>(
        &self,
        fixed: &[&FixedFingerprint],
        scratch: &'s mut ClassifyScratch,
    ) -> &'s [Vec<usize>] {
        let n = self.classify_into(fixed.iter().map(|f| f.as_slice()), scratch);
        &scratch.candidates[..n]
    }

    /// The kernel-backed stage 1 shared by every batch path: fills the
    /// scratch matrix straight from a row iterator (no intermediate
    /// row-pointer vector), walks each packed arena over the whole
    /// batch, and leaves item `i`'s candidate labels in
    /// `scratch.candidates[i]`. Returns the batch size.
    fn classify_into<'a, I>(&self, rows: I, scratch: &mut ClassifyScratch) -> usize
    where
        I: IntoIterator<Item = &'a [f64]>,
        I::IntoIter: ExactSizeIterator,
    {
        if let Some(cache) = &self.verdict_cache {
            return self.classify_into_cached(cache, rows, scratch);
        }
        scratch.matrix.fill(rows);
        let n = scratch.matrix.rows();
        if scratch.candidates.len() < n {
            scratch.candidates.resize_with(n, Vec::new);
        }
        for slot in scratch.candidates.iter_mut().take(n) {
            slot.clear();
        }
        for (label, forest) in self.packed.iter().enumerate() {
            scratch.accepted.clear();
            forest.accepts_rows(&scratch.matrix, &mut scratch.accepted);
            for (slot, &ok) in scratch.candidates.iter_mut().zip(&scratch.accepted) {
                if ok {
                    slot.push(label);
                }
            }
        }
        n
    }

    /// The verdict-cached stage-1 kernel. Bit-identical to the uncached
    /// path: cache hits replay labels that an earlier identical `F'`
    /// row produced (entries compare full bit patterns, and both paths
    /// emit labels in increasing order), in-batch duplicates are
    /// classified once and copied, and only genuinely new rows walk the
    /// forests — packed into a dense miss matrix so the row-blocked
    /// kernels keep their batch advantage.
    fn classify_into_cached<'a, I>(
        &self,
        cache: &VerdictCache,
        rows: I,
        scratch: &mut ClassifyScratch,
    ) -> usize
    where
        I: IntoIterator<Item = &'a [f64]>,
        I::IntoIter: ExactSizeIterator,
    {
        let rows = rows.into_iter();
        let n = rows.len();
        let ClassifyScratch {
            matrix,
            accepted,
            candidates,
            key,
            misses,
            miss_hashes,
            aliases,
            pending,
            ..
        } = scratch;
        if candidates.len() < n {
            candidates.resize_with(n, Vec::new);
        }
        matrix.clear();
        misses.clear();
        miss_hashes.clear();
        aliases.clear();
        pending.clear();
        for (index, cells) in rows.enumerate() {
            let slot = &mut candidates[index];
            slot.clear();
            key.clear();
            key.extend(cells.iter().map(|value| value.to_bits()));
            let hash = cache.row_hash(key);
            if cache.lookup_into(hash, key, slot) {
                continue;
            }
            // In-batch dedup: a row equal to an earlier miss of this
            // batch is classified once and its labels copied afterwards.
            // A routing-hash collision (equal hash, different bits)
            // falls through to its own miss slot; `pending` keeps
            // pointing at the first miss, so a collided row merely
            // loses its dedup shortcut — never its correct verdict.
            match pending.entry(hash) {
                Entry::Occupied(first) => {
                    let miss = *first.get();
                    let earlier = matrix.row(miss as usize);
                    if earlier
                        .iter()
                        .map(|value| value.to_bits())
                        .eq(key.iter().copied())
                    {
                        aliases.push((index as u32, miss));
                        continue;
                    }
                    matrix.push_row(cells);
                    misses.push(index as u32);
                    miss_hashes.push(hash);
                }
                Entry::Vacant(vacant) => {
                    vacant.insert(misses.len() as u32);
                    matrix.push_row(cells);
                    misses.push(index as u32);
                    miss_hashes.push(hash);
                }
            }
        }
        // Forest pass over the dense miss matrix, scattering each
        // accepted label back to the miss's batch slot (labels visited
        // in increasing order = per-item candidate order).
        if !misses.is_empty() {
            for (label, forest) in self.packed.iter().enumerate() {
                accepted.clear();
                forest.accepts_rows(matrix, accepted);
                for (miss, &ok) in accepted.iter().enumerate() {
                    if ok {
                        candidates[misses[miss] as usize].push(label);
                    }
                }
            }
        }
        // Publish fresh verdicts, then resolve in-batch aliases. An
        // alias's source slot always precedes it in the batch, so the
        // split borrow below is well-formed.
        for (miss, (&slot, &hash)) in misses.iter().zip(miss_hashes.iter()).enumerate() {
            cache.insert(hash, matrix.row(miss), &candidates[slot as usize]);
        }
        for &(index, miss) in aliases.iter() {
            let source = misses[miss as usize] as usize;
            debug_assert!(source < index as usize);
            let (head, tail) = candidates.split_at_mut(index as usize);
            tail[0].extend_from_slice(&head[source]);
        }
        n
    }

    /// Whether type `label`'s classifier accepts the fingerprint, via
    /// the packed arena (identical to [`ClassifierBank::accepts`]).
    pub fn accepts(&self, label: usize, fixed: &FixedFingerprint) -> bool {
        self.packed[label].accepts(fixed.as_slice())
    }

    /// Stage 2 of the two-stage pipeline, given the stage-1 candidate
    /// set (from [`Identifier::classify`] or a batched run).
    fn discriminate_with(
        &self,
        full: &Fingerprint,
        candidates: Vec<usize>,
        draw: &mut Draw,
        wavefront: &mut WavefrontScratch,
    ) -> Identification {
        match candidates.len() {
            0 => Identification {
                outcome: Outcome::Unknown,
                candidates,
                discriminated: false,
                scores: Vec::new(),
            },
            // A single acceptance still gets its dissimilarity checked:
            // a barely-over-threshold classifier can accept traffic that
            // shares nothing with the type's references, and the score
            // is what exposes that (see `max_dissimilarity`).
            1 => {
                let scores = self.dissimilarity_scores(full, &candidates, draw, wavefront);
                self.pick_minimum(candidates, scores, false, draw)
            }
            _ => {
                let scores = self.dissimilarity_scores(full, &candidates, draw, wavefront);
                self.pick_minimum(candidates, scores, true, draw)
            }
        }
    }

    /// Confidence-based tie-break over a stage-1 candidate set (the
    /// `RfOnly` ablation's second half).
    fn rf_best(&self, fixed: &FixedFingerprint, candidates: Vec<usize>) -> Identification {
        if candidates.is_empty() {
            return Identification {
                outcome: Outcome::Unknown,
                candidates,
                discriminated: false,
                scores: Vec::new(),
            };
        }
        let best = candidates
            .iter()
            .copied()
            .max_by(|&a, &b| {
                self.bank
                    .confidence(a, fixed)
                    .partial_cmp(&self.bank.confidence(b, fixed))
                    .expect("finite confidences")
            })
            .expect("nonempty candidates");
        Identification {
            outcome: Outcome::Identified {
                label: best,
                name: self.type_names()[best].clone(),
            },
            candidates,
            discriminated: false,
            scores: Vec::new(),
        }
    }

    /// Sums normalized edit distances to `references_per_type` sampled
    /// reference fingerprints of each candidate type (the paper's
    /// `s_i ∈ [0, 5]`).
    ///
    /// Distances run over interned symbol sequences and carry a
    /// best-so-far cutoff: once some candidate scored `B`, any other
    /// candidate abandons its banded DP as soon as its score provably
    /// exceeds `B + 1e-12` (the tie tolerance), recording a certified
    /// lower bound instead of the exact score. The winning label is
    /// unaffected — a pruned candidate can never reach the tie set —
    /// and the winner's own score is always exact.
    fn dissimilarity_scores(
        &self,
        full: &Fingerprint,
        candidates: &[usize],
        draw: &mut Draw,
        wavefront: &mut WavefrontScratch,
    ) -> Vec<f64> {
        // Reference sampling stays sequential, in candidate order, so
        // the draw stream is identical for every thread count.
        let chosen: Vec<Vec<usize>> = candidates
            .iter()
            .map(|&label| draw.sample(&self.pools[label], self.config.references_per_type))
            .collect();
        let probe = self.symbols.project(full);
        let threads = self.threads.min(candidates.len());
        // Fan out only when the candidate set is large enough to repay a
        // thread-spawn (a scoped fork/join costs tens of µs — more than
        // discriminating a whole vendor family sequentially). Ordinary
        // identifications over ≤ a few candidates always run inline;
        // `fig6_scaling`-sized sweeps over hundreds of types fan out.
        if threads <= 1 || candidates.len() < 16 {
            // Sequential: the cutoff tightens after every candidate.
            let mut best = f64::INFINITY;
            let mut scores = Vec::with_capacity(candidates.len());
            for (slot, &label) in candidates.iter().enumerate() {
                let score = self.score_candidate(&probe, label, &chosen[slot], best, wavefront);
                best = best.min(score);
                scores.push(score);
            }
            scores
        } else {
            // Parallel: the first candidate fixes the cutoff and the
            // rest race against it independently. Pruned lower bounds
            // can differ from the sequential path's (looser cutoff),
            // but the tie set — exact scores within 1e-12 of the
            // minimum — is provably the same, so the identified label
            // and the RNG stream are too. Each worker closure keeps its
            // own wavefront band buffers (scratch carries no state, so
            // per-thread scratch cannot change any distance).
            let first =
                self.score_candidate(&probe, candidates[0], &chosen[0], f64::INFINITY, wavefront);
            let mut scores = vec![first];
            scores.extend(parallel::map_indexed(candidates.len() - 1, threads, |i| {
                let mut local = WavefrontScratch::default();
                self.score_candidate(&probe, candidates[i + 1], &chosen[i + 1], first, &mut local)
            }));
            scores
        }
    }

    /// Shortest sequence length at which [`score_candidate`] switches
    /// from the row-major banded DP to the anti-diagonal wavefront —
    /// below this, the row sweep's band stays L1-resident and wins
    /// (`editdist_interned` bench); both formulations share one exact
    /// `Some`/`None` contract, so the dispatch cannot change a score.
    ///
    /// [`score_candidate`]: Identifier::score_candidate
    const WAVEFRONT_MIN: usize = 64;

    /// Scores one candidate type against its sampled references,
    /// abandoning early once the score provably exceeds `best + 1e-12`.
    ///
    /// Returns the exact score, or a lower bound `lb` with
    /// `best + 1e-12 < lb <= true score` when pruned.
    fn score_candidate(
        &self,
        probe: &InternedFingerprint,
        label: usize,
        chosen: &[usize],
        best: f64,
        wavefront: &mut WavefrontScratch,
    ) -> f64 {
        let refs = &self.interned[label];
        let mut sum = 0.0;
        for &index in chosen {
            let reference = &refs[index];
            let longest = probe.len().max(reference.len());
            if longest == 0 {
                continue; // two empty fingerprints: distance 0
            }
            // Band bound: the full `longest` when no cutoff is active
            // (an OSA distance never exceeds the longer length, so the
            // wavefront then always resolves), else the remaining
            // normalized-distance budget before the score leaves the
            // tie tolerance around `best`, rescaled to edit operations.
            let bound = if !best.is_finite() {
                longest
            } else {
                let budget = best + 1e-12 - sum;
                if budget <= 0.0 {
                    0
                } else {
                    ((budget * longest as f64).floor() as usize).min(longest)
                }
            };
            // Same band, same Some/None contract, two sweep orders: the
            // row-major banded DP keeps its whole band in L1 for short
            // fingerprints, while the anti-diagonal wavefront amortizes
            // its ring-buffer setup only once sequences are long enough
            // (the `editdist_interned` bench is the measured crossover).
            let distance = if longest >= Self::WAVEFRONT_MIN {
                osa_distance_wavefront_with(probe.symbols(), reference.symbols(), bound, wavefront)
            } else {
                osa_distance_bounded(probe.symbols(), reference.symbols(), bound)
            };
            match distance {
                Some(distance) => sum += distance as f64 / longest as f64,
                None => {
                    // distance >= bound + 1, so this partial sum is a
                    // certified lower bound strictly above
                    // `best + 1e-12`: the candidate cannot win or tie.
                    return sum + (bound + 1) as f64 / longest as f64;
                }
            }
        }
        sum
    }

    fn pick_minimum(
        &self,
        candidates: Vec<usize>,
        scores: Vec<f64>,
        discriminated: bool,
        draw: &mut Draw,
    ) -> Identification {
        let minimum = scores.iter().copied().fold(f64::INFINITY, f64::min);
        // Identical-firmware types can produce exactly tied dissimilarity
        // scores; break ties uniformly so neither twin is systematically
        // preferred.
        let tied: Vec<usize> = candidates
            .iter()
            .zip(&scores)
            .filter(|(_, &s)| s <= minimum + 1e-12)
            .map(|(&c, _)| c)
            .collect();
        let best = if tied.len() == 1 {
            tied[0]
        } else {
            tied[draw.index(tied.len())]
        };
        // Even the best candidate must actually resemble its own
        // references: a winner whose mean normalized distance exceeds
        // the cutoff is traffic the classifiers should not have
        // accepted, and is reported as unknown (the winner is never
        // pruned, so `minimum` is its exact score).
        let effective_refs = self
            .config
            .references_per_type
            .min(self.references[best].len());
        if minimum > self.config.max_dissimilarity * effective_refs as f64 {
            return Identification {
                outcome: Outcome::Unknown,
                candidates,
                discriminated,
                scores,
            };
        }
        Identification {
            outcome: Outcome::Identified {
                label: best,
                name: self.type_names()[best].clone(),
            },
            candidates,
            discriminated,
            scores,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_devicesim::{catalog, Testbed};
    use sentinel_fingerprint::extract;
    use sentinel_ml::ForestConfig;

    fn fast_config(mode: IdentifyMode) -> IdentifierConfig {
        IdentifierConfig {
            bank: BankConfig {
                forest: ForestConfig::default().with_trees(25),
                ..BankConfig::default()
            },
            mode,
            ..IdentifierConfig::default()
        }
    }

    fn train_on_three() -> (Identifier, FingerprintDataset) {
        let devices: Vec<_> = catalog().into_iter().take(3).collect();
        let dataset = FingerprintDataset::collect(&devices, 8, 5);
        let identifier = Identifier::train(&dataset, &fast_config(IdentifyMode::TwoStage));
        (identifier, dataset)
    }

    #[test]
    fn identifies_held_out_runs_of_known_types() {
        let (identifier, _) = train_on_three();
        let devices: Vec<_> = catalog().into_iter().take(3).collect();
        let testbed = Testbed::new(99); // different campaign seed = held-out runs
        let mut correct = 0;
        let mut total = 0;
        for (label, device) in devices.iter().enumerate() {
            for run in 0..4 {
                let trace = testbed.setup_run(&device.profile, run);
                let full = extract(&trace.packets);
                let fixed = FixedFingerprint::from_fingerprint(&full);
                let id = identifier.identify(&full, &fixed);
                total += 1;
                if id.label() == Some(label) {
                    correct += 1;
                }
            }
        }
        assert!(
            correct * 10 >= total * 9,
            "only {correct}/{total} held-out runs identified"
        );
    }

    #[test]
    fn out_of_distribution_device_rejected_by_all_classifiers() {
        use sentinel_devicesim::{DeviceProfile, Phase, RawDest};
        // Rejection needs a negative pool that covers the feature space:
        // train on the full catalog (as the deployed IoTSSP would).
        let devices = catalog();
        let dataset = FingerprintDataset::collect(&devices, 6, 5);
        let mut config = fast_config(IdentifyMode::TwoStage);
        config.bank.forest = ForestConfig::default().with_trees(15);
        let identifier = Identifier::train(&dataset, &config);
        // A device-type unlike anything trained on: pure proprietary
        // broadcast chatter, no DHCP/DNS/cloud traffic at all.
        let mut odd = DeviceProfile::new("OddBall", [9, 9, 9]);
        odd.extend_phases([
            Phase::UdpRaw {
                dest: RawDest::Broadcast,
                port: 7777,
                sizes: vec![700, 11, 700, 11],
            },
            Phase::Ping { count: 3 },
            Phase::UdpRaw {
                dest: RawDest::Gateway,
                port: 7778,
                sizes: vec![900],
            },
        ]);
        let trace = Testbed::new(1).setup_run(&odd, 0);
        let full = extract(&trace.packets);
        let fixed = FixedFingerprint::from_fingerprint(&full);
        let id = identifier.identify(&full, &fixed);
        assert_eq!(id.outcome, Outcome::Unknown, "got {id:?}");
    }

    #[test]
    fn edit_only_mode_identifies_without_classifiers() {
        let devices: Vec<_> = catalog().into_iter().take(3).collect();
        let dataset = FingerprintDataset::collect(&devices, 8, 5);
        let identifier = Identifier::train(&dataset, &fast_config(IdentifyMode::EditOnly));
        let trace = Testbed::new(77).setup_run(&devices[1].profile, 0);
        let full = extract(&trace.packets);
        let fixed = FixedFingerprint::from_fingerprint(&full);
        let id = identifier.identify(&full, &fixed);
        assert_eq!(id.label(), Some(1));
        assert_eq!(id.candidates.len(), 3, "edit-only scores every type");
    }

    #[test]
    fn model_json_roundtrip_preserves_behaviour() {
        let (identifier, dataset) = train_on_three();
        let mut buf = Vec::new();
        identifier.to_json_writer(&mut buf).unwrap();
        let restored = Identifier::from_json_reader(buf.as_slice()).unwrap();
        // Identical predictions on the training corpus (RNG restarts from
        // the same seed, so even tie-breaks agree).
        for i in 0..dataset.len() {
            let a = identifier_fresh_identify(&identifier, &dataset, i);
            let b = identifier_fresh_identify(&restored, &dataset, i);
            assert_eq!(a.candidates, b.candidates, "sample {i}");
        }
    }

    fn identifier_fresh_identify(
        identifier: &Identifier,
        dataset: &FingerprintDataset,
        i: usize,
    ) -> Identification {
        identifier.identify(dataset.full(i), dataset.fixed(i))
    }

    /// Collects (full, fixed) probe pairs: held-out runs of the three
    /// trained types plus the training corpus itself, so the batch mixes
    /// zero-, one- and many-candidate stage-1 outcomes.
    fn probe_pairs(dataset: &FingerprintDataset) -> Vec<(Fingerprint, FixedFingerprint)> {
        let devices: Vec<_> = catalog().into_iter().take(3).collect();
        let testbed = Testbed::new(123);
        let mut probes: Vec<(Fingerprint, FixedFingerprint)> = devices
            .iter()
            .flat_map(|device| (0..3).map(|run| testbed.setup_run(&device.profile, run)))
            .map(|trace| {
                let full = extract(&trace.packets);
                let fixed = FixedFingerprint::from_fingerprint(&full);
                (full, fixed)
            })
            .collect();
        probes.extend(
            (0..dataset.len()).map(|i| (dataset.full(i).clone(), dataset.fixed(i).clone())),
        );
        probes
    }

    #[test]
    fn batched_identification_is_bit_identical_to_sequential() {
        // Two identically-trained identifiers (each with its own fresh
        // discrimination RNG): one identifies per item in order, the
        // other in one batch. Every Identification — outcome, candidate
        // set, and stage-2 scores — must agree bit-for-bit.
        for mode in [IdentifyMode::TwoStage, IdentifyMode::RfOnly] {
            let devices: Vec<_> = catalog().into_iter().take(3).collect();
            let dataset = FingerprintDataset::collect(&devices, 8, 5);
            let sequential = Identifier::train(&dataset, &fast_config(mode));
            let batched = Identifier::train(&dataset, &fast_config(mode));
            let probes = probe_pairs(&dataset);
            let items: Vec<(&Fingerprint, &FixedFingerprint)> =
                probes.iter().map(|(full, fixed)| (full, fixed)).collect();
            let one_by_one: Vec<Identification> = items
                .iter()
                .map(|&(full, fixed)| sequential.identify(full, fixed))
                .collect();
            let in_batch = batched.identify_batch(&items);
            assert_eq!(one_by_one, in_batch, "mode {mode:?}");
        }
    }

    #[test]
    fn add_type_matches_full_retrain_for_the_new_label() {
        // Extending a trained identifier with a fourth type must leave
        // the three existing types bit-identical and append exactly the
        // state a full retrain on the extended dataset would build for
        // the new label: same classifier, same reference fingerprints,
        // and the same stage-1 decisions through the packed arena.
        let devices: Vec<_> = catalog().into_iter().take(4).collect();
        let three = FingerprintDataset::collect(&devices[..3], 8, 5);
        let four = FingerprintDataset::collect(&devices, 8, 5);
        let config = fast_config(IdentifyMode::TwoStage);
        let mut incremental = Identifier::train(&three, &config);
        let old_bank = incremental.bank().clone();
        let label = incremental.add_type(devices[3].info.identifier, &four);
        assert_eq!(label, 3);
        // Existing classifiers untouched, bit-for-bit.
        for old in 0..3 {
            assert_eq!(incremental.bank().classifier(old), old_bank.classifier(old));
        }
        let full = Identifier::train(&four, &config);
        assert_eq!(
            incremental.bank().classifier(label),
            full.bank().classifier(label)
        );
        assert_eq!(incremental.references[label], full.references[label]);
        // The packed arena for the new type makes the same stage-1
        // decisions on every training fingerprint.
        for i in 0..four.len() {
            assert_eq!(
                incremental.accepts(label, four.fixed(i)),
                full.accepts(label, four.fixed(i)),
                "sample {i}"
            );
        }
        // And held-out runs of the new device actually identify as it.
        let testbed = Testbed::new(55);
        let trace = testbed.setup_run(&devices[3].profile, 0);
        let probe = extract(&trace.packets);
        let fixed = FixedFingerprint::from_fingerprint(&probe);
        assert_eq!(incremental.identify(&probe, &fixed).label(), Some(3));
    }

    #[test]
    fn classify_batch_matches_classify_per_item() {
        let (identifier, dataset) = train_on_three();
        let fixed: Vec<&FixedFingerprint> = (0..dataset.len()).map(|i| dataset.fixed(i)).collect();
        let batch = identifier.classify_batch(&fixed);
        for (i, candidates) in batch.iter().enumerate() {
            assert_eq!(candidates, &identifier.classify(fixed[i]), "item {i}");
        }
    }

    #[test]
    fn scores_are_bounded_by_reference_count() {
        let (identifier, dataset) = train_on_three();
        let id = identifier.identify(dataset.full(0), dataset.fixed(0));
        for score in &id.scores {
            assert!((0.0..=5.0).contains(score));
        }
    }
}
