//! Offline stand-in for `crossbeam`, covering `crossbeam::thread::scope`.
//!
//! Since Rust 1.63 the standard library ships scoped threads, so this
//! crate is a thin adapter that exposes the crossbeam 0.8 calling
//! convention (`scope` returns a `Result`, spawned closures receive a
//! `&Scope` argument) over `std::thread::scope`.

/// Scoped-thread support mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// A scope in which threads borrowing local data can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope so it
        /// can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// enclosing stack frame. All spawned threads are joined before this
    /// returns. Unlike `std`, panics in unjoined threads are reported via
    /// the returned `Result` to match crossbeam's signature; with std's
    /// auto-join underneath, a child panic propagates out of the scope,
    /// so in practice `Ok` is returned whenever `f` completes.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_and_borrows() {
        let counter = AtomicUsize::new(0);
        let data = vec![1usize, 2, 3, 4];
        let result = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .iter()
                .map(|&x| {
                    let counter = &counter;
                    s.spawn(move |_| {
                        counter.fetch_add(x, Ordering::Relaxed);
                        x * 10
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>()
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 10);
        assert_eq!(result, 100);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let result = super::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(result, 7);
    }
}
