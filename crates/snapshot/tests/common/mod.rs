//! A tiny, fully hand-crafted snapshot shared by the golden-bytes and
//! corruption tests: every field is a literal, so the encoded bytes
//! are a pure function of the format itself — no training involved,
//! and nothing in it shifts when training internals evolve.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use sentinel_core::vulndb::{CveRecord, StaticVulnDb};
use sentinel_core::{BankConfig, ClassifierBank, IdentifierConfig, IdentifyMode, TrainedModel};
use sentinel_fingerprint::{FeatureVector, Fingerprint, PortClass, FIXED_DIMENSIONS};
use sentinel_ml::{DecisionTree, RandomForest, TreeParts};
use sentinel_netproto::ProtocolSet;
use sentinel_snapshot::Snapshot;

const LEAF: u32 = u32::MAX;

/// Root split on feature 0, two leaves.
fn stump() -> DecisionTree {
    DecisionTree::from_parts(
        TreeParts {
            features: vec![0, LEAF, LEAF],
            thresholds: vec![0.5, 0.0, 0.0],
            lefts: vec![1, 0, 1],
            rights: vec![2, 0, 1],
            n_samples: vec![10, 6, 4],
            impurity_decreases: vec![0.25, 0.0, 0.0],
            leaf_counts: vec![6, 0, 1, 3],
            n_classes: 2,
        },
        FIXED_DIMENSIONS,
    )
    .expect("valid stump")
}

/// A single-leaf tree.
fn leaf() -> DecisionTree {
    DecisionTree::from_parts(
        TreeParts {
            features: vec![LEAF],
            thresholds: vec![0.0],
            lefts: vec![0],
            rights: vec![1],
            n_samples: vec![10],
            impurity_decreases: vec![0.0],
            leaf_counts: vec![2, 8],
            n_classes: 2,
        },
        FIXED_DIMENSIONS,
    )
    .expect("valid leaf")
}

fn vector(bits: u16, size: u32, counter: u32) -> FeatureVector {
    FeatureVector {
        protocols: ProtocolSet::from_bits(bits),
        ip_option_padding: bits & 1 != 0,
        ip_option_router_alert: false,
        packet_size: size,
        raw_data: bits & 2 != 0,
        dst_ip_counter: counter,
        src_port_class: PortClass::Dynamic,
        dst_port_class: PortClass::WellKnown,
    }
}

/// The pinned two-type model plus a small vulnerability tier.
pub fn golden_snapshot() -> Snapshot {
    let bank = ClassifierBank::from_parts(
        vec![
            RandomForest::from_parts(vec![stump(), leaf()], Some(0.75)).expect("valid forest"),
            RandomForest::from_parts(vec![leaf()], None).expect("valid forest"),
        ],
        vec!["CamA".into(), "SensorB".into()],
        BankConfig::default(),
    )
    .expect("valid bank");
    let references = vec![
        vec![Fingerprint::new([
            vector(0b01, 60, 1),
            vector(0b10, 342, 2),
        ])],
        vec![Fingerprint::new([
            vector(0b10, 342, 2),
            vector(0b11, 98, 0),
            vector(0b01, 60, 1),
        ])],
    ];
    let config = IdentifierConfig {
        bank: BankConfig::default(),
        references_per_type: 1,
        mode: IdentifyMode::TwoStage,
        seed: 7,
        max_dissimilarity: 0.9,
        threads: 1,
    };
    let model = TrainedModel::from_parts(bank, references, config).expect("valid model");

    let mut vulndb = StaticVulnDb::new();
    vulndb.add_record(
        "CamA",
        CveRecord {
            id: "CVE-2016-0001".into(),
            summary: "hardcoded credentials".into(),
            severity: 7.5,
        },
    );
    vulndb.add_endpoint("CamA", IpAddr::V4(Ipv4Addr::new(203, 0, 113, 9)));
    vulndb.add_endpoint("SensorB", IpAddr::V6(Ipv6Addr::LOCALHOST));
    vulndb.mark_uncontrollable("SensorB");

    Snapshot::new(model, vulndb)
}
