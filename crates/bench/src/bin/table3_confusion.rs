//! Reproduces **Table III**: the confusion matrix of the ten devices
//! with low identification rate (the D-Link family, TP-Link plugs,
//! Edimax plugs and Smarter appliances), from the same cross-validation
//! as Fig. 5.
//!
//! ```text
//! cargo run --release -p sentinel-bench --bin table3_confusion
//! cargo run --release -p sentinel-bench --bin table3_confusion -- --quick
//! ```

use sentinel_bench::cli::Args;
use sentinel_bench::evaluation::{evaluate, EvalConfig};
use sentinel_bench::tables;
use sentinel_devicesim::{catalog, confusable_groups};

fn main() {
    let args = Args::from_env();
    let mut config = if args.switch("quick") {
        EvalConfig::quick()
    } else {
        EvalConfig::default()
    };
    config.runs = args.get("runs", config.runs);
    config.repetitions = args.get("reps", config.repetitions);
    config.trees = args.get("trees", config.trees);
    config.seed = args.get("seed", config.seed);
    config.workers = args.get("workers", config.workers);

    print!(
        "{}",
        tables::banner("Table III — Confusion matrix for 10 devices with low identification rate")
    );
    println!(
        "counts are over {} runs/type x {} repetitions = {} identifications per row\n",
        config.runs,
        config.repetitions,
        config.runs as usize * config.repetitions
    );

    let result = evaluate(&config);

    // The ten Table III devices, in the paper's 1..10 numbering.
    let devices = catalog();
    let numbered: Vec<&str> = confusable_groups().into_iter().flatten().collect();
    let indices: Vec<usize> = numbered
        .iter()
        .map(|name| {
            devices
                .iter()
                .position(|d| d.info.identifier == *name)
                .expect("catalog member")
        })
        .collect();
    let restricted = result.confusion.restrict(&indices);

    println!("{restricted}");
    println!("legend (A = actual, P = predicted):");
    for (number, name) in numbered.iter().enumerate() {
        println!("  {:>2} = {name}", number + 1);
    }
    println!();
    println!(
        "expected shape: confusion stays inside the vendor families \
         (1-4 D-Link, 5-6 TP-Link, 7-8 Edimax, 9-10 Smarter); \
         cross-family cells are ~0."
    );
}
