//! The IoT Security Service (IoTSSP, Sect. III-B).
//!
//! The service receives device fingerprints from Security Gateways,
//! identifies the device-type with the two-stage pipeline, assesses its
//! vulnerability and returns the isolation level (plus the endpoint
//! whitelist for restricted devices). It stores nothing about its
//! clients.

use serde::{Deserialize, Serialize};

use sentinel_fingerprint::{Fingerprint, FixedFingerprint};

use crate::identify::{AssessKey, ClassifyScratch};
use crate::report::{Identification, Outcome, ServiceResponse};
use crate::vulndb::{StaticVulnDb, VulnerabilityDatabase};
use crate::{FingerprintDataset, Identifier, IdentifierConfig};

/// Reusable working memory for [`SecurityService::assess_keyed_batch_into`].
///
/// Wraps the identifier's [`ClassifyScratch`] plus the intermediate
/// identification buffer, so a caller that keeps one `AssessScratch` per
/// worker (the streaming runtime holds one per shard) assesses batch
/// after batch without rebuilding any per-tick state. Scratch carries no
/// state between calls; reuse cannot change any response.
#[derive(Debug, Default)]
pub struct AssessScratch {
    /// Stage-1/stage-2 working memory for the identifier.
    classify: ClassifyScratch,
    /// Identifications of the current batch, drained into responses.
    identifications: Vec<Identification>,
}

/// Anything a [`crate::SecurityGateway`] can consult about a new device.
///
/// The paper's gateways reach the IoTSSP over the network (optionally
/// via Tor); in-process implementations stand in for that RPC.
pub trait SecurityService {
    /// Identifies a fingerprint and returns the enforcement decision.
    fn assess(&self, full: &Fingerprint, fixed: &FixedFingerprint) -> ServiceResponse;

    /// Assesses a whole batch of fingerprints, returning one response
    /// per item in order.
    ///
    /// Must be observably equivalent to calling
    /// [`SecurityService::assess`] on each item in sequence — the
    /// default implementation does exactly that. Implementations may
    /// override it to batch the RNG-free parts of the pipeline (the
    /// reference IoTSSP pushes all stage-1 classifications through one
    /// forest at a time); any stateful part must still run in item
    /// order.
    fn assess_batch(&self, items: &[(&Fingerprint, &FixedFingerprint)]) -> Vec<ServiceResponse> {
        items
            .iter()
            .map(|&(full, fixed)| self.assess(full, fixed))
            .collect()
    }

    /// Assesses one fingerprint under the v2 pinned RNG contract: every
    /// random decision is drawn from a generator keyed by `key`, so the
    /// response is a pure function of `(trained state, fingerprints,
    /// key)` — independent of call order, interleaving, or which thread
    /// serves it. This is what lets a sharded streaming runtime assess
    /// completions concurrently and still produce bit-identical output
    /// at every thread count.
    ///
    /// The default delegates to [`SecurityService::assess`], which is
    /// only correct for services whose `assess` is already a pure
    /// function of its arguments (stateless stubs). Services with
    /// order-dependent internal state (like the reference IoTSSP's
    /// shared v1 discrimination RNG) must override this with a genuinely
    /// keyed path.
    fn assess_keyed(
        &self,
        full: &Fingerprint,
        fixed: &FixedFingerprint,
        key: AssessKey,
    ) -> ServiceResponse {
        let _ = key;
        self.assess(full, fixed)
    }

    /// Keyed batch assessment: one response per item, each observably
    /// equivalent to [`SecurityService::assess_keyed`] with that item's
    /// key. Because every item carries its own key, the batch boundary
    /// carries no information — splitting a batch across shards must not
    /// change any response.
    fn assess_keyed_batch(
        &self,
        items: &[(&Fingerprint, &FixedFingerprint, AssessKey)],
    ) -> Vec<ServiceResponse> {
        items
            .iter()
            .map(|&(full, fixed, key)| self.assess_keyed(full, fixed, key))
            .collect()
    }

    /// [`SecurityService::assess_keyed_batch`] into caller-owned
    /// buffers: responses are **appended** to `out` (the shared
    /// batch-entry contract — the caller owns and clears `out`), and
    /// implementations draw all per-batch working memory from `scratch`.
    /// Must produce exactly the responses of
    /// [`SecurityService::assess_keyed_batch`]; the default delegates
    /// per item and ignores the scratch.
    fn assess_keyed_batch_into(
        &self,
        items: &[(&Fingerprint, &FixedFingerprint, AssessKey)],
        scratch: &mut AssessScratch,
        out: &mut Vec<ServiceResponse>,
    ) {
        let _ = scratch;
        out.extend(
            items
                .iter()
                .map(|&(full, fixed, key)| self.assess_keyed(full, fixed, key)),
        );
    }
}

/// One trained service can back several gateways (or a gateway and a
/// streaming runtime) at once by handing each a shared reference.
impl<S: SecurityService + ?Sized> SecurityService for &S {
    fn assess(&self, full: &Fingerprint, fixed: &FixedFingerprint) -> ServiceResponse {
        (**self).assess(full, fixed)
    }

    fn assess_batch(&self, items: &[(&Fingerprint, &FixedFingerprint)]) -> Vec<ServiceResponse> {
        (**self).assess_batch(items)
    }

    fn assess_keyed(
        &self,
        full: &Fingerprint,
        fixed: &FixedFingerprint,
        key: AssessKey,
    ) -> ServiceResponse {
        (**self).assess_keyed(full, fixed, key)
    }

    fn assess_keyed_batch(
        &self,
        items: &[(&Fingerprint, &FixedFingerprint, AssessKey)],
    ) -> Vec<ServiceResponse> {
        (**self).assess_keyed_batch(items)
    }

    fn assess_keyed_batch_into(
        &self,
        items: &[(&Fingerprint, &FixedFingerprint, AssessKey)],
        scratch: &mut AssessScratch,
        out: &mut Vec<ServiceResponse>,
    ) {
        (**self).assess_keyed_batch_into(items, scratch, out)
    }
}

/// Configuration of an [`IoTSecurityService`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Identification-pipeline parameters.
    pub identifier: IdentifierConfig,
}

/// The reference IoTSSP implementation: trained identifier + offline
/// vulnerability database.
#[derive(Debug)]
pub struct IoTSecurityService {
    identifier: Identifier,
    vulndb: StaticVulnDb,
}

impl IoTSecurityService {
    /// Trains the service on a labeled fingerprint corpus, using the
    /// built-in advisory seed data.
    pub fn train(dataset: &FingerprintDataset, config: &ServiceConfig) -> Self {
        Self::train_with_vulndb(dataset, config, StaticVulnDb::with_known_iot_advisories())
    }

    /// Wraps an already-trained identifier (e.g. restored with
    /// [`crate::Identifier::from_json_reader`]) with the built-in
    /// advisory database.
    pub fn from_identifier(identifier: crate::Identifier) -> Self {
        Self::from_parts(identifier, StaticVulnDb::with_known_iot_advisories())
    }

    /// Assembles a service from an already-trained identifier and an
    /// explicit vulnerability database — the restore path binary model
    /// persistence uses, where both halves come off disk.
    pub fn from_parts(identifier: crate::Identifier, vulndb: StaticVulnDb) -> Self {
        IoTSecurityService { identifier, vulndb }
    }

    /// Trains the service with an explicit vulnerability database.
    pub fn train_with_vulndb(
        dataset: &FingerprintDataset,
        config: &ServiceConfig,
        vulndb: StaticVulnDb,
    ) -> Self {
        IoTSecurityService {
            identifier: Identifier::train(dataset, &config.identifier),
            vulndb,
        }
    }

    /// The identification pipeline (exposed for evaluation harnesses).
    pub fn identifier(&self) -> &Identifier {
        &self.identifier
    }

    /// Teaches the service one additional device-type without retraining
    /// the existing classifiers (the paper's incremental-onboarding
    /// property). Returns the new type's label.
    ///
    /// `dataset` must be the extended corpus: all previously known types
    /// plus fingerprints labeled with the new type's index. Delegates to
    /// [`Identifier::add_type`], which appends the new classifier, its
    /// stage-2 reference fingerprints and the packed prediction arena;
    /// everything already trained is left bit-identical.
    pub fn add_type(&mut self, name: impl Into<String>, dataset: &FingerprintDataset) -> usize {
        self.identifier.add_type(name, dataset)
    }

    /// Turns the identifier's content-addressed stage-1 verdict cache
    /// on or off (see [`Identifier::enable_verdict_cache`] — byte-
    /// transparent, off by default).
    pub fn enable_verdict_cache(&mut self, enabled: bool) {
        self.identifier.enable_verdict_cache(enabled);
    }

    /// `(hits, lookups)` of the verdict cache since it was enabled —
    /// `(0, 0)` when disabled. Scheduling-dependent under concurrency;
    /// observability only, never part of a deterministic report.
    pub fn verdict_cache_stats(&self) -> (u64, u64) {
        self.identifier.verdict_cache_stats()
    }

    /// The vulnerability database.
    pub fn vulndb(&self) -> &StaticVulnDb {
        &self.vulndb
    }

    /// Turns a finished identification into the enforcement decision
    /// (vulnerability lookup, isolation level, endpoint whitelist).
    fn respond(&self, identification: crate::report::Identification) -> ServiceResponse {
        let type_name = match &identification.outcome {
            Outcome::Identified { name, .. } => Some(name.clone()),
            Outcome::Unknown => None,
        };
        let isolation = self.vulndb.assess(type_name.as_deref());
        let permitted_endpoints = type_name
            .as_deref()
            .map(|name| self.vulndb.vendor_endpoints(name).to_vec())
            .filter(|_| isolation == sentinel_sdn::IsolationLevel::Restricted)
            .unwrap_or_default();
        let user_notification = self.vulndb.removal_notice(type_name.as_deref());
        ServiceResponse {
            identification,
            isolation,
            permitted_endpoints,
            user_notification,
        }
    }
}

impl SecurityService for IoTSecurityService {
    fn assess(&self, full: &Fingerprint, fixed: &FixedFingerprint) -> ServiceResponse {
        self.respond(self.identifier.identify(full, fixed))
    }

    /// Batched assessment: stage-1 classification runs forest-major over
    /// the whole batch ([`Identifier::identify_batch`]); discrimination
    /// and the vulnerability lookups stay in item order, so the
    /// responses are bit-identical to per-item [`Self::assess`] calls.
    fn assess_batch(&self, items: &[(&Fingerprint, &FixedFingerprint)]) -> Vec<ServiceResponse> {
        self.identifier
            .identify_batch(items)
            .into_iter()
            .map(|identification| self.respond(identification))
            .collect()
    }

    /// Keyed assessment under the v2 pinned RNG contract
    /// ([`Identifier::identify_keyed`]): the shared v1 discrimination
    /// RNG is bypassed entirely, so concurrent callers neither contend
    /// on it nor perturb each other's draws.
    fn assess_keyed(
        &self,
        full: &Fingerprint,
        fixed: &FixedFingerprint,
        key: AssessKey,
    ) -> ServiceResponse {
        self.respond(self.identifier.identify_keyed(full, fixed, key))
    }

    /// Keyed batched assessment: stage-1 runs forest-major over the
    /// whole batch, stage-2 draws from each item's own keyed generator —
    /// bit-identical to per-item [`Self::assess_keyed`] calls at any
    /// batch split.
    fn assess_keyed_batch(
        &self,
        items: &[(&Fingerprint, &FixedFingerprint, AssessKey)],
    ) -> Vec<ServiceResponse> {
        let mut scratch = AssessScratch::default();
        let mut out = Vec::with_capacity(items.len());
        self.assess_keyed_batch_into(items, &mut scratch, &mut out);
        out
    }

    /// The scratch-backed keyed batch: stage 1 goes through the
    /// row-blocked kernel over the scratch's batch matrix,
    /// stage 2 through its wavefront band buffers — zero per-tick
    /// allocations once the scratch is warm, bit-identical responses.
    fn assess_keyed_batch_into(
        &self,
        items: &[(&Fingerprint, &FixedFingerprint, AssessKey)],
        scratch: &mut AssessScratch,
        out: &mut Vec<ServiceResponse>,
    ) {
        scratch.identifications.clear();
        self.identifier.identify_keyed_batch_into(
            items,
            &mut scratch.classify,
            &mut scratch.identifications,
        );
        out.extend(
            scratch
                .identifications
                .drain(..)
                .map(|identification| self.respond(identification)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BankConfig;
    use sentinel_devicesim::{catalog, Testbed};
    use sentinel_fingerprint::extract;
    use sentinel_ml::ForestConfig;
    use sentinel_sdn::IsolationLevel;

    fn fast_service(n_devices: usize) -> IoTSecurityService {
        let devices: Vec<_> = catalog().into_iter().take(n_devices).collect();
        let dataset = FingerprintDataset::collect(&devices, 8, 5);
        let config = ServiceConfig {
            identifier: IdentifierConfig {
                bank: BankConfig {
                    forest: ForestConfig::default().with_trees(25),
                    ..BankConfig::default()
                },
                ..IdentifierConfig::default()
            },
        };
        IoTSecurityService::train(&dataset, &config)
    }

    fn fingerprints_of(device_index: usize, run: u64) -> (Fingerprint, FixedFingerprint) {
        let devices = catalog();
        let trace = Testbed::new(31).setup_run(&devices[device_index].profile, run);
        let full = extract(&trace.packets);
        let fixed = FixedFingerprint::from_fingerprint(&full);
        (full, fixed)
    }

    #[test]
    fn clean_device_gets_trusted() {
        // Device 0 (Aria) has no advisisories in the seed database.
        let service = fast_service(3);
        let (full, fixed) = fingerprints_of(0, 0);
        let response = service.assess(&full, &fixed);
        assert_eq!(response.isolation, IsolationLevel::Trusted);
        assert!(response.permitted_endpoints.is_empty());
    }

    #[test]
    fn unknown_device_gets_strict() {
        use sentinel_devicesim::{DeviceProfile, Phase, RawDest};
        let service = fast_service(3);
        // An out-of-distribution device no classifier should accept.
        let mut odd = DeviceProfile::new("OddBall", [9, 9, 9]);
        odd.extend_phases([
            Phase::UdpRaw {
                dest: RawDest::Broadcast,
                port: 7777,
                sizes: vec![700, 11, 700],
            },
            Phase::Ping { count: 3 },
        ]);
        let trace = Testbed::new(2).setup_run(&odd, 0);
        let full = extract(&trace.packets);
        let fixed = FixedFingerprint::from_fingerprint(&full);
        let response = service.assess(&full, &fixed);
        assert_eq!(response.identification.outcome, Outcome::Unknown);
        assert_eq!(response.isolation, IsolationLevel::Strict);
    }

    #[test]
    fn assess_batch_is_bit_identical_to_sequential_assess() {
        // Two identically-trained services (fresh discrimination RNGs):
        // responses from one batched call must equal per-item calls in
        // order, including isolation decisions and whitelists.
        let sequential = fast_service(3);
        let batched = fast_service(3);
        let probes: Vec<(Fingerprint, FixedFingerprint)> = (0..3)
            .flat_map(|device| (0..3).map(move |run| fingerprints_of(device, run)))
            .collect();
        let items: Vec<(&Fingerprint, &FixedFingerprint)> =
            probes.iter().map(|(full, fixed)| (full, fixed)).collect();
        let one_by_one: Vec<ServiceResponse> = items
            .iter()
            .map(|&(full, fixed)| sequential.assess(full, fixed))
            .collect();
        assert_eq!(one_by_one, batched.assess_batch(&items));
    }

    #[test]
    fn add_type_onboards_a_new_device_type() {
        let devices: Vec<_> = catalog().into_iter().take(4).collect();
        let three = FingerprintDataset::collect(&devices[..3], 8, 5);
        let four = FingerprintDataset::collect(&devices, 8, 5);
        let config = ServiceConfig {
            identifier: IdentifierConfig {
                bank: BankConfig {
                    forest: ForestConfig::default().with_trees(25),
                    ..BankConfig::default()
                },
                ..IdentifierConfig::default()
            },
        };
        let mut service = IoTSecurityService::train(&three, &config);
        let (full, fixed) = fingerprints_of(3, 0);
        assert_eq!(
            service.assess(&full, &fixed).identification.outcome,
            Outcome::Unknown,
            "the fourth device must be unknown before onboarding"
        );
        let label = service.add_type(devices[3].info.identifier, &four);
        assert_eq!(label, 3);
        // After incremental onboarding the device identifies, and its
        // classifier is bit-identical to a full retrain's (the extended
        // service shares the full retrain's state for the new label).
        assert_eq!(
            service.assess(&full, &fixed).identification.label(),
            Some(3)
        );
        let retrained = IoTSecurityService::train(&four, &config);
        assert_eq!(
            service.identifier().bank().classifier(label),
            retrained.identifier().bank().classifier(label)
        );
    }

    #[test]
    fn vulnerable_device_gets_restricted_with_whitelist() {
        // Train on 9 devices so EdimaxCam (index 8) is known.
        let service = fast_service(9);
        let (full, fixed) = fingerprints_of(8, 1);
        let response = service.assess(&full, &fixed);
        assert_eq!(
            response.identification.label(),
            Some(8),
            "EdimaxCam must be identified: {:?}",
            response.identification
        );
        assert_eq!(response.isolation, IsolationLevel::Restricted);
        assert!(!response.permitted_endpoints.is_empty());
    }
}
