//! An Open vSwitch-style software switch: exact-match flow cache with
//! packet-in escalation to the enforcement module.

use std::net::Ipv4Addr;

use sentinel_netproto::Packet;

use crate::{EnforcementModule, FlowAction, FlowKey, FlowTable, Verdict};

/// What the switch did with a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SwitchDecision {
    /// The action applied.
    pub action: FlowAction,
    /// Whether the packet caused a packet-in to the controller (flow
    /// table miss).
    pub packet_in: bool,
}

/// The gateway's software switch.
///
/// With filtering disabled the switch degenerates to a plain learning
/// switch that forwards everything — the paper's "without filtering"
/// baseline in Tables V–VI and Fig. 6.
#[derive(Debug)]
pub struct OvsSwitch {
    table: FlowTable,
    filtering: bool,
    subnet: Ipv4Addr,
    mask_bits: u8,
    processed: u64,
    packet_ins: u64,
}

impl OvsSwitch {
    /// Creates a switch for the given local subnet with filtering
    /// enabled.
    pub fn new(subnet: Ipv4Addr, mask_bits: u8) -> Self {
        OvsSwitch {
            table: FlowTable::new(),
            filtering: true,
            subnet,
            mask_bits,
            processed: 0,
            packet_ins: 0,
        }
    }

    /// A switch for the paper's lab subnet `192.168.0.0/24`.
    pub fn lab() -> Self {
        OvsSwitch::new(Ipv4Addr::new(192, 168, 0, 0), 24)
    }

    /// Enables or disables the filtering mechanism (the with/without
    /// comparison axis of the evaluation).
    pub fn set_filtering(&mut self, filtering: bool) {
        self.filtering = filtering;
    }

    /// Whether filtering is enabled.
    pub fn filtering(&self) -> bool {
        self.filtering
    }

    /// Processes one packet: flow-table hit applies the cached action;
    /// a miss raises a packet-in to `controller`, installs the resulting
    /// flow, and applies it.
    pub fn process(
        &mut self,
        packet: &Packet,
        controller: &mut EnforcementModule,
    ) -> SwitchDecision {
        self.processed += 1;
        if !self.filtering {
            return SwitchDecision {
                action: FlowAction::Forward,
                packet_in: false,
            };
        }
        if let Some(action) = self.table.apply(packet) {
            return SwitchDecision {
                action,
                packet_in: false,
            };
        }
        self.packet_ins += 1;
        let verdict = controller.decide_packet(packet, self.subnet, self.mask_bits);
        let action = match verdict {
            Verdict::Allow => FlowAction::Forward,
            Verdict::Deny(_) => FlowAction::Drop,
        };
        self.table
            .install(FlowKey::of(packet), action, packet.timestamp);
        self.table.apply(packet);
        SwitchDecision {
            action,
            packet_in: true,
        }
    }

    /// The flow table (for inspection and expiry policies).
    pub fn table(&self) -> &FlowTable {
        &self.table
    }

    /// Mutable flow-table access.
    pub fn table_mut(&mut self) -> &mut FlowTable {
        &mut self.table
    }

    /// Total packets processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Total packet-in events raised.
    pub fn packet_ins(&self) -> u64 {
        self.packet_ins
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EnforcementRule;
    use sentinel_netproto::{AppPayload, MacAddr, Timestamp};

    fn mac(last: u8) -> MacAddr {
        MacAddr::new([0, 0, 0, 0, 2, last])
    }

    fn remote_packet(src: MacAddr, t: u64) -> Packet {
        Packet::udp_ipv4(
            Timestamp::from_micros(t),
            src,
            mac(0),
            Ipv4Addr::new(192, 168, 0, 40),
            Ipv4Addr::new(52, 29, 100, 7),
            50000,
            443,
            AppPayload::Empty,
        )
    }

    #[test]
    fn first_packet_raises_packet_in_rest_use_cache() {
        let mut switch = OvsSwitch::lab();
        let mut controller = EnforcementModule::new();
        controller.install_rule(EnforcementRule::trusted(mac(1)));
        let p1 = remote_packet(mac(1), 0);
        let p2 = remote_packet(mac(1), 1000);
        let d1 = switch.process(&p1, &mut controller);
        let d2 = switch.process(&p2, &mut controller);
        assert!(d1.packet_in);
        assert_eq!(d1.action, FlowAction::Forward);
        assert!(!d2.packet_in, "second packet must hit the flow cache");
        assert_eq!(d2.action, FlowAction::Forward);
        assert_eq!(switch.packet_ins(), 1);
        assert_eq!(switch.processed(), 2);
    }

    #[test]
    fn strict_device_flow_dropped() {
        let mut switch = OvsSwitch::lab();
        let mut controller = EnforcementModule::new();
        controller.install_rule(EnforcementRule::strict(mac(2)));
        let decision = switch.process(&remote_packet(mac(2), 0), &mut controller);
        assert_eq!(decision.action, FlowAction::Drop);
        // Drop is cached too: the adversary cannot force packet-in storms.
        let again = switch.process(&remote_packet(mac(2), 10), &mut controller);
        assert_eq!(again.action, FlowAction::Drop);
        assert!(!again.packet_in);
    }

    #[test]
    fn without_filtering_everything_forwards() {
        let mut switch = OvsSwitch::lab();
        switch.set_filtering(false);
        let mut controller = EnforcementModule::new();
        let decision = switch.process(&remote_packet(mac(3), 0), &mut controller);
        assert_eq!(decision.action, FlowAction::Forward);
        assert!(!decision.packet_in);
        assert_eq!(switch.table().len(), 0, "no flows installed");
    }

    #[test]
    fn unknown_device_gets_strict_default() {
        let mut switch = OvsSwitch::lab();
        let mut controller = EnforcementModule::new();
        let decision = switch.process(&remote_packet(mac(9), 0), &mut controller);
        assert_eq!(decision.action, FlowAction::Drop);
    }
}
