//! DNS (RFC 1035) and multicast DNS (RFC 6762) messages.
//!
//! mDNS shares the DNS wire format; the paper distinguishes the two by
//! port (53 vs 5353), which [`crate::classify`] implements.

use std::net::{Ipv4Addr, Ipv6Addr};

use bytes::BufMut;
use serde::{Deserialize, Serialize};

use crate::ParseError;

/// Length of the DNS message header.
pub const HEADER_LEN: usize = 12;

/// DNS record type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecordType {
    /// IPv4 address (1).
    A,
    /// Name server (2).
    Ns,
    /// Canonical name (5).
    Cname,
    /// Domain name pointer (12).
    Ptr,
    /// Text record (16).
    Txt,
    /// IPv6 address (28).
    Aaaa,
    /// Service locator (33).
    Srv,
    /// Any record (255).
    Any,
    /// Any other type.
    Other(u16),
}

impl RecordType {
    /// The raw 16-bit type code.
    pub fn to_u16(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Ptr => 12,
            RecordType::Txt => 16,
            RecordType::Aaaa => 28,
            RecordType::Srv => 33,
            RecordType::Any => 255,
            RecordType::Other(v) => v,
        }
    }

    /// Classifies a raw type code.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            12 => RecordType::Ptr,
            16 => RecordType::Txt,
            28 => RecordType::Aaaa,
            33 => RecordType::Srv,
            255 => RecordType::Any,
            v => RecordType::Other(v),
        }
    }
}

/// A DNS question.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Question {
    /// Queried name, as a dotted string (`time.nist.gov`).
    pub name: String,
    /// Queried record type.
    pub qtype: RecordType,
    /// Unicast-response / cache-flush bit (mDNS QU questions).
    pub unicast_response: bool,
}

impl Question {
    /// An A-record question for `name`.
    pub fn a(name: impl Into<String>) -> Self {
        Question {
            name: name.into(),
            qtype: RecordType::A,
            unicast_response: false,
        }
    }

    /// A PTR question (mDNS service discovery).
    pub fn ptr(name: impl Into<String>) -> Self {
        Question {
            name: name.into(),
            qtype: RecordType::Ptr,
            unicast_response: false,
        }
    }
}

/// The data of a DNS resource record.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecordData {
    /// An IPv4 address.
    A(Ipv4Addr),
    /// An IPv6 address.
    Aaaa(Ipv6Addr),
    /// A domain-name pointer.
    Ptr(String),
    /// Free-form text strings.
    Txt(Vec<String>),
    /// Uninterpreted bytes.
    Raw(Vec<u8>),
}

/// A DNS resource record.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourceRecord {
    /// Record owner name.
    pub name: String,
    /// Time to live.
    pub ttl: u32,
    /// Cache-flush bit (mDNS).
    pub cache_flush: bool,
    /// Record data (type is implied by the variant).
    pub data: RecordData,
}

impl ResourceRecord {
    fn rtype(&self) -> RecordType {
        match &self.data {
            RecordData::A(_) => RecordType::A,
            RecordData::Aaaa(_) => RecordType::Aaaa,
            RecordData::Ptr(_) => RecordType::Ptr,
            RecordData::Txt(_) => RecordType::Txt,
            RecordData::Raw(_) => RecordType::Other(0),
        }
    }
}

/// A DNS or mDNS message.
///
/// ```
/// use sentinel_netproto::dns::{DnsMessage, Question};
///
/// let query = DnsMessage::query(0x1db3, [Question::a("iot.vendor-cloud.example")]);
/// let bytes = query.to_bytes();
/// assert_eq!(DnsMessage::parse(&bytes).unwrap(), query);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DnsMessage {
    /// Transaction ID (0 for mDNS).
    pub id: u16,
    /// `true` for responses, `false` for queries.
    pub response: bool,
    /// Recursion desired flag.
    pub recursion_desired: bool,
    /// Authoritative-answer flag (set on mDNS announcements).
    pub authoritative: bool,
    /// Questions.
    pub questions: Vec<Question>,
    /// Answer records.
    pub answers: Vec<ResourceRecord>,
    /// Authority records.
    pub authorities: Vec<ResourceRecord>,
    /// Additional records.
    pub additionals: Vec<ResourceRecord>,
}

impl DnsMessage {
    /// A recursive query for the given questions.
    pub fn query(id: u16, questions: impl IntoIterator<Item = Question>) -> Self {
        DnsMessage {
            id,
            response: false,
            recursion_desired: true,
            authoritative: false,
            questions: questions.into_iter().collect(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// An mDNS announcement (authoritative response, id 0) of `records`.
    pub fn mdns_announcement(records: impl IntoIterator<Item = ResourceRecord>) -> Self {
        DnsMessage {
            id: 0,
            response: true,
            recursion_desired: false,
            authoritative: true,
            questions: Vec::new(),
            answers: records.into_iter().collect(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// An mDNS probe query (id 0, non-recursive).
    pub fn mdns_query(questions: impl IntoIterator<Item = Question>) -> Self {
        DnsMessage {
            id: 0,
            response: false,
            recursion_desired: false,
            authoritative: false,
            questions: questions.into_iter().collect(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Appends the message bytes to `buf`.
    pub fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u16(self.id);
        let mut flags = 0u16;
        if self.response {
            flags |= 0x8000;
        }
        if self.authoritative {
            flags |= 0x0400;
        }
        if self.recursion_desired {
            flags |= 0x0100;
        }
        buf.put_u16(flags);
        buf.put_u16(self.questions.len() as u16);
        buf.put_u16(self.answers.len() as u16);
        buf.put_u16(self.authorities.len() as u16);
        buf.put_u16(self.additionals.len() as u16);
        for q in &self.questions {
            encode_name(&q.name, buf);
            buf.put_u16(q.qtype.to_u16());
            buf.put_u16(if q.unicast_response { 0x8001 } else { 0x0001 });
        }
        for rr in self
            .answers
            .iter()
            .chain(&self.authorities)
            .chain(&self.additionals)
        {
            encode_name(&rr.name, buf);
            buf.put_u16(rr.rtype().to_u16());
            buf.put_u16(if rr.cache_flush { 0x8001 } else { 0x0001 });
            buf.put_u32(rr.ttl);
            let mut data = Vec::new();
            match &rr.data {
                RecordData::A(ip) => data.extend_from_slice(&ip.octets()),
                RecordData::Aaaa(ip) => data.extend_from_slice(&ip.octets()),
                RecordData::Ptr(name) => encode_name(name, &mut data),
                RecordData::Txt(strings) => {
                    for s in strings {
                        data.put_u8(s.len() as u8);
                        data.extend_from_slice(s.as_bytes());
                    }
                }
                RecordData::Raw(bytes) => data.extend_from_slice(bytes),
            }
            buf.put_u16(data.len() as u16);
            buf.put_slice(&data);
        }
    }

    /// Encodes into a fresh byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Parses a DNS message (supports RFC 1035 name compression).
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Truncated`] or [`ParseError::Invalid`] on
    /// malformed input.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        if bytes.len() < HEADER_LEN {
            return Err(ParseError::truncated("dns", HEADER_LEN, bytes.len()));
        }
        let id = u16::from_be_bytes([bytes[0], bytes[1]]);
        let flags = u16::from_be_bytes([bytes[2], bytes[3]]);
        let counts: Vec<usize> = (0..4)
            .map(|i| u16::from_be_bytes([bytes[4 + 2 * i], bytes[5 + 2 * i]]) as usize)
            .collect();
        let mut offset = HEADER_LEN;
        let mut questions = Vec::with_capacity(counts[0]);
        for _ in 0..counts[0] {
            let (name, next) = parse_name(bytes, offset)?;
            if bytes.len() < next + 4 {
                return Err(ParseError::truncated("dns question", next + 4, bytes.len()));
            }
            let qtype = RecordType::from_u16(u16::from_be_bytes([bytes[next], bytes[next + 1]]));
            let qclass = u16::from_be_bytes([bytes[next + 2], bytes[next + 3]]);
            questions.push(Question {
                name,
                qtype,
                unicast_response: qclass & 0x8000 != 0,
            });
            offset = next + 4;
        }
        let mut sections: [Vec<ResourceRecord>; 3] = Default::default();
        for (section, &count) in sections.iter_mut().zip(&counts[1..]) {
            for _ in 0..count {
                let (rr, next) = parse_record(bytes, offset)?;
                section.push(rr);
                offset = next;
            }
        }
        let [answers, authorities, additionals] = sections;
        Ok(DnsMessage {
            id,
            response: flags & 0x8000 != 0,
            recursion_desired: flags & 0x0100 != 0,
            authoritative: flags & 0x0400 != 0,
            questions,
            answers,
            authorities,
            additionals,
        })
    }
}

fn encode_name(name: &str, buf: &mut impl BufMut) {
    for label in name.split('.').filter(|l| !l.is_empty()) {
        debug_assert!(label.len() < 64, "dns label too long: {label}");
        buf.put_u8(label.len() as u8);
        buf.put_slice(label.as_bytes());
    }
    buf.put_u8(0);
}

fn parse_name(bytes: &[u8], mut offset: usize) -> Result<(String, usize), ParseError> {
    let mut labels = Vec::new();
    let mut end = None; // offset after the name at the *original* position
    let mut hops = 0;
    loop {
        let &len = bytes
            .get(offset)
            .ok_or_else(|| ParseError::truncated("dns name", offset + 1, bytes.len()))?;
        match len {
            0 => {
                let after = offset + 1;
                return Ok((labels.join("."), end.unwrap_or(after)));
            }
            l if l & 0xc0 == 0xc0 => {
                let &next = bytes
                    .get(offset + 1)
                    .ok_or_else(|| ParseError::truncated("dns name", offset + 2, bytes.len()))?;
                let pointer = (((l & 0x3f) as usize) << 8) | next as usize;
                end.get_or_insert(offset + 2);
                hops += 1;
                if hops > 16 {
                    return Err(ParseError::invalid("dns name", "compression loop"));
                }
                offset = pointer;
            }
            l if l < 64 => {
                let start = offset + 1;
                let stop = start + l as usize;
                let label = bytes
                    .get(start..stop)
                    .ok_or_else(|| ParseError::truncated("dns name", stop, bytes.len()))?;
                labels.push(
                    std::str::from_utf8(label)
                        .map_err(|_| ParseError::invalid("dns name", "label not utf-8"))?
                        .to_owned(),
                );
                offset = stop;
            }
            l => {
                return Err(ParseError::invalid("dns name", format!("label length {l}")));
            }
        }
    }
}

fn parse_record(bytes: &[u8], offset: usize) -> Result<(ResourceRecord, usize), ParseError> {
    let (name, next) = parse_name(bytes, offset)?;
    if bytes.len() < next + 10 {
        return Err(ParseError::truncated("dns record", next + 10, bytes.len()));
    }
    let rtype = RecordType::from_u16(u16::from_be_bytes([bytes[next], bytes[next + 1]]));
    let rclass = u16::from_be_bytes([bytes[next + 2], bytes[next + 3]]);
    let ttl = u32::from_be_bytes([
        bytes[next + 4],
        bytes[next + 5],
        bytes[next + 6],
        bytes[next + 7],
    ]);
    let rdlen = u16::from_be_bytes([bytes[next + 8], bytes[next + 9]]) as usize;
    let data_start = next + 10;
    let data_end = data_start + rdlen;
    let rdata = bytes
        .get(data_start..data_end)
        .ok_or_else(|| ParseError::truncated("dns record", data_end, bytes.len()))?;
    let data = match rtype {
        RecordType::A if rdlen == 4 => {
            RecordData::A(Ipv4Addr::new(rdata[0], rdata[1], rdata[2], rdata[3]))
        }
        RecordType::Aaaa if rdlen == 16 => {
            let octets: [u8; 16] = rdata.try_into().expect("slice of 16");
            RecordData::Aaaa(Ipv6Addr::from(octets))
        }
        RecordType::Ptr => RecordData::Ptr(parse_name(bytes, data_start)?.0),
        RecordType::Txt => {
            let mut strings = Vec::new();
            let mut rest = rdata;
            while let Some(&len) = rest.first() {
                let stop = 1 + len as usize;
                let chunk = rest
                    .get(1..stop)
                    .ok_or_else(|| ParseError::invalid("dns txt", "string overruns rdata"))?;
                strings.push(
                    std::str::from_utf8(chunk)
                        .map_err(|_| ParseError::invalid("dns txt", "not utf-8"))?
                        .to_owned(),
                );
                rest = &rest[stop..];
            }
            RecordData::Txt(strings)
        }
        _ => RecordData::Raw(rdata.to_vec()),
    };
    Ok((
        ResourceRecord {
            name,
            ttl,
            cache_flush: rclass & 0x8000 != 0,
            data,
        },
        data_end,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_roundtrip() {
        let msg = DnsMessage::query(
            7,
            [
                Question::a("api.vendor.example"),
                Question {
                    name: "api.vendor.example".into(),
                    qtype: RecordType::Aaaa,
                    unicast_response: false,
                },
            ],
        );
        assert_eq!(DnsMessage::parse(&msg.to_bytes()).unwrap(), msg);
    }

    #[test]
    fn mdns_announcement_roundtrip() {
        let msg = DnsMessage::mdns_announcement([
            ResourceRecord {
                name: "_hap._tcp.local".into(),
                ttl: 4500,
                cache_flush: true,
                data: RecordData::Ptr("bridge._hap._tcp.local".into()),
            },
            ResourceRecord {
                name: "bridge.local".into(),
                ttl: 120,
                cache_flush: true,
                data: RecordData::A(Ipv4Addr::new(192, 168, 0, 31)),
            },
            ResourceRecord {
                name: "bridge._hap._tcp.local".into(),
                ttl: 4500,
                cache_flush: false,
                data: RecordData::Txt(vec!["md=Bridge".into(), "pv=1.0".into()]),
            },
        ]);
        let parsed = DnsMessage::parse(&msg.to_bytes()).unwrap();
        assert_eq!(parsed, msg);
        assert!(parsed.authoritative);
        assert_eq!(parsed.id, 0);
    }

    #[test]
    fn parses_compressed_names() {
        // Hand-built response: question "a.b" + answer with pointer to it.
        let mut bytes = vec![
            0x00, 0x01, 0x80, 0x00, // id, flags: response
            0x00, 0x01, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, // counts
        ];
        bytes.extend_from_slice(&[1, b'a', 1, b'b', 0]); // name at offset 12
        bytes.extend_from_slice(&[0x00, 0x01, 0x00, 0x01]); // qtype/qclass
        bytes.extend_from_slice(&[0xc0, 12]); // compressed name -> offset 12
        bytes.extend_from_slice(&[0x00, 0x01, 0x00, 0x01]); // A, IN
        bytes.extend_from_slice(&[0, 0, 0, 60]); // ttl
        bytes.extend_from_slice(&[0x00, 0x04, 10, 0, 0, 1]); // rdata
        let msg = DnsMessage::parse(&bytes).unwrap();
        assert_eq!(msg.questions[0].name, "a.b");
        assert_eq!(msg.answers[0].name, "a.b");
        assert_eq!(
            msg.answers[0].data,
            RecordData::A(Ipv4Addr::new(10, 0, 0, 1))
        );
    }

    #[test]
    fn compression_loop_detected() {
        let mut bytes = vec![
            0x00, 0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        ];
        bytes.extend_from_slice(&[0xc0, 12]); // points at itself
        bytes.extend_from_slice(&[0x00, 0x01, 0x00, 0x01]);
        assert!(DnsMessage::parse(&bytes).is_err());
    }

    #[test]
    fn truncated_rejected() {
        assert!(DnsMessage::parse(&[0u8; 11]).is_err());
    }

    #[test]
    fn record_type_roundtrip() {
        for raw in [1u16, 2, 5, 12, 16, 28, 33, 255, 64] {
            assert_eq!(RecordType::from_u16(raw).to_u16(), raw);
        }
    }
}
