//! **Extension experiment (Sect. VIII-A)**: legacy installations.
//!
//! The paper proposes fingerprinting devices that are *already* on the
//! network from their standby/operation-cycle traffic (heartbeats,
//! keep-alives), since their setup phase was never observed, and states
//! the working hypothesis that such traffic "is likely to be
//! characteristic for particular device-types". This binary tests that
//! hypothesis on the simulated fleet: train per-type classifiers on
//! standby fingerprints, evaluate with stratified CV, and compare with
//! the setup-phase accuracy of Fig. 5.
//!
//! ```text
//! cargo run --release -p sentinel-bench --bin standby_eval
//! cargo run --release -p sentinel-bench --bin standby_eval -- --cycles 5
//! ```

use sentinel_bench::cli::Args;
use sentinel_bench::evaluation::{evaluate_on, EvalConfig};
use sentinel_bench::tables;
use sentinel_core::FingerprintDataset;
use sentinel_devicesim::catalog;

fn main() {
    let args = Args::from_env();
    let runs: u64 = args.get("runs", 20);
    let cycles: u32 = args.get("cycles", 3);
    let seed: u64 = args.get("seed", 42);
    let mut config = if args.switch("quick") {
        EvalConfig::quick()
    } else {
        EvalConfig::default()
    };
    config.runs = runs;
    config.seed = seed;
    config.repetitions = args.get("reps", config.repetitions);
    config.trees = args.get("trees", config.trees);
    config.workers = args.get("workers", config.workers);

    print!(
        "{}",
        tables::banner("Extension (Sect. VIII-A) — identification from standby traffic")
    );
    println!(
        "{} standby captures/type, {} heartbeat cycles each; {}-fold CV x {} reps\n",
        runs, cycles, config.folds, config.repetitions
    );

    let devices = catalog();
    let standby = FingerprintDataset::collect_standby(&devices, runs, cycles, seed);
    let standby_result = evaluate_on(&standby, &config);

    let setup = FingerprintDataset::collect(&devices, runs, seed);
    let setup_result = evaluate_on(&setup, &config);

    let standby_acc: std::collections::HashMap<String, f64> =
        standby_result.per_type_accuracy().into_iter().collect();
    let rows: Vec<Vec<String>> = setup_result
        .per_type_accuracy()
        .into_iter()
        .map(|(name, setup_acc)| {
            let stand = standby_acc[&name];
            vec![name, tables::ratio(setup_acc), tables::ratio(stand)]
        })
        .collect();
    print!(
        "{}",
        tables::render(&["Device-type", "Setup-phase", "Standby"], &rows)
    );
    println!();
    println!(
        "global accuracy — setup: {}  standby: {}",
        tables::ratio(setup_result.global_accuracy()),
        tables::ratio(standby_result.global_accuracy())
    );
    println!(
        "\nconclusion: standby cycles carry less information than the induction\n\
         procedure (fewer, more repetitive packets), but remain characteristic\n\
         enough for useful identification — supporting the paper's hypothesis."
    );
}
