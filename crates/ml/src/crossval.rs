//! Stratified k-fold cross-validation (Sect. VI-B evaluates with
//! stratified 10-fold CV repeated 10 times).

use rand::seq::SliceRandom;
use rand::Rng;

/// One cross-validation fold: disjoint train/test row indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Training row indices.
    pub train: Vec<usize>,
    /// Held-out test row indices.
    pub test: Vec<usize>,
}

/// Produces `k` stratified folds over rows with the given `labels`.
///
/// Each class's rows are shuffled and dealt round-robin across folds, so
/// every fold's test set preserves the class distribution as closely as
/// integer arithmetic allows.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn stratified_k_fold(labels: &[usize], k: usize, rng: &mut impl Rng) -> Vec<Fold> {
    assert!(k >= 2, "cross-validation needs at least 2 folds");
    let n_classes = labels.iter().max().map_or(0, |&m| m + 1);
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for (i, &label) in labels.iter().enumerate() {
        per_class[label].push(i);
    }
    let mut test_sets: Vec<Vec<usize>> = vec![Vec::new(); k];
    for class_rows in &mut per_class {
        class_rows.shuffle(rng);
        for (j, &row) in class_rows.iter().enumerate() {
            test_sets[j % k].push(row);
        }
    }
    (0..k)
        .map(|fold| {
            let test = test_sets[fold].clone();
            let train = test_sets
                .iter()
                .enumerate()
                .filter(|&(other, _)| other != fold)
                .flat_map(|(_, rows)| rows.iter().copied())
                .collect();
            Fold { train, test }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn labels_27_by_20() -> Vec<usize> {
        // The paper's dataset shape: 27 device-types x 20 fingerprints.
        (0..27).flat_map(|c| std::iter::repeat_n(c, 20)).collect()
    }

    #[test]
    fn folds_partition_rows() {
        let labels = labels_27_by_20();
        let folds = stratified_k_fold(&labels, 10, &mut StdRng::seed_from_u64(1));
        assert_eq!(folds.len(), 10);
        let mut seen = vec![0usize; labels.len()];
        for fold in &folds {
            for &i in &fold.test {
                seen[i] += 1;
            }
            assert_eq!(fold.train.len() + fold.test.len(), labels.len());
            // Train and test are disjoint.
            let test: std::collections::HashSet<_> = fold.test.iter().collect();
            assert!(fold.train.iter().all(|i| !test.contains(i)));
        }
        assert!(seen.iter().all(|&c| c == 1), "each row tested exactly once");
    }

    #[test]
    fn folds_are_stratified() {
        let labels = labels_27_by_20();
        let folds = stratified_k_fold(&labels, 10, &mut StdRng::seed_from_u64(2));
        for fold in &folds {
            // 20 samples per class over 10 folds = exactly 2 per class.
            let mut per_class = vec![0usize; 27];
            for &i in &fold.test {
                per_class[labels[i]] += 1;
            }
            assert!(per_class.iter().all(|&c| c == 2), "{per_class:?}");
        }
    }

    #[test]
    fn uneven_classes_spread_across_folds() {
        let labels = vec![0, 0, 0, 0, 0, 1, 1, 1];
        let folds = stratified_k_fold(&labels, 3, &mut StdRng::seed_from_u64(3));
        let total_test: usize = folds.iter().map(|f| f.test.len()).sum();
        assert_eq!(total_test, 8);
        for fold in &folds {
            let ones = fold.test.iter().filter(|&&i| labels[i] == 1).count();
            assert!(ones <= 1, "3 ones over 3 folds: at most one each");
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn k_of_one_rejected() {
        let _ = stratified_k_fold(&[0, 1], 1, &mut StdRng::seed_from_u64(0));
    }
}
