//! Sampling utilities: bootstrap, without-replacement and class-balanced
//! negative sampling.

use rand::seq::SliceRandom;
use rand::Rng;

/// Draws `n` indices uniformly with replacement from `0..n` (a bootstrap
/// sample for bagging).
pub fn bootstrap_indices(n: usize, rng: &mut impl Rng) -> Vec<usize> {
    let mut out = Vec::with_capacity(n);
    bootstrap_indices_into(n, rng, &mut out);
    out
}

/// Appends `n` bootstrap draws (uniform with replacement from `0..n`)
/// to `out` — the buffer-reusing twin of [`bootstrap_indices`],
/// consuming the identical RNG stream.
pub fn bootstrap_indices_into(n: usize, rng: &mut impl Rng, out: &mut Vec<usize>) {
    out.extend((0..n).map(|_| rng.gen_range(0..n)));
}

/// Draws `k` distinct elements from `pool` without replacement (all of
/// `pool`, shuffled, if `k >= pool.len()`).
pub fn sample_without_replacement<T: Copy>(pool: &[T], k: usize, rng: &mut impl Rng) -> Vec<T> {
    let mut items = pool.to_vec();
    items.shuffle(rng);
    items.truncate(k.min(pool.len()));
    items
}

/// Selects the training indices for a one-vs-rest classifier with the
/// paper's class-imbalance mitigation: all `positives` plus
/// `ratio × positives.len()` randomly chosen `negatives` (Sect. IV-B.1,
/// evaluated with ratio 10 in Sect. VI-B).
///
/// Returns `(indices, labels)` aligned pairwise: label 1 for positives,
/// 0 for the sampled negatives.
pub fn balanced_one_vs_rest(
    positives: &[usize],
    negatives: &[usize],
    ratio: usize,
    rng: &mut impl Rng,
) -> (Vec<usize>, Vec<usize>) {
    let sampled = sample_without_replacement(negatives, positives.len() * ratio, rng);
    let mut indices = Vec::with_capacity(positives.len() + sampled.len());
    let mut labels = Vec::with_capacity(indices.capacity());
    indices.extend_from_slice(positives);
    labels.extend(std::iter::repeat_n(1, positives.len()));
    indices.extend_from_slice(&sampled);
    labels.extend(std::iter::repeat_n(0, sampled.len()));
    (indices, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn bootstrap_has_right_length_and_range() {
        let sample = bootstrap_indices(50, &mut rng());
        assert_eq!(sample.len(), 50);
        assert!(sample.iter().all(|&i| i < 50));
        // A bootstrap sample of 50 almost surely repeats at least once.
        let distinct: std::collections::HashSet<_> = sample.iter().collect();
        assert!(distinct.len() < 50);
    }

    #[test]
    fn bootstrap_into_matches_allocating_twin() {
        let mut reused = Vec::new();
        bootstrap_indices_into(50, &mut rng(), &mut reused);
        assert_eq!(reused, bootstrap_indices(50, &mut rng()));
        // Appends rather than overwrites, so one flat buffer can hold
        // every tree's sample back to back.
        bootstrap_indices_into(50, &mut rng(), &mut reused);
        assert_eq!(reused.len(), 100);
    }

    #[test]
    fn without_replacement_is_distinct() {
        let pool: Vec<usize> = (0..100).collect();
        let sample = sample_without_replacement(&pool, 30, &mut rng());
        assert_eq!(sample.len(), 30);
        let distinct: std::collections::HashSet<_> = sample.iter().collect();
        assert_eq!(distinct.len(), 30);
    }

    #[test]
    fn without_replacement_caps_at_pool() {
        let pool = [1, 2, 3];
        let sample = sample_without_replacement(&pool, 10, &mut rng());
        assert_eq!(sample.len(), 3);
    }

    #[test]
    fn one_vs_rest_ratio() {
        let positives: Vec<usize> = (0..20).collect();
        let negatives: Vec<usize> = (20..540).collect();
        let (indices, labels) = balanced_one_vs_rest(&positives, &negatives, 10, &mut rng());
        assert_eq!(indices.len(), 20 + 200);
        assert_eq!(labels.iter().filter(|&&l| l == 1).count(), 20);
        assert_eq!(labels.iter().filter(|&&l| l == 0).count(), 200);
        // Negatives must come from the negative pool.
        for (&i, &l) in indices.iter().zip(&labels) {
            if l == 0 {
                assert!(i >= 20);
            } else {
                assert!(i < 20);
            }
        }
    }

    #[test]
    fn one_vs_rest_small_negative_pool() {
        let positives = [0, 1];
        let negatives = [2, 3, 4];
        let (indices, labels) = balanced_one_vs_rest(&positives, &negatives, 10, &mut rng());
        assert_eq!(indices.len(), 5, "uses the whole pool when short");
        assert_eq!(labels, vec![1, 1, 0, 0, 0]);
    }
}
