//! OpenFlow-style exact-match flow table.
//!
//! The switch caches a per-flow verdict after the controller decides it,
//! so only the first packet of each flow pays the packet-in round trip —
//! "for any given flow, there is only one matching enforcement rule"
//! (Sect. V).

use std::collections::HashMap;
use std::net::IpAddr;

use serde::{Deserialize, Serialize};

use sentinel_netproto::{MacAddr, Packet, Timestamp};

/// The exact-match key identifying a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    /// Source MAC.
    pub src_mac: MacAddr,
    /// Destination MAC.
    pub dst_mac: MacAddr,
    /// Source IP, if the packet has an IP layer.
    pub src_ip: Option<IpAddr>,
    /// Destination IP, if the packet has an IP layer.
    pub dst_ip: Option<IpAddr>,
    /// Transport ports, if any.
    pub ports: Option<(u16, u16)>,
}

impl FlowKey {
    /// Extracts the flow key of a packet.
    pub fn of(packet: &Packet) -> FlowKey {
        FlowKey {
            src_mac: packet.src_mac(),
            dst_mac: packet.dst_mac(),
            src_ip: packet.src_ip(),
            dst_ip: packet.dst_ip(),
            ports: packet.ports(),
        }
    }
}

/// The action a flow entry applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowAction {
    /// Forward matching packets.
    Forward,
    /// Silently drop matching packets.
    Drop,
}

#[derive(Debug, Clone)]
struct FlowEntry {
    action: FlowAction,
    packets: u64,
    bytes: u64,
    last_used: Timestamp,
}

/// An exact-match flow table with per-entry counters and idle expiry.
#[derive(Debug, Default)]
pub struct FlowTable {
    entries: HashMap<FlowKey, FlowEntry>,
}

impl FlowTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or replaces) an entry.
    pub fn install(&mut self, key: FlowKey, action: FlowAction, now: Timestamp) {
        self.entries.insert(
            key,
            FlowEntry {
                action,
                packets: 0,
                bytes: 0,
                last_used: now,
            },
        );
    }

    /// Matches a packet, updating counters. Returns the entry's action,
    /// or `None` on a table miss.
    pub fn apply(&mut self, packet: &Packet) -> Option<FlowAction> {
        let key = FlowKey::of(packet);
        let entry = self.entries.get_mut(&key)?;
        entry.packets += 1;
        entry.bytes += packet.wire_len() as u64;
        entry.last_used = packet.timestamp;
        Some(entry.action)
    }

    /// The action installed for `key`, without counter updates.
    pub fn action(&self, key: &FlowKey) -> Option<FlowAction> {
        self.entries.get(key).map(|e| e.action)
    }

    /// The `(packets, bytes)` counters for `key`.
    pub fn counters(&self, key: &FlowKey) -> Option<(u64, u64)> {
        self.entries.get(key).map(|e| (e.packets, e.bytes))
    }

    /// Number of installed flows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the table has no flows.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes entries idle since before `now - idle`, returning how many
    /// were expired.
    pub fn expire_idle(&mut self, now: Timestamp, idle: std::time::Duration) -> usize {
        let before = self.entries.len();
        self.entries
            .retain(|_, e| now.saturating_since(e.last_used) < idle);
        before - self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn packet(last: u8, t: u64) -> Packet {
        Packet::dhcp_discover(MacAddr::new([0, 0, 0, 0, 0, last]), 1, t)
    }

    #[test]
    fn miss_then_hit() {
        let mut table = FlowTable::new();
        let p = packet(1, 0);
        assert_eq!(table.apply(&p), None);
        table.install(FlowKey::of(&p), FlowAction::Forward, p.timestamp);
        assert_eq!(table.apply(&p), Some(FlowAction::Forward));
        let (packets, bytes) = table.counters(&FlowKey::of(&p)).unwrap();
        assert_eq!(packets, 1);
        assert_eq!(bytes, p.wire_len() as u64);
    }

    #[test]
    fn different_flows_do_not_collide() {
        let mut table = FlowTable::new();
        let a = packet(1, 0);
        let b = packet(2, 0);
        table.install(FlowKey::of(&a), FlowAction::Drop, a.timestamp);
        assert_eq!(table.apply(&b), None);
        assert_eq!(table.apply(&a), Some(FlowAction::Drop));
    }

    #[test]
    fn idle_expiry() {
        let mut table = FlowTable::new();
        let early = packet(1, 0);
        let late = packet(2, 30_000_000);
        table.install(FlowKey::of(&early), FlowAction::Forward, early.timestamp);
        table.install(FlowKey::of(&late), FlowAction::Forward, late.timestamp);
        let expired = table.expire_idle(Timestamp::from_secs(40), Duration::from_secs(20));
        assert_eq!(expired, 1);
        assert_eq!(table.len(), 1);
        assert!(table.action(&FlowKey::of(&late)).is_some());
    }

    #[test]
    fn flow_key_captures_five_tuple() {
        let p = packet(1, 0);
        let key = FlowKey::of(&p);
        assert_eq!(key.ports, Some((68, 67)));
        assert!(key.dst_ip.is_some());
    }
}
