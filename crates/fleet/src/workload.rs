//! Deterministic per-home workload derivation.
//!
//! Every home's traffic is a pure function of `(FleetConfig, home
//! index)`: which device-types join, when each join wave starts, which
//! device roams away mid-setup, which neighbour's roamer arrives, and
//! which devices later leave. No global state flows between homes, so
//! homes can be simulated in any order, on any number of threads, and
//! produce identical results.
//!
//! [`HomeWorkload`] is a reusable buffer: a pooled fleet worker keeps
//! one per thread and [`HomeWorkload::rebuild`]s it for each home it
//! claims, so the per-home frame buffers (and the interleave order
//! scratch) are allocated once per worker instead of once per home.

use std::time::Duration;

use sentinel_devicesim::{DeviceModel, SetupTrace, Testbed};
use sentinel_netproto::{MacAddr, Timestamp};

use crate::FleetConfig;

/// Keyed FNV-1a mix, the same construction the testbed uses to make
/// collection campaigns reproducible.
fn mix(seed: u64, home: u64, slot: u64, tag: u64) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for value in [seed, home, slot, tag] {
        for byte in value.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    }
    hash
}

const TAG_PROFILE: u64 = 0x50_52_4f_46; // "PROF"
const TAG_JITTER: u64 = 0x4a_49_54_54; // "JITT"
const TAG_ROAM: u64 = 0x52_4f_41_4d; // "ROAM"
const TAG_LEAVE: u64 = 0x4c_45_41_56; // "LEAV"

/// One home's fully derived simulation input, backed by reusable
/// buffers (see the module docs).
#[derive(Debug, Default)]
pub struct HomeWorkload {
    /// Frame slots; only the first `active` belong to the current home.
    /// Kept at high-water length so the per-slot byte buffers survive
    /// [`HomeWorkload::rebuild`] and are re-encoded in place.
    frames: Vec<(Timestamp, Vec<u8>)>,
    /// Frames of the current home.
    active: usize,
    /// MAC of the local device that roams away mid-setup, if any.
    pub roam_out: Option<MacAddr>,
    /// MAC of the neighbour's device that arrives mid-setup, if any.
    pub roam_in: Option<MacAddr>,
    /// Devices that leave (rule removal) one tick after onboarding,
    /// **sorted by MAC** so the settle loop can binary-search instead
    /// of scanning (membership is all that matters: leave order is
    /// decided by onboarding order, not by this list).
    pub leavers: Vec<MacAddr>,
    /// Derivation scratch: the home's setup traces and per-trace start
    /// offsets.
    traces: Vec<SetupTrace>,
    offsets: Vec<Duration>,
    /// Interleave order scratch: `(shifted timestamp, trace, packet)` —
    /// the exact sort key of [`sentinel_devicesim::interleave_at`], so
    /// sorting indices instead of cloned packets yields the same stream.
    order: Vec<(Timestamp, u32, u32)>,
}

impl HomeWorkload {
    /// Timestamp-ordered wire frames the home gateway ingests.
    pub fn frames(&self) -> &[(Timestamp, Vec<u8>)] {
        &self.frames[..self.active]
    }

    /// Derives `home`'s complete workload into this buffer, replacing
    /// whatever home it previously held. Equivalent to (and pinned
    /// against) building a fresh workload with [`build_home_workload`];
    /// only the allocations are reused.
    pub fn rebuild(&mut self, config: &FleetConfig, devices: &[DeviceModel], home: usize) {
        let testbed = Testbed::new(config.seed);
        self.traces.clear();
        self.offsets.clear();
        self.leavers.clear();
        self.roam_out = None;
        self.roam_in = None;

        let out_slot = is_roam_origin(config, home).then(|| roam_slot(config, home));
        for slot in 0..config.devices_per_home {
            let mut trace = slot_trace(config, devices, &testbed, home, slot);
            if out_slot == Some(slot) && trace.packets.len() >= 2 {
                // This device walks out mid-setup: only the prefix of its
                // traffic reaches this gateway.
                trace.packets.truncate(roam_split(&trace));
                self.roam_out = Some(trace.mac);
            } else if config.leave_every > 0
                && mix(config.seed, home as u64, slot as u64, TAG_LEAVE)
                    .is_multiple_of(config.leave_every as u64)
            {
                self.leavers.push(trace.mac);
            }
            self.offsets.push(join_offset(config, home, slot));
            self.traces.push(trace);
        }

        // Re-derive the neighbour's roamer and append its remaining setup
        // traffic as a late arrival.
        if config.roaming_enabled() {
            let neighbour = (home + config.homes - 1) % config.homes;
            if is_roam_origin(config, neighbour) && roam_destination(config, neighbour) == home {
                let slot = roam_slot(config, neighbour);
                let full = slot_trace(config, devices, &testbed, neighbour, slot);
                if full.packets.len() >= 2 {
                    let mut suffix = full;
                    let split = roam_split(&suffix);
                    suffix.packets.drain(..split);
                    self.roam_in = Some(suffix.mac);
                    self.offsets.push(roam_arrival(config, home));
                    self.traces.push(suffix);
                }
            }
        }

        // Interleave by index: sort `(shifted ts, trace, packet)` keys —
        // the same total order `interleave_at` uses (keys are unique, so
        // unstable sorting cannot reorder) — then encode each packet
        // straight into its reused frame slot. Frame bytes are timestamp-
        // independent, so no packet is ever cloned or re-stamped.
        self.order.clear();
        for (trace_index, trace) in self.traces.iter().enumerate() {
            let offset = self.offsets[trace_index];
            for (packet_index, packet) in trace.packets.iter().enumerate() {
                self.order.push((
                    packet.timestamp + offset,
                    trace_index as u32,
                    packet_index as u32,
                ));
            }
        }
        self.order.sort_unstable();
        self.active = self.order.len();
        if self.frames.len() < self.active {
            self.frames
                .resize_with(self.active, || (Timestamp::ZERO, Vec::new()));
        }
        for (slot, &(timestamp, trace_index, packet_index)) in self.order.iter().enumerate() {
            let (stamp, buf) = &mut self.frames[slot];
            *stamp = timestamp;
            self.traces[trace_index as usize].packets[packet_index as usize].encode_into(buf);
        }
        self.leavers.sort_unstable();
    }
}

/// Whether `home` contributes a roaming device (to `home + 1`).
pub(crate) fn is_roam_origin(config: &FleetConfig, home: usize) -> bool {
    config.roaming_enabled() && home.is_multiple_of(config.roam_every)
}

/// The home a roamer leaving `home` arrives at.
pub(crate) fn roam_destination(config: &FleetConfig, home: usize) -> usize {
    (home + 1) % config.homes
}

/// The device slot of `home` that roams away, when `home` is an origin.
fn roam_slot(config: &FleetConfig, home: usize) -> usize {
    (mix(config.seed, home as u64, 0, TAG_ROAM) % config.devices_per_home.max(1) as u64) as usize
}

/// The full setup trace of `(home, slot)` — reproducible from the seed
/// alone, so a roam destination can re-derive its neighbour's roamer
/// without any cross-home state.
fn slot_trace(
    config: &FleetConfig,
    devices: &[DeviceModel],
    testbed: &Testbed,
    home: usize,
    slot: usize,
) -> SetupTrace {
    let profile =
        mix(config.seed, home as u64, slot as u64, TAG_PROFILE) % devices.len().max(1) as u64;
    let run = (home * config.devices_per_home + slot) as u64;
    testbed.setup_run(&devices[profile as usize].profile, run)
}

/// Start offset of `slot` inside its home's onboarding storm: joins
/// arrive in waves, staggered inside each wave, with a small keyed
/// jitter so homes are not phase-locked.
fn join_offset(config: &FleetConfig, home: usize, slot: usize) -> Duration {
    let waves = config.waves.max(1);
    let wave = (slot % waves) as u32;
    let rank = (slot / waves) as u32;
    let jitter_us = mix(config.seed, home as u64, slot as u64, TAG_JITTER) % 20_000;
    config.wave_stagger * wave + config.join_stagger * rank + Duration::from_micros(jitter_us)
}

/// When a roamer's remaining traffic shows up at its destination: after
/// the destination's own storm has launched every wave.
fn roam_arrival(config: &FleetConfig, home: usize) -> Duration {
    let jitter_us = mix(config.seed, home as u64, 1, TAG_ROAM) % 20_000;
    config.wave_stagger * (config.waves.max(1) as u32 + 1) + Duration::from_micros(jitter_us)
}

/// Splits a roamer's trace: the first `prefix_len` packets play at the
/// origin, the rest at the destination.
fn roam_split(trace: &SetupTrace) -> usize {
    (trace.packets.len() / 2).max(1)
}

/// Builds the complete workload of one home into a fresh buffer (the
/// one-shot convenience over [`HomeWorkload::rebuild`]).
pub fn build_home_workload(
    config: &FleetConfig,
    devices: &[DeviceModel],
    home: usize,
) -> HomeWorkload {
    let mut workload = HomeWorkload::default();
    workload.rebuild(config, devices, home);
    workload
}
