//! Train → save → load → bit-identical: the whole point of the
//! snapshot subsystem. A genuinely trained service is captured,
//! round-tripped through the binary format (in memory and through a
//! file), and the restored service must answer every keyed assessment
//! with byte-for-byte the same response as the original instance.

use std::sync::OnceLock;

use proptest::prelude::*;

use sentinel_core::{
    AssessKey, BankConfig, FingerprintDataset, Identifier, IdentifierConfig, IoTSecurityService,
    SecurityService, ServiceResponse, TrainedModel,
};
use sentinel_devicesim::{catalog, Testbed};
use sentinel_fingerprint::{extract, Fingerprint, FixedFingerprint};
use sentinel_ml::{ForestConfig, PinnedRng};
use sentinel_snapshot::{Snapshot, SnapshotBoot};

/// Trained fixture: a real (if small) model over a third of the
/// catalog, the snapshot taken from it, the restored service, and
/// per-key baseline responses from the *original* instance.
struct Fixture {
    snapshot: Snapshot,
    original: IoTSecurityService,
    restored: IoTSecurityService,
    probes: Vec<(Fingerprint, FixedFingerprint, AssessKey)>,
    baseline: Vec<ServiceResponse>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let devices: Vec<_> = catalog().into_iter().step_by(3).collect();
        let dataset = FingerprintDataset::collect(&devices, 3, 42);
        let config = IdentifierConfig {
            bank: BankConfig {
                forest: ForestConfig::default().with_trees(15),
                ..BankConfig::default()
            },
            references_per_type: 3,
            ..IdentifierConfig::default()
        };
        let original = IoTSecurityService::from_identifier(Identifier::train(&dataset, &config));
        let snapshot = Snapshot::of_service(&original);
        let restored = snapshot.clone().into_service();
        let testbed = Testbed::new(0x5eed);
        let probes: Vec<(Fingerprint, FixedFingerprint, AssessKey)> = devices
            .iter()
            .enumerate()
            .map(|(i, device)| {
                let trace = testbed.setup_run(&device.profile, 900 + i as u64);
                let full = extract(&trace.packets);
                let fixed = FixedFingerprint::from_fingerprint(&full);
                (full, fixed, AssessKey::new(31 * i as u64, trace.mac))
            })
            .collect();
        let baseline = probes
            .iter()
            .map(|(full, fixed, key)| original.assess_keyed(full, fixed, *key))
            .collect();
        Fixture {
            snapshot,
            original,
            restored,
            probes,
            baseline,
        }
    })
}

#[test]
fn snapshot_roundtrips_through_the_binary_format() {
    let fixture = fixture();
    let bytes = fixture.snapshot.encode();
    let decoded = Snapshot::decode(&bytes).expect("a just-encoded snapshot must decode");
    assert_eq!(decoded, fixture.snapshot, "decode(encode(s)) != s");
    // And the canonical encoding is a fixed point.
    assert_eq!(decoded.encode(), bytes, "encode(decode(b)) != b");
}

#[test]
fn restored_model_is_bit_identical() {
    let fixture = fixture();
    let bytes = fixture.snapshot.encode();
    let decoded = Snapshot::decode(&bytes).unwrap();
    // Every tree, threshold, leaf distribution, reference fingerprint
    // and advisory — `PartialEq` on the model is structural equality.
    assert_eq!(
        decoded.model,
        TrainedModel::from(fixture.original.identifier())
    );
    assert_eq!(&decoded.vulndb, fixture.original.vulndb());
}

#[test]
fn restored_service_assesses_bit_identically() {
    let fixture = fixture();
    for ((full, fixed, key), expected) in fixture.probes.iter().zip(&fixture.baseline) {
        let response = fixture.restored.assess_keyed(full, fixed, *key);
        assert_eq!(&response, expected, "loaded gateway diverged on {key:?}");
    }
}

#[test]
fn save_load_through_a_file_is_lossless() {
    let fixture = fixture();
    let path = std::env::temp_dir().join(format!("sentinel-roundtrip-{}.snap", std::process::id()));
    fixture.snapshot.save(&path).expect("save");
    let loaded = IoTSecurityService::from_snapshot(&path).expect("load");
    std::fs::remove_file(&path).ok();
    for ((full, fixed, key), expected) in fixture.probes.iter().zip(&fixture.baseline) {
        assert_eq!(&loaded.assess_keyed(full, fixed, *key), expected);
    }
}

#[test]
fn loading_a_missing_file_is_an_io_error() {
    let missing = std::env::temp_dir().join("sentinel-definitely-missing.snap");
    match Snapshot::load(&missing) {
        Err(sentinel_snapshot::SnapshotError::Io(_)) => {}
        other => panic!("expected Io error, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The keyed contract survives the round trip: for arbitrary keys
    /// (not just the ones the baseline happened to use), the restored
    /// service and the original answer identically, in any order.
    #[test]
    fn restored_service_matches_the_original_on_arbitrary_keys(
        seq in any::<u64>(),
        pick_seed in any::<u64>(),
    ) {
        let fixture = fixture();
        let pick = PinnedRng::from_key(pick_seed, 0, 0).index(fixture.probes.len());
        let (full, fixed, base) = &fixture.probes[pick];
        let key = AssessKey::new(seq, base.mac);
        prop_assert_eq!(
            fixture.restored.assess_keyed(full, fixed, key),
            fixture.original.assess_keyed(full, fixed, key)
        );
    }
}
