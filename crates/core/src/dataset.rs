//! Labeled fingerprint datasets (the paper's 540-fingerprint corpus).

use serde::{Deserialize, Serialize};

use sentinel_devicesim::{DeviceModel, Testbed};
use sentinel_fingerprint::{extract, Fingerprint, FixedFingerprint};

/// A labeled corpus of device fingerprints: for each setup run both the
/// variable-length `F` (for edit-distance discrimination) and the fixed
/// 276-dimensional `F'` (for classification), plus the device-type
/// label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FingerprintDataset {
    type_names: Vec<String>,
    labels: Vec<usize>,
    full: Vec<Fingerprint>,
    fixed: Vec<FixedFingerprint>,
}

impl FingerprintDataset {
    /// Collects `runs` setup traces per catalog device on a fresh
    /// [`Testbed`] seeded with `seed`, and extracts fingerprints — the
    /// reproduction of the paper's data collection (Sect. VI-A: 27
    /// types × 20 runs = 540 fingerprints).
    pub fn collect(devices: &[DeviceModel], runs: u64, seed: u64) -> Self {
        Self::collect_with_packets(devices, runs, seed, sentinel_fingerprint::FIXED_PACKETS)
    }

    /// Collects fingerprints from *standby/operation* traffic instead of
    /// setup traffic (the Sect. VIII-A legacy-installation scenario):
    /// `cycles` heartbeat cycles per capture, `runs` captures per type.
    pub fn collect_standby(devices: &[DeviceModel], runs: u64, cycles: u32, seed: u64) -> Self {
        let testbed = Testbed::new(seed);
        let mut dataset = FingerprintDataset {
            type_names: devices
                .iter()
                .map(|d| d.info.identifier.to_owned())
                .collect(),
            labels: Vec::new(),
            full: Vec::new(),
            fixed: Vec::new(),
        };
        for (label, device) in devices.iter().enumerate() {
            for run in 0..runs {
                let trace = testbed.standby_run(&device.profile, run, cycles);
                let fingerprint = extract(&trace.packets);
                let fixed = FixedFingerprint::from_fingerprint(&fingerprint);
                dataset.labels.push(label);
                dataset.full.push(fingerprint);
                dataset.fixed.push(fixed);
            }
        }
        dataset
    }

    /// Like [`FingerprintDataset::collect`] but building `F'` from a
    /// non-default number of unique packets (the truncation-length
    /// ablation).
    pub fn collect_with_packets(
        devices: &[DeviceModel],
        runs: u64,
        seed: u64,
        packets: usize,
    ) -> Self {
        let testbed = Testbed::new(seed);
        let mut dataset = FingerprintDataset {
            type_names: devices
                .iter()
                .map(|d| d.info.identifier.to_owned())
                .collect(),
            labels: Vec::new(),
            full: Vec::new(),
            fixed: Vec::new(),
        };
        for (label, trace) in testbed.collect_catalog(devices, runs) {
            let fingerprint = extract(&trace.packets);
            let fixed = FixedFingerprint::with_packets(&fingerprint, packets);
            dataset.labels.push(label);
            dataset.full.push(fingerprint);
            dataset.fixed.push(fixed);
        }
        dataset
    }

    /// Builds a dataset from pre-extracted fingerprints.
    ///
    /// # Panics
    ///
    /// Panics if the slices disagree in length or a label is out of
    /// range.
    pub fn from_parts(
        type_names: Vec<String>,
        labels: Vec<usize>,
        full: Vec<Fingerprint>,
        fixed: Vec<FixedFingerprint>,
    ) -> Self {
        assert_eq!(labels.len(), full.len());
        assert_eq!(labels.len(), fixed.len());
        assert!(labels.iter().all(|&l| l < type_names.len()));
        FingerprintDataset {
            type_names,
            labels,
            full,
            fixed,
        }
    }

    /// Number of fingerprints.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of device-types.
    pub fn n_types(&self) -> usize {
        self.type_names.len()
    }

    /// Device-type names, indexed by label.
    pub fn type_names(&self) -> &[String] {
        &self.type_names
    }

    /// The label of fingerprint `index`.
    pub fn label(&self, index: usize) -> usize {
        self.labels[index]
    }

    /// All labels in order.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The variable-length fingerprint `F` at `index`.
    pub fn full(&self, index: usize) -> &Fingerprint {
        &self.full[index]
    }

    /// The fixed-size fingerprint `F'` at `index`.
    pub fn fixed(&self, index: usize) -> &FixedFingerprint {
        &self.fixed[index]
    }

    /// Indices of all fingerprints with the given label.
    pub fn indices_of(&self, label: usize) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.labels[i] == label)
            .collect()
    }

    /// A sub-dataset restricted to `indices` (labels and names kept).
    pub fn subset(&self, indices: &[usize]) -> FingerprintDataset {
        FingerprintDataset {
            type_names: self.type_names.clone(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            full: indices.iter().map(|&i| self.full[i].clone()).collect(),
            fixed: indices.iter().map(|&i| self.fixed[i].clone()).collect(),
        }
    }

    /// Serializes the corpus as JSON (the format the IoTSSP would use to
    /// archive crowdsourced fingerprint submissions).
    ///
    /// # Errors
    ///
    /// Returns any I/O or serialization error from `serde_json`.
    pub fn to_json_writer<W: std::io::Write>(&self, writer: W) -> Result<(), serde_json::Error> {
        serde_json::to_writer(writer, self)
    }

    /// Deserializes a corpus previously written by
    /// [`FingerprintDataset::to_json_writer`].
    ///
    /// # Errors
    ///
    /// Returns any I/O or deserialization error from `serde_json`.
    pub fn from_json_reader<R: std::io::Read>(reader: R) -> Result<Self, serde_json::Error> {
        serde_json::from_reader(reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_devicesim::catalog;

    fn small() -> FingerprintDataset {
        let devices: Vec<_> = catalog().into_iter().take(3).collect();
        FingerprintDataset::collect(&devices, 4, 1)
    }

    #[test]
    fn collect_shape() {
        let dataset = small();
        assert_eq!(dataset.len(), 12);
        assert_eq!(dataset.n_types(), 3);
        assert_eq!(dataset.indices_of(0).len(), 4);
        assert_eq!(dataset.fixed(0).dimensions(), 276);
    }

    #[test]
    fn paper_scale_dataset() {
        let devices = catalog();
        let dataset = FingerprintDataset::collect(&devices, 2, 2);
        assert_eq!(dataset.len(), 54);
        assert_eq!(dataset.n_types(), 27);
        assert_eq!(dataset.type_names()[0], "Aria");
    }

    #[test]
    fn subset_keeps_alignment() {
        let dataset = small();
        let indices = dataset.indices_of(1);
        let sub = dataset.subset(&indices);
        assert_eq!(sub.len(), 4);
        assert!(sub.labels().iter().all(|&l| l == 1));
        assert_eq!(sub.full(0), dataset.full(indices[0]));
    }

    #[test]
    fn same_type_runs_vary_but_share_structure() {
        let dataset = small();
        let a = dataset.full(0);
        let b = dataset.full(1);
        // Different runs of the same device are not byte-identical…
        assert_ne!(a, b);
        // …but lie close in edit distance compared to other types.
        let within = sentinel_fingerprint::editdist::normalized_distance(a, b);
        let other = dataset.indices_of(2)[0];
        let across = sentinel_fingerprint::editdist::normalized_distance(a, dataset.full(other));
        assert!(within < across, "within {within} vs across {across}");
    }

    #[test]
    fn json_roundtrip() {
        let dataset = small();
        let mut buf = Vec::new();
        dataset.to_json_writer(&mut buf).unwrap();
        let restored = FingerprintDataset::from_json_reader(buf.as_slice()).unwrap();
        assert_eq!(restored, dataset);
    }

    #[test]
    fn standby_collection_shape() {
        let devices: Vec<_> = catalog().into_iter().take(3).collect();
        let dataset = FingerprintDataset::collect_standby(&devices, 4, 2, 1);
        assert_eq!(dataset.len(), 12);
        // Standby cycles are shorter than setup traces.
        let setup = FingerprintDataset::collect(&devices, 4, 1);
        let mean_len = |d: &FingerprintDataset| {
            (0..d.len()).map(|i| d.full(i).len()).sum::<usize>() as f64 / d.len() as f64
        };
        assert!(mean_len(&dataset) > 0.0);
        assert!(mean_len(&setup) > 0.0);
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn from_parts_validates_lengths() {
        let _ = FingerprintDataset::from_parts(
            vec!["a".into()],
            vec![0, 0],
            vec![Fingerprint::default()],
            vec![],
        );
    }
}
