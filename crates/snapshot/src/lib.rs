//! Model persistence for IoT Sentinel: versioned, checksummed binary
//! snapshots of a trained gateway, for instant boot.
//!
//! Training the 27-classifier bank takes on the order of a hundred
//! milliseconds per run *per gateway*; a fleet of access gateways
//! booting from the same model should pay that cost once, centrally.
//! This crate serializes everything a [`SecurityGateway`] needs — the
//! stage-1 Random Forest bank (every tree's structure-of-arrays
//! content), the stage-2 reference fingerprints (interned: a pool of
//! distinct feature vectors plus id sequences), the identifier
//! configuration, and the vulnerability-database tier — into one
//! compact file, and restores it to a bit-identical service: the same
//! [`AssessKey`](sentinel_core::AssessKey)ed assessment against the
//! loaded gateway and the originally trained one produces the same
//! bytes of report.
//!
//! # Container format (version 1)
//!
//! All integers little-endian, fixed-width; the layout is designed so
//! a future loader can map sections in place without re-parsing the
//! header.
//!
//! ```text
//! offset  size  field
//!      0     8  magic "SENTSNAP"
//!      8     4  format version (u32, currently 1)
//!     12     4  section count (u32)
//!     16   28n  section table: per section
//!                 id (u32)  — 1 config, 2 bank, 3 references, 4 vulndb
//!                 offset (u64, from file start)
//!                 length (u64)
//!                 checksum (u64, XXH64 of the payload, seed 0)
//!  16+28n    ..  section payloads, in table order
//! ```
//!
//! Integrity is enforced per section ([`hash::xxh64`]); decoding is
//! panic-free for arbitrary input and every failure is a typed
//! [`SnapshotError`]. Unknown *section ids* are ignored (forward
//! compatibility for additive sections); unknown *format versions* are
//! rejected (the version only changes when the layout of existing
//! sections does).
//!
//! # Boot path
//!
//! ```no_run
//! use sentinel_core::{IoTSecurityService, SecurityGateway};
//! use sentinel_snapshot::SnapshotBoot;
//!
//! let gateway = SecurityGateway::<IoTSecurityService>::from_snapshot("sentinel.snap")?;
//! # Ok::<(), sentinel_snapshot::SnapshotError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::path::Path;

use sentinel_core::vulndb::StaticVulnDb;
use sentinel_core::{Identifier, IoTSecurityService, SecurityGateway, TrainedModel};

mod codec;
pub mod hash;
mod wire;

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"SENTSNAP";

/// The current (and only) container format version.
pub const FORMAT_VERSION: u32 = 1;

const SECTION_CONFIG: u32 = 1;
const SECTION_BANK: u32 = 2;
const SECTION_REFERENCES: u32 = 3;
const SECTION_VULNDB: u32 = 4;

const HEADER_SIZE: usize = 16;
const TABLE_ENTRY_SIZE: usize = 28;
/// Decode refuses section tables larger than this: the format defines
/// four sections and forward-compatible additions stay in the same
/// order of magnitude, while a corrupted count could otherwise demand
/// gigabytes of table.
const MAX_SECTIONS: usize = 64;

/// Why a snapshot could not be written or restored.
///
/// Every failure mode of the load path is typed — corrupt input is an
/// `Err`, never a panic and never a partially assembled model.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying file could not be read or written.
    Io(std::io::Error),
    /// The input ended before the structure it promised (`context`
    /// names the header or section being read).
    Truncated {
        /// The header or section being read when the bytes ran out.
        context: &'static str,
    },
    /// The file does not start with the `SENTSNAP` magic.
    BadMagic,
    /// The container declares a format version this build cannot read.
    UnsupportedVersion(u32),
    /// A section's payload does not match its recorded checksum.
    ChecksumMismatch {
        /// The section whose integrity check failed.
        section: &'static str,
    },
    /// The bytes are structurally well-formed but encode an invalid
    /// model (bad enum tag, out-of-range index, violated tree
    /// invariant, …).
    Decode(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(err) => write!(f, "snapshot I/O failed: {err}"),
            SnapshotError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            SnapshotError::BadMagic => write!(f, "not a sentinel snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(version) => write!(
                f,
                "snapshot format version {version} is not supported (this build reads {FORMAT_VERSION})"
            ),
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "snapshot {section} failed its integrity check")
            }
            SnapshotError::Decode(what) => write!(f, "snapshot decode failed: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(err: std::io::Error) -> Self {
        SnapshotError::Io(err)
    }
}

/// A serializable image of a trained gateway: the identifier model
/// plus the vulnerability-database tier.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The trained identifier (classifier bank, stage-2 references,
    /// configuration).
    pub model: TrainedModel,
    /// The vulnerability database the service enforces with.
    pub vulndb: StaticVulnDb,
}

impl Snapshot {
    /// Wraps an already-extracted model and vulnerability database.
    pub fn new(model: TrainedModel, vulndb: StaticVulnDb) -> Self {
        Snapshot { model, vulndb }
    }

    /// Captures a running service's model and vulnerability database.
    pub fn of_service(service: &IoTSecurityService) -> Self {
        Snapshot {
            model: TrainedModel::from(service.identifier()),
            vulndb: service.vulndb().clone(),
        }
    }

    /// Reassembles the service this snapshot captured. The rebuild is
    /// deterministic — interning, forest packing and scoring pools are
    /// derived from the model — so the result answers every keyed
    /// assessment bit-identically to the originally trained instance.
    pub fn into_service(self) -> IoTSecurityService {
        IoTSecurityService::from_parts(Identifier::from(self.model), self.vulndb)
    }

    /// Encodes the snapshot into the version-1 container format.
    pub fn encode(&self) -> Vec<u8> {
        let sections = [
            (SECTION_CONFIG, codec::encode_config(self.model.config())),
            (SECTION_BANK, codec::encode_bank(self.model.bank())),
            (
                SECTION_REFERENCES,
                codec::encode_references(self.model.references()),
            ),
            (SECTION_VULNDB, codec::encode_vulndb(&self.vulndb)),
        ];
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
        let mut offset = HEADER_SIZE + sections.len() * TABLE_ENTRY_SIZE;
        for (id, payload) in &sections {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&(offset as u64).to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&hash::xxh64(payload, 0).to_le_bytes());
            offset += payload.len();
        }
        for (_, payload) in &sections {
            out.extend_from_slice(payload);
        }
        out
    }

    /// Decodes a version-1 container.
    ///
    /// # Errors
    ///
    /// Any malformation of the input — truncation, a foreign file, a
    /// future format version, a corrupted section, or structurally
    /// valid bytes that encode an inconsistent model — is reported as
    /// the corresponding [`SnapshotError`] variant.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let header = bytes.get(..HEADER_SIZE).ok_or(SnapshotError::Truncated {
            context: "container header",
        })?;
        if header[..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let n_sections = u32::from_le_bytes(header[12..16].try_into().unwrap()) as usize;
        if n_sections > MAX_SECTIONS {
            return Err(SnapshotError::Decode(format!(
                "section table declares {n_sections} sections (limit {MAX_SECTIONS})"
            )));
        }
        let table = bytes
            .get(HEADER_SIZE..HEADER_SIZE + n_sections * TABLE_ENTRY_SIZE)
            .ok_or(SnapshotError::Truncated {
                context: "section table",
            })?;
        let mut config = None;
        let mut bank = None;
        let mut references = None;
        let mut vulndb = None;
        for entry in table.chunks_exact(TABLE_ENTRY_SIZE) {
            let id = u32::from_le_bytes(entry[..4].try_into().unwrap());
            let offset = u64::from_le_bytes(entry[4..12].try_into().unwrap());
            let length = u64::from_le_bytes(entry[12..20].try_into().unwrap());
            let checksum = u64::from_le_bytes(entry[20..28].try_into().unwrap());
            let name = match id {
                SECTION_CONFIG => "config section",
                SECTION_BANK => "bank section",
                SECTION_REFERENCES => "references section",
                SECTION_VULNDB => "vulnerability section",
                // Unknown sections are additive format extensions:
                // skip them without even bounds-checking their spans.
                _ => continue,
            };
            let start =
                usize::try_from(offset).map_err(|_| SnapshotError::Truncated { context: name })?;
            let end = start
                .checked_add(
                    usize::try_from(length)
                        .map_err(|_| SnapshotError::Truncated { context: name })?,
                )
                .ok_or(SnapshotError::Truncated { context: name })?;
            let payload = bytes
                .get(start..end)
                .ok_or(SnapshotError::Truncated { context: name })?;
            if hash::xxh64(payload, 0) != checksum {
                return Err(SnapshotError::ChecksumMismatch { section: name });
            }
            match id {
                SECTION_CONFIG => config = Some(payload),
                SECTION_BANK => bank = Some(payload),
                SECTION_REFERENCES => references = Some(payload),
                SECTION_VULNDB => vulndb = Some(payload),
                _ => unreachable!(),
            }
        }
        let missing = |what: &str| SnapshotError::Decode(format!("missing {what} section"));
        let model = codec::decode_model(
            config.ok_or_else(|| missing("config"))?,
            bank.ok_or_else(|| missing("bank"))?,
            references.ok_or_else(|| missing("references"))?,
        )?;
        let vulndb = codec::decode_vulndb(vulndb.ok_or_else(|| missing("vulnerability"))?)?;
        Ok(Snapshot { model, vulndb })
    }

    /// Encodes and writes the snapshot to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] if the file cannot be written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        std::fs::write(path, self.encode())?;
        Ok(())
    }

    /// Reads and decodes a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// See [`Snapshot::decode`]; file-system failures surface as
    /// [`SnapshotError::Io`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Snapshot::decode(&std::fs::read(path)?)
    }
}

/// Instant boot from a snapshot file.
///
/// Defined here (rather than as inherent methods) because the core
/// crate cannot depend on this one; bring the trait into scope and the
/// call reads like a constructor.
pub trait SnapshotBoot: Sized {
    /// Restores an instance from the snapshot at `path`.
    ///
    /// # Errors
    ///
    /// See [`Snapshot::load`].
    fn from_snapshot(path: impl AsRef<Path>) -> Result<Self, SnapshotError>;
}

impl SnapshotBoot for IoTSecurityService {
    fn from_snapshot(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Ok(Snapshot::load(path)?.into_service())
    }
}

impl SnapshotBoot for SecurityGateway<IoTSecurityService> {
    fn from_snapshot(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Ok(SecurityGateway::new(IoTSecurityService::from_snapshot(
            path,
        )?))
    }
}
