//! Reproduces **Fig. 6**: Security Gateway performance on the Raspberry
//! Pi deployment —
//! (a) latency vs concurrent flows, (b) CPU utilization vs concurrent
//! flows, (c) memory consumption vs enforcement rules.
//!
//! ```text
//! cargo run --release -p sentinel-bench --bin fig6_scaling            # all three
//! cargo run --release -p sentinel-bench --bin fig6_scaling -- latency
//! cargo run --release -p sentinel-bench --bin fig6_scaling -- cpu
//! cargo run --release -p sentinel-bench --bin fig6_scaling -- memory
//! ```

use sentinel_bench::cli::Args;
use sentinel_bench::{enforcement, tables};

fn main() {
    let args = Args::from_env();
    let which = args
        .positional()
        .first()
        .map(String::as_str)
        .unwrap_or("all");
    let iterations: usize = args.get("iterations", 50);
    let seed: u64 = args.get("seed", 42);

    if which == "latency" || which == "all" {
        latency(iterations, seed);
    }
    if which == "cpu" || which == "all" {
        cpu(iterations, seed);
    }
    if which == "memory" || which == "all" {
        memory(seed);
    }
    if !["latency", "cpu", "memory", "all"].contains(&which) {
        eprintln!("usage: fig6_scaling [latency|cpu|memory|all]");
        std::process::exit(2);
    }
}

fn latency(iterations: usize, seed: u64) {
    print!(
        "{}",
        tables::banner("Fig. 6a — D1-D2 latency vs concurrent flows")
    );
    let points: Vec<usize> = (20..=150).step_by(10).collect();
    let rows: Vec<Vec<String>> = enforcement::latency_vs_flows(&points, iterations, seed)
        .iter()
        .map(|p| {
            vec![
                p.flows.to_string(),
                format!("{:.1}", p.filtering),
                format!("{:.1}", p.no_filtering),
            ]
        })
        .collect();
    print!(
        "{}",
        tables::render(&["Flows", "w/ filtering (ms)", "w/o filtering (ms)"], &rows)
    );
    println!("\nexpected shape: flat — \"the increase in latency for up to 150 concurrent\nflows is insignificant\" (Sect. VI-C).\n");
}

fn cpu(iterations: usize, seed: u64) {
    print!(
        "{}",
        tables::banner("Fig. 6b — CPU utilization vs concurrent flows")
    );
    let points: Vec<usize> = (0..=150).step_by(10).collect();
    let rows: Vec<Vec<String>> = enforcement::cpu_vs_flows(&points, iterations, seed)
        .iter()
        .map(|p| {
            vec![
                p.flows.to_string(),
                format!("{:.1}", p.filtering),
                format!("{:.1}", p.no_filtering),
            ]
        })
        .collect();
    print!(
        "{}",
        tables::render(&["Flows", "w/ filtering (%)", "w/o filtering (%)"], &rows)
    );
    println!("\nexpected shape: ~37% rising to ~49% at 150 flows; filtering adds <1 point.\n");
}

fn memory(seed: u64) {
    print!(
        "{}",
        tables::banner("Fig. 6c — Memory consumption vs enforcement rules")
    );
    let points: Vec<usize> = (0..=20_000).step_by(2_000).collect();
    let rows: Vec<Vec<String>> = enforcement::memory_vs_rules(&points, seed)
        .iter()
        .map(|p| {
            vec![
                p.rules.to_string(),
                format!("{:.1}", p.filtering_mb),
                format!("{:.1}", p.no_filtering_mb),
                format!("{:.2}", p.cache_bytes as f64 / 1e6),
            ]
        })
        .collect();
    print!(
        "{}",
        tables::render(
            &[
                "Rules",
                "w/ filtering (MB)",
                "w/o filtering (MB)",
                "in-process cache (MB)"
            ],
            &rows,
        )
    );
    println!("\nexpected shape: linear growth to ~100 MB at 20 000 rules with filtering,\nflat without; the real in-process rule cache grows linearly too.\n");
}
