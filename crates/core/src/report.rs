//! Result types of the identification and onboarding pipeline.

use std::fmt;
use std::net::IpAddr;

use serde::{Deserialize, Serialize};

use sentinel_netproto::MacAddr;
use sentinel_sdn::IsolationLevel;

/// The outcome of a device-type identification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Outcome {
    /// The fingerprint was attributed to a known device-type.
    Identified {
        /// Predicted type label.
        label: usize,
        /// Predicted type name.
        name: String,
    },
    /// No classifier accepted the fingerprint: a new/unknown
    /// device-type.
    Unknown,
}

/// The full record of one identification (Sect. IV-B pipeline).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Identification {
    /// Final outcome.
    pub outcome: Outcome,
    /// Labels accepted by the classifier bank (first stage).
    pub candidates: Vec<usize>,
    /// Whether edit-distance discrimination (second stage) ran.
    pub discriminated: bool,
    /// Dissimilarity scores `s_i ∈ [0, 5]` per candidate, aligned with
    /// `candidates`; empty when discrimination was skipped.
    pub scores: Vec<f64>,
}

impl Identification {
    /// The predicted label, if any.
    pub fn label(&self) -> Option<usize> {
        match &self.outcome {
            Outcome::Identified { label, .. } => Some(*label),
            Outcome::Unknown => None,
        }
    }
}

impl fmt::Display for Identification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.outcome {
            Outcome::Identified { name, .. } => write!(f, "identified as {name}")?,
            Outcome::Unknown => write!(f, "unknown device-type")?,
        }
        write!(f, " ({} candidate(s)", self.candidates.len())?;
        if self.discriminated {
            write!(f, ", edit-distance discrimination applied")?;
        }
        write!(f, ")")
    }
}

/// What the IoT Security Service returns to a Security Gateway for one
/// device fingerprint (Sect. III-B: "it just receives fingerprints and
/// returns an isolation level accordingly").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceResponse {
    /// The identification record.
    pub identification: Identification,
    /// Isolation level to enforce.
    pub isolation: IsolationLevel,
    /// Permitted remote endpoints (non-empty only for
    /// [`IsolationLevel::Restricted`]).
    pub permitted_endpoints: Vec<IpAddr>,
    /// Sect. III-C.3 user notification: set when isolation cannot contain
    /// the device (vulnerable type with an uncontrollable external
    /// channel) and the user must remove it.
    pub user_notification: Option<String>,
}

/// The gateway-side record of a completed device onboarding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnboardingReport {
    /// The onboarded device.
    pub mac: MacAddr,
    /// Packets captured during the setup phase.
    pub setup_packets: usize,
    /// The service's verdict.
    pub response: ServiceResponse,
}

impl fmt::Display for OnboardingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device {} ({} setup packets): {}, isolation {}",
            self.mac, self.setup_packets, self.response.identification, self.response.isolation
        )?;
        if !self.response.permitted_endpoints.is_empty() {
            write!(f, ", permitted {:?}", self.response.permitted_endpoints)?;
        }
        if self.response.user_notification.is_some() {
            write!(f, " [USER ACTION REQUIRED]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identification_accessors_and_display() {
        let id = Identification {
            outcome: Outcome::Identified {
                label: 3,
                name: "HueBridge".into(),
            },
            candidates: vec![3, 4],
            discriminated: true,
            scores: vec![0.4, 2.5],
        };
        assert_eq!(id.label(), Some(3));
        let text = id.to_string();
        assert!(text.contains("HueBridge"));
        assert!(text.contains("discrimination"));
    }

    #[test]
    fn unknown_display() {
        let id = Identification {
            outcome: Outcome::Unknown,
            candidates: vec![],
            discriminated: false,
            scores: vec![],
        };
        assert_eq!(id.label(), None);
        assert!(id.to_string().contains("unknown"));
    }

    #[test]
    fn onboarding_report_display() {
        let report = OnboardingReport {
            mac: "13-73-74-7E-A9-C2".parse().unwrap(),
            setup_packets: 17,
            response: ServiceResponse {
                identification: Identification {
                    outcome: Outcome::Unknown,
                    candidates: vec![],
                    discriminated: false,
                    scores: vec![],
                },
                isolation: IsolationLevel::Strict,
                permitted_endpoints: vec![],
                user_notification: None,
            },
        };
        let text = report.to_string();
        assert!(text.contains("17 setup packets"));
        assert!(text.contains("strict"));
    }
}
