//! Feature extraction from captured packets.

use std::net::IpAddr;

use sentinel_netproto::{Packet, ParseError, RawFeatures};

use crate::{FeatureVector, Fingerprint};

/// Stateful per-device feature extractor.
///
/// The extractor owns the destination-IP counter required by the Table I
/// `Destination IP counter` feature: the `k`-th *distinct* destination
/// address a device contacts is mapped to `k` (1-based), capturing "the
/// count and order in which a device communicates with different
/// entities during its setup procedure".
///
/// Feed packets in capture order with [`FeatureExtractor::push`], then
/// take the fingerprint with [`FeatureExtractor::finish`]. For the common
/// batch case, use the free function [`extract`].
#[derive(Debug, Clone, Default)]
pub struct FeatureExtractor {
    /// Distinct destination addresses in first-appearance order; the
    /// counter of an address is its index + 1. A setup phase contacts a
    /// handful of endpoints, so a linear scan beats hashing.
    dst_ip_order: Vec<IpAddr>,
    vectors: Vec<FeatureVector>,
}

impl FeatureExtractor {
    /// Creates an extractor with empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an extractor with `capacity` feature vectors pre-allocated.
    ///
    /// Sessions bounded by a detector packet cap should pass that cap so
    /// setup bursts never reallocate the vector arena.
    pub fn with_capacity(capacity: usize) -> Self {
        FeatureExtractor {
            dst_ip_order: Vec::new(),
            vectors: Vec::with_capacity(capacity),
        }
    }

    /// Extracts the features of `packet` and appends them.
    ///
    /// Returns the extracted vector for callers that want to observe it.
    pub fn push(&mut self, packet: &Packet) -> &FeatureVector {
        self.push_raw(&RawFeatures::from_packet(packet))
    }

    /// Appends the features of one wire-scanned frame (the zero-copy
    /// fast path — see [`sentinel_netproto::WireScan`]).
    pub fn push_raw(&mut self, raw: &RawFeatures) -> &FeatureVector {
        let counter = match raw.dst_ip {
            Some(ip) => match self.dst_ip_order.iter().position(|&seen| seen == ip) {
                Some(index) => index as u32 + 1,
                None => {
                    self.dst_ip_order.push(ip);
                    self.dst_ip_order.len() as u32
                }
            },
            None => 0,
        };
        self.vectors.push(FeatureVector::from_raw(raw, counter));
        self.vectors.last().expect("just pushed")
    }

    /// Extracts the features of one raw Ethernet frame without building
    /// a [`Packet`], falling back to the full decoder only when the wire
    /// scanner cannot certify the frame.
    ///
    /// Errors exactly when `Packet::parse` would.
    pub fn push_bytes(&mut self, frame: &[u8]) -> Result<&FeatureVector, ParseError> {
        let raw = RawFeatures::from_frame(frame)?;
        Ok(self.push_raw(&raw))
    }

    /// The number of packets consumed so far.
    pub fn packet_count(&self) -> usize {
        self.vectors.len()
    }

    /// Finalizes into a [`Fingerprint`] (dropping consecutive duplicates).
    pub fn finish(self) -> Fingerprint {
        Fingerprint::from_vec(self.vectors)
    }
}

/// Extracts a [`Fingerprint`] from setup-phase packets in capture order.
///
/// ```
/// use sentinel_fingerprint::extract;
/// use sentinel_netproto::{MacAddr, Packet};
///
/// let mac = MacAddr::new([0, 0, 0, 0, 0, 7]);
/// let fingerprint = extract(&[Packet::dhcp_discover(mac, 9, 0)]);
/// assert_eq!(fingerprint.len(), 1);
/// ```
pub fn extract(packets: &[Packet]) -> Fingerprint {
    let mut extractor = FeatureExtractor::with_capacity(packets.len());
    for packet in packets {
        extractor.push(packet);
    }
    extractor.finish()
}

/// Extracts a [`Fingerprint`] straight from raw Ethernet frames via the
/// zero-copy wire scanner, never constructing a [`Packet`] on the fast
/// path. Produces exactly the same fingerprint as [`extract`] on the
/// decoded packets; errors exactly when decoding would.
pub fn extract_frames<B: AsRef<[u8]>>(frames: &[B]) -> Result<Fingerprint, ParseError> {
    let mut extractor = FeatureExtractor::with_capacity(frames.len());
    for frame in frames {
        extractor.push_bytes(frame.as_ref())?;
    }
    Ok(extractor.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_netproto::{AppPayload, MacAddr, Timestamp};
    use std::net::Ipv4Addr;

    fn mac() -> MacAddr {
        MacAddr::new([5, 5, 5, 5, 5, 5])
    }

    fn udp_to(dst: Ipv4Addr, dst_port: u16, t: u64) -> Packet {
        Packet::udp_ipv4(
            Timestamp::from_micros(t),
            mac(),
            MacAddr::ZERO,
            Ipv4Addr::new(192, 168, 0, 50),
            dst,
            50000,
            dst_port,
            AppPayload::Empty,
        )
    }

    #[test]
    fn dst_ip_counter_tracks_first_appearance_order() {
        let gw = Ipv4Addr::new(192, 168, 0, 1);
        let cloud = Ipv4Addr::new(52, 1, 2, 3);
        let packets = [
            udp_to(gw, 53, 0),
            udp_to(cloud, 443, 1),
            udp_to(gw, 53, 2),
            udp_to(cloud, 443, 3),
        ];
        let mut extractor = FeatureExtractor::new();
        let counters: Vec<u32> = packets
            .iter()
            .map(|p| extractor.push(p).dst_ip_counter)
            .collect();
        assert_eq!(counters, vec![1, 2, 1, 2]);
    }

    #[test]
    fn packets_without_ip_get_zero_counter() {
        let probe = Packet::arp_probe(Timestamp::ZERO, mac(), Ipv4Addr::new(10, 0, 0, 1));
        let mut extractor = FeatureExtractor::new();
        assert_eq!(extractor.push(&probe).dst_ip_counter, 0);
        // An ARP probe must not consume a counter slot.
        let first_ip = udp_to(Ipv4Addr::new(10, 0, 0, 9), 80, 1);
        assert_eq!(extractor.push(&first_ip).dst_ip_counter, 1);
    }

    #[test]
    fn extract_dedups_consecutive_identical_packets() {
        let gw = Ipv4Addr::new(192, 168, 0, 1);
        // Identical from the feature perspective: same protocols, size,
        // counter and port classes.
        let packets = vec![udp_to(gw, 53, 0), udp_to(gw, 53, 100), udp_to(gw, 53, 200)];
        let fingerprint = extract(&packets);
        assert_eq!(fingerprint.len(), 1);
    }

    #[test]
    fn different_destinations_are_not_duplicates() {
        let packets = vec![
            udp_to(Ipv4Addr::new(192, 168, 0, 1), 53, 0),
            udp_to(Ipv4Addr::new(52, 0, 0, 1), 53, 1),
        ];
        assert_eq!(extract(&packets).len(), 2);
    }
}
