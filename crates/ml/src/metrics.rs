//! Classification metrics: accuracy, confusion matrices,
//! precision/recall — the quantities behind the paper's Fig. 5 and
//! Table III.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Fraction of predictions equal to the true label.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn accuracy(truth: &[usize], predicted: &[usize]) -> f64 {
    assert_eq!(truth.len(), predicted.len(), "length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let correct = truth.iter().zip(predicted).filter(|(t, p)| t == p).count();
    correct as f64 / truth.len() as f64
}

/// A confusion matrix over `n` classes: `matrix[actual][predicted]`
/// counts, exactly the layout of the paper's Table III (A = actual type,
/// P = predicted type).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
    labels: Vec<String>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix with the given class labels.
    pub fn new(labels: impl IntoIterator<Item = impl Into<String>>) -> Self {
        let labels: Vec<String> = labels.into_iter().map(Into::into).collect();
        let n = labels.len();
        ConfusionMatrix {
            counts: vec![vec![0; n]; n],
            labels,
        }
    }

    /// Records one `(actual, predicted)` observation.
    ///
    /// # Panics
    ///
    /// Panics if either class index is out of range.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        self.counts[actual][predicted] += 1;
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.labels.len()
    }

    /// The class labels.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// The count of rows with `actual` classified as `predicted`.
    pub fn count(&self, actual: usize, predicted: usize) -> usize {
        self.counts[actual][predicted]
    }

    /// Overall accuracy (trace over total).
    pub fn accuracy(&self) -> f64 {
        let total: usize = self.counts.iter().flatten().sum();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.n_classes()).map(|i| self.counts[i][i]).sum();
        correct as f64 / total as f64
    }

    /// Per-class recall (the "ratio of correct identification" plotted in
    /// the paper's Fig. 5). `None` if the class has no observations.
    pub fn recall(&self, class: usize) -> Option<f64> {
        let total: usize = self.counts[class].iter().sum();
        (total > 0).then(|| self.counts[class][class] as f64 / total as f64)
    }

    /// Per-class precision. `None` if the class was never predicted.
    pub fn precision(&self, class: usize) -> Option<f64> {
        let predicted: usize = (0..self.n_classes()).map(|a| self.counts[a][class]).sum();
        (predicted > 0).then(|| self.counts[class][class] as f64 / predicted as f64)
    }

    /// Mean per-class recall over classes with observations (macro
    /// average, the paper's "global ratio of correct identification").
    pub fn macro_recall(&self) -> f64 {
        let recalls: Vec<f64> = (0..self.n_classes())
            .filter_map(|c| self.recall(c))
            .collect();
        if recalls.is_empty() {
            return 0.0;
        }
        recalls.iter().sum::<f64>() / recalls.len() as f64
    }

    /// Merges another matrix with the same labels into this one.
    ///
    /// # Panics
    ///
    /// Panics if the label sets differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.labels, other.labels, "label mismatch");
        for (row, other_row) in self.counts.iter_mut().zip(&other.counts) {
            for (cell, other_cell) in row.iter_mut().zip(other_row) {
                *cell += other_cell;
            }
        }
    }

    /// Restricts the matrix to the given classes (for Table III's
    /// 10-device view). Observations involving other classes are dropped.
    pub fn restrict(&self, classes: &[usize]) -> ConfusionMatrix {
        let mut out = ConfusionMatrix::new(classes.iter().map(|&c| self.labels[c].clone()));
        for (i, &a) in classes.iter().enumerate() {
            for (j, &p) in classes.iter().enumerate() {
                out.counts[i][j] = self.counts[a][p];
            }
        }
        out
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self
            .counts
            .iter()
            .flatten()
            .map(|c| c.to_string().len())
            .max()
            .unwrap_or(1)
            .max(3);
        write!(f, "{:>20} ", "A\\P")?;
        for (j, _) in self.labels.iter().enumerate() {
            write!(f, "{:>width$} ", j + 1)?;
        }
        writeln!(f)?;
        for (i, label) in self.labels.iter().enumerate() {
            let short: String = label.chars().take(20).collect();
            write!(f, "{short:>20} ")?;
            for j in 0..self.n_classes() {
                write!(f, "{:>width$} ", self.counts[i][j])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConfusionMatrix {
        let mut m = ConfusionMatrix::new(["a", "b", "c"]);
        // a: 3 correct, 1 as b; b: 2 correct; c: 1 correct, 1 as a.
        for _ in 0..3 {
            m.record(0, 0);
        }
        m.record(0, 1);
        m.record(1, 1);
        m.record(1, 1);
        m.record(2, 2);
        m.record(2, 0);
        m
    }

    #[test]
    fn accuracy_fn() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn matrix_accuracy_and_recall() {
        let m = sample();
        assert!((m.accuracy() - 6.0 / 8.0).abs() < 1e-12);
        assert!((m.recall(0).unwrap() - 0.75).abs() < 1e-12);
        assert_eq!(m.recall(1), Some(1.0));
        assert_eq!(m.recall(2), Some(0.5));
    }

    #[test]
    fn precision() {
        let m = sample();
        // Class 0 predicted 4 times, 3 correct.
        assert!((m.precision(0).unwrap() - 0.75).abs() < 1e-12);
        // Class 2 predicted once, correct.
        assert_eq!(m.precision(2), Some(1.0));
    }

    #[test]
    fn macro_recall_averages_classes() {
        let m = sample();
        let expected = (0.75 + 1.0 + 0.5) / 3.0;
        assert!((m.macro_recall() - expected).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.count(0, 0), 6);
        assert_eq!(a.count(2, 0), 2);
    }

    #[test]
    fn restrict_projects_submatrix() {
        let m = sample();
        let sub = m.restrict(&[0, 2]);
        assert_eq!(sub.n_classes(), 2);
        assert_eq!(sub.count(0, 0), 3);
        assert_eq!(sub.count(1, 0), 1);
        assert_eq!(sub.labels(), &["a".to_string(), "c".to_string()]);
    }

    #[test]
    fn empty_class_has_no_recall() {
        let m = ConfusionMatrix::new(["a", "b"]);
        assert_eq!(m.recall(0), None);
        assert_eq!(m.accuracy(), 0.0);
    }

    #[test]
    fn display_renders_rows() {
        let rendered = sample().to_string();
        assert!(rendered.contains("A\\P"));
        assert!(rendered.lines().count() >= 4);
    }
}
