//! Trusted/untrusted virtual network overlays (Sect. III-C.1, Fig. 3).
//!
//! The Security Gateway divides the user's network into two overlays:
//! vulnerable (*strict*/*restricted*) devices live in the **untrusted**
//! overlay, vetted devices in the **trusted** overlay. Overlays are
//! strictly separated: no flow may cross.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::IsolationLevel;

/// One of the two virtual network overlays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Overlay {
    /// The overlay housing potentially vulnerable devices.
    Untrusted,
    /// The overlay housing devices with no known vulnerabilities.
    Trusted,
}

impl Overlay {
    /// The overlay a device with the given isolation level is placed in.
    pub fn for_level(level: IsolationLevel) -> Overlay {
        match level {
            IsolationLevel::Strict | IsolationLevel::Restricted => Overlay::Untrusted,
            IsolationLevel::Trusted => Overlay::Trusted,
        }
    }

    /// Whether two devices in overlays `self` and `other` may exchange
    /// traffic — only within the same overlay.
    pub fn reachable(self, other: Overlay) -> bool {
        self == other
    }
}

impl fmt::Display for Overlay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Overlay::Untrusted => "untrusted",
            Overlay::Trusted => "trusted",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_map_to_overlays_per_fig3() {
        assert_eq!(
            Overlay::for_level(IsolationLevel::Strict),
            Overlay::Untrusted
        );
        assert_eq!(
            Overlay::for_level(IsolationLevel::Restricted),
            Overlay::Untrusted
        );
        assert_eq!(
            Overlay::for_level(IsolationLevel::Trusted),
            Overlay::Trusted
        );
    }

    #[test]
    fn overlays_are_strictly_separated() {
        assert!(Overlay::Untrusted.reachable(Overlay::Untrusted));
        assert!(Overlay::Trusted.reachable(Overlay::Trusted));
        assert!(!Overlay::Untrusted.reachable(Overlay::Trusted));
        assert!(!Overlay::Trusted.reachable(Overlay::Untrusted));
    }
}
