//! Reproduces **Table VI**: overhead due to the filtering mechanism
//! (latency, CPU utilization, memory usage).
//!
//! ```text
//! cargo run --release -p sentinel-bench --bin table6_overhead
//! ```

use sentinel_bench::cli::Args;
use sentinel_bench::{enforcement, tables};

fn main() {
    let args = Args::from_env();
    let iterations: usize = args.get("iterations", 100);
    let seed: u64 = args.get("seed", 42);

    print!(
        "{}",
        tables::banner("Table VI — Overhead due to filtering mechanism")
    );
    println!("{iterations} samples per measurement\n");

    let report = enforcement::overhead(iterations, seed);
    let rows = vec![
        vec![
            "D1D2 Latency".to_string(),
            format!("{:+.2}%", report.d1d2_latency),
            "+5.84%".into(),
        ],
        vec![
            "D1D3 Latency".to_string(),
            format!("{:+.2}%", report.d1d3_latency),
            "+0.71%".into(),
        ],
        vec![
            "CPU utilization".to_string(),
            format!("{:+.2}%", report.cpu),
            "+0.63%".into(),
        ],
        vec![
            "Memory usage".to_string(),
            format!("{:+.2}%", report.memory),
            "+7.6%".into(),
        ],
    ];
    print!(
        "{}",
        tables::render(&["Case", "Measured overhead", "Paper"], &rows)
    );
    println!();
    println!(
        "the reproduced property: every overhead is small — latency deltas are inside the\n\
         ±1.4-4.8% jitter band, CPU cost of filtering is sub-1%, and memory grows only\n\
         with the enforcement-rule cache."
    );
}
