//! The two-stage identification pipeline (Sect. IV-B).
//!
//! Stage 1 feeds `F'` to every per-type classifier. Zero acceptances ⇒
//! unknown device-type. One acceptance ⇒ done. Several ⇒ stage 2:
//! compare the full fingerprint `F` against 5 reference fingerprints of
//! each candidate type with normalized Damerau–Levenshtein distance,
//! sum per type into a dissimilarity score `s_i ∈ [0, 5]`, and pick the
//! minimum.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use sentinel_fingerprint::editdist::normalized_distance;
use sentinel_fingerprint::{Fingerprint, FixedFingerprint};
use sentinel_ml::sampling::sample_without_replacement;

use crate::report::{Identification, Outcome};
use crate::{BankConfig, ClassifierBank, FingerprintDataset};

/// Which pipeline variant to run — the ablation axis of
/// `fig5_accuracy --mode`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum IdentifyMode {
    /// The paper's pipeline: classifier bank, then edit-distance
    /// discrimination of multiple matches.
    #[default]
    TwoStage,
    /// Classifier bank only; ties broken by acceptance confidence.
    RfOnly,
    /// Edit distance against every type's references (no classifiers) —
    /// accurate but slow, the paper's argument for the two-stage design.
    EditOnly,
}

/// Configuration of an [`Identifier`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdentifierConfig {
    /// Classifier-bank training parameters.
    pub bank: BankConfig,
    /// Reference fingerprints per type used for discrimination (the
    /// paper uses 5).
    pub references_per_type: usize,
    /// Pipeline variant.
    pub mode: IdentifyMode,
    /// Seed for reference sampling.
    pub seed: u64,
}

impl Default for IdentifierConfig {
    fn default() -> Self {
        IdentifierConfig {
            bank: BankConfig::default(),
            references_per_type: 5,
            mode: IdentifyMode::TwoStage,
            seed: 0,
        }
    }
}

/// The trained identification pipeline: classifier bank plus reference
/// fingerprints for edit-distance discrimination.
#[derive(Debug)]
pub struct Identifier {
    bank: ClassifierBank,
    /// All training fingerprints `F`, grouped by type label.
    references: Vec<Vec<Fingerprint>>,
    config: IdentifierConfig,
    rng: Mutex<StdRng>,
}

/// The serializable snapshot of a trained [`Identifier`] — what an
/// IoTSSP ships to (or restores from) persistent storage so gateways do
/// not retrain on every boot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedModel {
    bank: ClassifierBank,
    references: Vec<Vec<Fingerprint>>,
    config: IdentifierConfig,
}

impl From<&Identifier> for TrainedModel {
    fn from(identifier: &Identifier) -> Self {
        TrainedModel {
            bank: identifier.bank.clone(),
            references: identifier.references.clone(),
            config: identifier.config.clone(),
        }
    }
}

impl From<TrainedModel> for Identifier {
    fn from(model: TrainedModel) -> Self {
        let rng = Mutex::new(StdRng::seed_from_u64(model.config.seed));
        Identifier {
            bank: model.bank,
            references: model.references,
            config: model.config,
            rng,
        }
    }
}

impl Identifier {
    /// Trains the pipeline on a labeled fingerprint dataset.
    pub fn train(dataset: &FingerprintDataset, config: &IdentifierConfig) -> Self {
        let bank = ClassifierBank::train(dataset, &config.bank);
        let references = (0..dataset.n_types())
            .map(|label| {
                dataset
                    .indices_of(label)
                    .into_iter()
                    .map(|i| dataset.full(i).clone())
                    .collect()
            })
            .collect();
        Identifier {
            bank,
            references,
            config: config.clone(),
            rng: Mutex::new(StdRng::seed_from_u64(config.seed)),
        }
    }

    /// The underlying classifier bank.
    pub fn bank(&self) -> &ClassifierBank {
        &self.bank
    }

    /// Serializes the trained pipeline as JSON.
    ///
    /// # Errors
    ///
    /// Returns any I/O or serialization error from `serde_json`.
    pub fn to_json_writer<W: std::io::Write>(&self, writer: W) -> Result<(), serde_json::Error> {
        serde_json::to_writer(writer, &TrainedModel::from(self))
    }

    /// Restores a pipeline serialized with [`Identifier::to_json_writer`].
    /// The discrimination RNG restarts from the config seed.
    ///
    /// # Errors
    ///
    /// Returns any I/O or deserialization error from `serde_json`.
    pub fn from_json_reader<R: std::io::Read>(reader: R) -> Result<Self, serde_json::Error> {
        let model: TrainedModel = serde_json::from_reader(reader)?;
        Ok(model.into())
    }

    /// Device-type names, indexed by label.
    pub fn type_names(&self) -> &[String] {
        self.bank.type_names()
    }

    /// Identifies a device from its fingerprints.
    pub fn identify(&self, full: &Fingerprint, fixed: &FixedFingerprint) -> Identification {
        match self.config.mode {
            IdentifyMode::TwoStage => self.identify_two_stage(full, fixed),
            IdentifyMode::RfOnly => self.identify_rf_only(fixed),
            IdentifyMode::EditOnly => {
                let all: Vec<usize> = (0..self.bank.n_types()).collect();
                let scores = self.dissimilarity_scores(full, &all);
                self.pick_minimum(all, scores, false)
            }
        }
    }

    fn identify_two_stage(&self, full: &Fingerprint, fixed: &FixedFingerprint) -> Identification {
        let candidates = self.bank.matches(fixed);
        match candidates.len() {
            0 => Identification {
                outcome: Outcome::Unknown,
                candidates,
                discriminated: false,
                scores: Vec::new(),
            },
            1 => Identification {
                outcome: Outcome::Identified {
                    label: candidates[0],
                    name: self.type_names()[candidates[0]].clone(),
                },
                candidates,
                discriminated: false,
                scores: Vec::new(),
            },
            _ => {
                let scores = self.dissimilarity_scores(full, &candidates);
                self.pick_minimum(candidates, scores, true)
            }
        }
    }

    fn identify_rf_only(&self, fixed: &FixedFingerprint) -> Identification {
        let candidates = self.bank.matches(fixed);
        if candidates.is_empty() {
            return Identification {
                outcome: Outcome::Unknown,
                candidates,
                discriminated: false,
                scores: Vec::new(),
            };
        }
        let best = candidates
            .iter()
            .copied()
            .max_by(|&a, &b| {
                self.bank
                    .confidence(a, fixed)
                    .partial_cmp(&self.bank.confidence(b, fixed))
                    .expect("finite confidences")
            })
            .expect("nonempty candidates");
        Identification {
            outcome: Outcome::Identified {
                label: best,
                name: self.type_names()[best].clone(),
            },
            candidates,
            discriminated: false,
            scores: Vec::new(),
        }
    }

    /// Sums normalized edit distances to `references_per_type` sampled
    /// reference fingerprints of each candidate type (the paper's
    /// `s_i ∈ [0, 5]`).
    fn dissimilarity_scores(&self, full: &Fingerprint, candidates: &[usize]) -> Vec<f64> {
        let rng = &mut *self.rng.lock();
        candidates
            .iter()
            .map(|&label| {
                let pool: Vec<usize> = (0..self.references[label].len()).collect();
                let chosen =
                    sample_without_replacement(&pool, self.config.references_per_type, rng);
                chosen
                    .into_iter()
                    .map(|i| normalized_distance(full, &self.references[label][i]))
                    .sum()
            })
            .collect()
    }

    fn pick_minimum(
        &self,
        candidates: Vec<usize>,
        scores: Vec<f64>,
        discriminated: bool,
    ) -> Identification {
        let minimum = scores
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        // Identical-firmware types can produce exactly tied dissimilarity
        // scores; break ties uniformly so neither twin is systematically
        // preferred.
        let tied: Vec<usize> = candidates
            .iter()
            .zip(&scores)
            .filter(|(_, &s)| s <= minimum + 1e-12)
            .map(|(&c, _)| c)
            .collect();
        let best = if tied.len() == 1 {
            tied[0]
        } else {
            use rand::Rng;
            let rng = &mut *self.rng.lock();
            tied[rng.gen_range(0..tied.len())]
        };
        Identification {
            outcome: Outcome::Identified {
                label: best,
                name: self.type_names()[best].clone(),
            },
            candidates,
            discriminated,
            scores,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_devicesim::{catalog, Testbed};
    use sentinel_fingerprint::extract;
    use sentinel_ml::ForestConfig;

    fn fast_config(mode: IdentifyMode) -> IdentifierConfig {
        IdentifierConfig {
            bank: BankConfig {
                forest: ForestConfig::default().with_trees(25),
                ..BankConfig::default()
            },
            mode,
            ..IdentifierConfig::default()
        }
    }

    fn train_on_three() -> (Identifier, FingerprintDataset) {
        let devices: Vec<_> = catalog().into_iter().take(3).collect();
        let dataset = FingerprintDataset::collect(&devices, 8, 5);
        let identifier = Identifier::train(&dataset, &fast_config(IdentifyMode::TwoStage));
        (identifier, dataset)
    }

    #[test]
    fn identifies_held_out_runs_of_known_types() {
        let (identifier, _) = train_on_three();
        let devices: Vec<_> = catalog().into_iter().take(3).collect();
        let testbed = Testbed::new(99); // different campaign seed = held-out runs
        let mut correct = 0;
        let mut total = 0;
        for (label, device) in devices.iter().enumerate() {
            for run in 0..4 {
                let trace = testbed.setup_run(&device.profile, run);
                let full = extract(&trace.packets);
                let fixed = FixedFingerprint::from_fingerprint(&full);
                let id = identifier.identify(&full, &fixed);
                total += 1;
                if id.label() == Some(label) {
                    correct += 1;
                }
            }
        }
        assert!(
            correct * 10 >= total * 9,
            "only {correct}/{total} held-out runs identified"
        );
    }

    #[test]
    fn out_of_distribution_device_rejected_by_all_classifiers() {
        use sentinel_devicesim::{DeviceProfile, Phase, RawDest};
        // Rejection needs a negative pool that covers the feature space:
        // train on the full catalog (as the deployed IoTSSP would).
        let devices = catalog();
        let dataset = FingerprintDataset::collect(&devices, 6, 5);
        let mut config = fast_config(IdentifyMode::TwoStage);
        config.bank.forest = ForestConfig::default().with_trees(15);
        let identifier = Identifier::train(&dataset, &config);
        // A device-type unlike anything trained on: pure proprietary
        // broadcast chatter, no DHCP/DNS/cloud traffic at all.
        let mut odd = DeviceProfile::new("OddBall", [9, 9, 9]);
        odd.extend_phases([
            Phase::UdpRaw { dest: RawDest::Broadcast, port: 7777, sizes: vec![700, 11, 700, 11] },
            Phase::Ping { count: 3 },
            Phase::UdpRaw { dest: RawDest::Gateway, port: 7778, sizes: vec![900] },
        ]);
        let trace = Testbed::new(1).setup_run(&odd, 0);
        let full = extract(&trace.packets);
        let fixed = FixedFingerprint::from_fingerprint(&full);
        let id = identifier.identify(&full, &fixed);
        assert_eq!(id.outcome, Outcome::Unknown, "got {id:?}");
    }

    #[test]
    fn edit_only_mode_identifies_without_classifiers() {
        let devices: Vec<_> = catalog().into_iter().take(3).collect();
        let dataset = FingerprintDataset::collect(&devices, 8, 5);
        let identifier = Identifier::train(&dataset, &fast_config(IdentifyMode::EditOnly));
        let trace = Testbed::new(77).setup_run(&devices[1].profile, 0);
        let full = extract(&trace.packets);
        let fixed = FixedFingerprint::from_fingerprint(&full);
        let id = identifier.identify(&full, &fixed);
        assert_eq!(id.label(), Some(1));
        assert_eq!(id.candidates.len(), 3, "edit-only scores every type");
    }

    #[test]
    fn model_json_roundtrip_preserves_behaviour() {
        let (identifier, dataset) = train_on_three();
        let mut buf = Vec::new();
        identifier.to_json_writer(&mut buf).unwrap();
        let restored = Identifier::from_json_reader(buf.as_slice()).unwrap();
        // Identical predictions on the training corpus (RNG restarts from
        // the same seed, so even tie-breaks agree).
        for i in 0..dataset.len() {
            let a = identifier_fresh_identify(&identifier, &dataset, i);
            let b = identifier_fresh_identify(&restored, &dataset, i);
            assert_eq!(a.candidates, b.candidates, "sample {i}");
        }
    }

    fn identifier_fresh_identify(
        identifier: &Identifier,
        dataset: &FingerprintDataset,
        i: usize,
    ) -> Identification {
        identifier.identify(dataset.full(i), dataset.fixed(i))
    }

    #[test]
    fn scores_are_bounded_by_reference_count() {
        let (identifier, dataset) = train_on_three();
        let id = identifier.identify(dataset.full(0), dataset.fixed(0));
        for score in &id.scores {
            assert!((0.0..=5.0).contains(score));
        }
    }
}
