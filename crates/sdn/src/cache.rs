//! The enforcement-rule cache (Sect. V).
//!
//! "Enforcement rules are stored in a hash table structure to minimize
//! the lookup time as the enforcement rule cache grows." The cache also
//! tracks lookup statistics and its approximate memory footprint, which
//! the Fig. 6c experiment sweeps against the rule count, and supports
//! removing rules for departed devices, the paper's strategy for
//! bounding memory use.

use std::collections::HashMap;

use sentinel_netproto::MacAddr;

use crate::EnforcementRule;

/// Fixed per-entry bookkeeping overhead used in the memory estimate
/// (hash bucket, key, last-used stamp).
const ENTRY_OVERHEAD_BYTES: usize = 64;

struct Entry {
    rule: EnforcementRule,
    last_used: u64,
}

/// A MAC-keyed hash cache of [`EnforcementRule`]s with O(1) lookup.
#[derive(Default)]
pub struct RuleCache {
    entries: HashMap<MacAddr, Entry>,
    lookups: u64,
    hits: u64,
    clock: u64,
}

impl std::fmt::Debug for RuleCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuleCache")
            .field("rules", &self.entries.len())
            .field("lookups", &self.lookups)
            .field("hits", &self.hits)
            .finish()
    }
}

impl RuleCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces the rule for the rule's device, returning the
    /// previous rule if one existed.
    pub fn insert(&mut self, rule: EnforcementRule) -> Option<EnforcementRule> {
        self.clock += 1;
        self.entries
            .insert(
                rule.mac,
                Entry {
                    rule,
                    last_used: self.clock,
                },
            )
            .map(|e| e.rule)
    }

    /// Looks up the rule for `mac`, updating hit statistics and recency.
    pub fn lookup(&mut self, mac: MacAddr) -> Option<&EnforcementRule> {
        self.lookups += 1;
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(&mac) {
            Some(entry) => {
                self.hits += 1;
                entry.last_used = clock;
                Some(&entry.rule)
            }
            None => None,
        }
    }

    /// Reads the rule for `mac` without touching statistics.
    pub fn get(&self, mac: MacAddr) -> Option<&EnforcementRule> {
        self.entries.get(&mac).map(|e| &e.rule)
    }

    /// Removes the rule for `mac` (a device leaving the network).
    pub fn remove(&mut self, mac: MacAddr) -> Option<EnforcementRule> {
        self.entries.remove(&mac).map(|e| e.rule)
    }

    /// The number of cached rules.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the cache holds no rules.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Total lookup hits. Fleet-level aggregation must sum `hits` and
    /// `lookups` across caches and divide once — averaging per-cache
    /// ratios lets idle gateways skew the fleet number.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup hit ratio in `[0, 1]`. A cache that has never been looked
    /// up has no hits to report, so the ratio is 0.0 — not 1.0, which
    /// would inflate aggregation over mostly-idle caches.
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        self.hits as f64 / self.lookups as f64
    }

    /// Approximate memory footprint of the cache in bytes (the Fig. 6c
    /// quantity).
    pub fn memory_bytes(&self) -> usize {
        self.entries
            .values()
            .map(|e| e.rule.memory_bytes() + ENTRY_OVERHEAD_BYTES)
            .sum()
    }

    /// Evicts least-recently-used rules until at most `max_rules` remain,
    /// returning the evicted rules ("removing unused enforcement rules …
    /// from the cache", Sect. VI-C).
    pub fn evict_to(&mut self, max_rules: usize) -> Vec<EnforcementRule> {
        if self.entries.len() <= max_rules {
            return Vec::new();
        }
        let mut order: Vec<(u64, MacAddr)> = self
            .entries
            .iter()
            .map(|(mac, e)| (e.last_used, *mac))
            .collect();
        order.sort_unstable();
        let excess = self.entries.len() - max_rules;
        order
            .into_iter()
            .take(excess)
            .filter_map(|(_, mac)| self.remove(mac))
            .collect()
    }

    /// Iterates over the cached rules in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &EnforcementRule> {
        self.entries.values().map(|e| &e.rule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(last: u8) -> MacAddr {
        MacAddr::new([0, 0, 0, 0, 0, last])
    }

    #[test]
    fn insert_lookup_remove() {
        let mut cache = RuleCache::new();
        assert!(cache.is_empty());
        cache.insert(EnforcementRule::trusted(mac(1)));
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(mac(1)).is_some());
        assert!(cache.lookup(mac(2)).is_none());
        assert_eq!(cache.hit_ratio(), 0.5);
        assert_eq!((cache.hits(), cache.lookups()), (1, 2));
        assert!(cache.remove(mac(1)).is_some());
        assert!(cache.is_empty());
    }

    #[test]
    fn idle_cache_reports_zero_hit_ratio() {
        // Regression: a never-looked-up cache used to report 1.0, which
        // ratio-averaging over a mostly-idle fleet would inflate.
        let cache = RuleCache::new();
        assert_eq!(cache.hit_ratio(), 0.0);
        let mut warm = RuleCache::new();
        warm.insert(EnforcementRule::strict(mac(1)));
        assert_eq!(warm.hit_ratio(), 0.0, "inserts alone are not lookups");
        warm.lookup(mac(1));
        assert_eq!(warm.hit_ratio(), 1.0);
    }

    #[test]
    fn insert_replaces_and_returns_old() {
        let mut cache = RuleCache::new();
        cache.insert(EnforcementRule::strict(mac(1)));
        let old = cache.insert(EnforcementRule::trusted(mac(1)));
        assert_eq!(old.unwrap().level, crate::IsolationLevel::Strict);
        assert_eq!(
            cache.get(mac(1)).unwrap().level,
            crate::IsolationLevel::Trusted
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn memory_grows_linearly_with_rules() {
        let mut cache = RuleCache::new();
        let mut previous = cache.memory_bytes();
        let mut deltas = Vec::new();
        for i in 0..100u8 {
            cache.insert(EnforcementRule::strict(mac(i)));
            let now = cache.memory_bytes();
            deltas.push(now - previous);
            previous = now;
        }
        assert!(
            deltas.windows(2).all(|w| w[0] == w[1]),
            "constant per-rule cost"
        );
        assert!(previous > 0);
    }

    #[test]
    fn lru_eviction_order() {
        let mut cache = RuleCache::new();
        for i in 0..4u8 {
            cache.insert(EnforcementRule::strict(mac(i)));
        }
        // Touch 0 and 1 so 2 becomes the coldest.
        cache.lookup(mac(0));
        cache.lookup(mac(1));
        let evicted = cache.evict_to(2);
        let evicted_macs: Vec<MacAddr> = evicted.iter().map(|r| r.mac).collect();
        assert_eq!(evicted.len(), 2);
        assert!(evicted_macs.contains(&mac(2)));
        assert!(evicted_macs.contains(&mac(3)));
        assert!(cache.get(mac(0)).is_some());
        assert!(cache.get(mac(1)).is_some());
    }

    #[test]
    fn evict_noop_when_under_limit() {
        let mut cache = RuleCache::new();
        cache.insert(EnforcementRule::strict(mac(1)));
        assert!(cache.evict_to(10).is_empty());
        assert_eq!(cache.len(), 1);
    }
}
