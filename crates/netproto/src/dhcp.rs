//! DHCP (RFC 2131) and plain BOOTP (RFC 951) messages.
//!
//! The paper's Table I lists DHCP and BOOTP as *separate* application-layer
//! features: every DHCP message is carried in a BOOTP frame (so the BOOTP
//! bit accompanies the DHCP bit), while pre-DHCP devices emit BOOTP frames
//! with no DHCP magic cookie (BOOTP bit only). [`DhcpMessage::is_dhcp`]
//! makes the distinction.

use std::net::Ipv4Addr;

use bytes::BufMut;
use serde::{Deserialize, Serialize};

use crate::{MacAddr, ParseError};

/// Minimum (fixed-portion) length of a BOOTP message.
pub const FIXED_LEN: usize = 236;

/// The DHCP magic cookie distinguishing DHCP from plain BOOTP.
pub const MAGIC_COOKIE: [u8; 4] = [99, 130, 83, 99];

/// BOOTP operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BootpOp {
    /// Client request (1).
    Request,
    /// Server reply (2).
    Reply,
}

impl BootpOp {
    fn to_u8(self) -> u8 {
        match self {
            BootpOp::Request => 1,
            BootpOp::Reply => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self, ParseError> {
        match v {
            1 => Ok(BootpOp::Request),
            2 => Ok(BootpOp::Reply),
            v => Err(ParseError::invalid("bootp", format!("op {v}"))),
        }
    }
}

/// DHCP message type (option 53).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DhcpMessageType {
    /// DHCPDISCOVER (1).
    Discover,
    /// DHCPOFFER (2).
    Offer,
    /// DHCPREQUEST (3).
    Request,
    /// DHCPDECLINE (4).
    Decline,
    /// DHCPACK (5).
    Ack,
    /// DHCPNAK (6).
    Nak,
    /// DHCPRELEASE (7).
    Release,
    /// DHCPINFORM (8).
    Inform,
}

impl DhcpMessageType {
    fn to_u8(self) -> u8 {
        match self {
            DhcpMessageType::Discover => 1,
            DhcpMessageType::Offer => 2,
            DhcpMessageType::Request => 3,
            DhcpMessageType::Decline => 4,
            DhcpMessageType::Ack => 5,
            DhcpMessageType::Nak => 6,
            DhcpMessageType::Release => 7,
            DhcpMessageType::Inform => 8,
        }
    }

    fn from_u8(v: u8) -> Result<Self, ParseError> {
        Ok(match v {
            1 => DhcpMessageType::Discover,
            2 => DhcpMessageType::Offer,
            3 => DhcpMessageType::Request,
            4 => DhcpMessageType::Decline,
            5 => DhcpMessageType::Ack,
            6 => DhcpMessageType::Nak,
            7 => DhcpMessageType::Release,
            8 => DhcpMessageType::Inform,
            v => return Err(ParseError::invalid("dhcp", format!("message type {v}"))),
        })
    }
}

/// A DHCP option.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DhcpOption {
    /// Message type (53).
    MessageType(DhcpMessageType),
    /// Requested IP address (50).
    RequestedIp(Ipv4Addr),
    /// Server identifier (54).
    ServerId(Ipv4Addr),
    /// Parameter request list (55).
    ParameterRequestList(Vec<u8>),
    /// Host name (12).
    HostName(String),
    /// Vendor class identifier (60).
    VendorClassId(String),
    /// Client identifier (61): hardware type + MAC.
    ClientId(MacAddr),
    /// Maximum DHCP message size (57).
    MaxMessageSize(u16),
    /// Any other option, kept verbatim.
    Other {
        /// Raw option code.
        code: u8,
        /// Raw option data.
        data: Vec<u8>,
    },
}

impl DhcpOption {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            DhcpOption::MessageType(t) => {
                buf.put_u8(53);
                buf.put_u8(1);
                buf.put_u8(t.to_u8());
            }
            DhcpOption::RequestedIp(ip) => {
                buf.put_u8(50);
                buf.put_u8(4);
                buf.put_slice(&ip.octets());
            }
            DhcpOption::ServerId(ip) => {
                buf.put_u8(54);
                buf.put_u8(4);
                buf.put_slice(&ip.octets());
            }
            DhcpOption::ParameterRequestList(params) => {
                buf.put_u8(55);
                buf.put_u8(params.len() as u8);
                buf.put_slice(params);
            }
            DhcpOption::HostName(name) => {
                buf.put_u8(12);
                buf.put_u8(name.len() as u8);
                buf.put_slice(name.as_bytes());
            }
            DhcpOption::VendorClassId(id) => {
                buf.put_u8(60);
                buf.put_u8(id.len() as u8);
                buf.put_slice(id.as_bytes());
            }
            DhcpOption::ClientId(mac) => {
                buf.put_u8(61);
                buf.put_u8(7);
                buf.put_u8(1); // hardware type: Ethernet
                buf.put_slice(&mac.octets());
            }
            DhcpOption::MaxMessageSize(size) => {
                buf.put_u8(57);
                buf.put_u8(2);
                buf.put_u16(*size);
            }
            DhcpOption::Other { code, data } => {
                buf.put_u8(*code);
                buf.put_u8(data.len() as u8);
                buf.put_slice(data);
            }
        }
    }

    fn parse(code: u8, data: &[u8]) -> Result<Self, ParseError> {
        let ip = |data: &[u8]| -> Result<Ipv4Addr, ParseError> {
            let octets: [u8; 4] = data
                .try_into()
                .map_err(|_| ParseError::invalid("dhcp option", "expected 4-byte address"))?;
            Ok(Ipv4Addr::from(octets))
        };
        Ok(match code {
            53 => {
                let [v] = data else {
                    return Err(ParseError::invalid("dhcp option", "message type length"));
                };
                DhcpOption::MessageType(DhcpMessageType::from_u8(*v)?)
            }
            50 => DhcpOption::RequestedIp(ip(data)?),
            54 => DhcpOption::ServerId(ip(data)?),
            55 => DhcpOption::ParameterRequestList(data.to_vec()),
            12 => DhcpOption::HostName(
                String::from_utf8(data.to_vec())
                    .map_err(|_| ParseError::invalid("dhcp option", "host name not utf-8"))?,
            ),
            60 => DhcpOption::VendorClassId(
                String::from_utf8(data.to_vec())
                    .map_err(|_| ParseError::invalid("dhcp option", "vendor class not utf-8"))?,
            ),
            61 if data.len() == 7 && data[0] == 1 => {
                DhcpOption::ClientId(MacAddr::new(data[1..7].try_into().expect("slice of 6")))
            }
            57 => {
                let bytes: [u8; 2] = data
                    .try_into()
                    .map_err(|_| ParseError::invalid("dhcp option", "max message size length"))?;
                DhcpOption::MaxMessageSize(u16::from_be_bytes(bytes))
            }
            code => DhcpOption::Other {
                code,
                data: data.to_vec(),
            },
        })
    }
}

/// A DHCP/BOOTP message.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DhcpMessage {
    /// Operation (request/reply).
    pub op: BootpOp,
    /// Transaction ID.
    pub xid: u32,
    /// Seconds elapsed since the client began acquisition.
    pub secs: u16,
    /// Broadcast flag.
    pub broadcast: bool,
    /// Client IP address (when renewing).
    pub ciaddr: Ipv4Addr,
    /// "Your" IP address (assigned by server).
    pub yiaddr: Ipv4Addr,
    /// Server IP address.
    pub siaddr: Ipv4Addr,
    /// Relay agent IP address.
    pub giaddr: Ipv4Addr,
    /// Client hardware address.
    pub chaddr: MacAddr,
    /// DHCP options. Empty for a plain BOOTP message.
    pub options: Vec<DhcpOption>,
    /// Whether the message carries the DHCP magic cookie.
    pub dhcp: bool,
}

impl DhcpMessage {
    /// A DHCPDISCOVER broadcast from `mac`.
    pub fn discover(mac: MacAddr, xid: u32) -> Self {
        DhcpMessage {
            op: BootpOp::Request,
            xid,
            secs: 0,
            broadcast: true,
            ciaddr: Ipv4Addr::UNSPECIFIED,
            yiaddr: Ipv4Addr::UNSPECIFIED,
            siaddr: Ipv4Addr::UNSPECIFIED,
            giaddr: Ipv4Addr::UNSPECIFIED,
            chaddr: mac,
            options: vec![
                DhcpOption::MessageType(DhcpMessageType::Discover),
                DhcpOption::ClientId(mac),
                DhcpOption::ParameterRequestList(vec![1, 3, 6, 15]),
            ],
            dhcp: true,
        }
    }

    /// A DHCPREQUEST for `requested` from `mac`.
    pub fn request(mac: MacAddr, xid: u32, requested: Ipv4Addr, server: Ipv4Addr) -> Self {
        let mut msg = DhcpMessage::discover(mac, xid);
        msg.options = vec![
            DhcpOption::MessageType(DhcpMessageType::Request),
            DhcpOption::ClientId(mac),
            DhcpOption::RequestedIp(requested),
            DhcpOption::ServerId(server),
        ];
        msg
    }

    /// A plain BOOTP request (no DHCP options/magic cookie).
    pub fn bootp_request(mac: MacAddr, xid: u32) -> Self {
        let mut msg = DhcpMessage::discover(mac, xid);
        msg.options.clear();
        msg.dhcp = false;
        msg
    }

    /// Returns `true` if this is a DHCP message (magic cookie present), as
    /// opposed to plain BOOTP.
    pub fn is_dhcp(&self) -> bool {
        self.dhcp
    }

    /// The DHCP message type, if the option is present.
    pub fn message_type(&self) -> Option<DhcpMessageType> {
        self.options.iter().find_map(|opt| match opt {
            DhcpOption::MessageType(t) => Some(*t),
            _ => None,
        })
    }

    /// Appends the message bytes to `buf`.
    pub fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u8(self.op.to_u8());
        buf.put_u8(1); // htype: Ethernet
        buf.put_u8(6); // hlen
        buf.put_u8(0); // hops
        buf.put_u32(self.xid);
        buf.put_u16(self.secs);
        buf.put_u16(if self.broadcast { 0x8000 } else { 0 });
        buf.put_slice(&self.ciaddr.octets());
        buf.put_slice(&self.yiaddr.octets());
        buf.put_slice(&self.siaddr.octets());
        buf.put_slice(&self.giaddr.octets());
        buf.put_slice(&self.chaddr.octets());
        buf.put_slice(&[0u8; 10]); // chaddr padding
        buf.put_slice(&[0u8; 64]); // sname
        buf.put_slice(&[0u8; 128]); // file
        if self.dhcp {
            buf.put_slice(&MAGIC_COOKIE);
            for option in &self.options {
                option.encode(buf);
            }
            buf.put_u8(255); // end option
        }
    }

    /// Wire length of the encoded message.
    pub fn wire_len(&self) -> usize {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf.len()
    }

    /// Parses a DHCP/BOOTP message.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Truncated`] or [`ParseError::Invalid`] on
    /// malformed input.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        if bytes.len() < FIXED_LEN {
            return Err(ParseError::truncated("bootp", FIXED_LEN, bytes.len()));
        }
        let op = BootpOp::from_u8(bytes[0])?;
        if bytes[1] != 1 || bytes[2] != 6 {
            return Err(ParseError::invalid("bootp", "non-ethernet hardware"));
        }
        let xid = u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        let secs = u16::from_be_bytes([bytes[8], bytes[9]]);
        let broadcast = u16::from_be_bytes([bytes[10], bytes[11]]) & 0x8000 != 0;
        let addr = |o: usize| Ipv4Addr::new(bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]);
        let chaddr = MacAddr::new(bytes[28..34].try_into().expect("slice of 6"));
        let mut options = Vec::new();
        let mut dhcp = false;
        if bytes.len() >= FIXED_LEN + 4 && bytes[FIXED_LEN..FIXED_LEN + 4] == MAGIC_COOKIE {
            dhcp = true;
            let mut rest = &bytes[FIXED_LEN + 4..];
            while let Some(&code) = rest.first() {
                match code {
                    255 => break,
                    0 => rest = &rest[1..], // pad
                    _ => {
                        if rest.len() < 2 {
                            return Err(ParseError::truncated("dhcp option", 2, rest.len()));
                        }
                        let len = rest[1] as usize;
                        if rest.len() < 2 + len {
                            return Err(ParseError::truncated("dhcp option", 2 + len, rest.len()));
                        }
                        options.push(DhcpOption::parse(code, &rest[2..2 + len])?);
                        rest = &rest[2 + len..];
                    }
                }
            }
        }
        Ok(DhcpMessage {
            op,
            xid,
            secs,
            broadcast,
            ciaddr: addr(12),
            yiaddr: addr(16),
            siaddr: addr(20),
            giaddr: addr(24),
            chaddr,
            options,
            dhcp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac() -> MacAddr {
        MacAddr::new([0xb0, 0xc5, 0x54, 1, 2, 3])
    }

    #[test]
    fn discover_roundtrip() {
        let msg = DhcpMessage::discover(mac(), 0xdeadbeef);
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        let parsed = DhcpMessage::parse(&buf).unwrap();
        assert_eq!(parsed, msg);
        assert!(parsed.is_dhcp());
        assert_eq!(parsed.message_type(), Some(DhcpMessageType::Discover));
    }

    #[test]
    fn request_roundtrip() {
        let msg = DhcpMessage::request(
            mac(),
            7,
            Ipv4Addr::new(192, 168, 0, 33),
            Ipv4Addr::new(192, 168, 0, 1),
        );
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        let parsed = DhcpMessage::parse(&buf).unwrap();
        assert_eq!(parsed.message_type(), Some(DhcpMessageType::Request));
        assert_eq!(parsed, msg);
    }

    #[test]
    fn plain_bootp_has_no_dhcp_cookie() {
        let msg = DhcpMessage::bootp_request(mac(), 1);
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        assert_eq!(buf.len(), FIXED_LEN);
        let parsed = DhcpMessage::parse(&buf).unwrap();
        assert!(!parsed.is_dhcp());
        assert_eq!(parsed.message_type(), None);
    }

    #[test]
    fn options_with_padding_parse() {
        let msg = DhcpMessage::discover(mac(), 2);
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        // Insert pad bytes before the end marker.
        let end = buf.len() - 1;
        buf.splice(end..end, [0u8, 0u8]);
        let parsed = DhcpMessage::parse(&buf).unwrap();
        assert_eq!(parsed.options, msg.options);
    }

    #[test]
    fn truncated_rejected() {
        assert!(DhcpMessage::parse(&[0u8; 100]).is_err());
    }

    #[test]
    fn vendor_class_roundtrip() {
        let mut msg = DhcpMessage::discover(mac(), 3);
        msg.options
            .push(DhcpOption::VendorClassId("udhcp 1.21.1".into()));
        msg.options.push(DhcpOption::HostName("EdimaxPlug".into()));
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        assert_eq!(DhcpMessage::parse(&buf).unwrap(), msg);
    }
}
