//! Reproduces **Table II**: the list of IoT devices used in the
//! evaluation and their supported connectivity technologies.
//!
//! ```text
//! cargo run -p sentinel-bench --bin table2_devices
//! ```

use sentinel_bench::tables;
use sentinel_devicesim::catalog;

fn main() {
    print!(
        "{}",
        tables::banner("Table II — IoT devices used in the evaluation")
    );
    let mark = |b: bool| if b { "*" } else { "." }.to_string();
    let rows: Vec<Vec<String>> = catalog()
        .iter()
        .map(|device| {
            let c = &device.info.connectivity;
            vec![
                device.info.identifier.to_string(),
                device.info.model.to_string(),
                mark(c.wifi),
                mark(c.zigbee),
                mark(c.ethernet),
                mark(c.zwave),
                mark(c.other),
            ]
        })
        .collect();
    print!(
        "{}",
        tables::render(
            &[
                "Identifier",
                "Device model",
                "WiFi",
                "ZigBee",
                "Eth",
                "Z-Wave",
                "Other"
            ],
            &rows,
        )
    );
    println!("\n(* = supported)");
}
