//! Fleet-level tuning knobs.

use std::time::Duration;

use sentinel_stream::StreamConfig;

/// Configuration of one fleet simulation run.
///
/// Every field feeds the deterministic workload derivation: two runs
/// with equal configs (and the same trained service) produce bit-equal
/// [`crate::FleetReport`]s at any `threads` setting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of home networks, each with its own topology, switch and
    /// Sentinel gateway.
    pub homes: usize,
    /// Devices joining each home during the simulation.
    pub devices_per_home: usize,
    /// Onboarding storm shape: joins arrive in this many waves…
    pub waves: usize,
    /// …spaced this far apart…
    pub wave_stagger: Duration,
    /// …with devices inside one wave staggered by this much.
    pub join_stagger: Duration,
    /// Tick length of the fleet clock. Each gateway ingests the frames
    /// whose capture timestamp falls inside the tick; joins, leaves and
    /// roams land on tick boundaries. Purely a scheduling granularity:
    /// per-device decisions are tick-size independent (the streaming
    /// runtime's batch-size invariance), only *when* leaves are applied
    /// quantizes to ticks.
    pub tick: Duration,
    /// Every `roam_every`-th home contributes one device that roams to
    /// the next home mid-setup (`0` disables roaming). Ignored when the
    /// fleet has fewer than two homes.
    pub roam_every: usize,
    /// Every `leave_every`-th onboarded device leaves its home one tick
    /// after onboarding, removing its enforcement rule (`0` disables
    /// leaves).
    pub leave_every: usize,
    /// Base seed of the whole fleet derivation.
    pub seed: u64,
    /// Fleet-level worker threads (`0` = auto via `SENTINEL_THREADS`).
    /// Parallelism is *across* homes; each home's gateway runs its
    /// single-threaded exact path, so fleet results are independent of
    /// this setting.
    pub threads: usize,
    /// Session-table capacity of each home gateway.
    pub max_sessions_per_home: usize,
    /// Virtual shards per home gateway (small: a home hosts a handful
    /// of devices, not thousands).
    pub shards_per_home: usize,
    /// Rows per fleet-wide keyed assessment batch in the lockstep
    /// tick's assess pass. Purely a throughput knob: keyed assessment
    /// is a pure function per completion, so any chunking produces a
    /// bit-identical [`crate::FleetReport`]. Sized so the batched
    /// stage-1 kernels see hundreds of rows per call while the batch
    /// matrix stays cache-resident.
    pub assess_batch_rows: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            homes: 100,
            devices_per_home: 4,
            waves: 2,
            wave_stagger: Duration::from_millis(400),
            join_stagger: Duration::from_millis(35),
            tick: Duration::from_millis(250),
            roam_every: 3,
            leave_every: 4,
            seed: 42,
            threads: 0,
            max_sessions_per_home: 16,
            shards_per_home: 4,
            assess_batch_rows: 512,
        }
    }
}

impl FleetConfig {
    /// The per-home gateway configuration derived from the fleet knobs.
    /// Home gateways always run `threads: 1` — the exact sequential
    /// path — because fleet parallelism is across homes.
    pub fn stream_config(&self) -> StreamConfig {
        StreamConfig {
            max_sessions: self.max_sessions_per_home.max(1),
            shards: self.shards_per_home.max(1),
            threads: 1,
            ..StreamConfig::default()
        }
    }

    /// Whether roaming is active under this config.
    pub fn roaming_enabled(&self) -> bool {
        self.roam_every > 0 && self.homes >= 2
    }
}
