//! IPv6 headers with optional Hop-by-Hop options extension header.
//!
//! The hop-by-hop header can carry the Router Alert option (RFC 2711),
//! which — together with PadN — lets IPv6 traffic exercise the same two
//! IP-option fingerprint features as IPv4 (Table I). MLD membership
//! reports, which many mDNS-speaking IoT devices send during setup, use
//! exactly this combination.

use std::net::Ipv6Addr;

use bytes::BufMut;
use serde::{Deserialize, Serialize};

use crate::ipv4::IpProtocol;
use crate::ParseError;

/// Length of the fixed IPv6 header.
pub const HEADER_LEN: usize = 40;

/// Next-header value for the Hop-by-Hop options extension header.
const HOP_BY_HOP: u8 = 0;

/// Next-header value for the Fragment extension header (RFC 8200 §4.5).
const FRAGMENT: u8 = 44;

/// An option inside a Hop-by-Hop extension header.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HopByHopOption {
    /// Pad1 (type 0) — one byte of padding.
    Pad1,
    /// PadN (type 1) with `n` data bytes of padding.
    PadN(u8),
    /// Router Alert (type 5, RFC 2711) with its 16-bit value.
    RouterAlert(u16),
    /// Any other option, kept verbatim.
    Other {
        /// Raw option type byte.
        kind: u8,
        /// Raw option data.
        data: Vec<u8>,
    },
}

impl HopByHopOption {
    /// Returns `true` for padding options (Pad1 / PadN).
    pub fn is_padding(&self) -> bool {
        matches!(self, HopByHopOption::Pad1 | HopByHopOption::PadN(_))
    }

    /// Returns `true` for the Router Alert option.
    pub fn is_router_alert(&self) -> bool {
        matches!(self, HopByHopOption::RouterAlert(_))
    }

    fn encoded_len(&self) -> usize {
        match self {
            HopByHopOption::Pad1 => 1,
            HopByHopOption::PadN(n) => 2 + *n as usize,
            HopByHopOption::RouterAlert(_) => 4,
            HopByHopOption::Other { data, .. } => 2 + data.len(),
        }
    }

    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            HopByHopOption::Pad1 => buf.put_u8(0),
            HopByHopOption::PadN(n) => {
                buf.put_u8(1);
                buf.put_u8(*n);
                for _ in 0..*n {
                    buf.put_u8(0);
                }
            }
            HopByHopOption::RouterAlert(value) => {
                buf.put_u8(5);
                buf.put_u8(2);
                buf.put_u16(*value);
            }
            HopByHopOption::Other { kind, data } => {
                buf.put_u8(*kind);
                buf.put_u8(data.len() as u8);
                buf.put_slice(data);
            }
        }
    }
}

/// An IPv6 header, optionally carrying a Hop-by-Hop options header.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv6Header {
    /// Traffic class byte.
    pub traffic_class: u8,
    /// Flow label (20 bits).
    pub flow_label: u32,
    /// Hop limit.
    pub hop_limit: u8,
    /// Transport protocol of the payload.
    pub protocol: IpProtocol,
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination address.
    pub dst: Ipv6Addr,
    /// Hop-by-Hop options, if any (encoded as an extension header).
    pub hop_by_hop: Vec<HopByHopOption>,
    /// Identification field of an *atomic* Fragment extension header
    /// (RFC 6946: fragment offset 0, M flag clear — a datagram that was
    /// never actually split, emitted by stacks answering peers that
    /// advertise a sub-1280 MTU). When present, the transport after it
    /// is parsed normally. Genuinely fragmented datagrams (non-zero
    /// offset or M set) stay opaque: they degrade to
    /// [`IpProtocol::Other`]\(44\) with the fragment header kept
    /// verbatim in the raw payload, since their transport bytes are an
    /// arbitrary mid-datagram slice.
    pub atomic_fragment: Option<u32>,
}

impl Ipv6Header {
    /// Creates a header with typical defaults (hop limit 64... / no options).
    pub fn new(src: Ipv6Addr, dst: Ipv6Addr, protocol: IpProtocol) -> Self {
        Ipv6Header {
            traffic_class: 0,
            flow_label: 0,
            hop_limit: 255,
            protocol,
            src,
            dst,
            hop_by_hop: Vec::new(),
            atomic_fragment: None,
        }
    }

    /// Adds a Hop-by-Hop option (builder style).
    #[must_use]
    pub fn with_hop_by_hop(mut self, option: HopByHopOption) -> Self {
        self.hop_by_hop.push(option);
        self
    }

    /// Adds an atomic Fragment extension header with the given
    /// identification (builder style).
    #[must_use]
    pub fn with_atomic_fragment(mut self, identification: u32) -> Self {
        self.atomic_fragment = Some(identification);
        self
    }

    /// Returns `true` if any Hop-by-Hop option is padding.
    pub fn has_padding_option(&self) -> bool {
        self.hop_by_hop.iter().any(HopByHopOption::is_padding)
    }

    /// Returns `true` if a Router Alert option is present.
    pub fn has_router_alert(&self) -> bool {
        self.hop_by_hop.iter().any(HopByHopOption::is_router_alert)
    }

    fn hbh_len(&self) -> usize {
        if self.hop_by_hop.is_empty() {
            return 0;
        }
        let opts: usize = self
            .hop_by_hop
            .iter()
            .map(HopByHopOption::encoded_len)
            .sum();
        // 2 fixed bytes + options, rounded up to a multiple of 8.
        (2 + opts).div_ceil(8) * 8
    }

    fn frag_len(&self) -> usize {
        if self.atomic_fragment.is_some() {
            8
        } else {
            0
        }
    }

    /// Length of the encoded header including any extension headers.
    pub fn header_len(&self) -> usize {
        HEADER_LEN + self.hbh_len() + self.frag_len()
    }

    /// Appends the header (and extension header) bytes for a payload of
    /// `payload_len` bytes. Extension headers follow the RFC 8200
    /// recommended order: Hop-by-Hop first, then Fragment.
    pub fn encode(&self, buf: &mut impl BufMut, payload_len: usize) {
        let hbh_len = self.hbh_len();
        let frag_len = self.frag_len();
        // Next-header chain: fixed header → hop-by-hop → fragment → transport.
        let after_hbh = if frag_len > 0 {
            FRAGMENT
        } else {
            self.protocol.to_u8()
        };
        let first_next = if hbh_len > 0 { HOP_BY_HOP } else { after_hbh };
        let first = 0x6000_0000 | ((self.traffic_class as u32) << 20) | (self.flow_label & 0xfffff);
        buf.put_u32(first);
        buf.put_u16((hbh_len + frag_len + payload_len) as u16);
        buf.put_u8(first_next);
        buf.put_u8(self.hop_limit);
        buf.put_slice(&self.src.octets());
        buf.put_slice(&self.dst.octets());
        if hbh_len > 0 {
            let mut ext = Vec::with_capacity(hbh_len);
            ext.put_u8(after_hbh);
            ext.put_u8((hbh_len / 8 - 1) as u8);
            for opt in &self.hop_by_hop {
                opt.encode(&mut ext);
            }
            while ext.len() < hbh_len {
                ext.put_u8(0); // Pad1 filler
            }
            buf.put_slice(&ext);
        }
        if let Some(identification) = self.atomic_fragment {
            buf.put_u8(self.protocol.to_u8());
            buf.put_u8(0); // reserved
            buf.put_u16(0); // fragment offset 0, M clear (atomic)
            buf.put_u32(identification);
        }
    }

    /// Parses a header (plus any Hop-by-Hop extension), returning it and
    /// the payload slice delimited by the payload-length field.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Truncated`] or [`ParseError::Invalid`] on
    /// malformed input.
    pub fn parse(bytes: &[u8]) -> Result<(Self, &[u8]), ParseError> {
        if bytes.len() < HEADER_LEN {
            return Err(ParseError::truncated("ipv6", HEADER_LEN, bytes.len()));
        }
        let first = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        if first >> 28 != 6 {
            return Err(ParseError::invalid(
                "ipv6",
                format!("version {}", first >> 28),
            ));
        }
        let payload_len = u16::from_be_bytes([bytes[4], bytes[5]]) as usize;
        let mut next_header = bytes[6];
        let total = HEADER_LEN + payload_len;
        if bytes.len() < total {
            return Err(ParseError::truncated("ipv6", total, bytes.len()));
        }
        let src: [u8; 16] = bytes[8..24].try_into().expect("slice of 16");
        let dst: [u8; 16] = bytes[24..40].try_into().expect("slice of 16");
        let mut offset = HEADER_LEN;
        let mut hop_by_hop = Vec::new();
        if next_header == HOP_BY_HOP {
            if bytes.len() < offset + 2 {
                return Err(ParseError::truncated(
                    "ipv6 hop-by-hop",
                    offset + 2,
                    bytes.len(),
                ));
            }
            next_header = bytes[offset];
            let ext_len = (bytes[offset + 1] as usize + 1) * 8;
            if bytes.len() < offset + ext_len {
                return Err(ParseError::truncated(
                    "ipv6 hop-by-hop",
                    offset + ext_len,
                    bytes.len(),
                ));
            }
            // The extension header must fit inside the declared payload,
            // or the payload slice below would be inverted.
            if offset + ext_len > total {
                return Err(ParseError::invalid(
                    "ipv6 hop-by-hop",
                    format!("extension length {ext_len} exceeds payload {payload_len}"),
                ));
            }
            hop_by_hop = parse_hbh_options(&bytes[offset + 2..offset + ext_len])?;
            offset += ext_len;
        }
        let mut atomic_fragment = None;
        if next_header == FRAGMENT && offset + 8 <= total {
            // Consume the fragment header only for a canonical atomic
            // fragment (reserved bytes zero, offset 0, M clear) —
            // anything else stays `Other(44)` with the header verbatim
            // in the payload, so re-encoding is byte-stable.
            let reserved = bytes[offset + 1];
            let offset_flags = u16::from_be_bytes([bytes[offset + 2], bytes[offset + 3]]);
            if reserved == 0 && offset_flags == 0 {
                next_header = bytes[offset];
                atomic_fragment = Some(u32::from_be_bytes([
                    bytes[offset + 4],
                    bytes[offset + 5],
                    bytes[offset + 6],
                    bytes[offset + 7],
                ]));
                offset += 8;
            }
        }
        let header = Ipv6Header {
            traffic_class: ((first >> 20) & 0xff) as u8,
            flow_label: first & 0xfffff,
            hop_limit: bytes[7],
            protocol: IpProtocol::from_u8(next_header),
            src: Ipv6Addr::from(src),
            dst: Ipv6Addr::from(dst),
            hop_by_hop,
            atomic_fragment,
        };
        Ok((header, &bytes[offset..total]))
    }
}

fn parse_hbh_options(mut bytes: &[u8]) -> Result<Vec<HopByHopOption>, ParseError> {
    let mut options = Vec::new();
    let mut trailing_pad1 = 0usize;
    while let Some(&kind) = bytes.first() {
        match kind {
            0 => {
                trailing_pad1 += 1;
                bytes = &bytes[1..];
            }
            _ => {
                // A non-pad option after Pad1 bytes: record interior Pad1s.
                for _ in 0..trailing_pad1 {
                    options.push(HopByHopOption::Pad1);
                }
                trailing_pad1 = 0;
                if bytes.len() < 2 {
                    return Err(ParseError::truncated("ipv6 option", 2, bytes.len()));
                }
                let len = bytes[1] as usize;
                if bytes.len() < 2 + len {
                    return Err(ParseError::invalid(
                        "ipv6 option",
                        format!("option {kind} length {len}"),
                    ));
                }
                let option = match (kind, len) {
                    (1, n) => HopByHopOption::PadN(n as u8),
                    (5, 2) => HopByHopOption::RouterAlert(u16::from_be_bytes([bytes[2], bytes[3]])),
                    _ => HopByHopOption::Other {
                        kind,
                        data: bytes[2..2 + len].to_vec(),
                    },
                };
                options.push(option);
                bytes = &bytes[2 + len..];
            }
        }
    }
    // Trailing Pad1 bytes are alignment filler added by `encode`, not
    // semantic options, so they are dropped for roundtrip stability.
    Ok(options)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv6Header {
        Ipv6Header::new(
            "fe80::1".parse().unwrap(),
            "ff02::fb".parse().unwrap(),
            IpProtocol::Udp,
        )
    }

    #[test]
    fn roundtrip_plain() {
        let hdr = sample();
        let mut buf = Vec::new();
        hdr.encode(&mut buf, 2);
        buf.extend_from_slice(&[0xde, 0xad]);
        let (parsed, payload) = Ipv6Header::parse(&buf).unwrap();
        assert_eq!(parsed, hdr);
        assert_eq!(payload, &[0xde, 0xad]);
    }

    #[test]
    fn roundtrip_mld_style_router_alert() {
        // MLD reports carry Router Alert + PadN(0), exactly 8 bytes of ext.
        let hdr = sample()
            .with_hop_by_hop(HopByHopOption::RouterAlert(0))
            .with_hop_by_hop(HopByHopOption::PadN(0));
        assert_eq!(hdr.header_len(), HEADER_LEN + 8);
        let mut buf = Vec::new();
        hdr.encode(&mut buf, 4);
        buf.extend_from_slice(&[1, 2, 3, 4]);
        let (parsed, payload) = Ipv6Header::parse(&buf).unwrap();
        assert!(parsed.has_router_alert());
        assert!(parsed.has_padding_option());
        assert_eq!(parsed, hdr);
        assert_eq!(payload, &[1, 2, 3, 4]);
    }

    #[test]
    fn roundtrip_atomic_fragment() {
        let hdr = sample().with_atomic_fragment(0xdead_beef);
        assert_eq!(hdr.header_len(), HEADER_LEN + 8);
        let mut buf = Vec::new();
        hdr.encode(&mut buf, 3);
        buf.extend_from_slice(&[7, 8, 9]);
        let (parsed, payload) = Ipv6Header::parse(&buf).unwrap();
        assert_eq!(parsed, hdr);
        assert_eq!(parsed.atomic_fragment, Some(0xdead_beef));
        assert_eq!(parsed.protocol, IpProtocol::Udp);
        assert_eq!(payload, &[7, 8, 9]);
    }

    #[test]
    fn roundtrip_hop_by_hop_then_atomic_fragment() {
        // RFC 8200 header order: hop-by-hop, then fragment, then transport.
        let hdr = sample()
            .with_hop_by_hop(HopByHopOption::RouterAlert(0))
            .with_hop_by_hop(HopByHopOption::PadN(0))
            .with_atomic_fragment(42);
        assert_eq!(hdr.header_len(), HEADER_LEN + 8 + 8);
        let mut buf = Vec::new();
        hdr.encode(&mut buf, 2);
        buf.extend_from_slice(&[1, 2]);
        let (parsed, payload) = Ipv6Header::parse(&buf).unwrap();
        assert_eq!(parsed, hdr);
        assert!(parsed.has_router_alert());
        assert_eq!(payload, &[1, 2]);
    }

    #[test]
    fn non_atomic_fragment_stays_opaque() {
        // A real fragment (non-zero offset) cannot be parsed past: the
        // transport bytes are a mid-datagram slice. It degrades to
        // Other(44) with the fragment header verbatim in the payload.
        let mut buf = Vec::new();
        sample().with_atomic_fragment(7).encode(&mut buf, 2);
        buf.extend_from_slice(&[0xaa, 0xbb]);
        let frag_start = HEADER_LEN;
        buf[frag_start + 2..frag_start + 4].copy_from_slice(&(8u16 << 3).to_be_bytes());
        let (parsed, payload) = Ipv6Header::parse(&buf).unwrap();
        assert_eq!(parsed.atomic_fragment, None);
        assert_eq!(parsed.protocol, IpProtocol::Other(44));
        assert_eq!(payload.len(), 10, "fragment header stays in the payload");
    }

    #[test]
    fn more_fragments_flag_stays_opaque() {
        // Offset 0 but M set: the first piece of a split datagram — the
        // transport header may be complete, but the payload is not.
        let mut buf = Vec::new();
        sample().with_atomic_fragment(7).encode(&mut buf, 2);
        buf.extend_from_slice(&[0xaa, 0xbb]);
        buf[HEADER_LEN + 3] |= 1;
        let (parsed, _) = Ipv6Header::parse(&buf).unwrap();
        assert_eq!(parsed.atomic_fragment, None);
        assert_eq!(parsed.protocol, IpProtocol::Other(44));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        sample().encode(&mut buf, 0);
        buf[0] = 0x45;
        assert!(Ipv6Header::parse(&buf).is_err());
    }

    #[test]
    fn payload_length_bounds_payload() {
        let mut buf = Vec::new();
        sample().encode(&mut buf, 1);
        buf.extend_from_slice(&[9, 9, 9]);
        let (_, payload) = Ipv6Header::parse(&buf).unwrap();
        assert_eq!(payload, &[9]);
    }

    #[test]
    fn extension_past_declared_payload_is_an_error_not_a_panic() {
        // Regression: a buffer long enough to hold the extension header,
        // but whose declared payload length is shorter than the extension
        // claims, used to slice `bytes[offset..total]` with offset > total.
        let mut buf = Vec::new();
        sample()
            .with_hop_by_hop(HopByHopOption::RouterAlert(0))
            .encode(&mut buf, 0);
        buf[4..6].copy_from_slice(&4u16.to_be_bytes()); // payload 4 < ext 8
        buf.extend_from_slice(&[0u8; 8]); // keep the buffer long enough
        assert!(Ipv6Header::parse(&buf).is_err());
    }

    #[test]
    fn truncated_extension_rejected() {
        let hdr = sample().with_hop_by_hop(HopByHopOption::RouterAlert(0));
        let mut buf = Vec::new();
        hdr.encode(&mut buf, 0);
        buf.truncate(HEADER_LEN + 1);
        // Fix declared payload length so the failure is in the extension.
        buf[4..6].copy_from_slice(&1u16.to_be_bytes());
        assert!(Ipv6Header::parse(&buf).is_err());
    }
}
