//! Feature pre-binning for histogram-based split finding.
//!
//! Exact CART split search sorts each node's feature column on every
//! visit — `O(n log n)` per candidate feature per node, the dominant
//! cost of forest training. The histogram trick (LightGBM-lineage, but
//! applied losslessly here) observes that a feature's *distinct values*
//! are fixed for the whole dataset: sort each column **once**, assign
//! every cell its rank among the column's unique values, and a node's
//! split search becomes a counting pass over the node rows plus a
//! cumulative sweep over the (few) distinct values — no per-node sort.
//!
//! Table I features are small-cardinality (bits, port classes, one
//! bounded counter, one packet-size column), so the sweep touches a
//! handful of bins where the exact scan touched every sample. The sweep
//! is **exact**, not approximate: bins are the feature's actual distinct
//! values, candidate thresholds are the same midpoints between
//! *adjacent values present in the node* that the sorted scan would
//! probe, and left/right class counts are the same integers — so the
//! chosen split, and therefore the fitted tree, is bit-identical (see
//! `tests/prop_histogram.rs` for the differential property tests).

use crate::Dataset;

/// A column-major binned view of a [`Dataset`], built once per forest
/// fit and shared read-only across all tree fits (and worker threads).
#[derive(Debug, Clone, PartialEq)]
pub struct BinnedDataset {
    /// Bin code of every cell, column-major: `codes[f * n_rows + i]` is
    /// the rank of `data.row(i)[f]` among column `f`'s sorted distinct
    /// values.
    codes: Vec<u32>,
    /// Sorted distinct values per feature, concatenated; the bin code is
    /// the index into this feature's slice.
    values: Vec<f64>,
    /// Start of each feature's slice in `values` (length `n_features + 1`).
    value_offsets: Vec<usize>,
    n_rows: usize,
    /// Largest distinct-value count over all features (scratch sizing).
    max_bins: usize,
}

impl BinnedDataset {
    /// Bins every feature column of `data`.
    pub fn build(data: &Dataset) -> Self {
        let n_rows = data.len();
        let n_features = data.n_features();
        let mut codes = vec![0u32; n_rows * n_features];
        let mut values = Vec::new();
        let mut value_offsets = Vec::with_capacity(n_features + 1);
        value_offsets.push(0);
        let mut max_bins = 0usize;
        let mut column: Vec<f64> = Vec::with_capacity(n_rows);
        for feature in 0..n_features {
            column.clear();
            column.extend((0..n_rows).map(|i| data.row(i)[feature]));
            let mut distinct = column.clone();
            distinct.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
            distinct.dedup();
            let slot = &mut codes[feature * n_rows..(feature + 1) * n_rows];
            for (code, &value) in slot.iter_mut().zip(&column) {
                *code = distinct
                    .binary_search_by(|v| v.partial_cmp(&value).expect("finite features"))
                    .expect("every value is a distinct value") as u32;
            }
            max_bins = max_bins.max(distinct.len());
            values.extend_from_slice(&distinct);
            value_offsets.push(values.len());
        }
        BinnedDataset {
            codes,
            values,
            value_offsets,
            n_rows,
            max_bins,
        }
    }

    /// The bin codes of feature `feature`, one per dataset row.
    #[inline]
    pub fn column(&self, feature: usize) -> &[u32] {
        &self.codes[feature * self.n_rows..(feature + 1) * self.n_rows]
    }

    /// The sorted distinct values of feature `feature` (bin code →
    /// value).
    #[inline]
    pub fn bin_values(&self, feature: usize) -> &[f64] {
        &self.values[self.value_offsets[feature]..self.value_offsets[feature + 1]]
    }

    /// Number of distinct values of feature `feature`.
    #[inline]
    pub fn n_bins(&self, feature: usize) -> usize {
        self.value_offsets[feature + 1] - self.value_offsets[feature]
    }

    /// The largest [`BinnedDataset::n_bins`] over all features.
    pub fn max_bins(&self) -> usize {
        self.max_bins
    }

    /// Number of rows of the dataset these bins were built from (view
    /// fits assert their corpus matches).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.value_offsets.len() - 1
    }
}

/// Reusable per-tree-fit scratch for the histogram sweep, so the split
/// search allocates nothing per node.
#[derive(Debug, Default)]
pub(crate) struct HistScratch {
    /// `n_bins × n_classes` class counts of the candidate feature.
    pub hist: Vec<u32>,
}

impl HistScratch {
    /// Returns the zeroed histogram slice for `n_bins × n_classes`.
    pub fn zeroed(&mut self, n_bins: usize, n_classes: usize) -> &mut [u32] {
        let need = n_bins * n_classes;
        if self.hist.len() < need {
            self.hist.resize(need, 0);
        }
        let slice = &mut self.hist[..need];
        slice.fill(0);
        slice
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        let mut data = Dataset::new(3);
        data.push(&[1.0, 5.0, 0.0], 0);
        data.push(&[2.0, 5.0, 0.0], 1);
        data.push(&[1.0, 7.0, 0.0], 0);
        data.push(&[3.0, 5.0, 0.0], 1);
        data
    }

    #[test]
    fn codes_rank_values_per_column() {
        let bins = BinnedDataset::build(&dataset());
        assert_eq!(bins.column(0), &[0, 1, 0, 2]);
        assert_eq!(bins.column(1), &[0, 0, 1, 0]);
        assert_eq!(bins.column(2), &[0, 0, 0, 0]);
        assert_eq!(bins.bin_values(0), &[1.0, 2.0, 3.0]);
        assert_eq!(bins.bin_values(1), &[5.0, 7.0]);
        assert_eq!(bins.n_bins(2), 1, "constant column is one bin");
        assert_eq!(bins.max_bins(), 3);
    }

    #[test]
    fn codes_recover_original_values() {
        let data = dataset();
        let bins = BinnedDataset::build(&data);
        for feature in 0..data.n_features() {
            let values = bins.bin_values(feature);
            for (i, &code) in bins.column(feature).iter().enumerate() {
                assert_eq!(values[code as usize], data.row(i)[feature]);
            }
        }
    }

    #[test]
    fn scratch_is_zeroed_between_uses() {
        let mut scratch = HistScratch::default();
        scratch.zeroed(4, 2)[3] = 9;
        assert!(scratch.zeroed(4, 2).iter().all(|&c| c == 0));
        assert_eq!(scratch.zeroed(8, 2).len(), 16);
    }
}
