//! Cross-crate pcap interoperability: the identification pipeline run on
//! a capture file must be byte-for-byte equivalent to running it on live
//! packets.

use iot_sentinel::devicesim::{catalog, Testbed};
use iot_sentinel::fingerprint::{extract, FixedFingerprint};
use iot_sentinel::netproto::pcap::{PcapReader, PcapWriter};

#[test]
fn fingerprints_from_pcap_equal_live_fingerprints() {
    let devices = catalog();
    let testbed = Testbed::new(90);
    for device in devices.iter().take(8) {
        let trace = testbed.setup_run(&device.profile, 0);

        let mut capture = Vec::new();
        testbed.export_pcap(&trace, &mut capture).expect("export");

        let mut reader = PcapReader::new(capture.as_slice()).expect("pcap header");
        let replayed = reader.read_all().expect("parse capture");
        assert_eq!(replayed, trace.packets, "{}", device.info.identifier);

        let live = extract(&trace.packets);
        let from_pcap = extract(&replayed);
        assert_eq!(live, from_pcap, "{}", device.info.identifier);
        assert_eq!(
            FixedFingerprint::from_fingerprint(&live),
            FixedFingerprint::from_fingerprint(&from_pcap)
        );
    }
}

#[test]
fn every_catalog_device_survives_wire_roundtrip() {
    // Each device-type's full setup trace encodes and re-parses without
    // loss — the strongest cross-layer codec check we have.
    let devices = catalog();
    let testbed = Testbed::new(91);
    for device in &devices {
        let trace = testbed.setup_run(&device.profile, 1);
        for packet in &trace.packets {
            let bytes = packet.encode();
            let parsed = iot_sentinel::netproto::Packet::parse(&bytes, packet.timestamp)
                .unwrap_or_else(|e| panic!("{}: {e}", device.info.identifier));
            assert_eq!(&parsed, packet, "{}", device.info.identifier);
        }
    }
}

#[test]
fn mixed_device_capture_demultiplexes_by_mac() {
    // One pcap containing interleaved setups of three devices: the
    // gateway must be able to split it by source MAC and fingerprint
    // each device independently.
    let devices = catalog();
    let testbed = Testbed::new(92);
    let traces: Vec<_> = (0..3)
        .map(|i| testbed.setup_run(&devices[i].profile, 0))
        .collect();

    // Interleave and serialize.
    let mut merged: Vec<_> = traces.iter().flat_map(|t| t.packets.clone()).collect();
    merged.sort_by_key(|p| p.timestamp);
    let mut capture = Vec::new();
    let mut writer = PcapWriter::new(&mut capture).expect("writer");
    for packet in &merged {
        writer.write_packet(packet).expect("write");
    }
    writer.finish().expect("flush");

    // Demultiplex.
    let mut reader = PcapReader::new(capture.as_slice()).expect("reader");
    let replayed = reader.read_all().expect("read");
    for trace in &traces {
        let device_packets: Vec<_> = replayed
            .iter()
            .filter(|p| p.src_mac() == trace.mac)
            .cloned()
            .collect();
        assert_eq!(device_packets, trace.packets);
        assert_eq!(extract(&device_packets), extract(&trace.packets));
    }
}
