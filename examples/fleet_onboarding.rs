//! Fleet onboarding: an ISP-scale deployment of Sentinel gateways. A
//! hundred home networks — each with its own SDN switch and its own
//! gateway — share one trained model. Devices join in staggered storms,
//! some leave again (their enforcement rule is withdrawn), and some
//! roam to the neighbouring home mid-setup, finishing their device
//! setup there. The whole fleet is deterministic: the same seed gives a
//! bit-identical report at any thread count.
//!
//! ```text
//! cargo run --release --example fleet_onboarding
//! ```

use iot_sentinel::devicesim::catalog;
use iot_sentinel::fleet::{run_fleet, FleetConfig};
use iot_sentinel::prelude::*;

fn main() {
    // Train the shared IoTSSP once — every gateway in the fleet
    // classifies against this one model, by reference.
    let devices = catalog();
    let dataset = FingerprintDataset::collect(&devices, 10, 42);
    let service = IoTSecurityService::train(&dataset, &ServiceConfig::default());

    // 100 homes x 4 devices: joins arrive in two waves per home, every
    // third home sends one device roaming to its neighbour mid-setup,
    // and every fourth device leaves one tick after onboarding.
    let config = FleetConfig {
        homes: 100,
        ..FleetConfig::default()
    };
    let report = run_fleet(&service, &config);

    println!("{}\n", report.stats);
    println!(
        "identified {}/{} onboardings ({:.1}%), fleet cache hit ratio {:.3}",
        report.stats.identified,
        report.stats.onboarded,
        100.0 * report.stats.identified as f64 / report.stats.onboarded.max(1) as f64,
        report.stats.hit_ratio()
    );

    // Follow one roaming device across the fleet: it is assessed once
    // at its origin gateway and once more where it finished its setup.
    if let Some(origin) = report.homes.iter().find(|h| h.roam_out.is_some()) {
        let mac = origin.roam_out.unwrap();
        let destination = report
            .homes
            .iter()
            .find(|h| h.roam_in == Some(mac))
            .expect("roamer arrived somewhere");
        let verdict = |home: &iot_sentinel::fleet::HomeOutcome| {
            home.reports
                .iter()
                .find(|r| r.mac == mac)
                .map(|r| r.response.isolation.to_string())
                .unwrap_or_else(|| "not assessed".into())
        };
        println!(
            "\nroamer {mac}: home {} assessed it as {}, then home {} assessed it as {}",
            origin.home,
            verdict(origin),
            destination.home,
            verdict(destination)
        );
    }

    // The fleet report is a plain serializable value — ship it to your
    // monitoring plane as-is.
    let json = serde_json::to_string(&report.stats).expect("stats serialize");
    println!("\nmonitoring export: {json}");
}
