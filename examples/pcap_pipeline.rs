//! Pcap interoperability: export a simulated setup capture to a pcap
//! file (what the paper's tcpdump produced), read it back, and run the
//! identification pipeline on the parsed packets — demonstrating the
//! pipeline also works on real captures.
//!
//! ```text
//! cargo run --release --example pcap_pipeline
//! ```

use iot_sentinel::devicesim::{catalog, Testbed};
use iot_sentinel::fingerprint::{extract, FixedFingerprint};
use iot_sentinel::netproto::pcap::{PcapReader, PcapWriter};
use iot_sentinel::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let devices = catalog();
    let testbed = Testbed::new(5);

    // Record a Withings scale setup into a pcap file on disk.
    let trace = testbed.setup_run(&devices[2].profile, 0);
    let path = std::env::temp_dir().join("iot-sentinel-withings-setup.pcap");
    let file = std::fs::File::create(&path)?;
    let mut writer = PcapWriter::new(file)?;
    for packet in &trace.packets {
        writer.write_packet(packet)?;
    }
    writer.finish()?;
    println!(
        "wrote {} packets of {} setup traffic to {}",
        trace.packets.len(),
        devices[2].info.identifier,
        path.display()
    );

    // Re-read the capture exactly as the gateway would ingest tcpdump
    // output, and fingerprint it.
    let mut reader = PcapReader::new(std::fs::File::open(&path)?)?;
    let packets = reader.read_all()?;
    assert_eq!(packets, trace.packets, "lossless pcap roundtrip");
    let full = extract(&packets);
    let fixed = FixedFingerprint::from_fingerprint(&full);
    println!(
        "extracted fingerprint: {} packet columns, F' = {} dimensions",
        full.len(),
        fixed.dimensions()
    );

    // Identify against a service trained on the whole catalog.
    let dataset = FingerprintDataset::collect(&devices, 20, 42);
    let identifier = Identifier::train(&dataset, &IdentifierConfig::default());
    let id = identifier.identify(&full, &fixed);
    println!("identification from pcap: {id}");

    std::fs::remove_file(&path)?;
    Ok(())
}
