//! Damerau–Levenshtein edit distance between fingerprints (Sect. IV-B.2).
//!
//! The paper treats the fingerprint matrix `F` as a word whose characters
//! are packet columns: two packets are equal iff all 23 features are
//! equal. The distance counts insertions, deletions, substitutions and
//! *immediate* transpositions — the restricted Damerau–Levenshtein
//! distance, also known as optimal string alignment (OSA). The absolute
//! distance is normalized by the length of the longer fingerprint, giving
//! a dissimilarity in `[0, 1]`.

use crate::Fingerprint;

/// Restricted Damerau–Levenshtein (optimal string alignment) distance
/// between two symbol sequences.
///
/// Counts insertion, deletion, substitution and immediate transposition
/// of adjacent symbols, matching the paper's citation of Damerau.
///
/// ```
/// use sentinel_fingerprint::editdist::osa_distance;
///
/// assert_eq!(osa_distance(b"ca", b"ac"), 1, "transposition");
/// assert_eq!(osa_distance(b"kitten", b"sitting"), 3);
/// assert_eq!(osa_distance::<u8>(&[], &[]), 0);
/// ```
pub fn osa_distance<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let cols = b.len() + 1;
    // Three rolling rows: i-2, i-1, i.
    let mut prev_prev = vec![0usize; cols];
    let mut prev: Vec<usize> = (0..cols).collect();
    let mut current = vec![0usize; cols];
    for (i, ai) in a.iter().enumerate() {
        current[0] = i + 1;
        for (j, bj) in b.iter().enumerate() {
            let cost = usize::from(ai != bj);
            let mut best = (prev[j + 1] + 1) // deletion
                .min(current[j] + 1) // insertion
                .min(prev[j] + cost); // substitution
            if i > 0 && j > 0 && *ai == b[j - 1] && a[i - 1] == *bj {
                best = best.min(prev_prev[j - 1] + 1); // transposition
            }
            current[j + 1] = best;
        }
        std::mem::swap(&mut prev_prev, &mut prev);
        std::mem::swap(&mut prev, &mut current);
    }
    prev[b.len()]
}

/// Banded OSA distance with an early-exit score cutoff (Ukkonen, 1985).
///
/// Returns `Some(d)` iff the OSA distance is `d <= bound`, and `None`
/// iff the true distance exceeds `bound`. Because `D(i, j) >= |i - j|`,
/// only the diagonal band of half-width `bound` can hold cells within
/// the cutoff, so the DP fills `O(bound · min(n, m))` cells instead of
/// `O(n · m)`; additionally the scan aborts as soon as a whole row
/// exceeds the cutoff.
///
/// ```
/// use sentinel_fingerprint::editdist::osa_distance_bounded;
///
/// assert_eq!(osa_distance_bounded(b"kitten", b"sitting", 3), Some(3));
/// assert_eq!(osa_distance_bounded(b"kitten", b"sitting", 2), None);
/// assert_eq!(osa_distance_bounded::<u8>(&[], &[], 0), Some(0));
/// ```
pub fn osa_distance_bounded<T: PartialEq>(a: &[T], b: &[T], bound: usize) -> Option<usize> {
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > bound {
        return None;
    }
    if n == 0 {
        return Some(m); // m <= bound by the length check above
    }
    if m == 0 {
        return Some(n);
    }
    // Any cell value above `bound` behaves as "unreachable"; clamping to
    // `inf` keeps saturating arithmetic safe for huge bounds.
    let inf = bound.saturating_add(1);
    let cols = m + 1;
    let mut prev_prev = vec![inf; cols];
    let mut prev: Vec<usize> = (0..cols)
        .map(|j| if j <= bound { j } else { inf })
        .collect();
    let mut current = vec![inf; cols];
    for i in 0..n {
        let row = i + 1;
        // Only D(row, j) with |row - j| <= bound can stay within the
        // cutoff; everything outside the band is `inf`.
        let lo = row.saturating_sub(bound);
        let hi = (row + bound).min(m);
        // Reset the stale cells adjacent to the band (they still hold
        // values from two rows ago after the swaps below).
        if lo > 0 {
            current[lo - 1] = inf;
        }
        if hi < m {
            current[hi + 1] = inf;
        }
        let mut row_min = inf;
        if lo == 0 {
            current[0] = row; // first column: delete all of a[..row]
            row_min = row;
        }
        for j in lo.max(1)..=hi {
            let (ai, bj) = (&a[i], &b[j - 1]);
            let cost = usize::from(ai != bj);
            let mut best = prev[j]
                .saturating_add(1) // deletion
                .min(current[j - 1].saturating_add(1)) // insertion
                .min(prev[j - 1].saturating_add(cost)); // substitution
            if i > 0 && j > 1 && *ai == b[j - 2] && a[i - 1] == *bj {
                best = best.min(prev_prev[j - 2].saturating_add(1)); // transposition
            }
            let best = best.min(inf);
            current[j] = best;
            row_min = row_min.min(best);
        }
        // Every later cell derives from this row or (via transposition)
        // from a row whose reachable cells this row dominates, so once a
        // whole row exceeds the cutoff the distance provably does too.
        if row_min >= inf {
            return None;
        }
        std::mem::swap(&mut prev_prev, &mut prev);
        std::mem::swap(&mut prev, &mut current);
    }
    let distance = prev[m];
    (distance <= bound).then_some(distance)
}

/// Reusable buffers for [`osa_distance_wavefront_with`]: the five
/// rotating diagonal slices of the anti-diagonal DP.
///
/// A caller scoring one probe against many references holds one scratch
/// and amortizes the buffer allocations across the whole candidate set;
/// the scratch carries no data between calls, so reuse cannot change
/// any result.
#[derive(Debug, Default, Clone)]
pub struct WavefrontScratch {
    ring: [Vec<u32>; 5],
}

/// Banded OSA distance computed wavefront-style (by anti-diagonals).
///
/// Exactly the contract of [`osa_distance_bounded`] — `Some(d)` iff the
/// OSA distance is `d <= bound`, `None` otherwise — but the DP is
/// evaluated one anti-diagonal `d = i + j` at a time. Cells of one
/// diagonal have **no dependency on each other** (deletion/insertion
/// read diagonal `d-1`, substitution `d-2`, transposition `d-4`), so
/// each band diagonal is a contiguous slice update over independent
/// `u32` cells instead of a serial row scan. The band bounds
/// (`|i - j| <= bound`), the unreachable-region early exit and the
/// returned distances are identical to the scalar code, so scores and
/// tie-break order downstream cannot change.
///
/// ```
/// use sentinel_fingerprint::editdist::osa_distance_wavefront;
///
/// assert_eq!(osa_distance_wavefront(b"kitten", b"sitting", 3), Some(3));
/// assert_eq!(osa_distance_wavefront(b"kitten", b"sitting", 2), None);
/// assert_eq!(osa_distance_wavefront(b"ca", b"ac", 1), Some(1));
/// assert_eq!(osa_distance_wavefront::<u8>(&[], &[], 0), Some(0));
/// ```
pub fn osa_distance_wavefront<T: PartialEq>(a: &[T], b: &[T], bound: usize) -> Option<usize> {
    osa_distance_wavefront_with(a, b, bound, &mut WavefrontScratch::default())
}

/// [`osa_distance_wavefront`] with caller-owned scratch buffers.
pub fn osa_distance_wavefront_with<T: PartialEq>(
    a: &[T],
    b: &[T],
    bound: usize,
    scratch: &mut WavefrontScratch,
) -> Option<usize> {
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > bound {
        return None;
    }
    if n == 0 {
        return Some(m); // m <= bound by the length check above
    }
    if m == 0 {
        return Some(n);
    }
    // Index the diagonal buffers by the shorter side (OSA is symmetric).
    if n > m {
        return osa_distance_wavefront_with(b, a, bound, scratch);
    }
    // The DP value at (n, m) is at most max(n, m) (substitute the
    // overlap, insert the excess), so a wider band cannot change the
    // result; clamping also keeps the cells inside `u32`.
    let band = bound.min(m);
    if band >= u32::MAX as usize - 1 {
        // Degenerate astronomically-long input: fall back to the
        // scalar band rather than overflow the u32 cells.
        return osa_distance_bounded(a, b, bound);
    }
    let inf = band as u32 + 1;
    for buffer in &mut scratch.ring {
        buffer.clear();
        buffer.resize(n + 1, inf);
    }
    // Each ring slot holds one diagonal, indexed by row `i`; `written`
    // tracks which cells a slot's previous diagonal touched so recycling
    // resets exactly those back to `inf`.
    let mut written: [(usize, usize); 5] = [(1, 0); 5];
    scratch.ring[0][0] = 0; // D(0, 0)
    written[0] = (0, 0);
    let total = n + m;
    // How many consecutive diagonals have been entirely unreachable.
    // The farthest dependency reaches back four diagonals
    // (transposition), so four all-`inf` diagonals in a row are a wall
    // no alignment path can cross.
    let mut dry = 0usize;
    for d in 1..=total {
        // Band cells on this diagonal: |2i - d| <= band, intersected
        // with the matrix (0 <= i <= n, 0 <= d - i <= m).
        let lo_band = if d > band { (d - band).div_ceil(2) } else { 0 };
        let lo = lo_band.max(d.saturating_sub(m));
        let hi = ((d + band) / 2).min(n).min(d);
        let slot = d % 5;
        let mut cur = std::mem::take(&mut scratch.ring[slot]);
        let (stale_lo, stale_hi) = written[slot];
        if stale_lo <= stale_hi {
            for cell in &mut cur[stale_lo..=stale_hi] {
                *cell = inf;
            }
        }
        let prev1 = &scratch.ring[(d + 4) % 5]; // diagonal d-1
        let prev2 = &scratch.ring[(d + 3) % 5]; // diagonal d-2
        let prev4 = &scratch.ring[(d + 1) % 5]; // diagonal d-4
        let mut diag_min = inf;
        if lo == 0 {
            // Column j = d: delete nothing, insert all of b[..d].
            cur[0] = d as u32;
            diag_min = d as u32;
        }
        if hi == d {
            // Row i = d: delete all of a[..d].
            cur[d] = d as u32;
            diag_min = diag_min.min(d as u32);
        }
        for i in lo.max(1)..=hi.min(d - 1) {
            let j = d - i;
            let (ai, bj) = (&a[i - 1], &b[j - 1]);
            let cost = u32::from(ai != bj);
            let mut best = (prev1[i - 1] + 1) // deletion
                .min(prev1[i] + 1) // insertion
                .min(prev2[i - 1] + cost); // substitution
            if i > 1 && j > 1 && *ai == b[j - 2] && a[i - 2] == *bj {
                best = best.min(prev4[i - 2] + 1); // transposition
            }
            let best = best.min(inf);
            cur[i] = best;
            diag_min = diag_min.min(best);
        }
        scratch.ring[slot] = cur;
        written[slot] = (lo, hi);
        if diag_min >= inf {
            dry += 1;
            if dry >= 4 {
                return None;
            }
        } else {
            dry = 0;
        }
    }
    let distance = scratch.ring[total % 5][n];
    (distance <= band as u32).then_some(distance as usize)
}

/// Plain Levenshtein distance (no transposition).
///
/// Unlike the OSA distance, this is a true metric (satisfies the triangle
/// inequality), which the property-test suite exercises; it also serves
/// as an upper bound on [`osa_distance`].
pub fn levenshtein_distance<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut current = vec![0usize; b.len() + 1];
    for (i, ai) in a.iter().enumerate() {
        current[0] = i + 1;
        for (j, bj) in b.iter().enumerate() {
            let cost = usize::from(ai != bj);
            current[j + 1] = (prev[j + 1] + 1).min(current[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut current);
    }
    prev[b.len()]
}

/// Absolute OSA distance between two fingerprints, using whole packet
/// columns as characters.
pub fn distance(a: &Fingerprint, b: &Fingerprint) -> usize {
    osa_distance(a.vectors(), b.vectors())
}

/// Normalized dissimilarity in `[0, 1]`: the absolute distance divided by
/// the length of the longer fingerprint (Sect. IV-B.2).
///
/// Two empty fingerprints have distance 0.
pub fn normalized_distance(a: &Fingerprint, b: &Fingerprint) -> f64 {
    let longest = a.len().max(b.len());
    if longest == 0 {
        return 0.0;
    }
    distance(a, b) as f64 / longest as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeatureVector;
    use sentinel_netproto::{MacAddr, Packet};

    fn vector(counter: u32) -> FeatureVector {
        FeatureVector::from_packet(&Packet::dhcp_discover(MacAddr::ZERO, 1, 0), counter)
    }

    fn fp(counters: &[u32]) -> Fingerprint {
        // Bypass consecutive dedup by construction: counters differ.
        counters.iter().map(|&c| vector(c)).collect()
    }

    #[test]
    fn identity() {
        let a = fp(&[1, 2, 3]);
        assert_eq!(distance(&a, &a), 0);
        assert_eq!(normalized_distance(&a, &a), 0.0);
    }

    #[test]
    fn insertion_and_deletion() {
        let a = fp(&[1, 2, 3]);
        let b = fp(&[1, 2, 3, 4]);
        assert_eq!(distance(&a, &b), 1);
        assert_eq!(distance(&b, &a), 1);
        assert_eq!(normalized_distance(&a, &b), 0.25);
    }

    #[test]
    fn substitution() {
        let a = fp(&[1, 2, 3]);
        let b = fp(&[1, 9, 3]);
        assert_eq!(distance(&a, &b), 1);
    }

    #[test]
    fn transposition_counts_once() {
        let a = fp(&[1, 2]);
        let b = fp(&[2, 1]);
        assert_eq!(distance(&a, &b), 1, "immediate transposition is one edit");
        assert_eq!(levenshtein_distance(a.vectors(), b.vectors()), 2);
    }

    #[test]
    fn osa_bounded_by_levenshtein() {
        let pairs = [
            (fp(&[1, 2, 3, 4]), fp(&[2, 1, 4, 3])),
            (fp(&[1, 2, 3]), fp(&[4, 5, 6, 7])),
            (fp(&[]), fp(&[1, 2])),
        ];
        for (a, b) in &pairs {
            assert!(distance(a, b) <= levenshtein_distance(a.vectors(), b.vectors()));
        }
    }

    #[test]
    fn empty_fingerprints() {
        let empty = Fingerprint::default();
        let a = fp(&[1, 2]);
        assert_eq!(distance(&empty, &a), 2);
        assert_eq!(normalized_distance(&empty, &a), 1.0);
        assert_eq!(normalized_distance(&empty, &empty), 0.0);
    }

    #[test]
    fn known_string_vectors() {
        assert_eq!(osa_distance(b"abcdef", b"abcdef"), 0);
        assert_eq!(
            osa_distance(b"ca", b"abc"),
            3,
            "classic OSA vs unrestricted DL example"
        );
        // insert 'n', then transpose the disjoint "ca" -> "ac".
        assert_eq!(osa_distance(b"a cat", b"an act"), 2);
        assert_eq!(levenshtein_distance(b"flaw", b"lawn"), 2);
    }

    #[test]
    fn wavefront_matches_bounded_on_known_vectors() {
        let cases: [(&[u8], &[u8]); 7] = [
            (b"kitten", b"sitting"),
            (b"ca", b"abc"),
            (b"a cat", b"an act"),
            (b"abcdef", b"abcdef"),
            (b"", b"xyz"),
            (b"ca", b"ac"),
            (b"flaw", b"lawn"),
        ];
        for (a, b) in cases {
            for bound in 0..=8 {
                assert_eq!(
                    osa_distance_wavefront(a, b, bound),
                    osa_distance_bounded(a, b, bound),
                    "{:?} vs {:?} at bound {bound}",
                    a,
                    b
                );
            }
        }
    }

    #[test]
    fn wavefront_matches_bounded_on_generated_sequences() {
        // A deterministic sweep over symbol sequences with repeats (so
        // transpositions and matches fire), all lengths 0..=12, and
        // bounds spanning never/exactly/always reachable.
        let seq = |seed: usize, len: usize| -> Vec<u32> {
            (0..len)
                .map(|i| ((seed * 7 + i * i + i / 3) % 5) as u32)
                .collect()
        };
        let mut scratch = WavefrontScratch::default();
        for sa in 0..6 {
            for sb in 0..6 {
                for la in 0..=12 {
                    for lb in 0..=12 {
                        let a = seq(sa, la);
                        let b = seq(sb + 11, lb);
                        for bound in [0, 1, 2, 3, 5, 8, 13, 24] {
                            assert_eq!(
                                osa_distance_wavefront_with(&a, &b, bound, &mut scratch),
                                osa_distance_bounded(&a, &b, bound),
                                "seeds ({sa},{sb}) lens ({la},{lb}) bound {bound}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn wavefront_scratch_reuse_is_stateless() {
        let mut scratch = WavefrontScratch::default();
        // A long call first, then short ones: leftovers must not leak.
        let long_a: Vec<u32> = (0..40).map(|i| i % 7).collect();
        let long_b: Vec<u32> = (0..37).map(|i| (i * 3) % 7).collect();
        let first = osa_distance_wavefront_with(&long_a, &long_b, 30, &mut scratch);
        assert_eq!(first, osa_distance_bounded(&long_a, &long_b, 30));
        for bound in 0..4 {
            assert_eq!(
                osa_distance_wavefront_with(b"ca", b"ac", bound, &mut scratch),
                osa_distance_bounded(b"ca", b"ac", bound)
            );
        }
    }

    #[test]
    fn normalization_bounds() {
        let a = fp(&[1, 2, 3]);
        let b = fp(&[4, 5]);
        let d = normalized_distance(&a, &b);
        assert!((0.0..=1.0).contains(&d));
    }
}
