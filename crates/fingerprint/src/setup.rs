//! Setup-phase end detection.
//!
//! The gateway records packets from a newly-seen MAC address "during its
//! setup phase. The end of the setup phase can be automatically
//! identified by a decrease in the rate of packets sent" (Sect. IV-A).
//! This module implements that detector: the setup phase ends at the
//! first sufficiently long transmission gap (rate collapse) after a
//! minimum number of packets, bounded by a hard packet cap.

use std::time::Duration;

use sentinel_netproto::{Packet, Timestamp};

/// Configurable detector for the end of a device's setup phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetupDetector {
    /// Minimum packets before a gap may end the setup phase.
    pub min_packets: usize,
    /// A transmission gap of at least this duration ends the setup phase
    /// (the "decrease in the rate of packets sent").
    pub idle_gap: Duration,
    /// Hard cap on setup-phase length.
    pub max_packets: usize,
}

impl Default for SetupDetector {
    /// Defaults tuned to the paper's setting: setup procedures take one
    /// to two minutes and emit tens of packets; after setup, devices fall
    /// back to sparse keep-alive traffic.
    fn default() -> Self {
        SetupDetector {
            min_packets: 5,
            idle_gap: Duration::from_secs(10),
            max_packets: 256,
        }
    }
}

impl SetupDetector {
    /// Creates a detector with explicit parameters.
    pub fn new(min_packets: usize, idle_gap: Duration, max_packets: usize) -> Self {
        SetupDetector {
            min_packets,
            idle_gap,
            max_packets,
        }
    }

    /// Returns the number of leading packets that belong to the setup
    /// phase, based on their timestamps.
    pub fn setup_len(&self, timestamps: &[Timestamp]) -> usize {
        let cap = timestamps.len().min(self.max_packets);
        for i in 1..cap {
            if i >= self.min_packets
                && timestamps[i].saturating_since(timestamps[i - 1]) >= self.idle_gap
            {
                return i;
            }
        }
        cap
    }

    /// Splits a capture into its setup-phase prefix and the remainder.
    pub fn split<'a>(&self, packets: &'a [Packet]) -> (&'a [Packet], &'a [Packet]) {
        let timestamps: Vec<Timestamp> = packets.iter().map(|p| p.timestamp).collect();
        packets.split_at(self.setup_len(&timestamps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(millis: &[u64]) -> Vec<Timestamp> {
        millis.iter().map(|&m| Timestamp::from_millis(m)).collect()
    }

    #[test]
    fn detects_rate_collapse() {
        let detector = SetupDetector::new(3, Duration::from_secs(5), 100);
        // Dense setup burst, then 30 s of silence before keep-alives.
        let timestamps = ts(&[0, 100, 200, 300, 400, 30_400, 60_400]);
        assert_eq!(detector.setup_len(&timestamps), 5);
    }

    #[test]
    fn ignores_gaps_before_min_packets() {
        let detector = SetupDetector::new(4, Duration::from_secs(5), 100);
        // A long pause after 2 packets (device rebooting mid-setup).
        let timestamps = ts(&[0, 100, 20_100, 20_200, 20_300, 60_000]);
        assert_eq!(detector.setup_len(&timestamps), 5);
    }

    #[test]
    fn caps_at_max_packets() {
        let detector = SetupDetector::new(2, Duration::from_secs(60), 4);
        let timestamps = ts(&[0, 10, 20, 30, 40, 50]);
        assert_eq!(detector.setup_len(&timestamps), 4);
    }

    #[test]
    fn no_gap_means_all_packets() {
        let detector = SetupDetector::default();
        let timestamps = ts(&[0, 500, 1_000, 1_500]);
        assert_eq!(detector.setup_len(&timestamps), 4);
    }

    #[test]
    fn empty_capture() {
        assert_eq!(SetupDetector::default().setup_len(&[]), 0);
    }

    #[test]
    fn split_partitions_packets() {
        use sentinel_netproto::MacAddr;
        let mac = MacAddr::new([3, 3, 3, 3, 3, 3]);
        let packets = vec![
            Packet::dhcp_discover(mac, 1, 0),
            Packet::dhcp_discover(mac, 2, 100_000),
            Packet::dhcp_discover(mac, 3, 200_000),
            Packet::dhcp_discover(mac, 4, 300_000),
            Packet::dhcp_discover(mac, 5, 400_000),
            Packet::dhcp_discover(mac, 6, 60_000_000),
        ];
        let detector = SetupDetector::default();
        let (setup, rest) = detector.split(&packets);
        assert_eq!(setup.len(), 5);
        assert_eq!(rest.len(), 1);
    }
}
