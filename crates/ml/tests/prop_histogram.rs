//! Differential property tests for histogram-based split finding: the
//! pre-binned cumulative-sweep search must produce **bit-identical**
//! trees and forests to the exact per-node sorted-scan reference, for
//! any dataset shape and any thread count. `PartialEq` on the fitted
//! models compares every feature index, threshold and leaf distribution,
//! so equality here is structural bit-identity.

use proptest::prelude::*;

use sentinel_ml::{
    BinnedDataset, Dataset, DecisionTree, FeatureSubsample, ForestConfig, PinnedRng, RandomForest,
    TreeConfig,
};

/// Datasets that stress the binning: few distinct values per column
/// (heavy duplicates, like the Table I bit features), fractional values,
/// constant columns, and 2-4 classes.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (1usize..6, 4usize..48, 2usize..5).prop_flat_map(|(n_features, n_rows, n_classes)| {
        let row = proptest::collection::vec(
            prop_oneof![
                // Small integer pool → many duplicate values per column.
                (0u8..4).prop_map(f64::from),
                // Fractional values → midpoint thresholds are non-trivial.
                (0u8..8).prop_map(|v| f64::from(v) * 0.125),
            ],
            n_features,
        );
        proptest::collection::vec((row, 0..n_classes), n_rows).prop_map(move |rows| {
            let mut data = Dataset::new(n_features);
            for (values, label) in rows {
                data.push(&values, label);
            }
            data
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn binned_tree_is_bit_identical_to_exact(data in dataset_strategy(), seed in any::<u64>()) {
        let config = TreeConfig {
            max_depth: 8,
            min_samples_split: 2,
            min_samples_leaf: 1,
            // Subsample features so the RNG-consumption contract (the
            // pinned per-slot `sample_step` order, constant features
            // not counting against the budget) is exercised, not just
            // the arithmetic.
            n_candidate_features: Some((data.n_features() / 2).max(1)),
        };
        let bins = BinnedDataset::build(&data);
        let indices: Vec<usize> = (0..data.len()).collect();
        let exact =
            DecisionTree::fit_on(&data, &indices, &config, &mut PinnedRng::from_key(seed, 0, 0));
        let binned = DecisionTree::fit_binned(
            &data,
            &bins,
            &indices,
            &config,
            &mut PinnedRng::from_key(seed, 0, 0),
        );
        prop_assert_eq!(&exact, &binned, "histogram tree diverged from sorted-scan tree");
    }

    /// Three-way identity for the bank's corpus-shared training path:
    /// a forest fit over an index *view* of the full corpus (with the
    /// one-vs-rest label remap, against bins built over the whole
    /// corpus) must equal both the forest fit on a materialized copy of
    /// those rows (bins built over the copy alone) and the exact
    /// sorted-scan reference — at every thread count. This is the
    /// losslessness claim of `RandomForest::fit_view`: corpus bins that
    /// are empty inside the view never contribute a candidate threshold.
    #[test]
    fn view_forest_is_bit_identical_to_materialized_subset(
        data in dataset_strategy(),
        seed in any::<u64>(),
    ) {
        let offset = (seed % 3) as usize;
        let mut rows: Vec<usize> = (0..data.len()).filter(|i| !(i + offset).is_multiple_of(3)).collect();
        if rows.is_empty() {
            rows = (0..data.len()).collect();
        }
        // Binary remap, exactly as the classifier bank applies it.
        let labels: Vec<usize> = rows.iter().map(|&i| usize::from(data.label(i) == 0)).collect();
        let mut subset = Dataset::new(data.n_features());
        for (&i, &label) in rows.iter().zip(&labels) {
            subset.push(data.row(i), label);
        }
        let base = ForestConfig {
            n_trees: 12,
            feature_subsample: FeatureSubsample::Sqrt,
            max_depth: 8,
            min_samples_split: 2,
            min_samples_leaf: 1,
            seed,
            threads: 1,
        };
        let exact = RandomForest::fit_exact(&subset, &base);
        let materialized = RandomForest::fit(&subset, &base);
        prop_assert_eq!(&exact, &materialized, "materialized histogram forest diverged from exact");
        let bins = BinnedDataset::build(&data);
        for threads in [1usize, 2, 8] {
            let view = RandomForest::fit_view(
                &data,
                &bins,
                &rows,
                &labels,
                &base.clone().with_threads(threads),
            );
            prop_assert_eq!(
                &materialized,
                &view,
                "corpus-shared view forest diverged at {} threads",
                threads
            );
        }
    }

    #[test]
    fn binned_forest_is_bit_identical_at_any_thread_count(
        data in dataset_strategy(),
        seed in any::<u64>(),
    ) {
        let base = ForestConfig {
            n_trees: 12,
            feature_subsample: FeatureSubsample::Sqrt,
            max_depth: 8,
            min_samples_split: 2,
            min_samples_leaf: 1,
            seed,
            threads: 1,
        };
        let exact = RandomForest::fit_exact(&data, &base);
        for threads in [1usize, 2, 8] {
            let binned = RandomForest::fit(&data, &base.clone().with_threads(threads));
            prop_assert_eq!(
                &exact,
                &binned,
                "histogram forest diverged from exact forest at {} threads",
                threads
            );
        }
    }
}
