//! Soak test of the streaming onboarding runtime: many interleaved
//! device setups pushed through `sentinel-stream` as fast as the
//! hardware allows, reporting packets/sec, peak resident sessions and
//! shed count as BENCH JSON.
//!
//! ```text
//! cargo run --release -p sentinel-bench --bin stream_soak
//! cargo run --release -p sentinel-bench --bin stream_soak -- --smoke
//! cargo run --release -p sentinel-bench --bin stream_soak -- \
//!     --sessions 4000 --capacity 256 --threads 8 --json results/bench_stream.json
//! ```
//!
//! The workload is deliberately oversubscribed by default: more devices
//! are mid-setup than the bounded session table admits, so the LRU
//! overflow policy is exercised and the reported peak stays pinned at
//! the configured capacity.

use std::time::{Duration, Instant};

use sentinel_bench::cli::Args;
use sentinel_bench::tables;
use sentinel_core::{
    BankConfig, FingerprintDataset, IdentifierConfig, IoTSecurityService, ServiceConfig,
};
use sentinel_devicesim::{catalog, interleave, Testbed};
use sentinel_ml::ForestConfig;
use sentinel_netproto::stream::MemoryFrameSource;
use sentinel_stream::{StreamConfig, StreamRuntime};

fn main() {
    let args = Args::from_env();
    let smoke = args.switch("smoke");
    let sessions: usize = args.get("sessions", if smoke { 150 } else { 2000 });
    let train_runs: u64 = args.get("train-runs", if smoke { 5 } else { 10 });
    let trees: usize = args.get("trees", 25);
    let seed: u64 = args.get("seed", 42);
    let threads: usize = args.get("threads", 1);
    let capacity: usize = args.get("capacity", 512);
    let stagger_us: u64 = args.get("stagger-us", 1500);

    print!(
        "{}",
        tables::banner("Streaming onboarding soak — interleaved multi-device workload")
    );
    println!(
        "{sessions} concurrent setups (stagger {stagger_us} µs), table capacity {capacity}, \
         {threads} thread(s)\n"
    );

    // --- Train the IoTSSP (outside the measured window). ---
    let devices = catalog();
    let dataset = FingerprintDataset::collect(&devices, train_runs, seed);
    let service_config = ServiceConfig {
        identifier: IdentifierConfig {
            bank: BankConfig {
                forest: ForestConfig::default().with_trees(trees),
                ..BankConfig::default()
            },
            ..IdentifierConfig::default()
        },
    };
    let service = IoTSecurityService::train(&dataset, &service_config);

    // --- Generate the interleaved workload (outside the window). ---
    let testbed = Testbed::new(seed ^ 0x5041);
    let traces: Vec<_> = (0..sessions)
        .map(|i| {
            let device = &devices[i % devices.len()];
            testbed.setup_run(&device.profile, 10_000 + (i / devices.len()) as u64)
        })
        .collect();
    let packets = interleave(&traces, Duration::from_micros(stagger_us));
    let total_packets = packets.len();
    // Pre-encode to raw wire frames outside the window: what a live tap
    // delivers is bytes, and the measured path is the runtime's
    // zero-copy wire-scan ingest (`run_frames`), which never builds a
    // `Packet` for a frame the scanner certifies.
    let frames = MemoryFrameSource::from_packets(&packets);
    drop(packets);

    // --- The measured streaming window. ---
    let config = StreamConfig {
        max_sessions: capacity,
        threads,
        ..StreamConfig::default()
    };
    let effective_capacity = config.effective_capacity();
    let mut runtime = StreamRuntime::with_config(service, config);
    let start = Instant::now();
    let reports = runtime
        .run_frames(frames)
        .expect("in-memory source cannot fail");
    let elapsed = start.elapsed();

    let stats = runtime.stats().clone();
    let pps = total_packets as f64 / elapsed.as_secs_f64();
    assert!(
        stats.peak_resident_sessions <= effective_capacity,
        "peak {} exceeded the capacity bound {}",
        stats.peak_resident_sessions,
        effective_capacity
    );

    println!(
        "streamed {total_packets} packets in {:.1} ms",
        elapsed.as_secs_f64() * 1e3
    );
    println!("throughput          {:.0} packets/sec", pps);
    println!(
        "sessions            {} opened, {} completed, {} shed",
        stats.sessions_opened,
        stats.sessions_completed(),
        stats.sessions_evicted
    );
    println!(
        "peak resident       {} (bound {effective_capacity})",
        stats.peak_resident_sessions
    );
    println!("onboardings         {} reports ({})", reports.len(), stats);

    if let Some(path) = args.get_str("json") {
        let stats_json = serde_json::to_string(&stats).expect("stats serialize");
        let json = format!(
            "{{\n  \"bench\": \"stream_soak\",\n  \"sessions\": {sessions},\n  \
             \"train_runs\": {train_runs},\n  \"seed\": {seed},\n  \"threads\": {threads},\n  \
             \"capacity\": {capacity},\n  \"effective_capacity\": {effective_capacity},\n  \
             \"stagger_us\": {stagger_us},\n  \"packets\": {total_packets},\n  \
             \"elapsed_ms\": {:.3},\n  \"packets_per_sec\": {:.0},\n  \
             \"peak_resident_sessions\": {},\n  \"sessions_evicted\": {},\n  \
             \"stats\": {stats_json}\n}}\n",
            elapsed.as_secs_f64() * 1e3,
            pps,
            stats.peak_resident_sessions,
            stats.sessions_evicted,
        );
        std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
        println!("\nBENCH JSON written to {path}");
    }
}
