//! Mean ± standard deviation summaries, the presentation format of the
//! paper's Tables IV–VI.

use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// A sample summary: mean, (sample) standard deviation and count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator); 0 for n < 2.
    pub stdev: f64,
    /// Number of samples.
    pub n: usize,
}

impl Summary {
    /// Summarizes a slice of samples.
    pub fn of(samples: &[f64]) -> Summary {
        let n = samples.len();
        if n == 0 {
            return Summary {
                mean: 0.0,
                stdev: 0.0,
                n: 0,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let stdev = if n < 2 {
            0.0
        } else {
            let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        };
        Summary { mean, stdev, n }
    }

    /// Summarizes durations in milliseconds.
    pub fn of_durations_ms(samples: &[Duration]) -> Summary {
        let ms: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e3).collect();
        Summary::of(&ms)
    }

    /// Relative change of this summary's mean versus a baseline, in
    /// percent (the Table VI "overhead" presentation).
    pub fn percent_over(&self, baseline: &Summary) -> f64 {
        if baseline.mean == 0.0 {
            return 0.0;
        }
        (self.mean - baseline.mean) / baseline.mean * 100.0
    }
}

impl fmt::Display for Summary {
    /// Renders as `24.8 (±1.4)`, the paper's table style.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let digits = f.precision().unwrap_or(1);
        write!(f, "{:.digits$} (±{:.digits$})", self.mean, self.stdev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_samples() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample stdev of this classic dataset is ~2.138.
        assert!((s.stdev - 2.1380899).abs() < 1e-6);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(Summary::of(&[]).n, 0);
        let one = Summary::of(&[3.5]);
        assert_eq!(one.mean, 3.5);
        assert_eq!(one.stdev, 0.0);
    }

    #[test]
    fn durations_to_ms() {
        let s = Summary::of_durations_ms(&[Duration::from_millis(10), Duration::from_millis(20)]);
        assert!((s.mean - 15.0).abs() < 1e-9);
    }

    #[test]
    fn percent_over_baseline() {
        let base = Summary::of(&[10.0, 10.0]);
        let with = Summary::of(&[11.0, 11.0]);
        assert!((with.percent_over(&base) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn display_matches_table_style() {
        let s = Summary::of(&[24.8]);
        assert_eq!(format!("{s}"), "24.8 (±0.0)");
        assert_eq!(format!("{s:.2}"), "24.80 (±0.00)");
    }
}
