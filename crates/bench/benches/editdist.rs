//! Edit-distance scaling: cost is quadratic in fingerprint length —
//! the reason the paper classifies first and discriminates only between
//! the few accepted candidates (Sect. IV-B.2, Table IV).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sentinel_fingerprint::editdist::{
    levenshtein_distance, osa_distance, osa_distance_bounded, osa_distance_wavefront_with,
    WavefrontScratch,
};
use sentinel_fingerprint::{extract, FeatureVector, Fingerprint, SymbolTable};
use sentinel_netproto::{MacAddr, Packet};

/// Builds a synthetic fingerprint of `n` distinct packet columns.
fn fingerprint(n: u32, salt: u32) -> Fingerprint {
    (0..n)
        .map(|i| {
            FeatureVector::from_packet(
                &Packet::dhcp_discover(MacAddr::ZERO, 1, 0),
                // Vary the counter so columns are distinct and two salts
                // produce sequences with partial overlap.
                i * 2 + (i + salt) % 2,
            )
        })
        .collect()
}

fn scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("editdist_scaling");
    for n in [10u32, 20, 50, 100, 200] {
        let a = fingerprint(n, 0);
        let b = fingerprint(n, 1);
        group.bench_with_input(BenchmarkId::new("osa", n), &n, |bencher, _| {
            bencher.iter(|| osa_distance(a.vectors(), b.vectors()))
        });
        group.bench_with_input(BenchmarkId::new("levenshtein", n), &n, |bencher, _| {
            bencher.iter(|| levenshtein_distance(a.vectors(), b.vectors()))
        });
    }
    group.finish();
}

fn interned(c: &mut Criterion) {
    // The identifier's production path: packet columns interned to `u32`
    // symbols at training time, probes projected at identification time,
    // and a score cutoff that lets losing candidates abandon the DP.
    let mut group = c.benchmark_group("editdist_interned");
    for n in [10u32, 20, 50, 100, 200] {
        let a = fingerprint(n, 0);
        let b = fingerprint(n, 1);
        let mut table = SymbolTable::new();
        let ia = table.intern(&a);
        let ib = table.project(&b);
        let exact = osa_distance(ia.symbols(), ib.symbols());
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bencher, _| {
            bencher.iter(|| osa_distance(a.vectors(), b.vectors()))
        });
        group.bench_with_input(BenchmarkId::new("interned", n), &n, |bencher, _| {
            bencher.iter(|| osa_distance(ia.symbols(), ib.symbols()))
        });
        // A generous bound (the true distance): the band still prunes the
        // DP corners without ever giving up.
        group.bench_with_input(BenchmarkId::new("bounded_exact", n), &n, |bencher, _| {
            bencher.iter(|| osa_distance_bounded(ia.symbols(), ib.symbols(), exact))
        });
        // A tight bound (half the true distance): the typical losing
        // candidate, abandoned as soon as every band cell exceeds it.
        group.bench_with_input(BenchmarkId::new("bounded_tight", n), &n, |bencher, _| {
            bencher.iter(|| osa_distance_bounded(ia.symbols(), ib.symbols(), exact / 2))
        });
        // The wavefront (anti-diagonal) formulation of the same band:
        // identical Some/None contract, contiguous slice updates per
        // diagonal instead of a row-major sweep.
        group.bench_with_input(BenchmarkId::new("wavefront_exact", n), &n, |bencher, _| {
            let mut scratch = WavefrontScratch::default();
            bencher.iter(|| {
                osa_distance_wavefront_with(ia.symbols(), ib.symbols(), exact, &mut scratch)
            })
        });
        group.bench_with_input(BenchmarkId::new("wavefront_tight", n), &n, |bencher, _| {
            let mut scratch = WavefrontScratch::default();
            bencher.iter(|| {
                osa_distance_wavefront_with(ia.symbols(), ib.symbols(), exact / 2, &mut scratch)
            })
        });
    }
    group.finish();
}

fn realistic(c: &mut Criterion) {
    // Distance between two real setup traces of the same device-type.
    let devices = sentinel_devicesim::catalog();
    let testbed = sentinel_devicesim::Testbed::new(3);
    let a = extract(&testbed.setup_run(&devices[13].profile, 0).packets);
    let b = extract(&testbed.setup_run(&devices[13].profile, 1).packets);
    c.bench_function("editdist_realistic_same_type", |bencher| {
        bencher.iter(|| osa_distance(a.vectors(), b.vectors()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = scaling, interned, realistic
}
criterion_main!(benches);
