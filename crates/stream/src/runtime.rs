//! The sharded streaming onboarding runtime.
//!
//! [`StreamRuntime`] consumes one interleaved packet stream carrying
//! many concurrent device setups, demultiplexes it per source MAC into
//! bounded [`Session`] state machines, and drives every completed setup
//! phase through the full assess → enforce path of the batch gateway.
//!
//! # Determinism
//!
//! Packets are sharded by a fixed FNV hash of the source MAC over
//! [`StreamConfig::shards`] *virtual* shards — a number independent of
//! the worker count — and shards are processed with the same
//! deterministic fork/join ([`sentinel_ml::parallel::map_indexed`]) used
//! by the training pipeline. All of a device's packets land in one
//! shard, each shard's state evolves only with its own packet
//! subsequence, and completions are merged back in global stream order,
//! so every decision (fingerprint, identification, isolation level,
//! eviction choice) is bit-identical at any `SENTINEL_THREADS` setting
//! and for any ingest batch size.
//!
//! # Shard-end-to-end assessment
//!
//! Shards do not stop at fingerprinting: each shard *assesses* its own
//! completions inside the parallel pass — batched stage-1
//! classification over the packed arenas plus stage-2 edit-distance
//! discrimination — through [`SecurityService::assess_keyed_batch`].
//! That is sound because keyed assessment is a pure function of
//! `(trained model, fingerprints, key)` under the v2 pinned RNG
//! contract ([`sentinel_core::AssessKey`]): every random draw comes
//! from a generator keyed by `(seq, mac)`, so no shard's answers
//! depend on what any other shard (or thread) is doing. Only the
//! serial tail remains after the join: merging per-shard stats,
//! sorting assessed completions into `(seq, mac)` stream order, and
//! installing enforcement rules / emitting reports — work that mutates
//! the shared SDN module and must stay ordered, but is trivially cheap
//! next to classification.

use std::collections::{HashMap, HashSet};

use parking_lot::Mutex;

use sentinel_core::{
    AssessKey, AssessScratch, OnboardingReport, Outcome, SecurityService, ServiceResponse,
};
use sentinel_fingerprint::setup::SetupDetector;
use sentinel_fingerprint::{Fingerprint, FixedFingerprint};
use sentinel_ml::parallel::{effective_threads, map_indexed};
use sentinel_netproto::stream::{FrameSource, PacketSource};
use sentinel_netproto::{
    MacAddr, Packet, ParseError, RawFeatures, ScanOutcome, Timestamp, WireScan,
};
use sentinel_sdn::{EnforcementModule, EnforcementRule, IsolationLevel, OvsSwitch, SwitchDecision};

use crate::session::{CompletionReason, Session, SessionEvent};
use crate::stats::StreamStats;
use crate::table::{Admission, SessionTable};

/// Tuning knobs of the streaming runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamConfig {
    /// Setup-phase end detection (same semantics as the batch gateway).
    pub detector: SetupDetector,
    /// Hosts whose traffic is never monitored.
    pub ignored: Vec<MacAddr>,
    /// Target bound on concurrently monitored devices across all shards.
    /// The effective bound is [`StreamConfig::effective_capacity`]
    /// (rounded up to a whole number of per-shard slots).
    pub max_sessions: usize,
    /// Number of virtual shards. Determinism across thread counts only
    /// requires this to be *fixed*, not related to the worker count;
    /// workers claim shards dynamically.
    pub shards: usize,
    /// Hard per-session wire-byte cap (`u64::MAX` disables it, which
    /// keeps streaming decisions identical to the batch gateway's).
    pub session_byte_cap: u64,
    /// Worker threads: `0` = auto (`SENTINEL_THREADS` or the machine),
    /// `1` = exact sequential path.
    pub threads: usize,
    /// Packets pulled from the source per ingest round. Purely a
    /// throughput knob: results are identical for any batch size.
    pub batch_size: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            detector: SetupDetector::default(),
            ignored: Vec::new(),
            max_sessions: 4096,
            shards: 64,
            session_byte_cap: u64::MAX,
            threads: 0,
            batch_size: 1024,
        }
    }
}

impl StreamConfig {
    /// Concurrent-session slots per shard.
    pub fn shard_capacity(&self) -> usize {
        let shards = self.shards.max(1);
        self.max_sessions.div_ceil(shards).max(1)
    }

    /// The exact global bound on resident sessions
    /// (`shard_capacity × shards ≥ max_sessions`).
    pub fn effective_capacity(&self) -> usize {
        self.shard_capacity() * self.shards.max(1)
    }
}

/// One shard's state: its bounded session table, the set of MACs it
/// has already onboarded (whose steady-state traffic is skipped), and
/// the warm assessment scratch its in-shard keyed batch assessments
/// reuse tick after tick (kernel batch matrix, wavefront band buffers —
/// zero per-tick allocations once warm).
#[derive(Debug)]
struct Shard {
    table: SessionTable,
    onboarded: HashSet<MacAddr>,
    scratch: AssessScratch,
}

/// A finished setup phase, queued for assessment and in-order
/// enforcement.
///
/// The `(seq, mac)` pair is both the deterministic merge key and the
/// assessment key: keyed assessment ([`AssessKey`]) makes the service's
/// answer a pure function of the trained model, the fingerprints and
/// this key, so shards can consult the service concurrently without the
/// answers depending on shard scheduling — and, equally, so a caller
/// can *defer* assessment entirely ([`StreamRuntime::ingest_frames_deferred`])
/// and batch completions from many gateways through one keyed service
/// call with byte-identical results. Only enforcement-rule installation
/// and report emission must happen in `(seq, mac)` order.
pub struct Completion {
    /// Stream sequence of the packet that closed the session (for gap
    /// and cap completions) or of its last absorbed packet (flush).
    pub seq: u64,
    /// The completing device's MAC address.
    pub mac: MacAddr,
    /// Packets absorbed during the setup phase.
    pub setup_packets: usize,
    /// What ended the setup phase.
    pub reason: CompletionReason,
    /// The full fingerprint `F` (stage-2 input).
    pub full: Fingerprint,
    /// The fixed-width fingerprint `F'` (stage-1 input).
    pub fixed: FixedFingerprint,
}

impl Completion {
    /// The deterministic assessment key of this completion.
    pub fn assess_key(&self) -> AssessKey {
        AssessKey::new(self.seq, self.mac)
    }
}

/// Per-shard results of one ingest round.
#[derive(Default)]
struct ShardOutcome {
    completions: Vec<Completion>,
    /// Keyed service responses, aligned one-to-one with `completions`
    /// (filled by the shard's in-parallel assessment pass).
    responses: Vec<ServiceResponse>,
    /// Items that counted as stream input: everything the shard saw
    /// except frames the wire scanner rejected — so
    /// [`StreamStats::packets_in`] agrees between the packet and frame
    /// paths on equivalent traffic, and `frames_malformed` is the sole
    /// malformed counter.
    packets: u64,
    opened: u64,
    evicted: u64,
    ignored: u64,
    malformed: u64,
    /// Frames the scanner punted on (`NeedsDecode`) that went through
    /// the full decoder instead of the zero-copy fast path.
    decoded: u64,
    resident: usize,
}

/// Per-session feature-arena pre-allocation: the detector's packet cap,
/// clamped so a pathological configuration cannot make every open
/// session reserve unbounded memory up front.
fn session_capacity(detector: &SetupDetector) -> usize {
    detector.max_packets.min(1024)
}

impl Shard {
    /// Processes this shard's slice of one ingest batch. `items` carries
    /// `(stream seq, index into batch)` pairs — the indirection lets the
    /// runtime reuse its bucket allocations across batches instead of
    /// borrowing the batch in per-call buckets.
    fn process(
        &mut self,
        items: &[(u64, u32)],
        batch: &[Packet],
        config: &StreamConfig,
    ) -> ShardOutcome {
        let mut out = ShardOutcome {
            packets: items.len() as u64,
            ..ShardOutcome::default()
        };
        for &(seq, index) in items {
            let packet = &batch[index as usize];
            let mac = packet.src_mac();
            if config.ignored.contains(&mac) || self.onboarded.contains(&mac) {
                out.ignored += 1;
                continue;
            }
            if !self.table.contains(mac) {
                let session =
                    Session::open_sized(seq, packet.timestamp, session_capacity(&config.detector));
                if let Admission::Shed(..) = self.table.admit(mac, session) {
                    out.evicted += 1;
                }
                out.opened += 1;
            }
            let session = self.table.get_mut(mac).expect("admitted above");
            let event = session.offer(packet, seq, &config.detector, config.session_byte_cap);
            let reason = match event {
                SessionEvent::Absorbed => continue,
                SessionEvent::GapComplete => CompletionReason::IdleGap,
                SessionEvent::CapComplete(reason) => reason,
            };
            let session = self.table.remove(mac).expect("was resident");
            out.completions.push(complete(mac, seq, session, reason));
            self.onboarded.insert(mac);
        }
        out.resident = self.table.len();
        out
    }

    /// The zero-copy twin of [`Shard::process`]: each raw frame goes
    /// through the wire scanner ([`RawFeatures::from_frame`]) on the
    /// borrowed slice, so the hot path never constructs a [`Packet`].
    /// Decisions and state transitions are bit-identical to the decode
    /// path; frames the lenient decoder would reject are counted and
    /// skipped instead of aborting the stream.
    fn process_frames(
        &mut self,
        items: &[(u64, u32)],
        batch: &[(Timestamp, Vec<u8>)],
        config: &StreamConfig,
    ) -> ShardOutcome {
        let mut out = ShardOutcome::default();
        for &(seq, index) in items {
            let (timestamp, frame) = &batch[index as usize];
            let timestamp = *timestamp;
            let frame = frame.as_slice();
            let mac = MacAddr::new(frame[6..12].try_into().expect("bucketed frames hold a MAC"));
            if config.ignored.contains(&mac) || self.onboarded.contains(&mac) {
                out.ignored += 1;
                continue;
            }
            // Match the scanner's verdict directly (instead of the
            // `RawFeatures::from_frame` convenience) so `NeedsDecode`
            // fallbacks are observable: the fleet soak asserts the
            // certified fast path covers its whole workload.
            let raw = match WireScan::scan(frame) {
                ScanOutcome::Features(raw) => raw,
                ScanOutcome::Malformed => {
                    out.malformed += 1;
                    continue;
                }
                ScanOutcome::NeedsDecode => match Packet::parse(frame, timestamp) {
                    Ok(packet) => {
                        out.decoded += 1;
                        RawFeatures::from_packet(&packet)
                    }
                    Err(_) => {
                        out.malformed += 1;
                        continue;
                    }
                },
            };
            if !self.table.contains(mac) {
                let session =
                    Session::open_sized(seq, timestamp, session_capacity(&config.detector));
                if let Admission::Shed(..) = self.table.admit(mac, session) {
                    out.evicted += 1;
                }
                out.opened += 1;
            }
            let session = self.table.get_mut(mac).expect("admitted above");
            let event = session.offer_raw(
                &raw,
                timestamp,
                seq,
                &config.detector,
                config.session_byte_cap,
            );
            let reason = match event {
                SessionEvent::Absorbed => continue,
                SessionEvent::GapComplete => CompletionReason::IdleGap,
                SessionEvent::CapComplete(reason) => reason,
            };
            let session = self.table.remove(mac).expect("was resident");
            out.completions.push(complete(mac, seq, session, reason));
            self.onboarded.insert(mac);
        }
        // Scan-rejected frames never counted as stream input.
        out.packets = items.len() as u64 - out.malformed;
        out.resident = self.table.len();
        out
    }

    fn flush(&mut self) -> ShardOutcome {
        let mut out = ShardOutcome::default();
        for (mac, session) in self.table.drain_ordered() {
            let seq = session.last_seq();
            out.completions
                .push(complete(mac, seq, session, CompletionReason::Flush));
            self.onboarded.insert(mac);
        }
        out
    }
}

/// Finalizes one session into its fingerprints (`F` and `F'`). Pure —
/// safe to run inside the parallel shard pass.
fn complete(mac: MacAddr, seq: u64, session: Session, reason: CompletionReason) -> Completion {
    let setup_packets = session.packets();
    let full = session.finish();
    let fixed = FixedFingerprint::from_fingerprint(&full);
    Completion {
        seq,
        mac,
        setup_packets,
        reason,
        full,
        fixed,
    }
}

/// Keyed assessment of one shard's completions, run *inside* the
/// parallel shard pass: stage-1 is batched forest-major over the
/// shard's whole tick, stage-2 draws from each completion's own
/// `(seq, mac)`-keyed generator. Pure per item (v2 pinned RNG
/// contract), so concurrent shards cannot perturb each other.
/// The shard's warm [`AssessScratch`] backs the service's batched
/// kernels; responses are appended to `responses` (empty tick ⇒ no
/// work, no allocation).
fn assess_completions<S: SecurityService>(
    service: &S,
    completions: &[Completion],
    scratch: &mut AssessScratch,
    responses: &mut Vec<ServiceResponse>,
) {
    if completions.is_empty() {
        return;
    }
    let items: Vec<(&Fingerprint, &FixedFingerprint, AssessKey)> = completions
        .iter()
        .map(|c| (&c.full, &c.fixed, AssessKey::new(c.seq, c.mac)))
        .collect();
    service.assess_keyed_batch_into(&items, scratch, responses);
}

/// The stats-and-enforcement tail of onboarding one assessed device:
/// records the completion in `stats`, builds the enforcement rule the
/// response's isolation level calls for, installs it into `module`, and
/// returns the onboarding report.
///
/// This is the exact finalize path of [`StreamRuntime`]'s own ingest
/// loop (its `onboard` delegates here), exposed so a caller that
/// deferred assessment ([`StreamRuntime::ingest_frames_deferred`]) can
/// replay the identical serial tail against its own stats and
/// enforcement state — same counters, same rule cache transitions,
/// byte for byte.
pub fn apply_onboarding(
    stats: &mut StreamStats,
    module: &mut EnforcementModule,
    completion: &Completion,
    response: ServiceResponse,
) -> OnboardingReport {
    stats.record_completion(completion.reason);
    match response.identification.outcome {
        Outcome::Identified { .. } => stats.identified += 1,
        Outcome::Unknown => stats.unknown += 1,
    }
    let rule = match response.isolation {
        IsolationLevel::Strict => {
            stats.strict += 1;
            EnforcementRule::strict(completion.mac)
        }
        IsolationLevel::Restricted => {
            stats.restricted += 1;
            EnforcementRule::restricted(completion.mac, response.permitted_endpoints.iter().copied())
        }
        IsolationLevel::Trusted => {
            stats.trusted += 1;
            EnforcementRule::trusted(completion.mac)
        }
    };
    module.install_rule(rule);
    OnboardingReport {
        mac: completion.mac,
        setup_packets: completion.setup_packets,
        response,
    }
}

/// FNV-1a shard assignment: fixed, hasher-independent, so shard
/// membership never varies across runs, platforms or thread counts.
fn shard_of(mac: MacAddr, shards: usize) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in mac.octets() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    (hash % shards as u64) as usize
}

/// The streaming onboarding runtime (see the module docs).
#[derive(Debug)]
pub struct StreamRuntime<S> {
    service: S,
    config: StreamConfig,
    shards: Vec<Mutex<Shard>>,
    module: EnforcementModule,
    switch: OvsSwitch,
    reports: HashMap<MacAddr, OnboardingReport>,
    stats: StreamStats,
    next_seq: u64,
    /// Per-shard `(stream seq, batch index)` buckets, hoisted out of the
    /// ingest calls so their allocations are reused across batches.
    buckets: Vec<Vec<(u64, u32)>>,
    /// Scratch for the FNV shard-assignment pre-pass (`u32::MAX` marks a
    /// frame too short to carry an Ethernet header).
    shard_ids: Vec<u32>,
}

impl<S: SecurityService + Sync> StreamRuntime<S> {
    /// Creates a runtime backed by `service` with default configuration.
    pub fn new(service: S) -> Self {
        Self::with_config(service, StreamConfig::default())
    }

    /// Creates a runtime with explicit configuration.
    pub fn with_config(service: S, config: StreamConfig) -> Self {
        let shard_count = config.shards.max(1);
        let per_shard = config.shard_capacity();
        let shards = (0..shard_count)
            .map(|_| {
                Mutex::new(Shard {
                    table: SessionTable::new(per_shard),
                    onboarded: HashSet::new(),
                    scratch: AssessScratch::default(),
                })
            })
            .collect();
        StreamRuntime {
            service,
            config,
            shards,
            module: EnforcementModule::new(),
            switch: OvsSwitch::lab(),
            reports: HashMap::new(),
            stats: StreamStats::default(),
            next_seq: 0,
            buckets: (0..shard_count).map(|_| Vec::new()).collect(),
            shard_ids: Vec::new(),
        }
    }

    /// Consumes the whole source, then flushes the remaining sessions.
    /// Returns every onboarding report, in decision order.
    ///
    /// # Errors
    ///
    /// Propagates source [`ParseError`]s (e.g. a truncated capture);
    /// devices onboarded before the error remain onboarded.
    pub fn run<P: PacketSource>(
        &mut self,
        mut source: P,
    ) -> Result<Vec<OnboardingReport>, ParseError> {
        let mut reports = Vec::new();
        let mut batch: Vec<Packet> = Vec::with_capacity(self.config.batch_size);
        loop {
            batch.clear();
            if source.fill_batch(&mut batch, self.config.batch_size.max(1))? == 0 {
                break;
            }
            reports.extend(self.ingest(&batch));
        }
        reports.extend(self.flush());
        Ok(reports)
    }

    /// Consumes a whole **frame** source through the zero-copy scan path,
    /// then flushes. Produces exactly the reports [`StreamRuntime::run`]
    /// would on the decoded stream, but never constructs a [`Packet`] for
    /// a frame the wire scanner can certify.
    ///
    /// Unlike [`StreamRuntime::run`], malformed frames do not abort the
    /// stream: they are counted in [`StreamStats::frames_malformed`] and
    /// skipped, which is what a live tap needs.
    ///
    /// # Errors
    ///
    /// Propagates capture-container errors from the source (e.g. a
    /// truncated pcap record header).
    pub fn run_frames<F: FrameSource>(
        &mut self,
        mut source: F,
    ) -> Result<Vec<OnboardingReport>, ParseError> {
        let mut reports = Vec::new();
        // One batch reused for the whole run: `refill_frames` overwrites
        // the slots in place, so file replay stops allocating once the
        // buffers have grown to the capture's frame sizes.
        let mut batch: Vec<(Timestamp, Vec<u8>)> = Vec::with_capacity(self.config.batch_size);
        loop {
            if source.refill_frames(&mut batch, self.config.batch_size.max(1))? == 0 {
                break;
            }
            reports.extend(self.ingest_frames(&batch));
        }
        reports.extend(self.flush());
        Ok(reports)
    }

    /// Ingests one batch of interleaved raw frames (the zero-copy twin of
    /// [`StreamRuntime::ingest`]), returning the devices whose setup
    /// phase completed inside it (in stream order). Frames too short to
    /// carry an Ethernet header are counted as malformed and skipped —
    /// they consume no stream sequence number and are excluded from
    /// [`StreamStats::packets_in`], so frame-path stats agree with the
    /// packet path on equivalent traffic.
    pub fn ingest_frames(&mut self, frames: &[(Timestamp, Vec<u8>)]) -> Vec<OnboardingReport> {
        self.bucket(frames.iter().map(|(_, frame)| {
            (frame.len() >= 14)
                .then(|| MacAddr::new(frame[6..12].try_into().expect("checked length")))
        }));
        let shard_count = self.shards.len();
        let threads = effective_threads(self.config.threads);
        let outcomes = {
            let shards = &self.shards;
            let config = &self.config;
            let buckets = &self.buckets;
            let service = &self.service;
            map_indexed(shard_count, threads, |s| {
                let mut shard = shards[s].lock();
                let mut outcome = shard.process_frames(&buckets[s], frames, config);
                assess_completions(
                    service,
                    &outcome.completions,
                    &mut shard.scratch,
                    &mut outcome.responses,
                );
                outcome
            })
        };
        self.absorb(outcomes, true)
    }

    /// Ingests one batch of interleaved raw frames **without assessing**
    /// the completed setups: finished sessions are appended to `out` as
    /// [`Completion`]s (in `(seq, mac)` stream order within this call)
    /// for the caller to assess later — typically pooled across many
    /// gateways into one large keyed batch, which the v2 pinned RNG
    /// contract makes byte-identical to in-line assessment at any
    /// pooling granularity. Returns how many completions this call
    /// appended.
    ///
    /// Session state machines, shard assignment, eviction and every
    /// ingest-side counter behave exactly as in
    /// [`StreamRuntime::ingest_frames`]; only assessment, rule
    /// installation and report emission are left to the caller (see
    /// [`apply_onboarding`]). Shards are walked serially through
    /// `&mut` access — no lock traffic, no per-call outcome
    /// collection — so a warm runtime makes **zero heap allocations**
    /// on a steady-state tick (no new sessions, no completions).
    pub fn ingest_frames_deferred(
        &mut self,
        frames: &[(Timestamp, Vec<u8>)],
        out: &mut Vec<Completion>,
    ) -> usize {
        self.bucket(frames.iter().map(|(_, frame)| {
            (frame.len() >= 14)
                .then(|| MacAddr::new(frame[6..12].try_into().expect("checked length")))
        }));
        let start = out.len();
        let mut resident = 0usize;
        for (s, shard) in self.shards.iter_mut().enumerate() {
            let outcome = shard.get_mut().process_frames(&self.buckets[s], frames, &self.config);
            self.stats.packets_in += outcome.packets;
            self.stats.sessions_opened += outcome.opened;
            self.stats.sessions_evicted += outcome.evicted;
            self.stats.packets_ignored += outcome.ignored;
            self.stats.frames_malformed += outcome.malformed;
            self.stats.frames_decoded += outcome.decoded;
            resident += outcome.resident;
            out.extend(outcome.completions);
        }
        self.stats.peak_resident_sessions = self.stats.peak_resident_sessions.max(resident);
        // Unstable sort: `seq` is unique per completion, so the order is
        // total and stability is irrelevant — and unlike the stable
        // sort, this never allocates.
        out[start..].sort_unstable_by_key(|c| (c.seq, c.mac));
        out.len() - start
    }

    /// The deferred twin of [`StreamRuntime::flush`]: finalizes every
    /// in-flight session into `out` (in `(seq, mac)` order within this
    /// call) without assessing. Returns how many completions this call
    /// appended.
    pub fn flush_deferred(&mut self, out: &mut Vec<Completion>) -> usize {
        let start = out.len();
        for shard in self.shards.iter_mut() {
            let outcome = shard.get_mut().flush();
            out.extend(outcome.completions);
        }
        out[start..].sort_unstable_by_key(|c| (c.seq, c.mac));
        out.len() - start
    }

    /// Returns the runtime to its freshly-constructed state while
    /// keeping every allocation warm: session tables, shard buckets,
    /// assessment scratch and the onboarded-MAC sets retain their
    /// capacity but drop all contents; enforcement module, switch,
    /// reports, stats and the sequence counter start over.
    ///
    /// A pooled worker that `reset()`s one runtime between gateways
    /// observes exactly the behavior of constructing a new runtime with
    /// the same service and config — pinned by the fleet byte-identity
    /// tests — without re-paying table and scratch growth each time.
    pub fn reset(&mut self) {
        for shard in self.shards.iter_mut() {
            let shard = shard.get_mut();
            shard.table.clear();
            shard.onboarded.clear();
        }
        self.module = EnforcementModule::new();
        self.switch = OvsSwitch::lab();
        self.reports.clear();
        self.stats = StreamStats::default();
        self.next_seq = 0;
    }

    /// Ingests one batch of interleaved packets, returning the devices
    /// whose setup phase completed inside it (in stream order).
    pub fn ingest(&mut self, packets: &[Packet]) -> Vec<OnboardingReport> {
        self.bucket(packets.iter().map(|p| Some(p.src_mac())));
        let shard_count = self.shards.len();
        let threads = effective_threads(self.config.threads);
        let outcomes = {
            let shards = &self.shards;
            let config = &self.config;
            let buckets = &self.buckets;
            let service = &self.service;
            map_indexed(shard_count, threads, |s| {
                let mut shard = shards[s].lock();
                let mut outcome = shard.process(&buckets[s], packets, config);
                assess_completions(
                    service,
                    &outcome.completions,
                    &mut shard.scratch,
                    &mut outcome.responses,
                );
                outcome
            })
        };
        self.absorb(outcomes, true)
    }

    /// The shared shard-assignment pre-pass behind both ingest paths:
    /// one tight, cache-friendly FNV sweep computes every item's shard
    /// before any bucket is touched, then refills the per-shard
    /// `(stream seq, batch index)` buckets in stream order. `None`
    /// items (frames too short to carry an Ethernet header) are counted
    /// malformed and consume no sequence number, keeping frame-path
    /// stats and assessment keys aligned with the packet path.
    fn bucket(&mut self, macs: impl Iterator<Item = Option<MacAddr>>) {
        let shard_count = self.shards.len();
        self.shard_ids.clear();
        self.shard_ids.extend(macs.map(|mac| match mac {
            Some(mac) => shard_of(mac, shard_count) as u32,
            None => u32::MAX,
        }));
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        let mut seq = self.next_seq;
        for (i, &shard) in self.shard_ids.iter().enumerate() {
            if shard == u32::MAX {
                self.stats.frames_malformed += 1;
                continue;
            }
            self.buckets[shard as usize].push((seq, i as u32));
            seq += 1;
        }
        self.next_seq = seq;
    }

    /// Finalizes every in-flight session (end of stream), in the order
    /// the sessions were opened.
    pub fn flush(&mut self) -> Vec<OnboardingReport> {
        let shard_count = self.shards.len();
        let threads = effective_threads(self.config.threads);
        let outcomes = {
            let shards = &self.shards;
            let service = &self.service;
            map_indexed(shard_count, threads, |s| {
                let mut shard = shards[s].lock();
                let mut outcome = shard.flush();
                assess_completions(
                    service,
                    &outcome.completions,
                    &mut shard.scratch,
                    &mut outcome.responses,
                );
                outcome
            })
        };
        self.absorb(outcomes, false)
    }

    /// The serial tail of an ingest round: merges per-shard stats,
    /// sorts the already-assessed completions into deterministic
    /// `(seq, mac)` stream order, and installs each device's
    /// enforcement rule.
    ///
    /// Assessment already happened *inside* the parallel shard pass
    /// ([`assess_completions`]); because every response was drawn under
    /// the v2 keyed RNG contract, sorting the `(completion, response)`
    /// pairs afterwards yields exactly what a sequential gateway
    /// consuming the same interleaved stream would produce, at every
    /// thread count. Only rule installation and report emission — which
    /// mutate the shared SDN module — remain ordered and serial.
    fn absorb(&mut self, outcomes: Vec<ShardOutcome>, track_peak: bool) -> Vec<OnboardingReport> {
        let mut resident = 0usize;
        let mut assessed: Vec<(Completion, ServiceResponse)> = Vec::new();
        for outcome in outcomes {
            self.stats.packets_in += outcome.packets;
            self.stats.sessions_opened += outcome.opened;
            self.stats.sessions_evicted += outcome.evicted;
            self.stats.packets_ignored += outcome.ignored;
            self.stats.frames_malformed += outcome.malformed;
            self.stats.frames_decoded += outcome.decoded;
            resident += outcome.resident;
            debug_assert_eq!(outcome.completions.len(), outcome.responses.len());
            assessed.extend(outcome.completions.into_iter().zip(outcome.responses));
        }
        if track_peak {
            self.stats.peak_resident_sessions = self.stats.peak_resident_sessions.max(resident);
        }
        assessed.sort_by_key(|(c, _)| (c.seq, c.mac));
        assessed
            .into_iter()
            .map(|(completion, response)| self.onboard(completion, response))
            .collect()
    }

    /// Installs one assessed device's enforcement rule and records its
    /// report — the gateway's finalize path (the assessment itself
    /// already ran in-shard during the parallel pass).
    fn onboard(&mut self, completion: Completion, response: ServiceResponse) -> OnboardingReport {
        let report = apply_onboarding(&mut self.stats, &mut self.module, &completion, response);
        self.reports.insert(completion.mac, report.clone());
        report
    }

    /// Forwards or drops a packet according to the installed enforcement
    /// state (the data-plane path).
    pub fn enforce(&mut self, packet: &Packet) -> SwitchDecision {
        self.switch.process(packet, &mut self.module)
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// The report for an onboarded device, if its setup completed.
    pub fn report(&self, mac: MacAddr) -> Option<&OnboardingReport> {
        self.reports.get(&mac)
    }

    /// All onboarding reports, keyed by device MAC.
    pub fn reports(&self) -> &HashMap<MacAddr, OnboardingReport> {
        &self.reports
    }

    /// Sessions currently resident across all shards.
    pub fn resident_sessions(&self) -> usize {
        self.shards.iter().map(|s| s.lock().table.len()).sum()
    }

    /// The runtime configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// The enforcement module (rule cache, overlays).
    pub fn enforcement(&self) -> &EnforcementModule {
        &self.module
    }

    /// Mutable enforcement access (manual rule management).
    pub fn enforcement_mut(&mut self) -> &mut EnforcementModule {
        &mut self.module
    }

    /// The SDN switch.
    pub fn switch(&self) -> &OvsSwitch {
        &self.switch
    }

    /// Mutable switch access.
    pub fn switch_mut(&mut self) -> &mut OvsSwitch {
        &mut self.switch
    }

    /// The backing security service.
    pub fn service(&self) -> &S {
        &self.service
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_core::{Identification, ServiceResponse};
    use sentinel_devicesim::{catalog, interleave, Testbed};
    use sentinel_fingerprint::Fingerprint;
    use sentinel_netproto::stream::{MemoryFrameSource, MemorySource};
    use std::time::Duration;

    /// Scripted service: labels every fingerprint by its packet-column
    /// count so tests can check fingerprints flowed through untouched.
    struct StubService {
        isolation: IsolationLevel,
    }

    impl SecurityService for StubService {
        fn assess(&self, full: &Fingerprint, _fixed: &FixedFingerprint) -> ServiceResponse {
            ServiceResponse {
                identification: Identification {
                    outcome: Outcome::Identified {
                        label: full.len(),
                        name: format!("len{}", full.len()),
                    },
                    candidates: vec![full.len()],
                    discriminated: false,
                    scores: vec![],
                },
                isolation: self.isolation,
                permitted_endpoints: vec![],
                user_notification: None,
            }
        }
    }

    fn runtime(config: StreamConfig) -> StreamRuntime<StubService> {
        StreamRuntime::with_config(
            StubService {
                isolation: IsolationLevel::Trusted,
            },
            config,
        )
    }

    fn traces(n: usize) -> Vec<sentinel_devicesim::SetupTrace> {
        let devices = catalog();
        let testbed = Testbed::new(5);
        (0..n)
            .map(|i| {
                testbed.setup_run(
                    &devices[i % devices.len()].profile,
                    i as u64 / devices.len() as u64,
                )
            })
            .collect()
    }

    #[test]
    fn interleaved_devices_all_onboard_with_their_own_fingerprints() {
        let traces = traces(12);
        let stream = interleave(&traces, Duration::from_millis(20));
        let mut runtime = runtime(StreamConfig::default());
        let reports = runtime.run(MemorySource::new(stream)).unwrap();
        assert_eq!(reports.len(), 12);
        for trace in &traces {
            let report = runtime.report(trace.mac).expect("onboarded");
            assert_eq!(report.setup_packets, trace.packets.len());
            // The stub labels by fingerprint length: it must match the
            // batch extraction of the lone trace.
            let batch = sentinel_fingerprint::extract(&trace.packets);
            assert_eq!(report.response.identification.label(), Some(batch.len()));
            assert_eq!(
                runtime.enforcement().level_of(trace.mac),
                IsolationLevel::Trusted
            );
        }
        let stats = runtime.stats();
        assert_eq!(stats.sessions_opened, 12);
        assert_eq!(stats.sessions_completed(), 12);
        assert_eq!(stats.sessions_evicted, 0);
        assert!(stats.peak_resident_sessions >= 2, "setups overlapped");
    }

    #[test]
    fn frame_path_matches_packet_path_bit_identically() {
        let traces = traces(10);
        let stream = interleave(&traces, Duration::from_millis(5));
        for &(threads, batch_size) in &[(1usize, 7usize), (2, 1024), (8, 64)] {
            let config = StreamConfig {
                threads,
                batch_size,
                ..StreamConfig::default()
            };
            let mut decoded = runtime(config.clone());
            let decoded_reports = decoded.run(MemorySource::new(stream.clone())).unwrap();
            let mut scanned = runtime(config);
            let scanned_reports = scanned
                .run_frames(MemoryFrameSource::from_packets(&stream))
                .unwrap();
            assert_eq!(scanned_reports, decoded_reports, "threads={threads}");
            assert_eq!(scanned.stats(), decoded.stats(), "threads={threads}");
            assert_eq!(scanned.stats().frames_malformed, 0);
        }
    }

    #[test]
    fn malformed_frames_are_counted_and_skipped_not_fatal() {
        let traces = traces(2);
        let stream = interleave(&traces, Duration::from_millis(5));
        let mut frames: Vec<(Timestamp, Vec<u8>)> =
            stream.iter().map(|p| (p.timestamp, p.encode())).collect();
        // A runt (no Ethernet header) and a truncated IPv4 frame.
        frames.insert(0, (Timestamp::ZERO, vec![0xab; 9]));
        let mut truncated = stream[0].encode();
        truncated.truncate(20);
        frames.insert(3, (stream[0].timestamp, truncated));
        let mut runtime = runtime(StreamConfig::default());
        let reports = runtime.run_frames(MemoryFrameSource::new(frames)).unwrap();
        assert_eq!(reports.len(), 2, "both devices still onboard");
        let stats = runtime.stats();
        assert_eq!(stats.frames_malformed, 2);
        // Malformed frames are not stream input: `packets_in` counts
        // exactly the frames the packet path would have seen.
        assert_eq!(stats.packets_in, stream.len() as u64);
    }

    #[test]
    fn frame_stats_agree_with_packet_stats_despite_malformed_frames() {
        // Injecting malformed frames into the frame path must leave every
        // stat (and every report) identical to the packet path over the
        // clean stream — malformed frames consume no sequence number and
        // show up only in `frames_malformed`.
        let traces = traces(6);
        let stream = interleave(&traces, Duration::from_millis(5));
        let mut decoded = runtime(StreamConfig::default());
        let decoded_reports = decoded.run(MemorySource::new(stream.clone())).unwrap();
        let mut frames: Vec<(Timestamp, Vec<u8>)> =
            stream.iter().map(|p| (p.timestamp, p.encode())).collect();
        // A runt up front, a truncated IPv4 frame early (before its
        // device onboards), and a runt at the tail.
        frames.insert(0, (Timestamp::ZERO, vec![0xcd; 5]));
        let mut truncated = stream[1].encode();
        truncated.truncate(16);
        frames.insert(4, (stream[1].timestamp, truncated));
        frames.push((stream.last().unwrap().timestamp, vec![0xee; 13]));
        let mut scanned = runtime(StreamConfig::default());
        let scanned_reports = scanned.run_frames(MemoryFrameSource::new(frames)).unwrap();
        assert_eq!(scanned_reports, decoded_reports);
        let mut expected = decoded.stats().clone();
        expected.frames_malformed += 3;
        assert_eq!(scanned.stats(), &expected);
    }

    #[test]
    fn results_are_identical_for_any_thread_count_and_batch_size() {
        let traces = traces(10);
        let stream = interleave(&traces, Duration::from_millis(5));
        let outputs: Vec<_> = [(1usize, 7usize), (2, 1024), (8, 64)]
            .iter()
            .map(|&(threads, batch_size)| {
                let mut runtime = runtime(StreamConfig {
                    threads,
                    batch_size,
                    ..StreamConfig::default()
                });
                let reports = runtime.run(MemorySource::new(stream.clone())).unwrap();
                (reports, runtime.stats().clone())
            })
            .collect();
        for (reports, stats) in &outputs[1..] {
            assert_eq!(reports, &outputs[0].0);
            assert_eq!(stats, &outputs[0].1);
        }
    }

    #[test]
    fn bounded_table_sheds_oldest_idle_session() {
        let traces = traces(6);
        let stream = interleave(&traces, Duration::ZERO);
        // One shard, two slots: six concurrent setups must shed.
        let mut runtime = runtime(StreamConfig {
            shards: 1,
            max_sessions: 2,
            ..StreamConfig::default()
        });
        runtime.run(MemorySource::new(stream)).unwrap();
        let stats = runtime.stats();
        assert!(stats.sessions_evicted > 0, "overflow must shed: {stats}");
        assert!(stats.peak_resident_sessions <= 2);
        assert_eq!(
            stats.sessions_opened,
            stats.sessions_completed() + stats.sessions_evicted
        );
    }

    #[test]
    fn ignored_macs_never_open_sessions() {
        let traces = traces(2);
        let stream = interleave(&traces, Duration::from_millis(5));
        let mut runtime = runtime(StreamConfig {
            ignored: vec![traces[0].mac],
            ..StreamConfig::default()
        });
        let reports = runtime.run(MemorySource::new(stream)).unwrap();
        assert_eq!(reports.len(), 1);
        assert!(runtime.report(traces[0].mac).is_none());
        assert_eq!(
            runtime.stats().packets_ignored,
            traces[0].packets.len() as u64
        );
    }

    #[test]
    fn steady_state_traffic_after_gap_completion_is_ignored() {
        let devices = catalog();
        let trace = Testbed::new(9).setup_run(&devices[0].profile, 0);
        let mut stream = trace.packets.clone();
        // Keep-alives long after setup: first one closes the session,
        // the rest are post-onboarding traffic.
        for i in 0..3u64 {
            let mut late = trace.packets[0].clone();
            late.timestamp =
                trace.packets.last().unwrap().timestamp + Duration::from_secs(60 + i * 30);
            stream.push(late);
        }
        let mut runtime = runtime(StreamConfig::default());
        let reports = runtime.run(MemorySource::new(stream)).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].setup_packets, trace.packets.len());
        let stats = runtime.stats();
        assert_eq!(stats.completed_idle_gap, 1);
        assert_eq!(stats.completed_flush, 0);
        assert_eq!(stats.packets_ignored, 2, "keep-alives after onboarding");
    }

    #[test]
    fn byte_cap_bounds_session_growth() {
        let traces = traces(1);
        let mut runtime = runtime(StreamConfig {
            session_byte_cap: 64,
            ..StreamConfig::default()
        });
        let reports = runtime
            .run(MemorySource::new(traces[0].packets.clone()))
            .unwrap();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].setup_packets < traces[0].packets.len());
        assert_eq!(runtime.stats().completed_byte_cap, 1);
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for n in 0..=255u8 {
            let mac = MacAddr::new([n, 2, 3, 4, 5, n]);
            let shard = shard_of(mac, 64);
            assert!(shard < 64);
            assert_eq!(shard, shard_of(mac, 64));
        }
    }

    #[test]
    fn effective_capacity_rounds_up_to_whole_shards() {
        let config = StreamConfig {
            shards: 64,
            max_sessions: 100,
            ..StreamConfig::default()
        };
        assert_eq!(config.shard_capacity(), 2);
        assert_eq!(config.effective_capacity(), 128);
    }
}
