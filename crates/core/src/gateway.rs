//! The Security Gateway (Sect. III-A, V): device monitoring,
//! fingerprinting, and enforcement.

use std::collections::HashMap;
use std::time::Duration;

use sentinel_fingerprint::setup::SetupDetector;
use sentinel_fingerprint::{FeatureExtractor, FixedFingerprint};
use sentinel_netproto::{MacAddr, Packet, ParseError, RawFeatures, Timestamp};
use sentinel_sdn::{EnforcementModule, EnforcementRule, IsolationLevel, OvsSwitch, SwitchDecision};

use crate::identify::AssessKey;
use crate::report::OnboardingReport;
use crate::SecurityService;

/// Gateway tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GatewayConfig {
    /// Setup-phase end detection parameters.
    pub detector: SetupDetector,
    /// Hosts whose traffic is never monitored (the gateway itself,
    /// infrastructure).
    pub ignored: Vec<MacAddr>,
}

/// Bounded per-device monitoring state.
///
/// Packets are folded straight into the incremental feature extractor,
/// so the gateway never retains raw packets: what grows is the feature
/// matrix, and only up to the detector's identification window (the
/// paper's first-*n* packet limit) because `observe` finalizes at
/// `max_packets`. A chatty device costs the same memory as a quiet one.
#[derive(Debug)]
struct MonitorState {
    extractor: FeatureExtractor,
    packets: usize,
    last_seen: Timestamp,
    /// Stream sequence number of the last packet this monitor absorbed
    /// (the assessment key when the device is finalized explicitly).
    last_seq: u64,
}

/// The Security Gateway: monitors new devices, extracts their
/// fingerprints, consults the IoT Security Service and enforces the
/// returned isolation level through the SDN switch.
#[derive(Debug)]
pub struct SecurityGateway<S> {
    service: S,
    config: GatewayConfig,
    monitors: HashMap<MacAddr, MonitorState>,
    onboarded: HashMap<MacAddr, OnboardingReport>,
    switch: OvsSwitch,
    module: EnforcementModule,
    /// Stream sequence counter: every well-formed observed packet
    /// consumes one number (including packets from ignored or already
    /// onboarded MACs; malformed frames consume none). Assessments are
    /// keyed by `(seq, mac)` under the v2 pinned RNG contract, so a
    /// gateway fed a packet stream and a sharded `StreamRuntime`
    /// (`sentinel-stream`) fed the same stream derive identical keys —
    /// and identical reports.
    next_seq: u64,
}

impl<S: SecurityService> SecurityGateway<S> {
    /// Creates a gateway backed by `service`, with default configuration
    /// and the lab subnet.
    pub fn new(service: S) -> Self {
        Self::with_config(service, GatewayConfig::default())
    }

    /// Creates a gateway with explicit configuration.
    pub fn with_config(service: S, config: GatewayConfig) -> Self {
        SecurityGateway {
            service,
            config,
            monitors: HashMap::new(),
            onboarded: HashMap::new(),
            switch: OvsSwitch::lab(),
            module: EnforcementModule::new(),
            next_seq: 0,
        }
    }

    /// Observes one packet on the gateway's interfaces: unknown source
    /// MACs enter monitoring; monitored devices whose packet rate has
    /// collapsed are finalized automatically.
    ///
    /// Returns the onboarding report if this packet completed an
    /// identification.
    pub fn observe(&mut self, packet: &Packet) -> Option<OnboardingReport> {
        self.observe_raw(&RawFeatures::from_packet(packet), packet.timestamp)
    }

    /// Observes one raw Ethernet frame through the zero-copy wire
    /// scanner (`sentinel_netproto::scan`), never constructing a
    /// [`Packet`] for a frame the scanner can certify. Monitoring
    /// decisions, fingerprints and reports are bit-identical to
    /// [`SecurityGateway::observe`] on the decoded packet.
    ///
    /// # Errors
    ///
    /// Errors exactly when `Packet::parse` would reject the frame.
    pub fn observe_frame(
        &mut self,
        frame: &[u8],
        timestamp: Timestamp,
    ) -> Result<Option<OnboardingReport>, ParseError> {
        let raw = RawFeatures::from_frame(frame)?;
        Ok(self.observe_raw(&raw, timestamp))
    }

    /// The shared monitoring state machine behind both observe paths.
    fn observe_raw(&mut self, raw: &RawFeatures, timestamp: Timestamp) -> Option<OnboardingReport> {
        // Every well-formed packet consumes one sequence number, even
        // from ignored or onboarded MACs: the counter tracks stream
        // position, not monitoring activity, so it agrees with the
        // streaming runtime's packet indices.
        let seq = self.next_seq;
        self.next_seq += 1;
        let mac = raw.src_mac;
        if self.config.ignored.contains(&mac) || self.onboarded.contains_key(&mac) {
            return None;
        }
        let capacity = self.config.detector.max_packets.min(1024);
        let monitor = self.monitors.entry(mac).or_insert_with(|| MonitorState {
            extractor: FeatureExtractor::with_capacity(capacity),
            packets: 0,
            last_seen: timestamp,
            last_seq: seq,
        });
        // Setup-end detection: a long transmission gap after enough
        // packets closes the setup phase; the new packet belongs to the
        // device's steady-state traffic. The completion is keyed by the
        // *closing* packet's sequence number (it triggered assessment,
        // even though it is not part of the fingerprint).
        if monitor.packets >= self.config.detector.min_packets
            && timestamp.saturating_since(monitor.last_seen) >= self.config.detector.idle_gap
        {
            let report = self.finalize_at(mac, seq);
            return report;
        }
        monitor.extractor.push_raw(raw);
        monitor.packets += 1;
        monitor.last_seen = timestamp;
        monitor.last_seq = seq;
        if monitor.packets >= self.config.detector.max_packets {
            return self.finalize_at(mac, seq);
        }
        None
    }

    /// Forces fingerprinting and identification of a monitored device
    /// (e.g. when its setup activity clearly ended). Returns `None` if
    /// the MAC was not being monitored.
    ///
    /// Keyed by the last packet the monitor absorbed: an explicit flush
    /// assesses the device exactly as if its last packet had completed
    /// the window.
    pub fn finalize(&mut self, mac: MacAddr) -> Option<OnboardingReport> {
        let seq = self.monitors.get(&mac)?.last_seq;
        self.finalize_at(mac, seq)
    }

    /// Assessment + enforcement for a monitored device, keyed by `seq`
    /// under the v2 pinned RNG contract ([`AssessKey`]).
    fn finalize_at(&mut self, mac: MacAddr, seq: u64) -> Option<OnboardingReport> {
        let monitor = self.monitors.remove(&mac)?;
        let setup_packets = monitor.packets;
        let full = monitor.extractor.finish();
        let fixed = FixedFingerprint::from_fingerprint(&full);
        let response = self
            .service
            .assess_keyed(&full, &fixed, AssessKey::new(seq, mac));
        let rule = match response.isolation {
            IsolationLevel::Strict => EnforcementRule::strict(mac),
            IsolationLevel::Restricted => {
                EnforcementRule::restricted(mac, response.permitted_endpoints.iter().copied())
            }
            IsolationLevel::Trusted => EnforcementRule::trusted(mac),
        };
        self.module.install_rule(rule);
        let report = OnboardingReport {
            mac,
            setup_packets,
            response,
        };
        self.onboarded.insert(mac, report.clone());
        Some(report)
    }

    /// Forwards or drops a packet according to the installed enforcement
    /// state (the data-plane path).
    pub fn enforce(&mut self, packet: &Packet) -> SwitchDecision {
        self.switch.process(packet, &mut self.module)
    }

    /// The report for an onboarded device, if it completed
    /// identification.
    pub fn report(&self, mac: MacAddr) -> Option<&OnboardingReport> {
        self.onboarded.get(&mac)
    }

    /// MAC addresses currently being monitored.
    pub fn monitoring(&self) -> impl Iterator<Item = MacAddr> + '_ {
        self.monitors.keys().copied()
    }

    /// Number of setup packets consumed for a monitored device (the
    /// packets themselves are not retained, only their features).
    pub fn monitored_packets(&self, mac: MacAddr) -> usize {
        self.monitors.get(&mac).map_or(0, |m| m.packets)
    }

    /// The enforcement module (rule cache, overlays).
    pub fn enforcement(&self) -> &EnforcementModule {
        &self.module
    }

    /// Mutable enforcement access (manual rule management).
    pub fn enforcement_mut(&mut self) -> &mut EnforcementModule {
        &mut self.module
    }

    /// The SDN switch.
    pub fn switch(&self) -> &OvsSwitch {
        &self.switch
    }

    /// Mutable switch access (e.g. toggling filtering for baselines).
    pub fn switch_mut(&mut self) -> &mut OvsSwitch {
        &mut self.switch
    }

    /// The backing security service.
    pub fn service(&self) -> &S {
        &self.service
    }

    /// Forgets a device entirely (it left the network): removes its
    /// rule and any monitor state.
    pub fn remove_device(&mut self, mac: MacAddr) {
        self.monitors.remove(&mac);
        self.onboarded.remove(&mac);
        self.module.remove_rule(mac);
    }

    /// Expires idle flow-table entries.
    pub fn expire_flows(&mut self, now: sentinel_netproto::Timestamp, idle: Duration) -> usize {
        self.switch.table_mut().expire_idle(now, idle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Identification, Outcome, ServiceResponse};
    use sentinel_devicesim::{catalog, Testbed};
    use sentinel_fingerprint::Fingerprint;
    use sentinel_netproto::Timestamp;
    use sentinel_sdn::FlowAction;
    use std::net::Ipv4Addr;

    /// A service stub with a scripted response, for gateway-logic tests.
    struct StubService {
        isolation: IsolationLevel,
    }

    impl SecurityService for StubService {
        fn assess(&self, _full: &Fingerprint, _fixed: &FixedFingerprint) -> ServiceResponse {
            ServiceResponse {
                identification: Identification {
                    outcome: Outcome::Identified {
                        label: 0,
                        name: "Stub".into(),
                    },
                    candidates: vec![0],
                    discriminated: false,
                    scores: vec![],
                },
                isolation: self.isolation,
                permitted_endpoints: vec![],
                user_notification: None,
            }
        }
    }

    fn device_trace() -> sentinel_devicesim::SetupTrace {
        let devices = catalog();
        Testbed::new(5).setup_run(&devices[0].profile, 0)
    }

    #[test]
    fn monitors_new_mac_and_finalizes() {
        let mut gateway = SecurityGateway::new(StubService {
            isolation: IsolationLevel::Trusted,
        });
        let trace = device_trace();
        for packet in &trace.packets {
            assert!(gateway.observe(packet).is_none());
        }
        assert_eq!(gateway.monitored_packets(trace.mac), trace.packets.len());
        let report = gateway.finalize(trace.mac).expect("monitored");
        assert_eq!(report.mac, trace.mac);
        assert_eq!(report.setup_packets, trace.packets.len());
        assert_eq!(
            gateway.enforcement().level_of(trace.mac),
            IsolationLevel::Trusted
        );
        assert!(gateway.report(trace.mac).is_some());
    }

    #[test]
    fn frame_observation_matches_packet_observation() {
        let trace = device_trace();
        let make = || {
            SecurityGateway::new(StubService {
                isolation: IsolationLevel::Restricted,
            })
        };
        let mut decoded = make();
        let mut scanned = make();
        for packet in &trace.packets {
            let frame = packet.encode();
            let via_packet = decoded.observe(packet);
            let via_frame = scanned
                .observe_frame(&frame, packet.timestamp)
                .expect("simulated frames are well-formed");
            assert_eq!(via_frame, via_packet);
        }
        assert_eq!(
            scanned.monitored_packets(trace.mac),
            decoded.monitored_packets(trace.mac)
        );
        assert_eq!(scanned.finalize(trace.mac), decoded.finalize(trace.mac));
    }

    #[test]
    fn observe_frame_rejects_what_the_decoder_rejects() {
        let mut gateway = SecurityGateway::new(StubService {
            isolation: IsolationLevel::Trusted,
        });
        let trace = device_trace();
        let mut truncated = trace.packets[0].encode();
        truncated.truncate(16);
        assert!(gateway.observe_frame(&truncated, Timestamp::ZERO).is_err());
        assert_eq!(gateway.monitoring().count(), 0, "no monitor state leaked");
    }

    #[test]
    fn idle_gap_triggers_automatic_finalization() {
        let mut gateway = SecurityGateway::new(StubService {
            isolation: IsolationLevel::Strict,
        });
        let trace = device_trace();
        for packet in &trace.packets {
            gateway.observe(packet);
        }
        // A keep-alive long after setup closes the monitoring window.
        let mut late = trace.packets[0].clone();
        late.timestamp = trace.packets.last().unwrap().timestamp + Duration::from_secs(60);
        let report = gateway.observe(&late).expect("auto-finalized");
        assert_eq!(report.mac, trace.mac);
    }

    #[test]
    fn strict_device_cannot_reach_internet_after_onboarding() {
        let mut gateway = SecurityGateway::new(StubService {
            isolation: IsolationLevel::Strict,
        });
        let trace = device_trace();
        for packet in &trace.packets {
            gateway.observe(packet);
        }
        gateway.finalize(trace.mac);
        let outbound = Packet::udp_ipv4(
            Timestamp::from_secs(300),
            trace.mac,
            MacAddr::new([0x02, 0x53, 0x47, 0x57, 0x00, 0x01]),
            trace.device_ip,
            Ipv4Addr::new(52, 1, 1, 1),
            50000,
            443,
            sentinel_netproto::AppPayload::Empty,
        );
        assert_eq!(gateway.enforce(&outbound).action, FlowAction::Drop);
    }

    #[test]
    fn ignored_macs_are_not_monitored() {
        let trace = device_trace();
        let mut gateway = SecurityGateway::with_config(
            StubService {
                isolation: IsolationLevel::Trusted,
            },
            GatewayConfig {
                ignored: vec![trace.mac],
                ..GatewayConfig::default()
            },
        );
        for packet in &trace.packets {
            gateway.observe(packet);
        }
        assert_eq!(gateway.monitoring().count(), 0);
        assert!(gateway.finalize(trace.mac).is_none());
    }

    #[test]
    fn remove_device_clears_state() {
        let mut gateway = SecurityGateway::new(StubService {
            isolation: IsolationLevel::Trusted,
        });
        let trace = device_trace();
        for packet in &trace.packets {
            gateway.observe(packet);
        }
        gateway.finalize(trace.mac);
        gateway.remove_device(trace.mac);
        assert!(gateway.report(trace.mac).is_none());
        assert_eq!(
            gateway.enforcement().level_of(trace.mac),
            IsolationLevel::Strict,
            "fell back to the unknown-device default"
        );
    }

    #[test]
    fn max_packets_caps_monitoring() {
        let mut gateway = SecurityGateway::with_config(
            StubService {
                isolation: IsolationLevel::Trusted,
            },
            GatewayConfig {
                detector: SetupDetector::new(2, Duration::from_secs(10), 5),
                ignored: vec![],
            },
        );
        let trace = device_trace();
        let mut report = None;
        for packet in &trace.packets {
            if let Some(r) = gateway.observe(packet) {
                report = Some(r);
                break;
            }
        }
        let report = report.expect("cap reached");
        assert_eq!(report.setup_packets, 5);
    }
}
