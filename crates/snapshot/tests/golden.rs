//! Golden-fixture pin of the version-1 container format.
//!
//! The fixture is the canonical encoding of a fully hand-crafted model
//! (`common::golden_snapshot`), checked in at `data/golden_v1.snap`.
//! If `encoding_matches_the_checked_in_fixture` fails, the byte format
//! changed: that is a contract break for every snapshot already on
//! disk, and requires either backward-compatible decoding of the old
//! layout or a `FORMAT_VERSION` bump — never a silent re-pin. To
//! re-bless deliberately, run with `SNAPSHOT_BLESS=1` and say so in the
//! changelog.

mod common;

use sentinel_snapshot::{Snapshot, FORMAT_VERSION, MAGIC};

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/golden_v1.snap")
}

#[test]
fn encoding_matches_the_checked_in_fixture() {
    let actual = common::golden_snapshot().encode();
    if std::env::var_os("SNAPSHOT_BLESS").is_some() {
        std::fs::create_dir_all(fixture_path().parent().unwrap()).unwrap();
        std::fs::write(fixture_path(), &actual).unwrap();
    }
    let expected = std::fs::read(fixture_path())
        .expect("fixture missing: generate once with SNAPSHOT_BLESS=1");
    assert_eq!(
        actual, expected,
        "the snapshot byte format changed; see the module docs before re-pinning"
    );
}

#[test]
fn fixture_decodes_to_the_golden_model() {
    let bytes = std::fs::read(fixture_path())
        .expect("fixture missing: generate once with SNAPSHOT_BLESS=1");
    let decoded = Snapshot::decode(&bytes).expect("the checked-in fixture must decode");
    assert_eq!(decoded, common::golden_snapshot());
}

#[test]
fn fixture_header_is_the_documented_layout() {
    let bytes = std::fs::read(fixture_path())
        .expect("fixture missing: generate once with SNAPSHOT_BLESS=1");
    assert_eq!(&bytes[..8], &MAGIC);
    assert_eq!(
        u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
        FORMAT_VERSION
    );
    // Four sections: config, bank, references, vulndb.
    assert_eq!(u32::from_le_bytes(bytes[12..16].try_into().unwrap()), 4);
}

#[test]
fn encoding_is_deterministic() {
    assert_eq!(
        common::golden_snapshot().encode(),
        common::golden_snapshot().encode()
    );
}
