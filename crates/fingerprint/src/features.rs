//! The 23 per-packet features of the paper's Table I.

use serde::{Deserialize, Serialize};

use sentinel_netproto::{Packet, Protocol, ProtocolSet, RawFeatures};

/// Number of features extracted per packet (Table I).
pub const FEATURE_COUNT: usize = 23;

/// Feature names in Table I order, matching [`FeatureVector::to_array`].
pub const FEATURE_NAMES: [&str; FEATURE_COUNT] = [
    "arp",
    "llc",
    "ip",
    "icmp",
    "icmpv6",
    "eapol",
    "tcp",
    "udp",
    "http",
    "https",
    "dhcp",
    "bootp",
    "ssdp",
    "dns",
    "mdns",
    "ntp",
    "ip_option_padding",
    "ip_option_router_alert",
    "packet_size",
    "raw_data",
    "dst_ip_counter",
    "src_port_class",
    "dst_port_class",
];

/// IANA port class, the encoding used by the two port features.
///
/// * no port ⇒ 0
/// * well-known `[0, 1023]` ⇒ 1
/// * registered `[1024, 49151]` ⇒ 2
/// * dynamic `[49152, 65535]` ⇒ 3
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum PortClass {
    /// The packet has no transport port (ARP, ICMP, EAPoL, …).
    #[default]
    NoPort,
    /// Well-known range `[0, 1023]`.
    WellKnown,
    /// Registered range `[1024, 49151]`.
    Registered,
    /// Dynamic/ephemeral range `[49152, 65535]`.
    Dynamic,
}

impl PortClass {
    /// Classifies an optional port number.
    pub fn from_port(port: Option<u16>) -> Self {
        match port {
            None => PortClass::NoPort,
            Some(p) if sentinel_netproto::ports::is_well_known(p) => PortClass::WellKnown,
            Some(p) if sentinel_netproto::ports::is_registered(p) => PortClass::Registered,
            Some(_) => PortClass::Dynamic,
        }
    }

    /// The feature encoding (0–3).
    pub const fn to_u8(self) -> u8 {
        match self {
            PortClass::NoPort => 0,
            PortClass::WellKnown => 1,
            PortClass::Registered => 2,
            PortClass::Dynamic => 3,
        }
    }
}

/// The 23-feature representation of one packet (one column of the paper's
/// fingerprint matrix `F`).
///
/// Equality is exact equality of all 23 features — the paper's criterion
/// both for discarding consecutive duplicates and for character equality
/// in the edit-distance comparison.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FeatureVector {
    /// The 16 binary protocol indicators.
    pub protocols: ProtocolSet,
    /// IP header option: padding present.
    pub ip_option_padding: bool,
    /// IP header option: Router Alert present.
    pub ip_option_router_alert: bool,
    /// Frame size in bytes.
    pub packet_size: u32,
    /// Uninterpreted payload data present.
    pub raw_data: bool,
    /// Destination-IP counter: `k` if the destination address was the
    /// `k`-th distinct address this device contacted (1-based), 0 if the
    /// packet has no IP destination.
    pub dst_ip_counter: u32,
    /// Source port class.
    pub src_port_class: PortClass,
    /// Destination port class.
    pub dst_port_class: PortClass,
}

impl FeatureVector {
    /// Extracts the features of one packet.
    ///
    /// `dst_ip_counter` carries per-fingerprint state and is therefore
    /// supplied by the caller (see [`crate::FeatureExtractor`]).
    pub fn from_packet(packet: &Packet, dst_ip_counter: u32) -> Self {
        let (header_padding, header_router_alert) = ip_option_flags(packet);
        FeatureVector {
            protocols: packet.protocols(),
            ip_option_padding: header_padding,
            ip_option_router_alert: header_router_alert,
            packet_size: packet.wire_len() as u32,
            raw_data: packet.has_raw_data(),
            dst_ip_counter,
            src_port_class: PortClass::from_port(packet.src_port()),
            dst_port_class: PortClass::from_port(packet.dst_port()),
        }
    }

    /// Builds the features from a wire-scan record (the zero-copy fast
    /// path). Equivalent to [`FeatureVector::from_packet`] on the decoded
    /// frame — the contract `sentinel_netproto::scan` certifies.
    pub fn from_raw(raw: &RawFeatures, dst_ip_counter: u32) -> Self {
        FeatureVector {
            protocols: raw.protocols,
            ip_option_padding: raw.ip_option_padding,
            ip_option_router_alert: raw.ip_option_router_alert,
            packet_size: raw.packet_size,
            raw_data: raw.raw_data,
            dst_ip_counter,
            src_port_class: PortClass::from_port(raw.src_port),
            dst_port_class: PortClass::from_port(raw.dst_port),
        }
    }

    /// The vector in Table I order, for consumption by numeric classifiers.
    pub fn to_array(&self) -> [f64; FEATURE_COUNT] {
        let mut out = [0.0; FEATURE_COUNT];
        for (i, protocol) in Protocol::ALL.into_iter().enumerate() {
            out[i] = if self.protocols.contains(protocol) {
                1.0
            } else {
                0.0
            };
        }
        out[16] = self.ip_option_padding as u8 as f64;
        out[17] = self.ip_option_router_alert as u8 as f64;
        out[18] = self.packet_size as f64;
        out[19] = self.raw_data as u8 as f64;
        out[20] = self.dst_ip_counter as f64;
        out[21] = self.src_port_class.to_u8() as f64;
        out[22] = self.dst_port_class.to_u8() as f64;
        out
    }
}

fn ip_option_flags(packet: &Packet) -> (bool, bool) {
    use sentinel_netproto::PacketBody;
    match &packet.body {
        PacketBody::Ipv4 { header, .. } => (header.has_padding_option(), header.has_router_alert()),
        PacketBody::Ipv6 { header, .. } => (header.has_padding_option(), header.has_router_alert()),
        _ => (false, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_netproto::ipv4::{IpProtocol, Ipv4Header, Ipv4Option};
    use sentinel_netproto::udp::UdpHeader;
    use sentinel_netproto::{AppPayload, MacAddr, PacketBody, Timestamp, Transport};
    use std::net::Ipv4Addr;

    fn mac() -> MacAddr {
        MacAddr::new([1, 1, 1, 1, 1, 1])
    }

    #[test]
    fn feature_names_match_count() {
        assert_eq!(FEATURE_NAMES.len(), FEATURE_COUNT);
        assert_eq!(FEATURE_COUNT, 23, "Table I defines exactly 23 features");
    }

    #[test]
    fn table_one_layout() {
        // First 16 entries are the protocol indicators, then the 2 IP
        // options, 2 content features, 1 address feature, 2 port features.
        assert_eq!(&FEATURE_NAMES[0..2], &["arp", "llc"]);
        assert_eq!(&FEATURE_NAMES[2..6], &["ip", "icmp", "icmpv6", "eapol"]);
        assert_eq!(&FEATURE_NAMES[6..8], &["tcp", "udp"]);
        assert_eq!(
            &FEATURE_NAMES[8..16],
            &["http", "https", "dhcp", "bootp", "ssdp", "dns", "mdns", "ntp"]
        );
        assert_eq!(FEATURE_NAMES[18], "packet_size");
        assert_eq!(FEATURE_NAMES[20], "dst_ip_counter");
    }

    #[test]
    fn dhcp_packet_features() {
        let packet = Packet::dhcp_discover(mac(), 1, 0);
        let features = FeatureVector::from_packet(&packet, 1);
        let array = features.to_array();
        assert_eq!(array[2], 1.0, "ip");
        assert_eq!(array[7], 1.0, "udp");
        assert_eq!(array[10], 1.0, "dhcp");
        assert_eq!(array[11], 1.0, "bootp");
        assert_eq!(array[6], 0.0, "tcp");
        assert_eq!(array[18], packet.wire_len() as f64);
        assert_eq!(array[20], 1.0, "first destination ip");
        // Ports 68 -> 67: both well-known.
        assert_eq!(array[21], 1.0);
        assert_eq!(array[22], 1.0);
    }

    #[test]
    fn arp_packet_has_no_ports_or_ip() {
        let packet = Packet::arp_probe(Timestamp::ZERO, mac(), Ipv4Addr::new(10, 0, 0, 1));
        let features = FeatureVector::from_packet(&packet, 0);
        let array = features.to_array();
        assert_eq!(array[0], 1.0, "arp");
        assert_eq!(array[2], 0.0, "no ip layer");
        assert_eq!(array[20], 0.0, "no dst ip counter");
        assert_eq!(features.src_port_class, PortClass::NoPort);
    }

    #[test]
    fn router_alert_and_padding_flags() {
        let header = Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(224, 0, 0, 22),
            IpProtocol::Udp,
        )
        .with_option(Ipv4Option::RouterAlert(0))
        .with_option(Ipv4Option::Nop);
        let packet = Packet::new(
            Timestamp::ZERO,
            mac(),
            MacAddr::ZERO,
            PacketBody::Ipv4 {
                header,
                transport: Transport::Udp {
                    header: UdpHeader::new(5000, 5000),
                    payload: AppPayload::Empty,
                },
            },
        );
        let features = FeatureVector::from_packet(&packet, 1);
        assert!(features.ip_option_router_alert);
        assert!(features.ip_option_padding);
    }

    #[test]
    fn port_class_mapping() {
        assert_eq!(PortClass::from_port(None), PortClass::NoPort);
        assert_eq!(PortClass::from_port(Some(0)), PortClass::WellKnown);
        assert_eq!(PortClass::from_port(Some(1023)), PortClass::WellKnown);
        assert_eq!(PortClass::from_port(Some(1024)), PortClass::Registered);
        assert_eq!(PortClass::from_port(Some(49151)), PortClass::Registered);
        assert_eq!(PortClass::from_port(Some(49152)), PortClass::Dynamic);
        assert_eq!(PortClass::from_port(Some(65535)), PortClass::Dynamic);
    }

    #[test]
    fn equality_is_feature_exact() {
        let a = FeatureVector::from_packet(&Packet::dhcp_discover(mac(), 1, 0), 1);
        let b = FeatureVector::from_packet(&Packet::dhcp_discover(mac(), 1, 999_999), 1);
        assert_eq!(a, b, "timestamps and xid do not affect features");
        let c = FeatureVector::from_packet(&Packet::dhcp_discover(mac(), 1, 0), 2);
        assert_ne!(a, c, "dst ip counter is a feature");
    }
}
